#!/usr/bin/env bash
# Repo gate: build, tests, formatting, lints, static analysis. Run before
# every merge.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline

# Tests: tolerate exactly the failures already present in the growth seed
# (tests/known_seed_failures.txt) and fail on any NEW failure, so "no worse
# than the seed" is machine-checked rather than eyeballed.
test_log=$(mktemp)
if cargo test -q --offline --no-fail-fast >"$test_log" 2>&1; then
    echo "ci: all tests pass"
else
    grep -E '^[A-Za-z0-9_:]+ --- FAILED$' "$test_log" | sed 's/ --- FAILED//' | sort -u >"$test_log.failed"
    grep -Ev '^\s*(#|$)' tests/known_seed_failures.txt | sort -u >"$test_log.known"
    new_failures=$(comm -23 "$test_log.failed" "$test_log.known")
    fixed=$(comm -13 "$test_log.failed" "$test_log.known")
    if [[ -n "$new_failures" ]]; then
        echo "ci: NEW test failures (not in tests/known_seed_failures.txt):"
        echo "$new_failures"
        tail -n 100 "$test_log"
        exit 1
    fi
    if [[ ! -s "$test_log.failed" ]]; then
        # cargo test failed but no per-test FAILED lines: build error or
        # harness-level failure — never tolerable.
        echo "ci: cargo test failed without per-test failures (build/harness error)"
        tail -n 100 "$test_log"
        exit 1
    fi
    echo "ci: only known seed failures present:"
    sed 's/^/ci:   /' "$test_log.failed"
    if [[ -n "$fixed" ]]; then
        echo "ci: NOTE: these known failures now pass — remove them from tests/known_seed_failures.txt:"
        echo "$fixed"
    fi
fi
rm -f "$test_log" "$test_log.failed" "$test_log.known"

cargo fmt --check
cargo clippy --offline --all-targets -- -D warnings

# Static-analysis gate: the workspace must lint clean under simlint
# (R1–R11 plus the A1–A3 suppression audit, see DESIGN.md "Static analysis
# & determinism rules"). Any unsuppressed finding fails the gate; the JSON
# report is validated against the mptcp-lint-report/v2 schema so downstream
# tooling can trust it. The lint-diff baseline (tests/lint_baseline.txt)
# additionally pins the per-(rule, file) finding counts *including*
# suppressed ones: a new finding — even one someone annotated — fails until
# the baseline is deliberately refreshed (EXPERIMENTS.md "Lint runbook"),
# while findings that disappear only print a refresh reminder.
cargo build --release --offline -p simlint
mkdir -p results
./target/release/simlint --root . --json results/lint_report.json \
    --baseline tests/lint_baseline.txt
./target/release/simlint --validate results/lint_report.json

# Observability gate: a fast traced scenario must produce a non-empty JSONL
# trace and a schema-valid run report. --strict: "no reports found" must
# fail, not vacuously pass.
cargo build --release --offline -p bench
rm -f results/ci_trace.*.jsonl results/repro_run.json
MPTCP_TRACE=results/ci_trace ./target/release/repro_run scenarios/lossy_backup.json
test -s results/ci_trace.custom.seed11.jsonl
./target/release/validate_report --strict results/repro_run.json

# Orchestration gate: run the quick CI manifest sharded across 2 workers,
# then validate the cross-seed sweep report and every per-job run report.
# --strict: an empty run directory must fail, not vacuously pass. The
# sweep embeds per-job trace digests, so this also re-proves that worker
# scheduling cannot leak into results (the orchestra test suite compares
# --jobs 1/4/8 byte-for-byte; here we just need one sharded run to be
# schema-valid end to end).
cargo build --release --offline -p orchestra
rm -rf results/orchestra/ci-gate
./target/release/orchestra --manifest manifests/ci_quick.json \
    --jobs 2 --run-id ci-gate --quiet
./target/release/validate_report --strict \
    results/orchestra/ci-gate results/orchestra/ci-gate/jobs

# Viz gate: rendering is a pure function of the artifact bytes. Render the
# observability gate's pinned-seed trace twice and require byte-identical
# pages; require the page to be self-contained (no external references);
# and render the orchestra run's sweep explorer to prove the end-to-end
# artifact -> page path stays alive. The golden-digest and --jobs identity
# proofs live in cargo test (tests/viz_timeline.rs, crates/viz); this gate
# re-checks the shipped binary on fresh artifacts.
cargo build --release --offline -p viz
./target/release/viz trace results/ci_trace.custom.seed11.jsonl \
    --out results/ci_trace.a.html
./target/release/viz trace results/ci_trace.custom.seed11.jsonl \
    --out results/ci_trace.b.html
cmp results/ci_trace.a.html results/ci_trace.b.html
if grep -qE 'http://|https://|file://|<script' results/ci_trace.a.html; then
    echo "ci: viz page is not self-contained (external reference or script)"
    exit 1
fi
rm -f results/ci_trace.a.html results/ci_trace.b.html
./target/release/viz sweep results/orchestra/ci-gate
test -s results/orchestra/ci-gate/index.html

# Chaos gate: a fixed-budget fuzz campaign (pinned seed, 200 generated
# fault schedules) must finish with ZERO invariant violations on this tree,
# and its mptcp-chaos-report/v1 artifact must validate. The checked-in
# minimal-repro fixtures are replayed by `cargo test` above
# (tests/chaos_repros.rs); this gate searches fresh schedules instead, so
# a regression in failover/recovery behaviour fails CI even before anyone
# writes a test for it.
cargo build --release --offline -p chaos
rm -rf results/chaos/ci-gate
./target/release/chaos campaign --seed 1105 --iterations 200 --jobs 4 \
    --out results/chaos/ci-gate
./target/release/validate_report --strict results/chaos/ci-gate

# Perf-behaviour gate: recompute the three perf-scenario trace digests and
# compare them to the goldens recorded in BENCH_eventloop.json. Digests are
# machine-independent (pure event-sequence hashes), so this catches any
# behaviour change smuggled in as an "optimization" without timing anything.
# The tracked report itself must also stay schema-valid.
./target/release/validate_report BENCH_eventloop.json
./target/release/perf_eventloop --check BENCH_eventloop.json

# Scale gate: same contract for the production-scale scenarios tracked in
# BENCH_scale.json (k=8/k=16 FatTree permutations). --check recomputes the
# trace digests (byte-for-byte) and re-measures bytes/connection against the
# recorded values with 1.25x slack, so both a behaviour change and a memory
# regression in the arena/pool/lazy-build path fail CI. Wall-clock numbers
# in the report are informational only — never compared.
./target/release/validate_report BENCH_scale.json
./target/release/perf_scale --check BENCH_scale.json

# Flow-backend gate: the flow-level simulator must keep agreeing with the
# packet simulator (scenarios A/B/C and the k=8 FatTree, every headline
# metric within the ±10% tolerance documented in DESIGN.md "Flow-level
# backend"), and the population-scale churn report tracked in
# BENCH_flowscale.json must stay schema-valid with a reproducible
# flow_check trace digest and no >1.25x memory-per-flow regression. The
# cross-validation tests are release-only (#[ignore] in debug) because the
# packet runs take minutes unoptimized.
cargo test --release --offline --test flow_crossval -- --include-ignored
./target/release/validate_report BENCH_flowscale.json
./target/release/perf_flowscale --check BENCH_flowscale.json

echo "ci: all gates passed"

#!/usr/bin/env bash
# Repo gate: build, tests, formatting, lints. Run before every merge.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
cargo clippy --offline --all-targets -- -D warnings

# Observability gate: a fast traced scenario must produce a non-empty JSONL
# trace and a schema-valid run report.
cargo build --release --offline -p bench
rm -f results/ci_trace.*.jsonl results/repro_run.json
MPTCP_TRACE=results/ci_trace ./target/release/repro_run scenarios/lossy_backup.json
test -s results/ci_trace.custom.seed11.jsonl
./target/release/validate_report results/repro_run.json

#!/usr/bin/env bash
# Repo gate: build, tests, formatting, lints. Run before every merge.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
cargo clippy --offline --all-targets -- -D warnings

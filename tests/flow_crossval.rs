//! Cross-validation: the flow-level backend against the packet simulator.
//!
//! The flow model is only useful if it reproduces the packet backend's
//! *steady-state class means* on the paper's topologies. These tests run
//! both backends on scenarios A/B/C and the k=8 FatTree and require mean
//! per-class goodput to agree within `TOL_REL` (stated tolerance: ±10%).
//! Transients, completion-time distributions, and per-packet effects are
//! explicitly outside the tolerance — see DESIGN.md "Flow-level backend"
//! for the fidelity boundary.
//!
//! Flow-level determinism is also witnessed here: two runs of the same
//! configuration must produce identical FNV-1a trace digests.

use bench::jobs::{self, JobCtx};
use bench::json::Json;
use eventsim::SimDuration;
use flowsim::scenarios::{measure_two_class, scenario_a, scenario_b, scenario_c};
use flowsim::{fattree, FlowFatTreeConfig, FlowSimConfig};
use mpsim_core::Algorithm;

/// Stated cross-backend tolerance on mean per-class goodput.
const TOL_REL: f64 = 0.10;

/// Measurement windows mirroring the packet backend's quick scale.
const WARMUP: SimDuration = SimDuration::from_secs(20);
const MEASURE: SimDuration = SimDuration::from_secs(25);
const JITTER: SimDuration = SimDuration::from_secs(2);

fn assert_close(label: &str, flow: f64, packet: f64) {
    let denom = packet.abs().max(1e-9);
    let rel = (flow - packet).abs() / denom;
    println!("crossval {label}: flow={flow:.4} packet={packet:.4} rel={rel:.3}");
    assert!(
        rel <= TOL_REL,
        "{label}: flow-level {flow:.4} vs packet-level {packet:.4} \
         differs by {:.1}% (> {:.0}% tolerance)",
        rel * 100.0,
        TOL_REL * 100.0
    );
}

fn packet_job(
    name: &str,
    params: &[(&str, Json)],
    seed: u64,
) -> std::collections::BTreeMap<String, f64> {
    let def = jobs::find(name).unwrap_or_else(|| panic!("unknown scenario {name}"));
    let mut ctx = JobCtx::new(seed, true);
    ctx.digest = false;
    for (k, v) in params {
        ctx.params.insert((*k).to_string(), v.clone());
    }
    (def.run)(&ctx).metrics
}

fn flow_cfg() -> FlowSimConfig {
    FlowSimConfig::default()
}

#[test]
fn scenario_a_classes_match_the_packet_backend() {
    for alg in [Algorithm::Lia, Algorithm::Olia] {
        let m = packet_job("scenario_a", &[("algorithm", Json::from(alg.name()))], 11);
        let mut tc = scenario_a(10, 10, 1.0, 1.0, alg, flow_cfg());
        let (g1, g2) = measure_two_class(&mut tc, WARMUP, MEASURE, JITTER, 11);
        // Packet metrics are normalized by per-user capacity (c1 = c2 = 1).
        assert_close(&format!("A/{} type1_norm", alg.name()), g1, m["type1_norm"]);
        assert_close(&format!("A/{} type2_norm", alg.name()), g2, m["type2_norm"]);
    }
}

#[test]
fn scenario_b_classes_match_the_packet_backend() {
    for red_multipath in [false, true] {
        let m = packet_job(
            "scenario_b",
            &[
                ("algorithm", Json::from("lia")),
                ("red_multipath", Json::from(red_multipath)),
            ],
            11,
        );
        let mut tc = scenario_b(15, 15, red_multipath, Algorithm::Lia, flow_cfg());
        let (blue, red) = measure_two_class(&mut tc, WARMUP, MEASURE, JITTER, 11);
        let label = if red_multipath {
            "B/upgraded"
        } else {
            "B/baseline"
        };
        assert_close(&format!("{label} blue_mbps"), blue, m["blue_mbps"]);
        assert_close(&format!("{label} red_mbps"), red, m["red_mbps"]);
        assert_close(
            &format!("{label} aggregate_mbps"),
            15.0 * blue + 15.0 * red,
            m["aggregate_mbps"],
        );
    }
}

#[test]
fn scenario_c_classes_match_the_packet_backend() {
    for alg in [Algorithm::Lia, Algorithm::Olia] {
        let m = packet_job("scenario_c", &[("algorithm", Json::from(alg.name()))], 11);
        let mut tc = scenario_c(10, 10, 1.0, 1.0, alg, flow_cfg());
        let (g1, g2) = measure_two_class(&mut tc, WARMUP, MEASURE, JITTER, 11);
        assert_close(
            &format!("C/{} multipath_norm", alg.name()),
            g1,
            m["multipath_norm"],
        );
        assert_close(
            &format!("C/{} single_norm", alg.name()),
            g2,
            m["single_norm"],
        );
    }
}

/// k=8 FatTree permutation: aggregate throughput percentage must agree.
/// Heavier (a 4-second packet run over 128 hosts), so it is ignored in the
/// debug tier-1 pass and run in release by the ci.sh cross-validation gate.
#[test]
#[ignore = "release-mode cross-validation gate (ci.sh)"]
fn fattree_k8_throughput_matches_the_packet_backend() {
    for alg in [Algorithm::Lia, Algorithm::Olia] {
        let m = packet_job(
            "fattree_permutation",
            &[
                ("algorithm", Json::from(alg.name())),
                ("k", Json::from(8.0)),
                ("subflows", Json::from(4.0)),
                ("secs", Json::from(4.0)),
            ],
            11,
        );
        let r = fattree::permutation(
            8,
            alg,
            4,
            SimDuration::from_secs(4),
            11,
            &FlowFatTreeConfig::default(),
            flow_cfg(),
        );
        assert_close(
            &format!("fattree/{} throughput_pct", alg.name()),
            r.throughput_pct,
            m["throughput_pct"],
        );
    }
}

/// Flow-level double-run digest equality: the determinism witness the
/// acceptance criteria require, on both a scenario and the FatTree.
#[test]
fn flow_backend_is_digest_deterministic() {
    let run = || {
        fattree::permutation(
            4,
            Algorithm::Olia,
            2,
            SimDuration::from_secs(6),
            17,
            &FlowFatTreeConfig::default(),
            flow_cfg(),
        )
    };
    let a = run();
    let b = run();
    assert!(a.trace_events > 0, "digest saw no events");
    assert_eq!(
        a.digest, b.digest,
        "flow backend must be run-to-run identical"
    );
    assert_eq!(a.throughput_pct, b.throughput_pct);

    let churn = |seed| {
        fattree::heavytail_churn(
            &fattree::ChurnParams {
                k: 4,
                resident: 64,
                algorithm: Algorithm::Lia,
                subflows: 2,
                mean_gap: SimDuration::from_millis(400),
                horizon: SimDuration::from_secs(3),
                seed,
            },
            &FlowFatTreeConfig::default(),
            FlowSimConfig::large_scale(),
        )
    };
    let c1 = churn(5);
    let c2 = churn(5);
    assert_eq!(c1.digest, c2.digest, "churn run must be deterministic");
    let c3 = churn(6);
    assert_ne!(c1.digest, c3.digest, "different seed, different trace");
}

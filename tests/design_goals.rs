//! The three MPTCP design goals (RFC 6356, §I of the paper), checked on the
//! packet level for both LIA and OLIA — Corollary 2 says OLIA satisfies all
//! three.

use eventsim::{SimDuration, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, QueueId, Simulation};
use tcpsim::{Connection, ConnectionSpec, PathSpec};

fn red(sim: &mut Simulation, mbps: f64) -> QueueId {
    sim.add_queue(QueueConfig::red_paper(
        mbps * 1e6,
        SimDuration::from_millis(40),
    ))
}

fn rev(sim: &mut Simulation) -> QueueId {
    sim.add_queue(QueueConfig::drop_tail(
        1e9,
        SimDuration::from_millis(40),
        100_000,
    ))
}

fn measure(sim: &mut Simulation, conns: &[Connection], warm: f64, end: f64) {
    for c in conns {
        sim.start_endpoint_at(c.source, SimTime::ZERO);
    }
    sim.run_until(SimTime::from_secs_f64(warm));
    for c in conns {
        c.handle.reset(sim.now());
    }
    sim.run_until(SimTime::from_secs_f64(end));
}

/// Goal 1 (improve throughput): a multipath user across two bottlenecks,
/// each shared with TCP flows, performs at least as well as a TCP user on
/// the best path.
#[test]
fn goal1_improve_throughput() {
    for alg in [Algorithm::Lia, Algorithm::Olia] {
        // MPTCP run.
        let mut sim = Simulation::new(11);
        let l1 = red(&mut sim, 8.0);
        let l2 = red(&mut sim, 8.0);
        let rv = rev(&mut sim);
        let mptcp = ConnectionSpec::new(alg)
            .with_path(PathSpec::new(route(&[l1]), route(&[rv])))
            .with_path(PathSpec::new(route(&[l2]), route(&[rv])))
            .install(&mut sim, 0);
        let mut conns = vec![mptcp.clone()];
        for i in 0..3 {
            conns.push(
                ConnectionSpec::new(Algorithm::Reno)
                    .with_path(PathSpec::new(route(&[l1]), route(&[rv])))
                    .install(&mut sim, 1 + i),
            );
            conns.push(
                ConnectionSpec::new(Algorithm::Reno)
                    .with_path(PathSpec::new(route(&[l2]), route(&[rv])))
                    .install(&mut sim, 10 + i),
            );
        }
        measure(&mut sim, &conns, 25.0, 75.0);
        let mptcp_rate = mptcp.handle.goodput_mbps(sim.now());

        // Baseline: identical network, the multipath user replaced by one
        // TCP user on path 1.
        let mut sim2 = Simulation::new(11);
        let l1b = red(&mut sim2, 8.0);
        let l2b = red(&mut sim2, 8.0);
        let rvb = rev(&mut sim2);
        let tcp = ConnectionSpec::new(Algorithm::Reno)
            .with_path(PathSpec::new(route(&[l1b]), route(&[rvb])))
            .install(&mut sim2, 0);
        let mut conns2 = vec![tcp.clone()];
        for i in 0..3 {
            conns2.push(
                ConnectionSpec::new(Algorithm::Reno)
                    .with_path(PathSpec::new(route(&[l1b]), route(&[rvb])))
                    .install(&mut sim2, 1 + i),
            );
            conns2.push(
                ConnectionSpec::new(Algorithm::Reno)
                    .with_path(PathSpec::new(route(&[l2b]), route(&[rvb])))
                    .install(&mut sim2, 10 + i),
            );
        }
        measure(&mut sim2, &conns2, 25.0, 75.0);
        let tcp_rate = tcp.handle.goodput_mbps(sim2.now());

        assert!(
            mptcp_rate > 0.8 * tcp_rate,
            "{alg:?}: multipath {mptcp_rate:.2} Mb/s must be at least ~best-path \
             TCP {tcp_rate:.2} Mb/s"
        );
    }
}

/// Goal 2 (do no harm): both subflows through one bottleneck shared with
/// TCP flows — the multipath user must not take more than a TCP user would.
#[test]
fn goal2_do_no_harm() {
    for alg in [Algorithm::Lia, Algorithm::Olia] {
        let mut sim = Simulation::new(13);
        let l = red(&mut sim, 10.0);
        let rv = rev(&mut sim);
        let mptcp = ConnectionSpec::new(alg)
            .with_path(PathSpec::new(route(&[l]), route(&[rv])))
            .with_path(PathSpec::new(route(&[l]), route(&[rv])))
            .install(&mut sim, 0);
        let mut conns = vec![mptcp.clone()];
        let mut tcps = Vec::new();
        for i in 0..4 {
            let c = ConnectionSpec::new(Algorithm::Reno)
                .with_path(PathSpec::new(route(&[l]), route(&[rv])))
                .install(&mut sim, 1 + i);
            conns.push(c.clone());
            tcps.push(c);
        }
        measure(&mut sim, &conns, 25.0, 75.0);
        let mptcp_rate = mptcp.handle.goodput_mbps(sim.now());
        let tcp_mean = tcps
            .iter()
            .map(|c| c.handle.goodput_mbps(sim.now()))
            .sum::<f64>()
            / tcps.len() as f64;
        assert!(
            mptcp_rate < 1.35 * tcp_mean,
            "{alg:?}: multipath {mptcp_rate:.2} Mb/s must not beat a TCP share \
             {tcp_mean:.2} Mb/s at a shared bottleneck"
        );
    }
}

/// Goal 3 (balance congestion): OLIA moves traffic off the more-congested
/// path decisively; its loss probability at the hotter bottleneck stays
/// below LIA's.
#[test]
fn goal3_balance_congestion() {
    let run = |alg: Algorithm| {
        let mut sim = Simulation::new(17);
        let cool = red(&mut sim, 8.0);
        let hot = red(&mut sim, 8.0);
        let rv = rev(&mut sim);
        let mptcp = ConnectionSpec::new(alg)
            .with_path(PathSpec::new(route(&[cool]), route(&[rv])))
            .with_path(PathSpec::new(route(&[hot]), route(&[rv])))
            .install(&mut sim, 0);
        let mut conns = vec![mptcp.clone()];
        for i in 0..6 {
            conns.push(
                ConnectionSpec::new(Algorithm::Reno)
                    .with_path(PathSpec::new(route(&[hot]), route(&[rv])))
                    .install(&mut sim, 1 + i),
            );
        }
        measure(&mut sim, &conns, 25.0, 75.0);
        let hot_rate = mptcp.handle.subflow_mbps(1, sim.now());
        (sim.queue_stats(hot).loss_probability(), hot_rate)
    };
    let (p_lia, hot_lia) = run(Algorithm::Lia);
    let (p_olia, hot_olia) = run(Algorithm::Olia);
    // The discriminating signal: OLIA sends clearly less over the congested
    // path than LIA does.
    assert!(
        hot_olia < 0.8 * hot_lia,
        "OLIA's hot-path rate {hot_olia:.3} Mb/s must undercut LIA's {hot_lia:.3}"
    );
    // Loss probability is dominated by the 6 TCP flows, so allow noise, but
    // OLIA must not make congestion materially worse.
    assert!(
        p_olia <= 1.15 * p_lia,
        "OLIA must not congest the hot link materially more than LIA \
         ({p_olia} vs {p_lia})"
    );
}

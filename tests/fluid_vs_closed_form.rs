//! Cross-validation: the *general* fluid ODE (crate `fluid::ode`), built
//! from nothing but the scenario topology, must land on the same equilibria
//! as the paper's *closed-form* fixed points (Appendix A / §III-C).
//!
//! This closes the loop between three independent implementations of the
//! same mathematics: the closed forms, the fluid integrator, and (in
//! `tests/scenario_shapes.rs`) the packet-level simulator.

use fluid::ode::{
    FluidAlgorithm, FluidLink, FluidNetwork, FluidParams, FluidRoute, FluidUser, LossModel,
};
use fluid::units::mbps_to_mss;
use fluid::{scenario_a, scenario_c};

const RTT: f64 = 0.15;

/// A sharp loss model so capacity constraints bind tightly.
fn sharp() -> LossModel {
    LossModel {
        p_at_capacity: 0.02,
        exponent: 14.0,
    }
}

fn params() -> FluidParams {
    FluidParams {
        steps: 800_000,
        ..FluidParams::default()
    }
}

/// Scenario A's topology as a raw fluid network: link 0 = server (N1·C1),
/// link 1 = shared AP (N2·C2); type1 users ride [0] and [0,1]; type2 users
/// ride [1].
fn scenario_a_network(n1: usize, n2: usize, c1_mbps: f64, c2_mbps: f64) -> FluidNetwork {
    let mut users = Vec::new();
    for _ in 0..n1 {
        users.push(FluidUser {
            routes: vec![
                FluidRoute {
                    links: vec![0],
                    rtt: RTT,
                },
                FluidRoute {
                    links: vec![0, 1],
                    rtt: RTT,
                },
            ],
        });
    }
    for _ in 0..n2 {
        users.push(FluidUser {
            routes: vec![FluidRoute {
                links: vec![1],
                rtt: RTT,
            }],
        });
    }
    FluidNetwork {
        links: vec![
            FluidLink::with_capacity(mbps_to_mss(n1 as f64 * c1_mbps)),
            FluidLink::with_capacity(mbps_to_mss(n2 as f64 * c2_mbps)),
        ],
        users,
        loss: sharp(),
    }
}

#[test]
fn scenario_a_lia_fluid_matches_appendix_a() {
    let (n1, n2, c1, c2) = (20usize, 10usize, 1.0, 1.0);
    let net = scenario_a_network(n1, n2, c1, c2);
    let x0: Vec<Vec<f64>> = net
        .users
        .iter()
        .map(|u| vec![20.0; u.routes.len()])
        .collect();
    let x = net.equilibrium(FluidAlgorithm::Lia, &x0, &params());
    // Mean type2 rate, normalized by C2.
    let type2: f64 = (n1..n1 + n2).map(|u| x[u][0]).sum::<f64>() / n2 as f64;
    let type2_norm = type2 / mbps_to_mss(c2);
    let closed = scenario_a::lia(&scenario_a::ScenarioAInputs {
        n1: n1 as f64,
        n2: n2 as f64,
        c1_mbps: c1,
        c2_mbps: c2,
        rtt_s: RTT,
    });
    assert!(
        (type2_norm - closed.type2_norm).abs() < 0.12,
        "fluid {} vs closed form {}",
        type2_norm,
        closed.type2_norm
    );
    // Type1 users are pinned at C1 by the server link.
    let type1: f64 = (0..n1).map(|u| x[u][0] + x[u][1]).sum::<f64>() / n1 as f64;
    let type1_norm = type1 / mbps_to_mss(c1);
    assert!(
        (type1_norm - 1.0).abs() < 0.12,
        "type1 norm {type1_norm} should be ≈1"
    );
}

#[test]
fn scenario_a_olia_fluid_approaches_probing_optimum() {
    let (n1, n2, c1, c2) = (20usize, 10usize, 1.0, 1.0);
    let net = scenario_a_network(n1, n2, c1, c2);
    let x0: Vec<Vec<f64>> = net
        .users
        .iter()
        .map(|u| vec![20.0; u.routes.len()])
        .collect();
    let x = net.equilibrium(FluidAlgorithm::Olia, &x0, &params());
    let type2: f64 = (n1..n1 + n2).map(|u| x[u][0]).sum::<f64>() / n2 as f64;
    let type2_norm = type2 / mbps_to_mss(c2);
    let lia_closed = scenario_a::lia(&scenario_a::ScenarioAInputs {
        n1: n1 as f64,
        n2: n2 as f64,
        c1_mbps: c1,
        c2_mbps: c2,
        rtt_s: RTT,
    });
    // OLIA's fluid equilibrium leaves the shared AP almost entirely to the
    // type2 users — far above LIA's closed-form allocation (the fluid model
    // has no 1-MSS probing floor beyond x_min, so it can exceed even the
    // probing-cost optimum).
    assert!(
        type2_norm > lia_closed.type2_norm + 0.15,
        "fluid OLIA type2 {} must beat LIA's closed form {}",
        type2_norm,
        lia_closed.type2_norm
    );
}

/// Scenario C's topology: link 0 = AP1 (N1·C1), link 1 = AP2 (N2·C2).
#[test]
fn scenario_c_lia_fluid_matches_section_iii_c() {
    let (n1, n2, c1, c2) = (10usize, 10usize, 2.0, 1.0);
    let mut users = Vec::new();
    for _ in 0..n1 {
        users.push(FluidUser {
            routes: vec![
                FluidRoute {
                    links: vec![0],
                    rtt: RTT,
                },
                FluidRoute {
                    links: vec![1],
                    rtt: RTT,
                },
            ],
        });
    }
    for _ in 0..n2 {
        users.push(FluidUser {
            routes: vec![FluidRoute {
                links: vec![1],
                rtt: RTT,
            }],
        });
    }
    let net = FluidNetwork {
        links: vec![
            FluidLink::with_capacity(mbps_to_mss(n1 as f64 * c1)),
            FluidLink::with_capacity(mbps_to_mss(n2 as f64 * c2)),
        ],
        users,
        loss: sharp(),
    };
    let x0: Vec<Vec<f64>> = net
        .users
        .iter()
        .map(|u| vec![20.0; u.routes.len()])
        .collect();
    let x = net.equilibrium(FluidAlgorithm::Lia, &x0, &params());
    let single: f64 = (n1..n1 + n2).map(|u| x[u][0]).sum::<f64>() / n2 as f64;
    let single_norm = single / mbps_to_mss(c2);
    let closed = scenario_c::lia(&scenario_c::ScenarioCInputs {
        n1: n1 as f64,
        n2: n2 as f64,
        c1_mbps: c1,
        c2_mbps: c2,
        rtt_s: RTT,
    });
    assert!(
        (single_norm - closed.single_norm).abs() < 0.12,
        "fluid {} vs closed form {}",
        single_norm,
        closed.single_norm
    );
}

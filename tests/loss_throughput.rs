//! Cross-validation of the packet-level simulator against the loss-throughput
//! formulas the paper's analysis rests on (§II, Eq. 2).
//!
//! The `√(2/p)` law assumes independent per-packet losses, so the formula
//! checks run over Bernoulli-loss links where `p` is pinned exactly; the
//! behavioural comparison (OLIA vs LIA congestion shifting) runs over the
//! paper's RED queues.

use eventsim::{SimDuration, SimTime};
use mpsim_core::formulas::{self, PathChar};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, Simulation};
use tcpsim::{ConnectionSpec, PathSpec};

/// One Reno flow through a link with pinned loss probability: measured
/// goodput must match `√(2/p)/rtt`.
#[test]
fn tcp_throughput_matches_formula() {
    let p = 0.004;
    let mut sim = Simulation::new(3);
    // Capacity far above the formula rate so queueing is negligible and the
    // RTT is the propagation RTT.
    let fwd = sim.add_queue(QueueConfig::bernoulli(
        1e9,
        SimDuration::from_millis(40),
        p,
        100_000,
    ));
    let rev = sim.add_queue(QueueConfig::drop_tail(
        1e9,
        SimDuration::from_millis(40),
        100_000,
    ));
    let conn = ConnectionSpec::new(Algorithm::Reno)
        .with_path(PathSpec::new(route(&[fwd]), route(&[rev])))
        .install(&mut sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);
    sim.run_until(SimTime::from_secs_f64(30.0));
    conn.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(150.0));

    let srtt = conn.handle.read(|s| s.subflows[0].srtt);
    let formula_mbps = formulas::tcp_rate(p, srtt) * 1500.0 * 8.0 / 1e6;
    let measured = conn.handle.goodput_mbps(sim.now());
    let err = (measured - formula_mbps).abs() / formula_mbps;
    assert!(
        err < 0.25,
        "measured {measured} Mb/s vs formula {formula_mbps} Mb/s (p={p}, srtt={srtt})"
    );
}

/// A two-path LIA connection over pinned-loss links: the rate split and the
/// total must follow Eq. 2.
#[test]
fn lia_split_follows_eq2() {
    let (p0, p1) = (0.004, 0.016);
    let mut sim = Simulation::new(5);
    let f0 = sim.add_queue(QueueConfig::bernoulli(
        1e9,
        SimDuration::from_millis(40),
        p0,
        100_000,
    ));
    let f1 = sim.add_queue(QueueConfig::bernoulli(
        1e9,
        SimDuration::from_millis(40),
        p1,
        100_000,
    ));
    let rev = sim.add_queue(QueueConfig::drop_tail(
        1e9,
        SimDuration::from_millis(40),
        100_000,
    ));
    let mptcp = ConnectionSpec::new(Algorithm::Lia)
        .with_path(PathSpec::new(route(&[f0]), route(&[rev])))
        .with_path(PathSpec::new(route(&[f1]), route(&[rev])))
        .install(&mut sim, 0);
    sim.start_endpoint_at(mptcp.source, SimTime::ZERO);
    sim.run_until(SimTime::from_secs_f64(30.0));
    mptcp.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(180.0));

    let rtt = conn_rtt(&mptcp);
    let expect = formulas::lia_rates(&[PathChar::new(p0, rtt), PathChar::new(p1, rtt)]);
    let r0 = mptcp.handle.subflow_mbps(0, sim.now()) * 1e6 / 12_000.0; // MSS/s
    let r1 = mptcp.handle.subflow_mbps(1, sim.now()) * 1e6 / 12_000.0;
    // The split follows w ∝ 1/p (ratio 4), within simulation noise.
    let observed_ratio = r0 / r1;
    let predicted_ratio = expect[0] / expect[1];
    assert!(
        (observed_ratio.ln() - predicted_ratio.ln()).abs() < 0.5,
        "split {observed_ratio:.2} vs Eq. 2's {predicted_ratio:.2}"
    );
    // Total within 30% of the best path's TCP rate.
    let total = r0 + r1;
    let expect_total: f64 = expect.iter().sum();
    assert!(
        (total - expect_total).abs() < 0.3 * expect_total,
        "total {total:.1} vs Eq. 2's {expect_total:.1} MSS/s"
    );
}

fn conn_rtt(conn: &tcpsim::Connection) -> f64 {
    conn.handle
        .read(|s| s.subflows.iter().map(|f| f.srtt).sum::<f64>() / s.subflows.len() as f64)
}

/// OLIA over the same pinned-loss pair puts (nearly) everything on the
/// better path — Theorem 1 at packet level.
#[test]
fn olia_concentrates_on_best_path() {
    let (p0, p1) = (0.004, 0.016);
    let mut sim = Simulation::new(7);
    let f0 = sim.add_queue(QueueConfig::bernoulli(
        1e9,
        SimDuration::from_millis(40),
        p0,
        100_000,
    ));
    let f1 = sim.add_queue(QueueConfig::bernoulli(
        1e9,
        SimDuration::from_millis(40),
        p1,
        100_000,
    ));
    let rev = sim.add_queue(QueueConfig::drop_tail(
        1e9,
        SimDuration::from_millis(40),
        100_000,
    ));
    let olia = ConnectionSpec::new(Algorithm::Olia)
        .with_path(PathSpec::new(route(&[f0]), route(&[rev])))
        .with_path(PathSpec::new(route(&[f1]), route(&[rev])))
        .install(&mut sim, 0);
    sim.start_endpoint_at(olia.source, SimTime::ZERO);
    sim.run_until(SimTime::from_secs_f64(30.0));
    olia.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(180.0));
    let r0 = olia.handle.subflow_mbps(0, sim.now());
    let r1 = olia.handle.subflow_mbps(1, sim.now());
    let share_bad = r1 / (r0 + r1);
    // Eq. 2 would give LIA a bad-path share of p0/(p0+p1) = 20%; OLIA's
    // equilibrium (Theorem 1) is the probing floor (~5%), with the α-term's
    // brief probe episodes (§IV-C) keeping the long-run average somewhat
    // above it.
    assert!(
        share_bad < 0.16,
        "OLIA must concentrate on the better path (bad-path share {share_bad:.3})"
    );
}

/// OLIA shifts harder off a congested RED path than LIA (behavioural
/// comparison over the paper's queues).
#[test]
fn olia_shifts_harder_than_lia() {
    let run = |alg: Algorithm| {
        let mut sim = Simulation::new(7);
        let f0 = sim.add_queue(QueueConfig::red_paper(4e6, SimDuration::from_millis(40)));
        let f1 = sim.add_queue(QueueConfig::red_paper(4e6, SimDuration::from_millis(40)));
        let rev = sim.add_queue(QueueConfig::drop_tail(
            1e9,
            SimDuration::from_millis(40),
            100_000,
        ));
        let mptcp = ConnectionSpec::new(alg)
            .with_path(PathSpec::new(route(&[f0]), route(&[rev])))
            .with_path(PathSpec::new(route(&[f1]), route(&[rev])))
            .install(&mut sim, 0);
        let mut all = vec![mptcp.clone()];
        for i in 0..3 {
            all.push(
                ConnectionSpec::new(Algorithm::Reno)
                    .with_path(PathSpec::new(route(&[f1]), route(&[rev])))
                    .install(&mut sim, 1 + i),
            );
        }
        for c in &all {
            sim.start_endpoint_at(c.source, SimTime::ZERO);
        }
        sim.run_until(SimTime::from_secs_f64(30.0));
        mptcp.handle.reset(sim.now());
        sim.run_until(SimTime::from_secs_f64(90.0));
        let r0 = mptcp.handle.subflow_mbps(0, sim.now());
        let r1 = mptcp.handle.subflow_mbps(1, sim.now());
        r1 / (r0 + r1)
    };
    let lia_congested_share = run(Algorithm::Lia);
    let olia_congested_share = run(Algorithm::Olia);
    assert!(
        olia_congested_share < lia_congested_share,
        "OLIA's congested-path share ({olia_congested_share:.3}) must undercut \
         LIA's ({lia_congested_share:.3})"
    );
}

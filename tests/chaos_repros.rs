//! Regression fixtures from chaos-search campaigns.
//!
//! Every file under `tests/fixtures/chaos/` is a minimal repro the fuzzer
//! once shrank from a real invariant violation (here: a `reprobe_max`
//! raised past the paper's 8 s cap, planted to validate the search). The
//! fixtures are replayed on every test run:
//!
//! * on the fixed tree each case must be **green** — zero oracle
//!   violations — and byte-deterministic (two replays, identical digests);
//! * with the original bug re-injected each case must still **reproduce**
//!   the violation it was shrunk from, proving the fixture has not rotted
//!   into a vacuous pass.
//!
//! Add new fixtures with `chaos campaign ... --out results/chaos` and copy
//! the shrunk `repro_*.json` here under a name describing the bug.

use std::path::PathBuf;

use chaos::{run_case, run_case_with, ChaosCase};
use eventsim::SimDuration;
use tcpsim::TcpConfig;

fn fixtures() -> Vec<(String, ChaosCase)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("chaos");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "no chaos fixtures found in {}",
        dir.display()
    );
    entries
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            let doc =
                bench::json::parse(&text).unwrap_or_else(|e| panic!("{name}: invalid JSON: {e}"));
            let case = ChaosCase::from_json(&doc).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name, case)
        })
        .collect()
}

#[test]
fn fixtures_replay_green_and_deterministic_on_the_fixed_tree() {
    for (name, case) in fixtures() {
        let first = run_case(&case);
        assert!(
            first.ok(),
            "{name}: regression fixture violates on the fixed tree: {:?}",
            first.violations
        );
        assert!(first.delivered > 0, "{name}: replay moved no traffic");
        let second = run_case(&case);
        assert_eq!(
            first.digest, second.digest,
            "{name}: replay is not byte-deterministic"
        );
    }
}

#[test]
fn fixtures_still_reproduce_their_original_bug() {
    // All current fixtures were shrunk from the planted re-probe-cap bug
    // (reprobe_max = 16 s vs the 8 s spec the oracle pins).
    let buggy = TcpConfig {
        reprobe_max: SimDuration::from_secs(16),
        ..TcpConfig::default()
    };
    for (name, case) in fixtures() {
        assert!(
            name.starts_with("reprobe_cap_"),
            "{name}: new fixture family — teach this test its bug injection"
        );
        let v = run_case_with(&case, buggy);
        assert_eq!(
            v.category(),
            Some("re-probe backoff exceeds cap"),
            "{name}: fixture no longer reproduces under the re-injected bug: {:?}",
            v.violations
        );
        // Reproduction is itself deterministic.
        assert_eq!(v.digest, run_case_with(&case, buggy).digest, "{name}");
    }
}

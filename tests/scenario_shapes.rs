//! End-to-end shape tests: the paper's headline comparisons hold in
//! CI-scale packet-level runs of the actual scenario topologies.

use bench::{scenario_a, scenario_c, RunCfg};
use mpsim_core::Algorithm;
use topo::{ScenarioAParams, ScenarioCParams};

fn cfg() -> RunCfg {
    RunCfg {
        warmup_s: 15.0,
        measure_s: 20.0,
        jitter_s: 2.0,
        replications: 1,
        seed: 21,
    }
}

/// Problem P1 in Scenario A: LIA hurts type2 users; OLIA recovers most of
/// the loss and reduces p2.
#[test]
fn scenario_a_olia_recovers_type2() {
    let lia = scenario_a::measure(&ScenarioAParams::paper(20, 1.0, Algorithm::Lia), &cfg());
    let olia = scenario_a::measure(&ScenarioAParams::paper(20, 1.0, Algorithm::Olia), &cfg());
    assert!(
        olia.type2_norm.mean > lia.type2_norm.mean + 0.03,
        "OLIA type2 {} must clearly beat LIA {}",
        olia.type2_norm.mean,
        lia.type2_norm.mean
    );
    assert!(
        olia.p2.mean < lia.p2.mean,
        "OLIA must reduce shared-AP congestion ({} vs {})",
        olia.p2.mean,
        lia.p2.mean
    );
    // No cost to type1 (both capped by the server).
    assert!((olia.type1_norm.mean - lia.type1_norm.mean).abs() < 0.1);
}

/// Problem P2 in Scenario C: with C1/C2 = 2 a fair multipath user should
/// leave AP2 alone; OLIA's single-path users do clearly better than LIA's.
#[test]
fn scenario_c_olia_less_aggressive() {
    let lia = scenario_c::measure(&ScenarioCParams::paper(20, 2.0, Algorithm::Lia), &cfg());
    let olia = scenario_c::measure(&ScenarioCParams::paper(20, 2.0, Algorithm::Olia), &cfg());
    assert!(
        olia.single_norm.mean > lia.single_norm.mean + 0.03,
        "OLIA single-path {} must clearly beat LIA {}",
        olia.single_norm.mean,
        lia.single_norm.mean
    );
    assert!(olia.p2.mean < lia.p2.mean);
}

/// The measured LIA scenario A point sits near its fixed-point prediction.
#[test]
fn scenario_a_matches_theory() {
    let m = scenario_a::measure(&ScenarioAParams::paper(20, 1.0, Algorithm::Lia), &cfg());
    let th = fluid::scenario_a::lia(&fluid::scenario_a::ScenarioAInputs::paper(2.0, 1.0));
    assert!(
        (m.type2_norm.mean - th.type2_norm).abs() < 0.15,
        "sim {} vs theory {}",
        m.type2_norm.mean,
        th.type2_norm
    );
    assert!(
        (m.p2.mean - th.p2).abs() < 0.6 * th.p2,
        "p2 sim {} vs theory {}",
        m.p2.mean,
        th.p2
    );
}

/// Uncoupled subflows are the most aggressive against TCP users — the ε = 2
/// end of the spectrum (§II).
#[test]
fn uncoupled_is_most_aggressive() {
    let unc = scenario_c::measure(
        &ScenarioCParams::paper(10, 2.0, Algorithm::Uncoupled),
        &cfg(),
    );
    let olia = scenario_c::measure(&ScenarioCParams::paper(10, 2.0, Algorithm::Olia), &cfg());
    assert!(
        unc.single_norm.mean < olia.single_norm.mean,
        "uncoupled must squeeze TCP users harder than OLIA ({} vs {})",
        unc.single_norm.mean,
        olia.single_norm.mean
    );
}

//! Robustness: the multi-homing motivation of Scenario B ("Blue users use
//! multi-homing ... to increase their reliability"). When one path dies,
//! a multipath connection must keep delivering over the other; a
//! single-path connection stalls.

use eventsim::{SimDuration, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, FaultPlan, QueueConfig, QueueId, Simulation};
use tcpsim::{Connection, ConnectionSpec, PathHealth, PathSpec};

fn link(sim: &mut Simulation) -> (QueueId, QueueId) {
    (
        sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40))),
        sim.add_queue(QueueConfig::drop_tail(
            10e9,
            SimDuration::from_millis(40),
            100_000,
        )),
    )
}

fn setup(alg: Algorithm, two_paths: bool) -> (Simulation, Connection, QueueId) {
    let mut sim = Simulation::new(19);
    let (f1, r1) = link(&mut sim);
    let (f2, r2) = link(&mut sim);
    let mut spec = ConnectionSpec::new(alg).with_path(PathSpec::new(route(&[f1]), route(&[r1])));
    if two_paths {
        spec = spec.with_path(PathSpec::new(route(&[f2]), route(&[r2])));
    }
    let conn = spec.install(&mut sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);
    (sim, conn, f1)
}

#[test]
fn multipath_survives_path_failure() {
    for alg in [Algorithm::Olia, Algorithm::Lia] {
        let (mut sim, conn, f1) = setup(alg, true);
        sim.run_until(SimTime::from_secs_f64(20.0));
        // Kill path 1.
        sim.set_queue_down(f1, true);
        assert!(sim.queue_is_down(f1));
        // Give the connection a grace period to detect the failure (RTO
        // backoff), then measure.
        sim.run_until(SimTime::from_secs_f64(30.0));
        conn.handle.reset(sim.now());
        sim.run_until(SimTime::from_secs_f64(60.0));
        let goodput = conn.handle.goodput_mbps(sim.now());
        assert!(
            goodput > 3.0,
            "{alg:?}: multipath must keep delivering after a path failure, \
             got {goodput:.2} Mb/s"
        );
        // The surviving subflow carries everything.
        let p1_rate = conn.handle.subflow_mbps(0, sim.now());
        assert!(
            p1_rate < 0.05,
            "{alg:?}: dead path must carry ~nothing, got {p1_rate:.3} Mb/s"
        );
    }
}

#[test]
fn single_path_stalls_on_failure() {
    let (mut sim, conn, f1) = setup(Algorithm::Reno, false);
    sim.run_until(SimTime::from_secs_f64(20.0));
    sim.set_queue_down(f1, true);
    sim.run_until(SimTime::from_secs_f64(30.0));
    conn.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(60.0));
    assert_eq!(
        conn.handle.goodput_mbps(sim.now()),
        0.0,
        "a single-path flow has nowhere to go"
    );
}

/// The PR's acceptance scenario: a scripted outage on path 0 from t=20 s to
/// t=40 s. The path manager must (a) keep multipath goodput above 3 Mb/s
/// throughout, (b) carry ~nothing on the failed subflow during the outage,
/// and (c) re-probe the restored subflow back into service within 10 s.
#[test]
fn fault_plan_outage_is_detected_and_reprobed_within_bound() {
    for alg in [Algorithm::Olia, Algorithm::Lia] {
        let (mut sim, conn, f1) = setup(alg, true);
        sim.install_fault_plan(FaultPlan::new().down_between(
            f1,
            SimTime::from_secs_f64(20.0),
            SimTime::from_secs_f64(40.0),
        ));

        // Before the outage: both paths deliver.
        sim.run_until(SimTime::from_secs_f64(20.0));
        let pre = conn.handle.goodput_mbps(sim.now());
        assert!(pre > 3.0, "{alg:?}: pre-outage goodput {pre:.2} Mb/s");

        // Transition window: even while packets buffered before the outage
        // drain and the RTOs stack up, the survivor keeps goodput up.
        conn.handle.reset(sim.now());
        sim.run_until(SimTime::from_secs_f64(25.0));
        let transition = conn.handle.goodput_mbps(sim.now());
        assert!(
            transition > 3.0,
            "{alg:?}: goodput at outage onset {transition:.2} Mb/s"
        );

        // Steady outage window: the dead subflow carries ~nothing.
        conn.handle.reset(sim.now());
        sim.run_until(SimTime::from_secs_f64(39.0));
        let during = conn.handle.goodput_mbps(sim.now());
        assert!(
            during > 3.0,
            "{alg:?}: goodput during outage {during:.2} Mb/s"
        );
        let dead = conn.handle.subflow_mbps(0, sim.now());
        assert!(
            dead < 0.05,
            "{alg:?}: dead subflow must carry ~nothing, got {dead:.3} Mb/s"
        );
        // The path manager noticed: subflow 0 was declared Failed and is
        // being re-probed on the capped-backoff schedule.
        assert_eq!(conn.handle.path_health(0), PathHealth::Failed, "{alg:?}");
        let (failures, reprobes) = conn.handle.failure_counts(0);
        assert!(failures >= 1, "{alg:?}: no Failed transition recorded");
        assert!(reprobes >= 1, "{alg:?}: no re-probe sent during outage");

        // After restoration: a probe gets through, the subflow rejoins, and
        // it does so within 10 s of the link coming back.
        sim.run_until(SimTime::from_secs_f64(50.0));
        let recovered = conn
            .handle
            .last_recovered_at(0)
            .unwrap_or_else(|| panic!("{alg:?}: subflow 0 never recovered"));
        let lag = recovered.saturating_since(SimTime::from_secs_f64(40.0));
        assert!(
            lag <= SimDuration::from_secs(10),
            "{alg:?}: recovery took {} after restoration",
            lag
        );
        assert_eq!(conn.handle.path_health(0), PathHealth::Active, "{alg:?}");

        // ... and the restored subflow carries real traffic again.
        conn.handle.reset(sim.now());
        sim.run_until(SimTime::from_secs_f64(60.0));
        let restored = conn.handle.subflow_mbps(0, sim.now());
        assert!(
            restored > 1.0,
            "{alg:?}: restored subflow must carry traffic, got {restored:.3} Mb/s"
        );
        let total = conn.handle.goodput_mbps(sim.now());
        assert!(total > 3.0, "{alg:?}: post-restore goodput {total:.2} Mb/s");
    }
}

/// Total blackout: BOTH subflows go down at once (t=20 s to t=35 s), so for
/// 15 s the connection has nowhere to send. The path manager must declare
/// both Failed, keep re-probing both on the capped schedule, rejoin both to
/// the coupled controller once the world returns, and resume real goodput —
/// without panicking, for LIA and OLIA.
#[test]
fn total_blackout_recovery_rejoins_both_subflows() {
    for alg in [Algorithm::Olia, Algorithm::Lia] {
        let mut sim = Simulation::new(19);
        let (f1, r1) = link(&mut sim);
        let (f2, r2) = link(&mut sim);
        let conn = ConnectionSpec::new(alg)
            .with_path(PathSpec::new(route(&[f1]), route(&[r1])))
            .with_path(PathSpec::new(route(&[f2]), route(&[r2])))
            .install(&mut sim, 0);
        sim.start_endpoint_at(conn.source, SimTime::ZERO);
        let from = SimTime::from_secs_f64(20.0);
        let to = SimTime::from_secs_f64(35.0);
        sim.install_fault_plan(
            FaultPlan::new()
                .down_between(f1, from, to)
                .down_between(f2, from, to),
        );

        sim.run_until(from);
        let pre = conn.handle.goodput_mbps(sim.now());
        assert!(pre > 3.0, "{alg:?}: pre-blackout goodput {pre:.2} Mb/s");

        // Deep inside the blackout: both subflows declared Failed, both
        // being re-probed, and (measured over the silent stretch) nothing
        // delivered.
        sim.run_until(SimTime::from_secs_f64(30.0));
        conn.handle.reset(sim.now());
        sim.run_until(SimTime::from_secs_f64(34.0));
        for p in [0, 1] {
            assert_eq!(
                conn.handle.path_health(p),
                PathHealth::Failed,
                "{alg:?}: subflow {p} not declared Failed"
            );
            let (failures, reprobes) = conn.handle.failure_counts(p);
            assert!(failures >= 1, "{alg:?}: subflow {p} recorded no failure");
            assert!(reprobes >= 1, "{alg:?}: subflow {p} not being re-probed");
        }
        assert_eq!(
            conn.handle.goodput_mbps(sim.now()),
            0.0,
            "{alg:?}: a total blackout must deliver nothing"
        );

        // Restoration: the ≤8 s probe cap bounds rediscovery, so both
        // subflows must rejoin within 10 s of the links returning.
        sim.run_until(SimTime::from_secs_f64(45.0));
        for p in [0, 1] {
            let recovered = conn
                .handle
                .last_recovered_at(p)
                .unwrap_or_else(|| panic!("{alg:?}: subflow {p} never recovered"));
            let lag = recovered.saturating_since(to);
            assert!(
                lag <= SimDuration::from_secs(10),
                "{alg:?}: subflow {p} took {lag} to rejoin after restoration"
            );
            assert_eq!(conn.handle.path_health(p), PathHealth::Active, "{alg:?}");
        }

        // Both rejoined the coupled controller and carry real traffic.
        conn.handle.reset(sim.now());
        sim.run_until(SimTime::from_secs_f64(70.0));
        let total = conn.handle.goodput_mbps(sim.now());
        assert!(
            total > 3.0,
            "{alg:?}: post-blackout goodput {total:.2} Mb/s"
        );
        for p in [0, 1] {
            let rate = conn.handle.subflow_mbps(p, sim.now());
            assert!(
                rate > 0.5,
                "{alg:?}: subflow {p} must carry traffic after rejoining, \
                 got {rate:.3} Mb/s"
            );
        }
    }
}

#[test]
fn failed_path_recovers_when_restored() {
    let (mut sim, conn, f1) = setup(Algorithm::Olia, true);
    sim.run_until(SimTime::from_secs_f64(20.0));
    sim.set_queue_down(f1, true);
    sim.run_until(SimTime::from_secs_f64(50.0));
    // Restore. The path manager's capped re-probe schedule (≤8 s between
    // probes) rediscovers the path quickly — no multi-minute RTO backoff.
    sim.set_queue_down(f1, false);
    sim.run_until(SimTime::from_secs_f64(60.0));
    conn.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(90.0));
    let p1_rate = conn.handle.subflow_mbps(0, sim.now());
    assert!(
        p1_rate > 1.0,
        "restored path must carry traffic again, got {p1_rate:.3} Mb/s"
    );
}

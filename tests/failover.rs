//! Robustness: the multi-homing motivation of Scenario B ("Blue users use
//! multi-homing ... to increase their reliability"). When one path dies,
//! a multipath connection must keep delivering over the other; a
//! single-path connection stalls.

use eventsim::{SimDuration, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, QueueId, Simulation};
use tcpsim::{Connection, ConnectionSpec, PathSpec};

fn link(sim: &mut Simulation) -> (QueueId, QueueId) {
    (
        sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40))),
        sim.add_queue(QueueConfig::drop_tail(
            10e9,
            SimDuration::from_millis(40),
            100_000,
        )),
    )
}

fn setup(alg: Algorithm, two_paths: bool) -> (Simulation, Connection, QueueId) {
    let mut sim = Simulation::new(19);
    let (f1, r1) = link(&mut sim);
    let (f2, r2) = link(&mut sim);
    let mut spec = ConnectionSpec::new(alg).with_path(PathSpec::new(route(&[f1]), route(&[r1])));
    if two_paths {
        spec = spec.with_path(PathSpec::new(route(&[f2]), route(&[r2])));
    }
    let conn = spec.install(&mut sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);
    (sim, conn, f1)
}

#[test]
fn multipath_survives_path_failure() {
    for alg in [Algorithm::Olia, Algorithm::Lia] {
        let (mut sim, conn, f1) = setup(alg, true);
        sim.run_until(SimTime::from_secs_f64(20.0));
        // Kill path 1.
        sim.set_queue_down(f1, true);
        assert!(sim.queue_is_down(f1));
        // Give the connection a grace period to detect the failure (RTO
        // backoff), then measure.
        sim.run_until(SimTime::from_secs_f64(30.0));
        conn.handle.reset(sim.now());
        sim.run_until(SimTime::from_secs_f64(60.0));
        let goodput = conn.handle.goodput_mbps(sim.now());
        assert!(
            goodput > 3.0,
            "{alg:?}: multipath must keep delivering after a path failure, \
             got {goodput:.2} Mb/s"
        );
        // The surviving subflow carries everything.
        let p1_rate = conn.handle.subflow_mbps(0, sim.now());
        assert!(
            p1_rate < 0.05,
            "{alg:?}: dead path must carry ~nothing, got {p1_rate:.3} Mb/s"
        );
    }
}

#[test]
fn single_path_stalls_on_failure() {
    let (mut sim, conn, f1) = setup(Algorithm::Reno, false);
    sim.run_until(SimTime::from_secs_f64(20.0));
    sim.set_queue_down(f1, true);
    sim.run_until(SimTime::from_secs_f64(30.0));
    conn.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(60.0));
    assert_eq!(
        conn.handle.goodput_mbps(sim.now()),
        0.0,
        "a single-path flow has nowhere to go"
    );
}

#[test]
fn failed_path_recovers_when_restored() {
    let (mut sim, conn, f1) = setup(Algorithm::Olia, true);
    sim.run_until(SimTime::from_secs_f64(20.0));
    sim.set_queue_down(f1, true);
    sim.run_until(SimTime::from_secs_f64(50.0));
    // Restore and let RTO backoff expire (it can reach tens of seconds).
    sim.set_queue_down(f1, false);
    sim.run_until(SimTime::from_secs_f64(160.0));
    conn.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(220.0));
    let p1_rate = conn.handle.subflow_mbps(0, sim.now());
    assert!(
        p1_rate > 1.0,
        "restored path must carry traffic again, got {p1_rate:.3} Mb/s"
    );
}

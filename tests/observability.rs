//! Observability end-to-end: trace determinism, trace-driven invariant
//! checking on live runs, and run-report schema round-trips.

use std::cell::RefCell;
use std::rc::Rc;

use eventsim::{SimDuration, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, FaultAction, FaultPlan, QueueConfig, Simulation};
use tcpsim::{Connection, ConnectionSpec, PathSpec};
use trace::{Digest64, InvariantChecker, JsonlSink, RingSink, TraceFilter, Tracer};

/// A two-path OLIA connection over RED bottlenecks with a mid-run outage
/// and loss burst — exercises enqueue/dequeue/drop, cwnd, RTO, subflow
/// state, fault, and delivery events.
fn build(sim: &mut Simulation) -> Connection {
    let mk = |sim: &mut Simulation| {
        (
            sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40))),
            sim.add_queue(QueueConfig::drop_tail(
                10e9,
                SimDuration::from_millis(40),
                100_000,
            )),
        )
    };
    let (f1, r1) = mk(sim);
    let (f2, r2) = mk(sim);
    let conn = ConnectionSpec::new(Algorithm::Olia)
        .with_path(PathSpec::new(route(&[f1]), route(&[r1])))
        .with_path(PathSpec::new(route(&[f2]), route(&[r2])))
        .install(sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);
    sim.install_fault_plan(
        FaultPlan::new()
            .down_between(f1, SimTime::from_secs_f64(3.0), SimTime::from_secs_f64(5.0))
            .at(
                SimTime::from_secs_f64(6.0),
                FaultAction::LossBurst {
                    queue: f2,
                    p: 0.05,
                    duration: SimDuration::from_secs(1),
                },
            ),
    );
    conn
}

/// Run the scenario with a JSONL sink attached and return the FNV digest of
/// the serialized trace plus the line count.
fn trace_digest(seed: u64) -> (u64, u64) {
    let mut sim = Simulation::new(seed);
    let (tracer, sink) = Tracer::to_sink(JsonlSink::new(Vec::new()));
    sim.set_tracer(tracer);
    let _conn = build(&mut sim);
    sim.run_until(SimTime::from_secs_f64(8.0));
    drop(sim); // release the simulator's handle on the sink
    let jsonl = Rc::try_unwrap(sink)
        .expect("sink uniquely owned")
        .into_inner();
    let lines = jsonl.lines();
    let bytes = jsonl.into_inner();
    (Digest64::of(&bytes), lines)
}

#[test]
fn same_seed_gives_byte_identical_jsonl_trace() {
    let (a, lines_a) = trace_digest(11);
    let (b, lines_b) = trace_digest(11);
    assert_eq!(a, b, "same seed must serialize to identical bytes");
    assert_eq!(lines_a, lines_b);
    assert!(lines_a > 1_000, "trace suspiciously small: {lines_a} lines");
}

#[test]
fn different_seed_gives_different_trace() {
    let (a, _) = trace_digest(11);
    let (b, _) = trace_digest(12);
    assert_ne!(a, b, "RED randomness must show up in the trace");
}

#[test]
fn invariants_hold_on_a_live_faulted_run() {
    let mut sim = Simulation::new(7);
    let (tracer, checker) = Tracer::to_sink(InvariantChecker::new(1.0));
    sim.set_tracer(tracer);
    let conn = build(&mut sim);
    sim.run_until(SimTime::from_secs_f64(8.0));
    assert!(
        conn.handle.read(|st| st.delivered_packets) > 0,
        "scenario produced no traffic"
    );
    let checker = checker.borrow();
    assert!(checker.events_seen() > 1_000);
    assert!(checker.ok(), "violations: {:?}", checker.violations());
}

#[test]
fn ring_replay_through_checker_matches_live_checking() {
    let mut sim = Simulation::new(7);
    let (tracer, ring) = Tracer::to_sink(RingSink::new(usize::MAX >> 1));
    sim.set_tracer(tracer);
    let _conn = build(&mut sim);
    sim.run_until(SimTime::from_secs_f64(4.0));
    let ring = ring.borrow();
    assert_eq!(ring.evicted(), 0, "ring must have kept the whole run");
    let replayed = InvariantChecker::new(1.0).check_all(ring.events());
    assert!(replayed.ok(), "violations: {:?}", replayed.violations());
    assert_eq!(replayed.events_seen(), ring.recorded());
}

#[test]
fn conn_filter_restricts_trace_to_one_connection() {
    let mut sim = Simulation::new(9);
    let sink = Rc::new(RefCell::new(RingSink::new(usize::MAX >> 1)));
    sim.set_tracer(Tracer::enabled(sink.clone()).with_filter(TraceFilter::all().conns(&[1])));
    let q = sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40)));
    let rev = sim.add_queue(QueueConfig::drop_tail(
        10e9,
        SimDuration::from_millis(40),
        100_000,
    ));
    for tag in 0..3u64 {
        let c = ConnectionSpec::new(Algorithm::Reno)
            .with_path(PathSpec::new(route(&[q]), route(&[rev])))
            .install(&mut sim, tag);
        sim.start_endpoint_at(c.source, SimTime::ZERO);
    }
    sim.run_until(SimTime::from_secs_f64(2.0));
    let ring = sink.borrow();
    assert!(ring.recorded() > 0, "filtered trace is empty");
    for (_, ev) in ring.events() {
        if let Some(conn) = ev.conn() {
            assert_eq!(conn, 1, "foreign connection leaked through: {ev:?}");
        }
    }
}

#[test]
fn run_reports_round_trip_through_the_validator() {
    use bench::json::parse;
    use bench::report::{validate, RunReport};
    use bench::table::Table;

    let mut sim = Simulation::new(3);
    let mut report = RunReport::start("observability_integration");
    report.param("seed", 3u64);
    let conn = build(&mut sim);
    sim.run_until(SimTime::from_secs_f64(2.0));
    report.metric(
        "delivered_packets",
        conn.handle.read(|st| st.delivered_packets) as f64,
    );
    let mut t = Table::new("goodput", &["conn", "Mb/s"]);
    t.row(&[
        "0".into(),
        format!("{:.3}", conn.handle.goodput_mbps(sim.now())),
    ]);
    report.table(&t);

    let doc = report.finish();
    validate(&doc).expect("fresh report must validate");
    let reparsed = parse(&doc.render_pretty()).unwrap();
    validate(&reparsed).expect("report must survive a serialize/parse round trip");
    let profile = reparsed.get("profile").unwrap();
    assert!(
        profile.get("events").unwrap().as_f64().unwrap() > 0.0,
        "profiling window saw no simulator events"
    );
    assert!(profile.get("sim_wall_ratio").unwrap().as_f64().unwrap() > 0.0);
}

//! Whole-scenario determinism: identical seeds must give bit-identical
//! results across full scenario builds, including RED randomness, start
//! jitter, and FatTree path sampling.

use eventsim::{SimDuration, SimRng, SimTime};
use mpsim_core::Algorithm;
use netsim::Simulation;
use topo::{stagger_starts, FatTree, FatTreeConfig, ScenarioC, ScenarioCParams};
use workload::permutation_traffic;

fn scenario_c_digest(seed: u64) -> Vec<u64> {
    let mut sim = Simulation::new(seed);
    let s = ScenarioC::build(&mut sim, &ScenarioCParams::paper(6, 1.5, Algorithm::Olia));
    let all: Vec<_> = s.multipath.iter().chain(s.single.iter()).cloned().collect();
    let mut rng = SimRng::seed_from_u64(seed ^ 42);
    stagger_starts(&mut sim, &all, SimDuration::from_secs(2), &mut rng);
    sim.run_until(SimTime::from_secs_f64(25.0));
    let mut digest: Vec<u64> = all
        .iter()
        .map(|c| c.handle.read(|st| st.delivered_packets))
        .collect();
    digest.push(sim.queue_stats(s.ap2).dropped);
    digest.push(sim.queue_stats(s.ap1).forwarded);
    digest
}

#[test]
fn scenario_c_is_deterministic() {
    let a = scenario_c_digest(33);
    let b = scenario_c_digest(33);
    assert_eq!(a, b);
    // And actually produced traffic.
    assert!(a.iter().take(6).all(|&d| d > 0));
}

#[test]
fn different_seeds_differ() {
    // Not a strict requirement, but if every seed gave identical output the
    // randomness would be dead.
    let a = scenario_c_digest(33);
    let b = scenario_c_digest(34);
    assert_ne!(a, b);
}

fn fattree_digest(seed: u64) -> Vec<u64> {
    let mut sim = Simulation::new(seed);
    let ft = FatTree::build(&mut sim, 4, &FatTreeConfig::default());
    let mut rng = SimRng::seed_from_u64(seed);
    let perm = permutation_traffic(&mut rng, ft.num_hosts());
    let conns: Vec<_> = (0..ft.num_hosts())
        .map(|h| {
            ft.connect(
                &mut sim,
                h,
                perm[h],
                Algorithm::Olia,
                4,
                None,
                tcpsim::TcpConfig::default(),
                &mut rng,
                h as u64,
            )
        })
        .collect();
    for c in &conns {
        sim.start_endpoint_at(c.source, SimTime::ZERO);
    }
    sim.run_until(SimTime::from_secs_f64(3.0));
    conns
        .iter()
        .map(|c| c.handle.read(|st| st.delivered_packets))
        .collect()
}

#[test]
fn fattree_is_deterministic() {
    assert_eq!(fattree_digest(5), fattree_digest(5));
}

/// A run under a chaos plan — outage, loss burst, duplication, reordering,
/// mid-run rate change — with every stochastic impairment drawn from the
/// simulation RNG. Identical seed + identical plan ⇒ byte-identical results.
fn fault_plan_digest(seed: u64) -> Vec<u64> {
    use netsim::{route, FaultAction, FaultPlan, QueueConfig};
    use tcpsim::{ConnectionSpec, PathSpec};

    let mut sim = Simulation::new(seed);
    let mk = |sim: &mut Simulation| {
        (
            sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40))),
            sim.add_queue(QueueConfig::drop_tail(
                10e9,
                SimDuration::from_millis(40),
                100_000,
            )),
        )
    };
    let (f1, r1) = mk(&mut sim);
    let (f2, r2) = mk(&mut sim);
    let conn = ConnectionSpec::new(Algorithm::Olia)
        .with_path(PathSpec::new(route(&[f1]), route(&[r1])))
        .with_path(PathSpec::new(route(&[f2]), route(&[r2])))
        .install(&mut sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);
    sim.install_fault_plan(
        FaultPlan::new()
            .down_between(
                f1,
                SimTime::from_secs_f64(5.0),
                SimTime::from_secs_f64(12.0),
            )
            .at(
                SimTime::from_secs_f64(3.0),
                FaultAction::LossBurst {
                    queue: f2,
                    p: 0.05,
                    duration: SimDuration::from_secs(4),
                },
            )
            .at(
                SimTime::from_secs_f64(14.0),
                FaultAction::SetDuplication { queue: f2, p: 0.02 },
            )
            .at(
                SimTime::from_secs_f64(15.0),
                FaultAction::SetReordering {
                    queue: f2,
                    p: 0.01,
                    extra: SimDuration::from_millis(15),
                },
            )
            .at(
                SimTime::from_secs_f64(16.0),
                FaultAction::SetRate {
                    queue: f2,
                    rate_bps: 4e6,
                },
            ),
    );
    sim.run_until(SimTime::from_secs_f64(20.0));

    let mut digest = conn.handle.read(|st| {
        let mut d = vec![st.delivered_packets, st.app_delivered_packets];
        for sf in &st.subflows {
            d.extend([
                sf.acked_packets,
                sf.timeouts.into(),
                sf.failures.into(),
                sf.reprobes.into(),
            ]);
        }
        d
    });
    for q in [f1, f2] {
        let s = sim.queue_stats(q);
        digest.extend([s.forwarded, s.dropped, s.dropped_down, s.busy_ns]);
    }
    digest
}

#[test]
fn fault_plan_runs_are_deterministic() {
    let a = fault_plan_digest(11);
    let b = fault_plan_digest(11);
    assert_eq!(a, b);
    // The scenario actually exercised the machinery: traffic flowed and the
    // outage produced down-drops.
    assert!(a[0] > 0, "no packets delivered");
    assert!(a.iter().any(|&x| x > 0), "dead digest");
}

//! Whole-scenario determinism: identical seeds must give bit-identical
//! results across full scenario builds, including RED randomness, start
//! jitter, and FatTree path sampling.

use eventsim::{SimDuration, SimRng, SimTime};
use mpsim_core::Algorithm;
use netsim::Simulation;
use topo::{stagger_starts, FatTree, FatTreeConfig, ScenarioC, ScenarioCParams};
use workload::permutation_traffic;

fn scenario_c_digest(seed: u64) -> Vec<u64> {
    let mut sim = Simulation::new(seed);
    let s = ScenarioC::build(&mut sim, &ScenarioCParams::paper(6, 1.5, Algorithm::Olia));
    let all: Vec<_> = s.multipath.iter().chain(s.single.iter()).cloned().collect();
    let mut rng = SimRng::seed_from_u64(seed ^ 42);
    stagger_starts(&mut sim, &all, SimDuration::from_secs(2), &mut rng);
    sim.run_until(SimTime::from_secs_f64(25.0));
    let mut digest: Vec<u64> = all
        .iter()
        .map(|c| c.handle.read(|st| st.delivered_packets))
        .collect();
    digest.push(sim.queue_stats(s.ap2).dropped);
    digest.push(sim.queue_stats(s.ap1).forwarded);
    digest
}

#[test]
fn scenario_c_is_deterministic() {
    let a = scenario_c_digest(33);
    let b = scenario_c_digest(33);
    assert_eq!(a, b);
    // And actually produced traffic.
    assert!(a.iter().take(6).all(|&d| d > 0));
}

#[test]
fn different_seeds_differ() {
    // Not a strict requirement, but if every seed gave identical output the
    // randomness would be dead.
    let a = scenario_c_digest(33);
    let b = scenario_c_digest(34);
    assert_ne!(a, b);
}

fn fattree_digest(seed: u64) -> Vec<u64> {
    let mut sim = Simulation::new(seed);
    let ft = FatTree::build(&mut sim, 4, &FatTreeConfig::default());
    let mut rng = SimRng::seed_from_u64(seed);
    let perm = permutation_traffic(&mut rng, ft.num_hosts());
    let conns: Vec<_> = (0..ft.num_hosts())
        .map(|h| {
            ft.connect(
                &mut sim,
                h,
                perm[h],
                Algorithm::Olia,
                4,
                None,
                tcpsim::TcpConfig::default(),
                &mut rng,
                h as u64,
            )
        })
        .collect();
    for c in &conns {
        sim.start_endpoint_at(c.source, SimTime::ZERO);
    }
    sim.run_until(SimTime::from_secs_f64(3.0));
    conns
        .iter()
        .map(|c| c.handle.read(|st| st.delivered_packets))
        .collect()
}

#[test]
fn fattree_is_deterministic() {
    assert_eq!(fattree_digest(5), fattree_digest(5));
}

//! Theorem 1 and Theorem 4 verified on randomized fluid networks: OLIA's
//! equilibria use only best paths, deliver the best path's TCP rate, and
//! maximize V along trajectories.

use eventsim::SimRng;
use fluid::ode::{
    FluidAlgorithm, FluidLink, FluidNetwork, FluidParams, FluidRoute, FluidUser, LossModel,
};
use fluid::utility::{utility_v, verify_theorem1};

/// A random parking-lot-ish network: `n_links` links, each user gets 2–3
/// single-link routes with a common RTT.
fn random_network(seed: u64, n_links: usize, n_users: usize) -> FluidNetwork {
    let mut rng = SimRng::seed_from_u64(seed);
    let links: Vec<FluidLink> = (0..n_links)
        .map(|_| FluidLink::with_capacity(200.0 + rng.f64() * 600.0))
        .collect();
    let users: Vec<FluidUser> = (0..n_users)
        .map(|_| {
            let n_routes = 2 + rng.below(2);
            let rtt = 0.05 + rng.f64() * 0.1;
            let routes = (0..n_routes)
                .map(|_| FluidRoute {
                    links: vec![rng.below(n_links)],
                    rtt,
                })
                .collect();
            FluidUser { routes }
        })
        .collect();
    FluidNetwork {
        links,
        users,
        loss: LossModel::default(),
    }
}

fn start(net: &FluidNetwork) -> Vec<Vec<f64>> {
    net.users
        .iter()
        .map(|u| vec![10.0; u.routes.len()])
        .collect()
}

#[test]
fn theorem1_on_random_networks() {
    for seed in [1u64, 2, 3] {
        let net = random_network(seed, 4, 5);
        let params = FluidParams {
            steps: 500_000,
            ..FluidParams::default()
        };
        let x = net.equilibrium(FluidAlgorithm::Olia, &start(&net), &params);
        let report = verify_theorem1(&net, &x);
        assert!(
            report.holds(0.15, 0.10),
            "seed {seed}: Theorem 1 violated: {report:?}"
        );
    }
}

#[test]
fn olia_utility_dominates_lia_and_uncoupled() {
    // Theorem 4: OLIA maximizes V (equal-RTT case). Its equilibrium V must
    // be at least that of the other algorithms' equilibria on the same
    // network.
    let mut rng = SimRng::seed_from_u64(9);
    let links: Vec<FluidLink> = (0..3)
        .map(|_| FluidLink::with_capacity(300.0 + rng.f64() * 300.0))
        .collect();
    // All routes share one RTT so assumption (A) of Theorem 4 holds.
    let users: Vec<FluidUser> = (0..4)
        .map(|_| FluidUser {
            routes: (0..2)
                .map(|_| FluidRoute {
                    links: vec![rng.below(3)],
                    rtt: 0.1,
                })
                .collect(),
        })
        .collect();
    let net = FluidNetwork {
        links,
        users,
        loss: LossModel::default(),
    };
    let params = FluidParams {
        steps: 500_000,
        ..FluidParams::default()
    };
    let x0 = start(&net);
    let v_olia = utility_v(&net, &net.equilibrium(FluidAlgorithm::Olia, &x0, &params));
    let v_lia = utility_v(&net, &net.equilibrium(FluidAlgorithm::Lia, &x0, &params));
    let v_unc = utility_v(
        &net,
        &net.equilibrium(FluidAlgorithm::Uncoupled, &x0, &params),
    );
    let tol = 1e-3 * v_olia.abs();
    assert!(
        v_olia >= v_lia - tol,
        "V(OLIA) = {v_olia} must dominate V(LIA) = {v_lia}"
    );
    assert!(
        v_olia >= v_unc - tol,
        "V(OLIA) = {v_olia} must dominate V(uncoupled) = {v_unc}"
    );
}

#[test]
fn pareto_story_on_the_asymmetric_network() {
    // The fluid version of problem P1/P2: one multipath user, a congested
    // and a clean link. OLIA leaves the congested link to its TCP users;
    // LIA keeps pushing traffic there (nonzero share well above the floor).
    let mut users = vec![FluidUser {
        routes: vec![
            FluidRoute {
                links: vec![0],
                rtt: 0.1,
            },
            FluidRoute {
                links: vec![1],
                rtt: 0.1,
            },
        ],
    }];
    for _ in 0..2 {
        users.push(FluidUser {
            routes: vec![FluidRoute {
                links: vec![0],
                rtt: 0.1,
            }],
        });
    }
    for _ in 0..8 {
        users.push(FluidUser {
            routes: vec![FluidRoute {
                links: vec![1],
                rtt: 0.1,
            }],
        });
    }
    let net = FluidNetwork {
        links: vec![
            FluidLink::with_capacity(500.0),
            FluidLink::with_capacity(500.0),
        ],
        users,
        loss: LossModel::default(),
    };
    let params = FluidParams {
        steps: 500_000,
        ..FluidParams::default()
    };
    let x0: Vec<Vec<f64>> = net
        .users
        .iter()
        .map(|u| vec![20.0; u.routes.len()])
        .collect();
    let olia = net.equilibrium(FluidAlgorithm::Olia, &x0, &params);
    let lia = net.equilibrium(FluidAlgorithm::Lia, &x0, &params);
    let olia_congested_share = olia[0][1] / (olia[0][0] + olia[0][1]);
    let lia_congested_share = lia[0][1] / (lia[0][0] + lia[0][1]);
    assert!(
        olia_congested_share < 0.55 * lia_congested_share,
        "OLIA share {olia_congested_share:.3} must clearly undercut LIA's \
         {lia_congested_share:.3}"
    );
    // The TCP users on the congested link do better under OLIA.
    let tcp_olia: f64 = (3..11).map(|u| olia[u][0]).sum();
    let tcp_lia: f64 = (3..11).map(|u| lia[u][0]).sum();
    assert!(
        tcp_olia > tcp_lia,
        "congested-link TCP users must gain under OLIA ({tcp_olia} vs {tcp_lia})"
    );
}

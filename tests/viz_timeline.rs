//! Acceptance tests for the flight recorder + timeline visualization.
//!
//! Three contracts from the issue:
//!
//! 1. Rendering is byte-deterministic: the checked-in fixture trace renders
//!    to a pinned FNV digest, twice over (golden-file discipline — a digest
//!    change is a deliberate format change, recapture it from the printed
//!    `GOLDEN` line).
//! 2. The sweep explorer's pages are byte-identical across `--jobs`.
//! 3. A planted invariant violation in a chaos run yields a repro whose
//!    rendered timeline carries fault windows and subflow-state bands
//!    matching the repro's `FaultPlan` clauses — checked via the `data-*`
//!    attributes the renderer attaches as machine-readable evidence.

use chaos::{run_case_with, ChaosCase, Clause};
use eventsim::SimDuration;
use tcpsim::TcpConfig;
use trace::Digest64;
use viz::{clause_windows, render_chaos_html, render_timeline_html, Timeline};

fn fixture() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/viz/timeline.jsonl"
    );
    std::fs::read_to_string(path).expect("fixture trace missing")
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut d = Digest64::new();
    d.update(bytes);
    d.finish()
}

/// Golden digest of the rendered fixture timeline. Recapture from the
/// test's printed `GOLDEN html_digest=0x...` line after a deliberate
/// rendering change.
const GOLDEN_HTML_DIGEST: u64 = 0x34d8_7332_3408_9b3e;

#[test]
fn fixture_timeline_renders_to_pinned_bytes() {
    let jsonl = fixture();
    let tl = Timeline::from_jsonl(&jsonl).expect("fixture must parse");
    let a = render_timeline_html("timeline.jsonl", &tl);
    let b = render_timeline_html("timeline.jsonl", &tl);
    assert_eq!(a, b, "two renders of the same model differ");
    // Parse -> render again from scratch: byte-identity must not depend on
    // shared state between the two pipelines.
    let tl2 = Timeline::from_jsonl(&jsonl).unwrap();
    assert_eq!(a, render_timeline_html("timeline.jsonl", &tl2));

    let digest = fnv(a.as_bytes());
    println!("GOLDEN html_digest=0x{digest:016x}");
    assert_eq!(
        digest, GOLDEN_HTML_DIGEST,
        "rendered HTML bytes changed; if deliberate, recapture the digest above"
    );
}

#[test]
fn fixture_timeline_is_self_contained_and_evidence_bearing() {
    let tl = Timeline::from_jsonl(&fixture()).unwrap();
    let html = render_timeline_html("timeline.jsonl", &tl);
    for needle in ["http://", "https://", "file://", "<script"] {
        assert!(!html.contains(needle), "page not self-contained: {needle}");
    }
    // The fixture's fault pair (1s..3s on queue 1) becomes one shaded window.
    assert!(html.contains(
        "data-action=\"link_down\" data-from-ns=\"1000000000\" data-to-ns=\"3000000000\""
    ));
    // And its state transitions become bands.
    assert!(html.contains(
        "data-state=\"potentially_failed\" data-from-ns=\"1500000000\" data-to-ns=\"2600000000\""
    ));
    assert!(html
        .contains("data-state=\"failed\" data-from-ns=\"2600000000\" data-to-ns=\"3300000000\""));
}

#[test]
fn chaos_repro_timeline_matches_the_fault_plan() {
    // The planted bug from the chaos acceptance suite: probes double past
    // the paper's 8 s cap when reprobe_max is misconfigured to 16 s.
    let case = ChaosCase {
        seed: 7,
        algorithm: "lia".to_string(),
        rate_mbps: [8.0, 8.0],
        delay_ms: [40.0, 40.0],
        horizon_s: 30.0,
        clauses: vec![Clause::Outage {
            path: 0,
            from_s: 4.0,
            dur_s: 18.0,
        }],
    };
    let tcp = TcpConfig {
        reprobe_max: SimDuration::from_secs(16),
        ..TcpConfig::default()
    };
    let verdict = run_case_with(&case, tcp);
    assert!(!verdict.ok(), "the planted bug did not fire");
    let tail = verdict
        .tail_jsonl
        .as_deref()
        .expect("violating verdict carries no flight-recorder tail");

    // Write the repro directory the chaos binary would produce and render
    // the timeline from it.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/tmp/viz-accept/repro");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let case_doc = case.to_json();
    std::fs::write(dir.join("repro.json"), case_doc.render_pretty() + "\n").unwrap();
    std::fs::write(dir.join("repro.trace.jsonl"), tail).unwrap();
    let html = render_chaos_html("repro", &case_doc, Some(tail)).expect("render failed");
    std::fs::write(dir.join("repro.html"), &html).unwrap();

    // (a) The schedule chart's windows equal the case's Clause semantics.
    let windows = clause_windows(&case_doc).unwrap();
    assert_eq!(windows.len(), case.clauses.len());
    for (w, clause) in windows.iter().zip(&case.clauses) {
        assert_eq!(w.kind, clause.kind());
        let to_ns = (clause.end_s() * 1e9).round() as u64;
        assert_eq!(w.to_ns, to_ns, "window end drifted from Clause::end_s");
        assert!(html.contains(&format!(
            "data-clause-kind=\"{}\" data-path=\"0\" data-from-ns=\"{}\" data-to-ns=\"{}\"",
            w.kind, w.from_ns, w.to_ns
        )));
    }

    // (b) The recorded timeline's fault windows match the lowered plan: the
    // outage clause becomes link_down at 4 s and link_up at 22 s on the
    // forward queue of path 0.
    assert!(
        html.contains(
            "data-action=\"link_down\" data-from-ns=\"4000000000\" data-to-ns=\"22000000000\""
        ),
        "recorded fault window does not match the FaultPlan"
    );

    // (c) Subflow-state bands track the outage: the path-0 subflow passes
    // through potentially_failed and failed inside the outage window.
    let tl = Timeline::from_jsonl(tail).unwrap();
    let lane = tl
        .subflows
        .iter()
        .find(|l| l.subflow == 0)
        .expect("no lane for subflow 0");
    let outage = (4_000_000_000u64, 22_000_000_000u64);
    for state in ["potentially_failed", "failed"] {
        let band = lane
            .states
            .iter()
            .find(|b| b.state.label() == state)
            .unwrap_or_else(|| panic!("no {state} band on subflow 0"));
        assert!(
            band.from_ns >= outage.0 && band.from_ns <= outage.1,
            "{state} band starts at {} — outside the outage window",
            band.from_ns
        );
        assert!(html.contains(&format!(
            "data-subflow=\"0\" data-state=\"{state}\" data-from-ns=\"{}\" data-to-ns=\"{}\"",
            band.from_ns, band.to_ns
        )));
    }

    // (d) Replaying the case reproduces the tail — and therefore the page —
    // byte for byte.
    let again = run_case_with(&case, tcp);
    assert_eq!(again.tail_jsonl.as_deref(), Some(tail));
    assert_eq!(
        render_chaos_html("repro", &case_doc, again.tail_jsonl.as_deref()).unwrap(),
        html
    );
}

//! Regression pin for the `HashMap` → `BTreeMap` migrations done for the
//! simlint R2 (unordered-collection) audit.
//!
//! The `dsn_map` in `tcpsim::source` was a `HashMap` keyed by subflow
//! sequence number; it is only ever used point-wise (entry / remove), never
//! iterated, so replacing it with a `BTreeMap` must leave every run
//! byte-identical. This test pins the full-trace digest of a two-path OLIA
//! run (RED bottlenecks, a mid-run outage, and a loss burst — the same
//! scenario the observability suite uses) so any behavioural drift from a
//! collection swap shows up as a digest mismatch, not as a silent change in
//! the paper's numbers.

use std::rc::Rc;

use eventsim::{SimDuration, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, FaultAction, FaultPlan, QueueConfig, Simulation};
use tcpsim::{ConnectionSpec, PathSpec};
use trace::{Digest64, JsonlSink, Tracer};

/// Digest of the serialized JSONL trace for one seeded run.
fn trace_digest(seed: u64) -> (u64, u64) {
    let mut sim = Simulation::new(seed);
    let (tracer, sink) = Tracer::to_sink(JsonlSink::new(Vec::new()));
    sim.set_tracer(tracer);
    let mk = |sim: &mut Simulation| {
        (
            sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40))),
            sim.add_queue(QueueConfig::drop_tail(
                10e9,
                SimDuration::from_millis(40),
                100_000,
            )),
        )
    };
    let (f1, r1) = mk(&mut sim);
    let (f2, r2) = mk(&mut sim);
    let conn = ConnectionSpec::new(Algorithm::Olia)
        .with_path(PathSpec::new(route(&[f1]), route(&[r1])))
        .with_path(PathSpec::new(route(&[f2]), route(&[r2])))
        .install(&mut sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);
    sim.install_fault_plan(
        FaultPlan::new()
            .down_between(f1, SimTime::from_secs_f64(3.0), SimTime::from_secs_f64(5.0))
            .at(
                SimTime::from_secs_f64(6.0),
                FaultAction::LossBurst {
                    queue: f2,
                    p: 0.05,
                    duration: SimDuration::from_secs(1),
                },
            ),
    );
    sim.run_until(SimTime::from_secs_f64(8.0));
    drop(sim);
    let jsonl = Rc::try_unwrap(sink)
        .expect("sink uniquely owned")
        .into_inner();
    let lines = jsonl.lines();
    let bytes = jsonl.into_inner();
    (Digest64::of(&bytes), lines)
}

/// Golden digest captured on the pre-migration tree (dsn_map still a
/// `HashMap`). The BTreeMap-backed source must reproduce it exactly.
#[test]
fn dsn_map_migration_preserves_trace_digest() {
    let (digest, lines) = trace_digest(23);
    assert!(lines > 1_000, "trace suspiciously small: {lines} lines");
    println!("GOLDEN digest=0x{digest:016x} lines={lines}");
    assert_eq!(
        digest, GOLDEN_DIGEST,
        "seed-23 trace digest drifted: a collection migration changed behaviour"
    );
}

/// Captured from the seed tree before the R2 migrations; recaptured when
/// the trace vocabulary grew (rtt_sample events, qlen on dequeue) — the
/// stream's byte content changed deliberately, its ordering did not.
const GOLDEN_DIGEST: u64 = 0x7187_b539_9b5e_f26a;

//! Regression pin for the `HashMap` → `BTreeMap` migrations done for the
//! simlint R2 (unordered-collection) audit.
//!
//! The `dsn_map` in `tcpsim::source` was a `HashMap` keyed by subflow
//! sequence number; it is only ever used point-wise (entry / remove), never
//! iterated, so replacing it with a `BTreeMap` must leave every run
//! byte-identical. This test pins the full-trace digest of a two-path OLIA
//! run (RED bottlenecks, a mid-run outage, and a loss burst — the same
//! scenario the observability suite uses) so any behavioural drift from a
//! collection swap shows up as a digest mismatch, not as a silent change in
//! the paper's numbers.

use std::rc::Rc;

use eventsim::{SimDuration, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, FaultAction, FaultPlan, QueueConfig, Simulation};
use tcpsim::{ConnectionSpec, PathSpec};
use trace::{Digest64, JsonlSink, Tracer};

/// Digest of the serialized JSONL trace for one seeded run.
fn trace_digest(seed: u64) -> (u64, u64) {
    let mut sim = Simulation::new(seed);
    let (tracer, sink) = Tracer::to_sink(JsonlSink::new(Vec::new()));
    sim.set_tracer(tracer);
    let mk = |sim: &mut Simulation| {
        (
            sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40))),
            sim.add_queue(QueueConfig::drop_tail(
                10e9,
                SimDuration::from_millis(40),
                100_000,
            )),
        )
    };
    let (f1, r1) = mk(&mut sim);
    let (f2, r2) = mk(&mut sim);
    let conn = ConnectionSpec::new(Algorithm::Olia)
        .with_path(PathSpec::new(route(&[f1]), route(&[r1])))
        .with_path(PathSpec::new(route(&[f2]), route(&[r2])))
        .install(&mut sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);
    sim.install_fault_plan(
        FaultPlan::new()
            .down_between(f1, SimTime::from_secs_f64(3.0), SimTime::from_secs_f64(5.0))
            .at(
                SimTime::from_secs_f64(6.0),
                FaultAction::LossBurst {
                    queue: f2,
                    p: 0.05,
                    duration: SimDuration::from_secs(1),
                },
            ),
    );
    sim.run_until(SimTime::from_secs_f64(8.0));
    drop(sim);
    let jsonl = Rc::try_unwrap(sink)
        .expect("sink uniquely owned")
        .into_inner();
    let lines = jsonl.lines();
    let bytes = jsonl.into_inner();
    (Digest64::of(&bytes), lines)
}

/// Golden digest captured on the pre-migration tree (dsn_map still a
/// `HashMap`). The BTreeMap-backed source must reproduce it exactly.
#[test]
fn dsn_map_migration_preserves_trace_digest() {
    let (digest, lines) = trace_digest(23);
    assert!(lines > 1_000, "trace suspiciously small: {lines} lines");
    println!("GOLDEN digest=0x{digest:016x} lines={lines}");
    assert_eq!(
        digest, GOLDEN_DIGEST,
        "seed-23 trace digest drifted: a collection migration changed behaviour"
    );
}

/// Captured from the seed tree before the R2 migrations; recaptured when
/// the trace vocabulary grew (rtt_sample events, qlen on dequeue) — the
/// stream's byte content changed deliberately, its ordering did not.
const GOLDEN_DIGEST: u64 = 0x7187_b539_9b5e_f26a;

// ---------------------------------------------------------------------------
// Scale-architecture differentials: the route interner, the connection-state
// ring pool, and the lazy topology build are all *representation* changes and
// must leave traces byte-identical. Each scenario below pins a golden digest
// (the interner/pool/lazy-build-era `perf_scale` run verified these equal the
// pre-arena tree at full horizon) so future arena work that perturbs
// behaviour fails here, close to the cause, instead of in the paper numbers.
// ---------------------------------------------------------------------------

use eventsim::SimRng;
use topo::{FatTree, FatTreeConfig, ScenarioB, ScenarioBParams};
use trace::DigestSink;

/// Digest one seeded Scenario B run (red upgraded to multipath — both ISPs'
/// bottlenecks exercised, 30 OLIA connections through the interner).
fn scenario_b_digest(seed: u64) -> (String, u64) {
    let mut sim = Simulation::new(seed);
    let (tracer, sink) = Tracer::to_sink(DigestSink::new());
    sim.set_tracer(tracer);
    let s = ScenarioB::build(&mut sim, &ScenarioBParams::paper(true, Algorithm::Olia));
    let mut rng = SimRng::seed_from_u64(seed ^ 0xB4B4);
    for c in s.blue.iter().chain(s.red.iter()) {
        let jitter = SimDuration::from_secs_f64(rng.f64() * 0.5);
        sim.start_endpoint_at(c.source, SimTime::ZERO + jitter);
    }
    sim.run_until(SimTime::from_secs_f64(3.0));
    let s = sink.borrow();
    (s.hex(), s.events())
}

#[test]
fn scenario_b_trace_digest_pinned() {
    let (digest, events) = scenario_b_digest(42);
    assert!(events > 10_000, "trace suspiciously small: {events} events");
    println!("SCENARIO_B digest={digest} events={events}");
    assert_eq!(
        digest, SCENARIO_B_DIGEST,
        "scenario_b trace drifted: an arena/pool representation change altered behaviour"
    );
}

const SCENARIO_B_DIGEST: &str = "f6ecd1d6158f14df";

/// Digest one seeded k=8 FatTree permutation slice — the `perf_scale`
/// recipe (OLIA ×4 subflows, every host sending) at a short horizon so the
/// differential stays cheap enough for the debug test profile.
fn fattree_digest(k: usize, secs: f64, seed: u64, eager: bool) -> (String, u64) {
    let mut sim = Simulation::new(seed);
    let (tracer, sink) = Tracer::to_sink(DigestSink::new());
    sim.set_tracer(tracer);
    let cfg = FatTreeConfig::default();
    let ft = if eager {
        FatTree::build_eager(&mut sim, k, &cfg)
    } else {
        FatTree::build(&mut sim, k, &cfg)
    };
    let n = ft.num_hosts();
    let mut rng = SimRng::seed_from_u64(seed ^ 0x5CA1E);
    let perm = workload::permutation_traffic(&mut rng, n);
    let tcp = bench::fattree::dc_config();
    let conns: Vec<_> = (0..n)
        .map(|h| {
            ft.connect(
                &mut sim,
                h,
                perm[h],
                Algorithm::Olia,
                4,
                None,
                tcp,
                &mut rng,
                h as u64,
            )
        })
        .collect();
    for c in &conns {
        let jitter = SimDuration::from_secs_f64(rng.f64() * secs * 0.25);
        sim.start_endpoint_at(c.source, SimTime::ZERO + jitter);
    }
    sim.run_until(SimTime::from_secs_f64(secs));
    let s = sink.borrow();
    (s.hex(), s.events())
}

#[test]
fn fattree_k8_trace_digest_pinned() {
    let (digest, events) = fattree_digest(8, 0.05, 8, false);
    assert!(
        events > 100_000,
        "trace suspiciously small: {events} events"
    );
    println!("FATTREE_K8 digest={digest} events={events}");
    assert_eq!(
        digest, FATTREE_K8_DIGEST,
        "k=8 fattree trace drifted: an arena/pool representation change altered behaviour"
    );
}

const FATTREE_K8_DIGEST: &str = "adaff755d7967403";

/// The lazy (streamed) topology build must be invisible: materializing
/// queues on first touch instead of eagerly cannot change a single event.
#[test]
fn fattree_lazy_and_eager_builds_trace_identically() {
    let lazy = fattree_digest(4, 0.3, 17, false);
    let eager = fattree_digest(4, 0.3, 17, true);
    assert!(
        lazy.1 > 10_000,
        "trace suspiciously small: {} events",
        lazy.1
    );
    assert_eq!(lazy, eager, "lazy queue materialization changed the trace");
}

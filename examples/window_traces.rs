//! The Fig. 8 experiment in miniature: watch OLIA abandon a congested path.
//!
//! A two-path user shares path 1 with 5 TCP flows and path 2 with 10; the
//! example prints an ASCII strip chart of both subflow windows.
//!
//! ```text
//! cargo run --release --example window_traces
//! ```

use bench::traces;
use mpsim_core::Algorithm;

fn strip(points: &[(f64, f64)], t_end: f64, label: &str) {
    const COLS: usize = 72;
    let max_w = points.iter().map(|&(_, w)| w).fold(1.0, f64::max);
    let mut row = vec![b' '; COLS];
    for &(t, w) in points {
        let col = ((t / t_end) * (COLS as f64 - 1.0)) as usize;
        let level = (w / max_w * 8.0).round() as usize;
        let ch = b" .:-=+*#%"[level.min(8)];
        if col < COLS {
            row[col] = row[col].max(ch);
        }
    }
    println!(
        "{label:<22} |{}| max w = {max_w:.1}",
        String::from_utf8_lossy(&row)
    );
}

fn main() {
    let secs = 60.0;
    for alg in [Algorithm::Olia, Algorithm::Lia] {
        let r = traces::run(10.0, 5, 10, alg, secs, 42);
        println!("=== {} ===", alg.name());
        strip(&r.cwnd[0], secs, "path 1 (5 TCP rivals)");
        strip(&r.cwnd[1], secs, "path 2 (10 TCP rivals)");
        println!(
            "mean windows: {:.1} / {:.1}   time at ≤1.5 MSS on path 2: {:.0}%\n",
            r.mean_cwnd[0],
            r.mean_cwnd[1],
            r.frac_at_floor[1] * 100.0
        );
    }
    println!(
        "OLIA keeps the congested path at the 1-MSS probing floor most of the time\n\
         (brief α-driven probes); LIA maintains a significant window there."
    );
}

//! Data-center taste of §VI-B: random-permutation traffic on a k=4 FatTree,
//! TCP vs MPTCP-LIA vs MPTCP-OLIA with 4 subflows.
//!
//! ```text
//! cargo run --release --example datacenter
//! ```

use bench::fattree;
use mpsim_core::Algorithm;

fn main() {
    println!("k=4 FatTree (16 hosts), random permutation, 8 s runs\n");
    println!(
        "{:<14} {:>22} {:>8}",
        "long flows", "aggregate (% optimal)", "Jain"
    );
    let tcp = fattree::permutation(4, Algorithm::Reno, 1, 8.0, 3);
    println!(
        "{:<14} {:>22.1} {:>8.3}",
        "TCP", tcp.throughput_pct, tcp.jain
    );
    for alg in [Algorithm::Lia, Algorithm::Olia] {
        let r = fattree::permutation(4, alg, 4, 8.0, 3);
        println!(
            "{:<14} {:>22.1} {:>8.3}",
            format!("MPTCP-{} ×4", alg.name()),
            r.throughput_pct,
            r.jain
        );
    }
    println!(
        "\nSingle-path TCP collides on core links; multipath spreads subflows over\n\
         the ECMP fabric and recovers most of the bisection — Fig. 13's story."
    );
}

//! Problem P2 live: Scenario C (§III-C) at CI scale, LIA vs OLIA.
//!
//! N1 multipath users (AP1 + AP2) share AP2 with N2 regular TCP users.
//! With C1/C2 = 2 a fair multipath user should barely touch AP2 — LIA
//! doesn't oblige; OLIA does.
//!
//! ```text
//! cargo run --release --example scenario_c_fairness
//! ```

use bench::{scenario_c, RunCfg};
use mpsim_core::Algorithm;
use topo::ScenarioCParams;

fn main() {
    let cfg = RunCfg {
        warmup_s: 20.0,
        measure_s: 30.0,
        jitter_s: 2.0,
        replications: 2,
        seed: 7,
    };
    println!("Scenario C: N1=20 multipath vs N2=10 TCP users, C1/C2 = 2\n");
    println!(
        "{:<10} {:>18} {:>18} {:>10}",
        "algorithm", "TCP users (y/C2)", "multipath norm", "p2"
    );
    for alg in [Algorithm::Lia, Algorithm::Olia] {
        let m = scenario_c::measure(&ScenarioCParams::paper(20, 2.0, alg), &cfg);
        println!(
            "{:<10} {:>18.3} {:>18.3} {:>10.4}",
            alg.name(),
            m.single_norm.mean,
            m.multipath_norm.mean,
            m.p2.mean
        );
    }
    let th = fluid::scenario_c::optimal_with_probing(&fluid::scenario_c::ScenarioCInputs::paper(
        2.0, 2.0,
    ));
    println!(
        "{:<10} {:>18.3} {:>18.3} {:>10}",
        "optimum",
        th.single_norm,
        th.multipath_norm,
        th.p2.map(|p| format!("{p:.4}")).unwrap_or_default()
    );
    println!(
        "\nOLIA's TCP users sit much closer to the probing-cost optimum, and the\n\
         shared AP's loss probability drops accordingly (problem P2 mitigated)."
    );
}

//! Structured tracing: attach a ring sink to a live simulation, inspect the
//! recorded events, and replay them through the invariant checker.
//!
//! ```text
//! cargo run --release --example trace_inspection
//! ```
//!
//! For full-trace capture to disk, the bench binaries honor `MPTCP_TRACE`
//! (see EXPERIMENTS.md) — this example shows the in-memory path instead:
//! no files, bounded memory, post-mortem access to the tail of the run.

use std::collections::BTreeMap;

use eventsim::{SimDuration, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, FaultPlan, QueueConfig, QueueId, Simulation};
use tcpsim::{ConnectionSpec, PathSpec};
use trace::{InvariantChecker, RingSink, TraceEvent, Tracer};

/// One 10 Mb/s RED bottleneck plus a fast reverse path.
fn bottleneck_pair(sim: &mut Simulation) -> (QueueId, QueueId) {
    let fwd = sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40)));
    let rev = sim.add_queue(QueueConfig::drop_tail(
        10e9,
        SimDuration::from_millis(40),
        100_000,
    ));
    (fwd, rev)
}

fn main() {
    let mut sim = Simulation::new(42);
    // Keep the most recent 200k events; older ones are evicted, counted.
    let (tracer, ring) = Tracer::to_sink(RingSink::new(200_000));
    sim.set_tracer(tracer);

    let (f1, r1) = bottleneck_pair(&mut sim);
    let (f2, r2) = bottleneck_pair(&mut sim);
    let conn = ConnectionSpec::new(Algorithm::Olia)
        .with_path(PathSpec::new(route(&[f1]), route(&[r1])))
        .with_path(PathSpec::new(route(&[f2]), route(&[r2])))
        .install(&mut sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);
    // An outage on path 0 makes the trace interesting: RTOs, a Failed
    // transition, re-probes, and the recovery.
    sim.install_fault_plan(FaultPlan::new().down_between(
        f1,
        SimTime::from_secs_f64(10.0),
        SimTime::from_secs_f64(20.0),
    ));
    sim.run_until(SimTime::from_secs_f64(30.0));

    let ring = ring.borrow();
    println!(
        "recorded {} events ({} evicted, {} retained)\n",
        ring.recorded(),
        ring.evicted(),
        ring.len()
    );

    // Tally by event kind.
    let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
    for (_, ev) in ring.events() {
        *counts.entry(ev.kind()).or_insert(0) += 1;
    }
    println!("event mix:");
    for (name, n) in &counts {
        println!("  {name:<12} {n}");
    }

    // The interesting lines: every subflow state transition, verbatim JSONL.
    println!("\nsubflow lifecycle (as JSONL):");
    for (t, ev) in ring.events() {
        if matches!(
            ev,
            TraceEvent::SubflowState { .. } | TraceEvent::Probe { .. }
        ) {
            println!("  {}", ev.to_jsonl(*t));
        }
    }

    // Replay the whole retained trace through the invariant checker.
    let chk = InvariantChecker::new(1.0).check_all(ring.events());
    println!(
        "\ninvariants over {} events: {}",
        chk.events_seen(),
        if chk.ok() {
            "all hold".to_string()
        } else {
            format!(
                "{} violations: {:?}",
                chk.violations().len(),
                chk.violations()
            )
        }
    );
    println!(
        "delivered {} packets; goodput {:.2} Mb/s",
        conn.handle.read(|st| st.delivered_packets),
        conn.handle.goodput_mbps(sim.now())
    );
}

//! Fault injection: script an outage with a `FaultPlan` and watch the MPTCP
//! path manager detect the failure, re-probe, and restore the subflow.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use eventsim::{SimDuration, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, FaultPlan, QueueConfig, QueueId, Simulation};
use tcpsim::{ConnectionSpec, PathSpec};

/// One 10 Mb/s RED bottleneck plus a fast reverse path.
fn bottleneck_pair(sim: &mut Simulation) -> (QueueId, QueueId) {
    let fwd = sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40)));
    let rev = sim.add_queue(QueueConfig::drop_tail(
        10e9,
        SimDuration::from_millis(40),
        100_000,
    ));
    (fwd, rev)
}

fn main() {
    let mut sim = Simulation::new(42);
    let (f1, r1) = bottleneck_pair(&mut sim);
    let (f2, r2) = bottleneck_pair(&mut sim);

    let conn = ConnectionSpec::new(Algorithm::Olia)
        .with_path(PathSpec::new(route(&[f1]), route(&[r1])))
        .with_path(PathSpec::new(route(&[f2]), route(&[r2])))
        .install(&mut sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);

    // Down path 0 from t=20 s to t=40 s.
    sim.install_fault_plan(FaultPlan::new().down_between(
        f1,
        SimTime::from_secs_f64(20.0),
        SimTime::from_secs_f64(40.0),
    ));

    println!("  t     goodput  path0 health          path0 failures/reprobes");
    let mut last = SimTime::ZERO;
    for step in 1..=12 {
        let t = SimTime::from_secs_f64(step as f64 * 5.0);
        conn.handle.reset(last);
        sim.run_until(t);
        let (failures, reprobes) = conn.handle.failure_counts(0);
        println!(
            "{:>4}s  {:>6.2} Mb/s  {:<20?}  {}/{}",
            step * 5,
            conn.handle.goodput_mbps(sim.now()),
            conn.handle.path_health(0),
            failures,
            reprobes,
        );
        last = t;
    }
    if let Some(at) = conn.handle.last_recovered_at(0) {
        println!("path 0 recovered at {at} (outage ended at 40s)");
    }
    println!("path-0 down-drops: {}", sim.queue_stats(f1).dropped_down);
}

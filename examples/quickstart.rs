//! Quickstart: one MPTCP/OLIA connection over two disjoint bottlenecks,
//! compared with a regular TCP flow on one of them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eventsim::{SimDuration, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, QueueId, Simulation};
use tcpsim::{ConnectionSpec, PathSpec};

/// Build one 10 Mb/s RED bottleneck plus a fast reverse path.
fn bottleneck_pair(sim: &mut Simulation) -> (QueueId, QueueId) {
    let fwd = sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40)));
    let rev = sim.add_queue(QueueConfig::drop_tail(
        10e9,
        SimDuration::from_millis(40),
        100_000,
    ));
    (fwd, rev)
}

fn main() {
    let mut sim = Simulation::new(42);
    let (f1, r1) = bottleneck_pair(&mut sim);
    let (f2, r2) = bottleneck_pair(&mut sim);

    // An OLIA connection across both paths.
    let mptcp = ConnectionSpec::new(Algorithm::Olia)
        .with_path(PathSpec::new(route(&[f1]), route(&[r1])))
        .with_path(PathSpec::new(route(&[f2]), route(&[r2])))
        .install(&mut sim, 0);
    // A plain TCP flow sharing path 1.
    let tcp = ConnectionSpec::new(Algorithm::Reno)
        .with_path(PathSpec::new(route(&[f1]), route(&[r1])))
        .install(&mut sim, 1);

    sim.start_endpoint_at(mptcp.source, SimTime::ZERO);
    sim.start_endpoint_at(tcp.source, SimTime::ZERO);

    // Warm up, then measure 30 s of equilibrium.
    sim.run_until(SimTime::from_secs_f64(10.0));
    mptcp.handle.reset(sim.now());
    tcp.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(40.0));

    let now = sim.now();
    println!(
        "MPTCP (OLIA, 2 paths): {:6.2} Mb/s",
        mptcp.handle.goodput_mbps(now)
    );
    println!(
        "  path 1 (shared with TCP): {:6.2} Mb/s",
        mptcp.handle.subflow_mbps(0, now)
    );
    println!(
        "  path 2 (exclusive):       {:6.2} Mb/s",
        mptcp.handle.subflow_mbps(1, now)
    );
    println!(
        "TCP (Reno, path 1):    {:6.2} Mb/s",
        tcp.handle.goodput_mbps(now)
    );
    println!(
        "\npath-1 loss probability: {:.4}",
        sim.queue_stats(f1).loss_probability()
    );
    println!(
        "The OLIA user matches the single-path TCP's total (design goal 1) while\n\
         taking *less* than the TCP's share on the path they contend for (goal 2),\n\
         and pools the leftover capacity of path 2. (Neither flow reaches 10 Mb/s\n\
         alone: the paper's RED profile — min_th 25 pkts on an 80 ms path — is\n\
         deliberately shallow and needs flow aggregation to fill the pipe.)"
    );
}

//! Criterion micro-benchmarks: analytic solver costs.
//!
//! The fixed-point solvers run inside parameter sweeps (hundreds of points
//! per figure); the fluid integrator runs hundreds of thousands of Euler
//! steps per equilibrium.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fluid::ode::{
    FluidAlgorithm, FluidLink, FluidNetwork, FluidParams, FluidRoute, FluidUser, LossModel,
};
use fluid::{scenario_a, scenario_b, scenario_c};

fn bench_fixed_points(c: &mut Criterion) {
    c.bench_function("scenario_a_fixed_point", |b| {
        let inp = scenario_a::ScenarioAInputs::paper(2.0, 1.0);
        b.iter(|| black_box(scenario_a::lia(black_box(&inp))))
    });
    c.bench_function("scenario_b_fixed_point", |b| {
        let inp = scenario_b::ScenarioBInputs::paper(0.75);
        b.iter(|| black_box(scenario_b::lia_red_multipath(black_box(&inp))))
    });
    c.bench_function("scenario_c_fixed_point", |b| {
        let inp = scenario_c::ScenarioCInputs::paper(2.0, 1.0);
        b.iter(|| black_box(scenario_c::lia(black_box(&inp))))
    });
}

fn bench_fluid_steps(c: &mut Criterion) {
    let net = FluidNetwork {
        links: vec![
            FluidLink::with_capacity(100.0),
            FluidLink::with_capacity(100.0),
        ],
        users: vec![FluidUser {
            routes: vec![
                FluidRoute {
                    links: vec![0],
                    rtt: 0.1,
                },
                FluidRoute {
                    links: vec![1],
                    rtt: 0.1,
                },
            ],
        }],
        loss: LossModel::default(),
    };
    let params = FluidParams {
        steps: 1_000,
        ..FluidParams::default()
    };
    c.bench_function("fluid_olia_1k_steps", |b| {
        b.iter(|| {
            black_box(net.integrate(
                FluidAlgorithm::Olia,
                black_box(&vec![vec![10.0, 20.0]]),
                &params,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fixed_points, bench_fluid_steps
}
criterion_main!(benches);

//! Criterion micro-benchmarks: simulator event-loop throughput.
//!
//! Measures end-to-end simulated-packet throughput for a single TCP flow
//! over a bottleneck — the workhorse path of every experiment — and the raw
//! event-queue cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eventsim::{EventQueue, SimDuration, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, Simulation};
use tcpsim::{ConnectionSpec, PathSpec};

fn bench_tcp_second(c: &mut Criterion) {
    c.bench_function("simulate_1s_tcp_10mbps", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let fwd = sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(10)));
            let rev = sim.add_queue(QueueConfig::drop_tail(
                10e9,
                SimDuration::from_millis(10),
                10_000,
            ));
            let conn = ConnectionSpec::new(Algorithm::Reno)
                .with_path(PathSpec::new(route(&[fwd]), route(&[rev])))
                .install(&mut sim, 0);
            sim.start_endpoint_at(conn.source, SimTime::ZERO);
            sim.run_until(SimTime::from_secs_f64(1.0));
            black_box(conn.handle.read(|s| s.delivered_packets))
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..10_000u64 {
                // Pseudo-random interleaving without an RNG in the loop.
                let t = (i * 2_654_435_761) % 1_000_000;
                q.schedule(SimTime::from_nanos(t + 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_tcp_second, bench_event_queue
}
criterion_main!(benches);

//! Criterion micro-benchmarks: cost of one congestion-control update.
//!
//! The per-ACK increase runs on every acknowledgment in the hot path of a
//! real stack, so its cost matters; this bench compares OLIA against LIA and
//! the baselines across subflow counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mpsim_core::{alpha_values, Algorithm, PathView};

fn paths(n: usize) -> Vec<PathView> {
    (0..n)
        .map(|i| PathView {
            cwnd: 2.0 + i as f64 * 3.0,
            rtt: 0.1 + 0.01 * i as f64,
            ell: 100.0 * (i + 1) as f64,
            established: true,
        })
        .collect()
}

fn bench_on_ack(c: &mut Criterion) {
    let mut group = c.benchmark_group("on_ack");
    // Representative algorithms (the full registry is exercised by unit
    // tests); OLIA vs LIA vs uncoupled spans the cost spectrum.
    let algs = [Algorithm::Olia, Algorithm::Lia, Algorithm::Uncoupled];
    for &n in &[2usize, 8] {
        let views = paths(n);
        for alg in algs {
            let mut cc = alg.build();
            group.bench_with_input(BenchmarkId::new(alg.name(), n), &views, |b, views| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for idx in 0..views.len() {
                        acc += cc.on_ack(black_box(views), idx);
                    }
                    acc
                })
            });
        }
    }
    group.finish();
}

fn bench_alpha(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_values");
    for &n in &[2usize, 8] {
        let views = paths(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &views, |b, views| {
            b.iter(|| alpha_values(black_box(views)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Small sample size: the update is nanosecond-scale and the suite
    // covers 28 points; the default 100-sample protocol is needlessly slow
    // on shared CI machines.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_on_ack, bench_alpha
}
criterion_main!(benches);

//! Environment-driven trace capture for experiment binaries.
//!
//! Every place the harness builds a [`Simulation`] calls
//! [`attach_from_env`] right after construction. With no environment
//! configuration this is a no-op and the simulation keeps its zero-overhead
//! disabled tracer; setting `MPTCP_TRACE` attaches a buffered JSONL sink so
//! *any* figure binary can dump a structured trace without code changes:
//!
//! ```text
//! MPTCP_TRACE=1 cargo run --release -p bench --bin fig1_scenario_a
//! MPTCP_TRACE=results/mytrace ./target/release/repro_run scenarios/two_ap.json
//! ```
//!
//! * `MPTCP_TRACE` — `1`/`true` for the default `results/trace` prefix, or
//!   an explicit path prefix. Each simulation writes
//!   `<prefix>.<label>.seed<seed>.jsonl` (replications run in parallel and
//!   must not share a file).
//! * `MPTCP_TRACE_CONNS` — comma-separated connection tags to keep
//!   (default: all).
//! * `MPTCP_TRACE_QUEUES` — comma-separated queue indices to keep
//!   (default: all).
//! * `MPTCP_TRACE_QUEUE_RANGES` — comma-separated `first:len` blocks of
//!   contiguous queue ids to keep. Topology builders allocate queue blocks
//!   contiguously, so one range covers a whole tier of a large fabric
//!   (e.g. every core queue of a k=32 FatTree) without enumerating ids.
//!
//! The returned [`TraceGuard`] flushes the file when dropped; bind it with
//! `let _trace = ...` so it lives until the run completes.

use std::cell::RefCell;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use std::rc::Rc;

use netsim::Simulation;
use trace::{JsonlSink, TraceFilter, Tracer};

/// Keeps the JSONL sink alive for the duration of a traced run and flushes
/// it on drop (reporting the file and line count on stderr).
pub struct TraceGuard {
    sink: Rc<RefCell<JsonlSink<BufWriter<File>>>>,
    path: PathBuf,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let mut sink = self.sink.borrow_mut();
        match trace::TraceSink::flush(&mut *sink) {
            Ok(()) => eprintln!("trace: {} ({} events)", self.path.display(), sink.lines()),
            Err(e) => eprintln!("trace: cannot flush {}: {e}", self.path.display()),
        }
    }
}

fn parse_list<T: std::str::FromStr>(var: &str) -> Vec<T> {
    std::env::var(var)
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_default()
}

/// The filter described by `MPTCP_TRACE_CONNS` / `MPTCP_TRACE_QUEUES` /
/// `MPTCP_TRACE_QUEUE_RANGES` (pass-everything when none is set).
pub fn filter_from_env() -> TraceFilter {
    let mut f = TraceFilter::all()
        .conns(&parse_list::<u64>("MPTCP_TRACE_CONNS"))
        .queues(&parse_list::<u32>("MPTCP_TRACE_QUEUES"));
    if let Ok(ranges) = std::env::var("MPTCP_TRACE_QUEUE_RANGES") {
        for spec in ranges.split(',') {
            if let Some((first, len)) = spec.trim().split_once(':') {
                if let (Ok(first), Ok(len)) = (first.parse(), len.parse()) {
                    f = f.queue_range(first, len);
                }
            }
        }
    }
    f
}

/// If `MPTCP_TRACE` is set, attach a filtered JSONL sink to `sim` writing
/// `<prefix>.<label>.seed<seed>.jsonl` and return the guard that flushes
/// it; otherwise leave the simulation's tracer disabled and return `None`.
///
/// Failures to create the file are reported on stderr and disable tracing
/// for this run rather than aborting the experiment.
pub fn attach_from_env(sim: &mut Simulation, label: &str, seed: u64) -> Option<TraceGuard> {
    let raw = std::env::var("MPTCP_TRACE").ok()?;
    if raw.is_empty() || raw == "0" {
        return None;
    }
    let prefix = if raw == "1" || raw.eq_ignore_ascii_case("true") {
        "results/trace".to_string()
    } else {
        raw
    };
    let path = PathBuf::from(format!("{prefix}.{label}.seed{seed}.jsonl"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let file = match File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "trace: cannot create {}: {e}; tracing disabled",
                path.display()
            );
            return None;
        }
    };
    let (tracer, sink) = Tracer::to_sink(JsonlSink::new(BufWriter::new(file)));
    sim.set_tracer(tracer.with_filter(filter_from_env()));
    Some(TraceGuard { sink, path })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Environment-variable driven behavior is covered indirectly (tests
    // must not mutate the process environment: replications and other tests
    // share it across threads). The pure pieces are testable directly.

    #[test]
    fn default_filter_admits_everything() {
        // With neither env var set in the test environment this is the
        // pass-everything filter; if a caller exported filters, it still
        // composes without panicking.
        let f = filter_from_env();
        let ev = trace::TraceEvent::Fault {
            queue: 0,
            action: "link_down",
        };
        if std::env::var_os("MPTCP_TRACE_QUEUES").is_none() {
            assert!(f.admits(&ev));
        }
    }

    #[test]
    fn guard_flushes_to_named_file() {
        let dir = std::env::temp_dir().join("mptcp_trace_guard_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("t.jsonl");
        let (tracer, sink) =
            Tracer::to_sink(JsonlSink::new(BufWriter::new(File::create(&path).unwrap())));
        tracer.emit(eventsim::SimTime::ZERO, || trace::TraceEvent::Fault {
            queue: 1,
            action: "link_down",
        });
        drop(TraceGuard {
            sink,
            path: path.clone(),
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ev\":\"fault\""), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

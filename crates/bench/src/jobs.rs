//! The paper's experiments as *callable jobs* for the `orchestra`
//! experiment orchestrator.
//!
//! Each figure/table binary under `src/bin/` sweeps a parameter grid and
//! replicates every point over seeds in-process. The orchestrator instead
//! wants the atom of that matrix — **one scenario at one parameter point at
//! one seed, as a single deterministic simulation** — so it can shard the
//! full grid across a worker pool. This module is that hook: a registry of
//! [`ScenarioDef`]s, each pairing a run function (`fn(&JobCtx) ->
//! JobOutput`) with the default paper parameter grid the figures use.
//!
//! Contracts every job keeps:
//!
//! * **Single-threaded and deterministic** — a job builds one
//!   [`Simulation`] seeded with `ctx.seed` and never spawns threads or
//!   reads the environment; two runs of the same `(scenario, params, seed)`
//!   are bit-identical.
//! * **Self-witnessing** — unless `ctx.digest` is off, the run is traced
//!   into a [`DigestSink`], so the returned [`JobOutput::digest`] proves
//!   (byte-exactly) that scheduling, worker count, and sibling jobs did not
//!   change behaviour.
//! * **Panic-is-failure** — jobs validate parameters with `panic!`; the
//!   orchestrator's worker pool isolates the panic and records the job as
//!   failed without taking down the run.

use std::collections::BTreeMap;

use eventsim::{SimDuration, SimRng};
use flowsim::fattree as flow_fattree;
use flowsim::scenarios::{self as flow_scenarios, measure_two_class, TwoClass};
use flowsim::{FlowFatTreeConfig, FlowSimConfig};
use mpsim_core::Algorithm;
use netsim::Simulation;
use tcpsim::Connection;
use topo::{ScenarioA, ScenarioAParams, ScenarioB, ScenarioBParams, ScenarioC, ScenarioCParams};
use trace::{DigestSink, Tracer};

use crate::fattree::{self, LongFlows};
use crate::json::Json;
use crate::{mean_goodput_mbps, warmup_and_measure, RunCfg};

/// Which simulation engine executes a job. The packet backend
/// (`netsim`/`tcpsim`) is the fidelity reference; the flow backend
/// (`flowsim`) trades packet dynamics for rate dynamics and scales to
/// 10⁵–10⁶ concurrent connections. Scenario jobs that support both emit
/// **identical metric keys** from either, so a manifest can sweep the
/// `backend` axis and compare columns directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Per-packet discrete-event simulation (default).
    Packet,
    /// Flow-level fair-share rate allocation.
    Flow,
}

/// Everything one job run may depend on: the derived seed, the scale, and
/// the scenario parameters from the manifest's grid point.
#[derive(Debug, Clone)]
pub struct JobCtx {
    /// Simulation seed (already derived by the orchestrator; jobs use it
    /// verbatim).
    pub seed: u64,
    /// Quick (CI) scale vs full paper scale — selects measurement windows.
    pub quick: bool,
    /// Whether to capture the per-job trace digest (costs JSONL
    /// serialization of every event; off for pure-throughput runs).
    pub digest: bool,
    /// The parameter point, keyed by grid axis name.
    pub params: BTreeMap<String, Json>,
}

impl JobCtx {
    /// A context with every axis at its default.
    pub fn new(seed: u64, quick: bool) -> JobCtx {
        JobCtx {
            seed,
            quick,
            digest: true,
            params: BTreeMap::new(),
        }
    }

    /// Numeric parameter, or `default` when absent. Panics (fails the job)
    /// when present but not a number.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        match self.params.get(key) {
            None => default,
            Some(v) => v
                .as_f64()
                .unwrap_or_else(|| panic!("job param {key:?} must be a number, got {v:?}")),
        }
    }

    /// Integer parameter, or `default` when absent. Panics on non-integer
    /// or negative values.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        let v = self.f64(key, default as f64);
        if v < 0.0 || v.fract() != 0.0 {
            panic!("job param {key:?} must be a non-negative integer, got {v}");
        }
        v as usize
    }

    /// Boolean parameter, or `default` when absent.
    pub fn bool(&self, key: &str, default: bool) -> bool {
        match self.params.get(key) {
            None => default,
            Some(v) => v
                .as_bool()
                .unwrap_or_else(|| panic!("job param {key:?} must be a boolean, got {v:?}")),
        }
    }

    /// String parameter, or `default` when absent.
    pub fn str(&self, key: &str, default: &str) -> String {
        match self.params.get(key) {
            None => default.to_string(),
            Some(v) => v
                .as_str()
                .unwrap_or_else(|| panic!("job param {key:?} must be a string, got {v:?}"))
                .to_string(),
        }
    }

    /// The `algorithm` parameter parsed via [`Algorithm::from_name`]
    /// (default `lia`). An unknown name panics, which the pool records as a
    /// failed job rather than silently running the wrong algorithm.
    pub fn algorithm(&self) -> Algorithm {
        let name = self.str("algorithm", "lia");
        Algorithm::from_name(&name)
            .unwrap_or_else(|| panic!("job param algorithm={name:?} is not a known algorithm"))
    }

    /// The `backend` parameter (`"packet"` | `"flow"`, default packet).
    /// Any other value panics, failing the job, so a typo in a manifest
    /// cannot silently fall back to the wrong engine.
    pub fn backend(&self) -> Backend {
        let name = self.str("backend", "packet");
        match name.as_str() {
            "packet" => Backend::Packet,
            "flow" => Backend::Flow,
            _ => panic!("job param backend={name:?} must be \"packet\" or \"flow\""),
        }
    }

    /// The measurement windows for this scale, as a single replication at
    /// this job's seed.
    fn cfg(&self) -> RunCfg {
        let mut cfg = if self.quick {
            RunCfg::quick()
        } else {
            RunCfg::paper()
        };
        cfg.replications = 1;
        cfg.seed = self.seed;
        cfg
    }
}

/// What one job leaves behind: scalar metrics plus the determinism witness.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Scalar result metrics, keyed by name.
    pub metrics: BTreeMap<String, f64>,
    /// FNV-1a digest (16 hex chars) of the full JSONL trace, or `"-"` when
    /// digest capture was disabled.
    pub digest: String,
    /// Events absorbed by the digest sink (0 when disabled).
    pub trace_events: u64,
    /// Events dispatched by the simulation's event loop.
    pub events: u64,
    /// Simulated seconds covered by the run.
    pub sim_s: f64,
}

/// One registered scenario: a name, a one-line summary, the run function,
/// and the default paper grid (axis name → values) at each scale.
pub struct ScenarioDef {
    /// Stable scenario name used in manifests and job keys.
    pub name: &'static str,
    /// One-line description for `orchestra --list`.
    pub summary: &'static str,
    /// The job body.
    pub run: fn(&JobCtx) -> JobOutput,
    /// Default parameter grid (the paper's sweep) for the given scale.
    pub grid: fn(quick: bool) -> Vec<(String, Vec<Json>)>,
}

impl std::fmt::Debug for ScenarioDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioDef")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .finish()
    }
}

/// Build one seeded simulation, attach the digest sink per `ctx`, run
/// `body`, and package its metrics with the witness.
fn instrumented(
    ctx: &JobCtx,
    body: impl FnOnce(&mut Simulation) -> BTreeMap<String, f64>,
) -> JobOutput {
    let mut sim = Simulation::new(ctx.seed);
    let sink = if ctx.digest {
        let (tracer, sink) = Tracer::to_sink(DigestSink::new());
        sim.set_tracer(tracer);
        Some(sink)
    } else {
        None
    };
    let metrics = body(&mut sim);
    let (digest, trace_events) = match &sink {
        Some(s) => {
            let s = s.borrow();
            (s.hex(), s.events())
        }
        None => ("-".to_string(), 0),
    };
    JobOutput {
        metrics,
        digest,
        trace_events,
        events: sim.events_processed(),
        sim_s: sim.now().as_secs_f64(),
    }
}

/// Flow-backend twin of [`instrumented`] for the two-class scenarios: run
/// the warmup/measure protocol on a built [`TwoClass`] and package the
/// class means (plus whatever extra metrics `extra` reads off the finished
/// sim) with the digest witness.
fn flow_two_class(
    ctx: &JobCtx,
    mut tc: TwoClass,
    extra: impl FnOnce(&TwoClass, f64, f64) -> BTreeMap<String, f64>,
) -> JobOutput {
    let cfg = ctx.cfg();
    let sink = if ctx.digest {
        let (tracer, sink) = Tracer::to_sink(DigestSink::new());
        tc.sim.set_tracer(tracer);
        Some(sink)
    } else {
        None
    };
    let (g1, g2) = measure_two_class(
        &mut tc,
        SimDuration::from_secs_f64(cfg.warmup_s),
        SimDuration::from_secs_f64(cfg.measure_s),
        SimDuration::from_secs_f64(cfg.jitter_s),
        ctx.seed,
    );
    let metrics = extra(&tc, g1, g2);
    let (digest, trace_events) = match &sink {
        Some(s) => {
            let s = s.borrow();
            (s.hex(), s.events())
        }
        None => ("-".to_string(), 0),
    };
    JobOutput {
        metrics,
        digest,
        trace_events,
        events: tc.sim.events_processed(),
        sim_s: tc.sim.now().as_secs_f64(),
    }
}

fn nums(values: &[f64]) -> Vec<Json> {
    values.iter().map(|&v| Json::from(v)).collect()
}

fn algs(values: &[Algorithm]) -> Vec<Json> {
    values.iter().map(|a| Json::from(a.name())).collect()
}

// ---------------------------------------------------------------------------
// Scenario A (Figs. 1, 9, 10)
// ---------------------------------------------------------------------------

fn scenario_a_job(ctx: &JobCtx) -> JobOutput {
    let ratio = ctx.f64("ratio", 1.0);
    let c = ctx.f64("c1_over_c2", 1.0);
    let params = ScenarioAParams::paper((10.0 * ratio) as usize, c, ctx.algorithm());
    if ctx.backend() == Backend::Flow {
        let tc = flow_scenarios::scenario_a(
            params.n1,
            params.n2,
            params.c1_mbps,
            params.c2_mbps,
            ctx.algorithm(),
            FlowSimConfig::default(),
        );
        return flow_two_class(ctx, tc, |tc, g1, g2| {
            BTreeMap::from([
                ("type1_norm".to_string(), g1 / params.c1_mbps),
                ("type2_norm".to_string(), g2 / params.c2_mbps),
                ("p1".to_string(), tc.sim.link_loss(tc.link1)),
                ("p2".to_string(), tc.sim.link_loss(tc.link2)),
            ])
        });
    }
    let cfg = ctx.cfg();
    instrumented(ctx, |sim| {
        let s = ScenarioA::build(sim, &params);
        let all: Vec<Connection> = s.type1.iter().chain(s.type2.iter()).cloned().collect();
        let mut rng = SimRng::seed_from_u64(ctx.seed ^ 0xA5A5);
        let end = warmup_and_measure(sim, &all, &cfg, &mut rng);
        BTreeMap::from([
            (
                "type1_norm".to_string(),
                mean_goodput_mbps(&s.type1, end) / params.c1_mbps,
            ),
            (
                "type2_norm".to_string(),
                mean_goodput_mbps(&s.type2, end) / params.c2_mbps,
            ),
            ("p1".to_string(), sim.queue_stats(s.r1).loss_probability()),
            ("p2".to_string(), sim.queue_stats(s.r2).loss_probability()),
        ])
    })
}

fn scenario_a_grid(_quick: bool) -> Vec<(String, Vec<Json>)> {
    vec![
        (
            "algorithm".to_string(),
            algs(&[Algorithm::Lia, Algorithm::Olia]),
        ),
        ("backend".to_string(), vec![Json::from("packet")]),
        ("c1_over_c2".to_string(), nums(&[0.75, 1.0, 1.5])),
        ("ratio".to_string(), nums(&[1.0, 2.0, 3.0])),
    ]
}

// ---------------------------------------------------------------------------
// Scenario B (Tables I/II, Fig. 4) — also the ε-family ablation
// ---------------------------------------------------------------------------

fn scenario_b_job(ctx: &JobCtx) -> JobOutput {
    let params = ScenarioBParams::paper(ctx.bool("red_multipath", false), ctx.algorithm());
    if ctx.backend() == Backend::Flow {
        let tc = flow_scenarios::scenario_b(
            params.nb,
            params.nr,
            params.red_multipath,
            ctx.algorithm(),
            FlowSimConfig::default(),
        );
        let (nb, nr) = (params.nb as f64, params.nr as f64);
        return flow_two_class(ctx, tc, move |tc, blue, red| {
            BTreeMap::from([
                ("blue_mbps".to_string(), blue),
                ("red_mbps".to_string(), red),
                ("aggregate_mbps".to_string(), blue * nb + red * nr),
                ("p_x".to_string(), tc.sim.link_loss(tc.link1)),
                ("p_t".to_string(), tc.sim.link_loss(tc.link2)),
            ])
        });
    }
    let cfg = ctx.cfg();
    instrumented(ctx, |sim| {
        let s = ScenarioB::build(sim, &params);
        let all: Vec<Connection> = s.blue.iter().chain(s.red.iter()).cloned().collect();
        let mut rng = SimRng::seed_from_u64(ctx.seed ^ 0xB4B4);
        let end = warmup_and_measure(sim, &all, &cfg, &mut rng);
        let blue = mean_goodput_mbps(&s.blue, end);
        let red = mean_goodput_mbps(&s.red, end);
        BTreeMap::from([
            ("blue_mbps".to_string(), blue),
            ("red_mbps".to_string(), red),
            (
                "aggregate_mbps".to_string(),
                blue * s.blue.len() as f64 + red * s.red.len() as f64,
            ),
            ("p_x".to_string(), sim.queue_stats(s.x).loss_probability()),
            ("p_t".to_string(), sim.queue_stats(s.t).loss_probability()),
        ])
    })
}

fn scenario_b_grid(_quick: bool) -> Vec<(String, Vec<Json>)> {
    vec![
        (
            "algorithm".to_string(),
            algs(&[Algorithm::Lia, Algorithm::Olia]),
        ),
        ("backend".to_string(), vec![Json::from("packet")]),
        (
            "red_multipath".to_string(),
            vec![Json::from(false), Json::from(true)],
        ),
    ]
}

fn epsilon_family_grid(_quick: bool) -> Vec<(String, Vec<Json>)> {
    vec![
        (
            "algorithm".to_string(),
            algs(&[
                Algorithm::FullyCoupled,
                Algorithm::SemiCoupled,
                Algorithm::Olia,
                Algorithm::Ewtcp,
                Algorithm::Uncoupled,
            ]),
        ),
        ("red_multipath".to_string(), vec![Json::from(true)]),
    ]
}

// ---------------------------------------------------------------------------
// Scenario C (Figs. 5, 11, 12)
// ---------------------------------------------------------------------------

fn scenario_c_job(ctx: &JobCtx) -> JobOutput {
    let ratio = ctx.f64("ratio", 1.0);
    let c = ctx.f64("c1_over_c2", 1.0);
    let params = ScenarioCParams::paper((10.0 * ratio) as usize, c, ctx.algorithm());
    if ctx.backend() == Backend::Flow {
        let tc = flow_scenarios::scenario_c(
            params.n1,
            params.n2,
            params.c1_mbps,
            params.c2_mbps,
            ctx.algorithm(),
            FlowSimConfig::default(),
        );
        return flow_two_class(ctx, tc, |tc, g1, g2| {
            BTreeMap::from([
                ("multipath_norm".to_string(), g1 / params.c1_mbps),
                ("single_norm".to_string(), g2 / params.c2_mbps),
                ("p1".to_string(), tc.sim.link_loss(tc.link1)),
                ("p2".to_string(), tc.sim.link_loss(tc.link2)),
            ])
        });
    }
    let cfg = ctx.cfg();
    instrumented(ctx, |sim| {
        let s = ScenarioC::build(sim, &params);
        let all: Vec<Connection> = s.multipath.iter().chain(s.single.iter()).cloned().collect();
        let mut rng = SimRng::seed_from_u64(ctx.seed ^ 0xC3C3);
        let end = warmup_and_measure(sim, &all, &cfg, &mut rng);
        BTreeMap::from([
            (
                "multipath_norm".to_string(),
                mean_goodput_mbps(&s.multipath, end) / params.c1_mbps,
            ),
            (
                "single_norm".to_string(),
                mean_goodput_mbps(&s.single, end) / params.c2_mbps,
            ),
            ("p1".to_string(), sim.queue_stats(s.ap1).loss_probability()),
            ("p2".to_string(), sim.queue_stats(s.ap2).loss_probability()),
        ])
    })
}

// ---------------------------------------------------------------------------
// FatTree (Figs. 13, 14 / Table III)
// ---------------------------------------------------------------------------

fn fattree_permutation_job(ctx: &JobCtx) -> JobOutput {
    let k = ctx.usize("k", if ctx.quick { 4 } else { 8 });
    let subflows = ctx.usize("subflows", 4);
    let secs = ctx.f64("secs", if ctx.quick { 4.0 } else { 15.0 });
    let algorithm = ctx.algorithm();
    if ctx.backend() == Backend::Flow {
        let r = flow_fattree::permutation(
            k,
            algorithm,
            subflows,
            SimDuration::from_secs_f64(secs),
            ctx.seed,
            &FlowFatTreeConfig::default(),
            FlowSimConfig::default(),
        );
        return JobOutput {
            metrics: BTreeMap::from([
                ("throughput_pct".to_string(), r.throughput_pct),
                ("jain".to_string(), r.jain),
            ]),
            // The flow harness always digests its own trace; honor the
            // ctx.digest contract when packaging the witness.
            digest: if ctx.digest {
                format!("{:016x}", r.digest)
            } else {
                "-".to_string()
            },
            trace_events: if ctx.digest { r.trace_events } else { 0 },
            events: r.trace_events,
            sim_s: secs,
        };
    }
    instrumented(ctx, |sim| {
        let r = fattree::permutation_in(sim, k, algorithm, subflows, secs, ctx.seed);
        BTreeMap::from([
            ("throughput_pct".to_string(), r.throughput_pct),
            ("jain".to_string(), r.jain),
        ])
    })
}

fn fattree_permutation_grid(_quick: bool) -> Vec<(String, Vec<Json>)> {
    vec![
        (
            "algorithm".to_string(),
            algs(&[Algorithm::Lia, Algorithm::Olia]),
        ),
        ("backend".to_string(), vec![Json::from("packet")]),
        ("subflows".to_string(), nums(&[2.0, 4.0, 8.0])),
    ]
}

fn fattree_shortflows_job(ctx: &JobCtx) -> JobOutput {
    let k = ctx.usize("k", 4);
    let horizon_s = ctx.f64("horizon_s", if ctx.quick { 2.0 } else { 5.0 });
    let long = match ctx.str("long", "tcp").as_str() {
        "tcp" => LongFlows::Tcp,
        name => LongFlows::Mptcp(
            Algorithm::from_name(name)
                .unwrap_or_else(|| panic!("job param long={name:?} is not tcp or an algorithm")),
            ctx.usize("subflows", 8),
        ),
    };
    instrumented(ctx, |sim| {
        let r = fattree::short_flows_in(sim, k, long, horizon_s, ctx.seed);
        BTreeMap::from([
            ("mean_fct_ms".to_string(), r.mean_fct_ms),
            ("std_fct_ms".to_string(), r.std_fct_ms),
            ("core_utilization".to_string(), r.core_utilization),
            ("completed".to_string(), r.completed as f64),
            ("planned".to_string(), r.planned as f64),
        ])
    })
}

fn fattree_shortflows_grid(_quick: bool) -> Vec<(String, Vec<Json>)> {
    vec![(
        "long".to_string(),
        vec![Json::from("tcp"), Json::from("lia"), Json::from("olia")],
    )]
}

// ---------------------------------------------------------------------------
// Production-scale FatTree (the perf_scale regime, as orchestrated jobs)
// ---------------------------------------------------------------------------

/// The k=16 permutation point: 1024 hosts, the scale the arena/pool work
/// targets. Same body as [`fattree_permutation_job`] but with production
/// defaults, so manifests can sweep the big fabric without repeating the
/// parameters at every grid point.
fn fattree_k16_permutation_job(ctx: &JobCtx) -> JobOutput {
    let k = ctx.usize("k", 16);
    let subflows = ctx.usize("subflows", 4);
    let secs = ctx.f64("secs", if ctx.quick { 0.2 } else { 2.0 });
    let algorithm = ctx.algorithm();
    instrumented(ctx, |sim| {
        let r = fattree::permutation_in(sim, k, algorithm, subflows, secs, ctx.seed);
        BTreeMap::from([
            ("throughput_pct".to_string(), r.throughput_pct),
            ("jain".to_string(), r.jain),
        ])
    })
}

fn fattree_k16_permutation_grid(_quick: bool) -> Vec<(String, Vec<Json>)> {
    vec![
        (
            "algorithm".to_string(),
            algs(&[Algorithm::Lia, Algorithm::Olia]),
        ),
        ("subflows".to_string(), nums(&[2.0, 4.0])),
    ]
}

/// Sustained churn with heavy-tailed flow sizes: connections are retired as
/// they complete, exercising endpoint-slot recycling and the tcpsim ring
/// pool. The slot plateau and pool recycle counters are reported as metrics
/// so an orchestrated sweep can watch the churn invariants, not just FCTs.
fn fattree_heavytail_job(ctx: &JobCtx) -> JobOutput {
    let k = ctx.usize("k", if ctx.quick { 4 } else { 8 });
    let horizon_s = ctx.f64("horizon_s", if ctx.quick { 2.0 } else { 5.0 });
    let long = match ctx.str("long", "tcp").as_str() {
        "tcp" => LongFlows::Tcp,
        name => LongFlows::Mptcp(
            Algorithm::from_name(name)
                .unwrap_or_else(|| panic!("job param long={name:?} is not tcp or an algorithm")),
            ctx.usize("subflows", 8),
        ),
    };
    instrumented(ctx, |sim| {
        let r = fattree::heavytail_churn_in(sim, k, long, horizon_s, ctx.seed);
        BTreeMap::from([
            ("mean_fct_ms".to_string(), r.mean_fct_ms),
            ("completed".to_string(), r.completed as f64),
            ("planned".to_string(), r.planned as f64),
            ("peak_live".to_string(), r.peak_live as f64),
            ("endpoint_slots".to_string(), r.endpoint_slots as f64),
            ("long_flows".to_string(), r.long_flows as f64),
            ("live_at_end".to_string(), r.live_at_end as f64),
            ("pool_recycled".to_string(), r.pool.recycled as f64),
            ("pool_fresh".to_string(), r.pool.fresh as f64),
        ])
    })
}

fn fattree_heavytail_grid(_quick: bool) -> Vec<(String, Vec<Json>)> {
    vec![(
        "long".to_string(),
        vec![Json::from("tcp"), Json::from("lia"), Json::from("olia")],
    )]
}

// ---------------------------------------------------------------------------
// Population-scale churn — flow backend only
// ---------------------------------------------------------------------------

/// Heavy-tailed Poisson churn over a resident MPTCP population on a
/// FatTree, at scales the packet backend cannot reach (10⁵–10⁶ concurrent
/// connections at full scale). Flow backend only: the job panics on
/// `backend=packet` rather than silently running a packet experiment five
/// orders of magnitude too small.
fn flowscale_churn_job(ctx: &JobCtx) -> JobOutput {
    if ctx.backend() != Backend::Flow {
        panic!("flowscale_churn runs only on backend=\"flow\"");
    }
    let k = ctx.usize("k", if ctx.quick { 4 } else { 16 });
    let resident = ctx.usize("resident", if ctx.quick { 64 } else { 100_000 });
    let subflows = ctx.usize("subflows", 2);
    let horizon_s = ctx.f64("horizon_s", if ctx.quick { 3.0 } else { 2.0 });
    let mean_gap_ms = ctx.f64("mean_gap_ms", if ctx.quick { 400.0 } else { 50.0 });
    let r = flow_fattree::heavytail_churn(
        &flow_fattree::ChurnParams {
            k,
            resident,
            algorithm: ctx.algorithm(),
            subflows,
            mean_gap: SimDuration::from_secs_f64(mean_gap_ms / 1e3),
            horizon: SimDuration::from_secs_f64(horizon_s),
            seed: ctx.seed,
        },
        &FlowFatTreeConfig::default(),
        FlowSimConfig::large_scale(),
    );
    JobOutput {
        metrics: BTreeMap::from([
            ("resident".to_string(), r.resident as f64),
            ("planned_churn".to_string(), r.planned_churn as f64),
            ("started".to_string(), r.started as f64),
            ("completed".to_string(), r.completed as f64),
            ("peak_active".to_string(), r.peak_active as f64),
            ("recomputes".to_string(), r.recomputes as f64),
        ]),
        digest: if ctx.digest {
            format!("{:016x}", r.digest)
        } else {
            "-".to_string()
        },
        trace_events: if ctx.digest { r.trace_events } else { 0 },
        events: r.events,
        sim_s: horizon_s,
    }
}

fn flowscale_churn_grid(_quick: bool) -> Vec<(String, Vec<Json>)> {
    vec![
        (
            "algorithm".to_string(),
            algs(&[Algorithm::Lia, Algorithm::Olia]),
        ),
        ("backend".to_string(), vec![Json::from("flow")]),
    ]
}

// ---------------------------------------------------------------------------
// Smoke — a deliberately tiny scenario for orchestrator CI and tests
// ---------------------------------------------------------------------------

fn smoke_job(ctx: &JobCtx) -> JobOutput {
    let params = ScenarioCParams {
        n1: ctx.usize("n1", 2),
        n2: 2,
        c1_mbps: ctx.f64("c1_over_c2", 1.0),
        c2_mbps: 1.0,
        algorithm: ctx.algorithm(),
        config: tcpsim::TcpConfig::default(),
    };
    let cfg = RunCfg {
        warmup_s: 1.0,
        measure_s: 2.0,
        jitter_s: 0.5,
        replications: 1,
        seed: ctx.seed,
    };
    instrumented(ctx, |sim| {
        let s = ScenarioC::build(sim, &params);
        let all: Vec<Connection> = s.multipath.iter().chain(s.single.iter()).cloned().collect();
        let mut rng = SimRng::seed_from_u64(ctx.seed ^ 0x5708);
        let end = warmup_and_measure(sim, &all, &cfg, &mut rng);
        BTreeMap::from([
            (
                "multipath_norm".to_string(),
                mean_goodput_mbps(&s.multipath, end) / params.c1_mbps,
            ),
            (
                "single_norm".to_string(),
                mean_goodput_mbps(&s.single, end) / params.c2_mbps,
            ),
        ])
    })
}

fn smoke_grid(_quick: bool) -> Vec<(String, Vec<Json>)> {
    vec![
        (
            "algorithm".to_string(),
            algs(&[Algorithm::Lia, Algorithm::Olia]),
        ),
        ("c1_over_c2".to_string(), nums(&[0.8, 1.2])),
    ]
}

/// Every scenario the orchestrator can run, in manifest order.
pub const REGISTRY: &[ScenarioDef] = &[
    ScenarioDef {
        name: "scenario_a",
        summary: "Scenario A normalized throughputs and AP loss (Figs. 1, 9, 10)",
        run: scenario_a_job,
        grid: scenario_a_grid,
    },
    ScenarioDef {
        name: "scenario_b",
        summary: "Scenario B per-user rates and ISP loss (Tables I/II, Fig. 4)",
        run: scenario_b_job,
        grid: scenario_b_grid,
    },
    ScenarioDef {
        name: "scenario_c",
        summary: "Scenario C multipath vs single-path split (Figs. 5, 11, 12)",
        run: scenario_c_job,
        grid: scenario_a_grid,
    },
    ScenarioDef {
        name: "fattree_permutation",
        summary: "FatTree permutation throughput and fairness (Fig. 13)",
        run: fattree_permutation_job,
        grid: fattree_permutation_grid,
    },
    ScenarioDef {
        name: "fattree_shortflows",
        summary: "FatTree short-flow completion times (Fig. 14 / Table III)",
        run: fattree_shortflows_job,
        grid: fattree_shortflows_grid,
    },
    ScenarioDef {
        name: "fattree_k16_permutation",
        summary: "FatTree permutation at production scale (k=16, 1024 hosts)",
        run: fattree_k16_permutation_job,
        grid: fattree_k16_permutation_grid,
    },
    ScenarioDef {
        name: "fattree_shortflows_heavytail",
        summary: "FatTree heavy-tailed churn with endpoint retirement and ring recycling",
        run: fattree_heavytail_job,
        grid: fattree_heavytail_grid,
    },
    ScenarioDef {
        name: "flowscale_churn",
        summary: "population-scale Poisson churn on the flow backend (10⁵+ connections)",
        run: flowscale_churn_job,
        grid: flowscale_churn_grid,
    },
    ScenarioDef {
        name: "ablation_epsilon",
        summary: "Scenario B across the ε coupling family (ablation)",
        run: scenario_b_job,
        grid: epsilon_family_grid,
    },
    ScenarioDef {
        name: "smoke",
        summary: "tiny Scenario C slice (~3 simulated seconds) for orchestrator CI",
        run: smoke_job,
        grid: smoke_grid,
    },
];

/// Look a scenario up by its manifest name.
pub fn find(name: &str) -> Option<&'static ScenarioDef> {
    REGISTRY.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique_and_findable() {
        for (i, d) in REGISTRY.iter().enumerate() {
            assert!(find(d.name).is_some(), "{} not findable", d.name);
            assert!(
                REGISTRY[..i].iter().all(|e| e.name != d.name),
                "duplicate scenario name {}",
                d.name
            );
            let grid = (d.grid)(true);
            assert!(
                grid.iter().all(|(_, values)| !values.is_empty()),
                "{}: empty grid axis",
                d.name
            );
        }
    }

    #[test]
    fn smoke_job_is_deterministic_and_seed_sensitive() {
        let mut ctx = JobCtx::new(11, true);
        ctx.params
            .insert("algorithm".to_string(), Json::from("olia"));
        let a = smoke_job(&ctx);
        let b = smoke_job(&ctx);
        assert_eq!(a.digest, b.digest, "same seed must be byte-identical");
        assert_eq!(a.metrics, b.metrics);
        assert!(a.trace_events > 0, "digest pass saw no events");
        assert!(a.events > 0);
        assert!((a.sim_s - 3.0).abs() < 1e-9, "smoke runs 3 simulated secs");

        let mut other = ctx.clone();
        other.seed = 12;
        let c = smoke_job(&other);
        assert_ne!(a.digest, c.digest, "different seed, different trace");
    }

    #[test]
    fn digest_capture_can_be_disabled() {
        let mut ctx = JobCtx::new(11, true);
        ctx.digest = false;
        let out = smoke_job(&ctx);
        assert_eq!(out.digest, "-");
        assert_eq!(out.trace_events, 0);
        assert!(out.events > 0);
    }

    #[test]
    fn heavytail_churn_retires_and_recycles() {
        let ctx = JobCtx::new(7, true);
        let out = fattree_heavytail_job(&ctx);
        let m = &out.metrics;
        assert!(m["completed"] > 0.0, "no churn flow completed: {m:?}");
        // The endpoint table must plateau near the concurrent population,
        // not grow to two endpoints per planned flow.
        assert!(
            m["endpoint_slots"] < 2.0 * m["planned"],
            "slots did not plateau: {m:?}"
        );
        assert!(m["pool_recycled"] > 0.0, "ring pool never recycled: {m:?}");
        // Every completed flow was retired: the live population is back to
        // the long-flow baseline plus the stragglers that never finished.
        assert_eq!(
            m["live_at_end"],
            2.0 * (m["long_flows"] + m["planned"] - m["completed"]),
            "retirement left endpoints installed: {m:?}"
        );

        // A second run on this thread starts from a pool populated by the
        // first run's retirements. Recycled capacity must be invisible:
        // byte-identical trace.
        let again = fattree_heavytail_job(&ctx);
        assert_eq!(out.digest, again.digest, "ring recycling changed the trace");
    }

    #[test]
    #[should_panic(expected = "not a known algorithm")]
    fn unknown_algorithm_fails_the_job() {
        let mut ctx = JobCtx::new(1, true);
        ctx.params
            .insert("algorithm".to_string(), Json::from("bogus"));
        smoke_job(&ctx);
    }

    #[test]
    fn flow_backend_emits_packet_metric_keys() {
        // The backend axis only works if both engines emit the same
        // columns; check scenario C's key set (cheap at flow level even
        // in debug builds — rates, not packets).
        let mut ctx = JobCtx::new(11, true);
        ctx.params.insert("backend".to_string(), Json::from("flow"));
        let flow = scenario_c_job(&ctx);
        assert_eq!(
            flow.metrics.keys().collect::<Vec<_>>(),
            vec!["multipath_norm", "p1", "p2", "single_norm"],
        );
        assert!(flow.trace_events > 0, "flow digest saw no events");
        assert_ne!(flow.digest, "-");

        // Deterministic: same (params, seed) twice is byte-identical.
        let again = scenario_c_job(&ctx);
        assert_eq!(flow.digest, again.digest);
        assert_eq!(flow.metrics, again.metrics);
    }

    #[test]
    fn backend_defaults_to_packet() {
        assert_eq!(JobCtx::new(1, true).backend(), Backend::Packet);
    }

    #[test]
    #[should_panic(expected = "must be \"packet\" or \"flow\"")]
    fn unknown_backend_fails_the_job() {
        let mut ctx = JobCtx::new(1, true);
        ctx.params
            .insert("backend".to_string(), Json::from("hybrid"));
        ctx.backend();
    }

    #[test]
    #[should_panic(expected = "only on backend=\"flow\"")]
    fn flowscale_churn_rejects_the_packet_backend() {
        flowscale_churn_job(&JobCtx::new(1, true));
    }

    #[test]
    fn flowscale_churn_quick_runs_and_recycles() {
        let mut ctx = JobCtx::new(9, true);
        ctx.params.insert("backend".to_string(), Json::from("flow"));
        let out = flowscale_churn_job(&ctx);
        let m = &out.metrics;
        assert!(m["completed"] > 0.0, "no churn flow completed: {m:?}");
        assert!(m["peak_active"] >= m["resident"], "churn never overlapped");
        assert!(m["recomputes"] > 0.0);
        let again = flowscale_churn_job(&ctx);
        assert_eq!(out.digest, again.digest, "churn job must be deterministic");
    }
}

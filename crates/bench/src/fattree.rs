//! FatTree data-center experiments (§VI-B): permutation throughput
//! (Fig. 13) and the dynamic short-flow setting (Fig. 14 / Table III).

use eventsim::{SimDuration, SimRng, SimTime};
use metrics::{jain_index, Histogram};
use mpsim_core::Algorithm;
use netsim::Simulation;
use tcpsim::{Connection, TcpConfig};
use topo::{FatTree, FatTreeConfig};
use workload::{
    heavytail_churn_plan, long_short_split, permutation_traffic, short_flow_plan, HeavyTailMix,
    SHORT_FLOW_MEAN_GAP_S,
};

/// TCP parameters for the data-center runs: data-center-ish RTO floor (the
/// testbed values of §III would dwarf sub-millisecond fabric RTTs).
pub fn dc_config() -> TcpConfig {
    TcpConfig {
        min_rto: SimDuration::from_millis(200),
        initial_rto: SimDuration::from_millis(250),
        initial_rtt: 0.002,
        ..TcpConfig::default()
    }
}

/// One Fig. 13 measurement point.
#[derive(Debug, Clone)]
pub struct PermutationResult {
    /// Aggregate goodput as a percentage of the all-hosts-at-line-rate
    /// optimum.
    pub throughput_pct: f64,
    /// Per-flow goodput (% of host line rate), ranked ascending —
    /// Fig. 13(b).
    pub ranked_pct: Vec<f64>,
    /// Jain fairness over per-flow goodputs.
    pub jain: f64,
}

/// Run the §VI-B.1 permutation experiment: every host sends one long-lived
/// flow to a distinct host using `algorithm` with `subflows` subflows.
pub fn permutation(
    k: usize,
    algorithm: Algorithm,
    subflows: usize,
    secs: f64,
    seed: u64,
) -> PermutationResult {
    let mut sim = Simulation::new(seed);
    let _trace = crate::tracing::attach_from_env(&mut sim, "fattree_permutation", seed);
    permutation_in(&mut sim, k, algorithm, subflows, secs, seed)
}

/// [`permutation`] on a caller-provided simulation, so orchestrated jobs can
/// attach their own tracer (digest capture) before the topology is built.
/// `seed` only salts the workload RNG; the event-loop RNG is the one `sim`
/// was constructed with.
pub fn permutation_in(
    sim: &mut Simulation,
    k: usize,
    algorithm: Algorithm,
    subflows: usize,
    secs: f64,
    seed: u64,
) -> PermutationResult {
    let ft = FatTree::build(sim, k, &FatTreeConfig::default());
    let n = ft.num_hosts();
    let mut rng = SimRng::seed_from_u64(seed ^ 0xFA77);
    let perm = permutation_traffic(&mut rng, n);
    let cfg = dc_config();
    let conns: Vec<Connection> = (0..n)
        .map(|h| {
            ft.connect(
                sim, h, perm[h], algorithm, subflows, None, cfg, &mut rng, h as u64,
            )
        })
        .collect();
    for c in &conns {
        let jitter = SimDuration::from_secs_f64(rng.f64() * 0.2);
        sim.start_endpoint_at(c.source, SimTime::ZERO + jitter);
    }
    // Warmup the first third, measure the rest.
    sim.run_until(SimTime::from_secs_f64(secs / 3.0));
    for c in &conns {
        c.handle.reset(sim.now());
    }
    sim.run_until(SimTime::from_secs_f64(secs));
    let now = sim.now();
    let line_rate_mbps = 100.0;
    let mut pct: Vec<f64> = conns
        .iter()
        .map(|c| c.handle.goodput_mbps(now) / line_rate_mbps * 100.0)
        .collect();
    let total: f64 = pct.iter().sum::<f64>() / n as f64;
    let jain = jain_index(&pct);
    pct.sort_by(f64::total_cmp);
    PermutationResult {
        throughput_pct: total,
        ranked_pct: pct,
        jain,
    }
}

/// The long-flow side of the §VI-B.2 dynamic experiment.
#[derive(Debug, Clone, Copy)]
pub enum LongFlows {
    /// Regular TCP (one subflow, random path).
    Tcp,
    /// MPTCP with the given algorithm and subflow count (the paper: 8).
    Mptcp(Algorithm, usize),
}

/// Results of the short-flow experiment (Fig. 14 / Table III).
#[derive(Debug, Clone)]
pub struct ShortFlowResult {
    /// Mean short-flow completion time, milliseconds.
    pub mean_fct_ms: f64,
    /// Standard deviation of completion times, milliseconds.
    pub std_fct_ms: f64,
    /// Mean utilization across the network-core links.
    pub core_utilization: f64,
    /// `(fct_ms_bin_center, density)` PDF points — Fig. 14.
    pub pdf: Vec<(f64, f64)>,
    /// Completed / planned short flows.
    pub completed: usize,
    /// Planned short flows.
    pub planned: usize,
}

/// Run the §VI-B.2 dynamic experiment on a 4:1 oversubscribed `k`-ary
/// FatTree: one-third of hosts send long-lived flows (per `long`), the rest
/// send 70 kB Poisson short flows over regular TCP.
pub fn short_flows(k: usize, long: LongFlows, horizon_s: f64, seed: u64) -> ShortFlowResult {
    let mut sim = Simulation::new(seed);
    let _trace = crate::tracing::attach_from_env(&mut sim, "fattree_shortflows", seed);
    short_flows_in(&mut sim, k, long, horizon_s, seed)
}

/// [`short_flows`] on a caller-provided simulation (see [`permutation_in`]).
pub fn short_flows_in(
    sim: &mut Simulation,
    k: usize,
    long: LongFlows,
    horizon_s: f64,
    seed: u64,
) -> ShortFlowResult {
    let ftcfg = FatTreeConfig {
        oversubscription: 4.0,
        ..FatTreeConfig::default()
    };
    let ft = FatTree::build(sim, k, &ftcfg);
    let n = ft.num_hosts();
    let mut rng = SimRng::seed_from_u64(seed ^ 0x54F1);
    let perm = permutation_traffic(&mut rng, n);
    let (long_hosts, short_hosts) = long_short_split(n);
    let cfg = dc_config();

    // Long-lived flows.
    let long_conns: Vec<Connection> = long_hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| {
            let (alg, nsub) = match long {
                LongFlows::Tcp => (Algorithm::Reno, 1),
                LongFlows::Mptcp(a, s) => (a, s),
            };
            ft.connect(sim, h, perm[h], alg, nsub, None, cfg, &mut rng, i as u64)
        })
        .collect();
    for c in &long_conns {
        let jitter = SimDuration::from_secs_f64(rng.f64() * 0.5);
        sim.start_endpoint_at(c.source, SimTime::ZERO + jitter);
    }

    // Short flows: planned up front, installed as individual connections.
    let dests: Vec<usize> = short_hosts.iter().map(|&h| perm[h]).collect();
    let plan = short_flow_plan(&mut rng, &short_hosts, &dests, horizon_s);
    let warmup_s = 2.0;
    let short_conns: Vec<(f64, Connection)> = plan
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let conn = ft.connect(
                sim,
                f.src,
                f.dst,
                Algorithm::Reno,
                1,
                Some(f.size_packets),
                cfg,
                &mut rng,
                10_000 + i as u64,
            );
            let at = SimTime::from_secs_f64(warmup_s + f.start_s);
            sim.start_endpoint_at(conn.source, at);
            (f.start_s, conn)
        })
        .collect();

    // Warmup (long flows reach equilibrium), then measure core utilization
    // over the short-flow window.
    sim.run_until(SimTime::from_secs_f64(warmup_s));
    sim.reset_queue_stats();
    let end_s = warmup_s + horizon_s + 3.0; // grace period for stragglers
    sim.run_until(SimTime::from_secs_f64(end_s));

    let mut hist = Histogram::new(10.0, 60); // 10 ms bins to 600 ms
    let mut fcts = Vec::new();
    for (_, conn) in &short_conns {
        if let Some(fct) = conn.handle.completion_time() {
            let ms = fct * 1e3;
            hist.record(ms);
            fcts.push(ms);
        }
    }
    let elapsed_ns = (sim.now() - SimTime::from_secs_f64(warmup_s)).as_nanos();
    let (core_count, core_sum) = ft
        .core_queues()
        .map(|q| sim.queue_stats(q).utilization(elapsed_ns))
        .fold((0usize, 0.0f64), |(n, s), u| (n + 1, s + u));
    let core_utilization = core_sum / core_count as f64;
    ShortFlowResult {
        mean_fct_ms: hist.mean(),
        std_fct_ms: hist.std(),
        core_utilization,
        pdf: hist.pdf(),
        completed: fcts.len(),
        planned: plan.len(),
    }
}

/// Results of the sustained-churn experiment: heavy-tailed flow sizes,
/// Poisson arrivals, and completed connections *retired* as the run
/// progresses, so connection state is destroyed as well as created.
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// Mean flow completion time over retired flows, milliseconds.
    pub mean_fct_ms: f64,
    /// Flows completed and retired.
    pub completed: usize,
    /// Flows planned.
    pub planned: usize,
    /// Peak concurrently-installed churn connections.
    pub peak_live: usize,
    /// Endpoint-table slots at the end of the run. With retirement and slot
    /// recycling this plateaus near the peak concurrent population instead
    /// of growing with the total flow count — the churn invariant the
    /// recycle tests pin down.
    pub endpoint_slots: usize,
    /// Long-lived background connections (never retired).
    pub long_flows: usize,
    /// Endpoints still installed when the run ended: the long flows plus
    /// any churn flow that never completed. After full retirement this is
    /// exactly `2 × (long_flows + planned − completed)`.
    pub live_at_end: usize,
    /// Ring-pool counters over the run (recycled vs fresh ring requests).
    pub pool: tcpsim::pool::PoolStats,
}

/// Run the sustained-churn experiment standalone (see
/// [`heavytail_churn_in`]).
pub fn heavytail_churn(k: usize, long: LongFlows, horizon_s: f64, seed: u64) -> ChurnResult {
    let mut sim = Simulation::new(seed);
    let _trace = crate::tracing::attach_from_env(&mut sim, "fattree_heavytail", seed);
    heavytail_churn_in(&mut sim, k, long, horizon_s, seed)
}

/// Heavy-tailed churn on a 4:1 oversubscribed `k`-ary FatTree: one-third of
/// hosts run long-lived background flows (per `long`), the rest emit
/// Pareto/lognormal-sized flows at Poisson instants. Unlike
/// [`short_flows_in`] — which installs every planned flow up front and keeps
/// them to the end — this driver steps the run in epochs, installing flows
/// as their start times approach and retiring connections once they have
/// been complete for a grace period. Endpoint slots and ring buffers are
/// recycled, so memory follows the *concurrent* population, not the total.
pub fn heavytail_churn_in(
    sim: &mut Simulation,
    k: usize,
    long: LongFlows,
    horizon_s: f64,
    seed: u64,
) -> ChurnResult {
    /// Install/retire cadence. Coarse enough that the event loop dominates,
    /// fine enough that the live set tracks the Poisson arrivals.
    const EPOCH_S: f64 = 0.25;
    /// A completed connection lingers this long before retirement so
    /// stragglers (a duplicate data packet still queued, its re-ACK) drain
    /// to the still-installed endpoints rather than a recycled slot. One
    /// epoch is orders of magnitude above the fabric RTT.
    const RETIRE_GRACE_S: f64 = EPOCH_S;

    let ftcfg = FatTreeConfig {
        oversubscription: 4.0,
        ..FatTreeConfig::default()
    };
    let ft = FatTree::build(sim, k, &ftcfg);
    let n = ft.num_hosts();
    let mut rng = SimRng::seed_from_u64(seed ^ 0xC4A2);
    let perm = permutation_traffic(&mut rng, n);
    let (long_hosts, short_hosts) = long_short_split(n);
    let cfg = dc_config();

    // Topology-derived pool prewarm: each churn sender keeps roughly one
    // flow in flight (mean gap 200 ms ≫ the mice's completion times), and a
    // source + sink pair holds two rings. 64 slots covers the in-flight
    // window of everything but the largest elephants.
    tcpsim::pool::prewarm(2 * short_hosts.len(), 64);

    let long_conns: Vec<Connection> = long_hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| {
            let (alg, nsub) = match long {
                LongFlows::Tcp => (Algorithm::Reno, 1),
                LongFlows::Mptcp(a, s) => (a, s),
            };
            ft.connect(sim, h, perm[h], alg, nsub, None, cfg, &mut rng, i as u64)
        })
        .collect();
    for c in &long_conns {
        let jitter = SimDuration::from_secs_f64(rng.f64() * 0.5);
        sim.start_endpoint_at(c.source, SimTime::ZERO + jitter);
    }

    let dests: Vec<usize> = short_hosts.iter().map(|&h| perm[h]).collect();
    let mix = HeavyTailMix::default();
    let plan = heavytail_churn_plan(
        &mut rng,
        &short_hosts,
        &dests,
        &mix,
        SHORT_FLOW_MEAN_GAP_S,
        horizon_s,
    );

    let warmup_s = 2.0;
    sim.run_until(SimTime::from_secs_f64(warmup_s));

    let mut next = 0; // first plan entry not yet installed (plan is sorted)
    let mut live: Vec<Connection> = Vec::new();
    let mut fcts: Vec<f64> = Vec::new();
    let mut peak_live = 0;
    let end_s = warmup_s + horizon_s + 3.0; // grace period for stragglers
    let mut t = warmup_s;
    while t < end_s {
        t = (t + EPOCH_S).min(end_s);
        // Install the flows that start within this epoch. Reusing slots
        // retired in earlier epochs keeps the endpoint table at its plateau.
        while next < plan.len() && warmup_s + plan[next].start_s < t {
            let f = &plan[next];
            let conn = ft.connect(
                sim,
                f.src,
                f.dst,
                Algorithm::Reno,
                1,
                Some(f.size_packets),
                cfg,
                &mut rng,
                10_000 + next as u64,
            );
            sim.start_endpoint_at(conn.source, SimTime::from_secs_f64(warmup_s + f.start_s));
            live.push(conn);
            next += 1;
        }
        peak_live = peak_live.max(live.len());
        sim.run_until(SimTime::from_secs_f64(t));
        // Retire connections that completed at least a grace period ago;
        // dropping the returned endpoints sends their rings back to the pool.
        let now = sim.now();
        let mut keep = Vec::with_capacity(live.len());
        for c in live.drain(..) {
            let quiescent = c
                .handle
                .read(|s| s.completed_at)
                .is_some_and(|at| now.saturating_since(at).as_secs_f64() >= RETIRE_GRACE_S);
            if quiescent {
                if let Some(fct) = c.handle.completion_time() {
                    fcts.push(fct * 1e3);
                }
                drop(sim.retire_endpoint(c.source));
                drop(sim.retire_endpoint(c.sink));
            } else {
                keep.push(c);
            }
        }
        live = keep;
    }

    let mean_fct_ms = if fcts.is_empty() {
        0.0
    } else {
        fcts.iter().sum::<f64>() / fcts.len() as f64
    };
    ChurnResult {
        mean_fct_ms,
        completed: fcts.len(),
        planned: plan.len(),
        peak_live,
        endpoint_slots: sim.endpoint_slots(),
        long_flows: long_conns.len(),
        live_at_end: sim.live_endpoints(),
        pool: tcpsim::pool::stats(),
    }
}

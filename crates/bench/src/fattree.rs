//! FatTree data-center experiments (§VI-B): permutation throughput
//! (Fig. 13) and the dynamic short-flow setting (Fig. 14 / Table III).

use eventsim::{SimDuration, SimRng, SimTime};
use metrics::{jain_index, Histogram};
use mpsim_core::Algorithm;
use netsim::Simulation;
use tcpsim::{Connection, TcpConfig};
use topo::{FatTree, FatTreeConfig};
use workload::{long_short_split, permutation_traffic, short_flow_plan};

/// TCP parameters for the data-center runs: data-center-ish RTO floor (the
/// testbed values of §III would dwarf sub-millisecond fabric RTTs).
pub fn dc_config() -> TcpConfig {
    TcpConfig {
        min_rto: SimDuration::from_millis(200),
        initial_rto: SimDuration::from_millis(250),
        initial_rtt: 0.002,
        ..TcpConfig::default()
    }
}

/// One Fig. 13 measurement point.
#[derive(Debug, Clone)]
pub struct PermutationResult {
    /// Aggregate goodput as a percentage of the all-hosts-at-line-rate
    /// optimum.
    pub throughput_pct: f64,
    /// Per-flow goodput (% of host line rate), ranked ascending —
    /// Fig. 13(b).
    pub ranked_pct: Vec<f64>,
    /// Jain fairness over per-flow goodputs.
    pub jain: f64,
}

/// Run the §VI-B.1 permutation experiment: every host sends one long-lived
/// flow to a distinct host using `algorithm` with `subflows` subflows.
pub fn permutation(
    k: usize,
    algorithm: Algorithm,
    subflows: usize,
    secs: f64,
    seed: u64,
) -> PermutationResult {
    let mut sim = Simulation::new(seed);
    let _trace = crate::tracing::attach_from_env(&mut sim, "fattree_permutation", seed);
    permutation_in(&mut sim, k, algorithm, subflows, secs, seed)
}

/// [`permutation`] on a caller-provided simulation, so orchestrated jobs can
/// attach their own tracer (digest capture) before the topology is built.
/// `seed` only salts the workload RNG; the event-loop RNG is the one `sim`
/// was constructed with.
pub fn permutation_in(
    sim: &mut Simulation,
    k: usize,
    algorithm: Algorithm,
    subflows: usize,
    secs: f64,
    seed: u64,
) -> PermutationResult {
    let ft = FatTree::build(sim, k, &FatTreeConfig::default());
    let n = ft.num_hosts();
    let mut rng = SimRng::seed_from_u64(seed ^ 0xFA77);
    let perm = permutation_traffic(&mut rng, n);
    let cfg = dc_config();
    let conns: Vec<Connection> = (0..n)
        .map(|h| {
            ft.connect(
                sim, h, perm[h], algorithm, subflows, None, cfg, &mut rng, h as u64,
            )
        })
        .collect();
    for c in &conns {
        let jitter = SimDuration::from_secs_f64(rng.f64() * 0.2);
        sim.start_endpoint_at(c.source, SimTime::ZERO + jitter);
    }
    // Warmup the first third, measure the rest.
    sim.run_until(SimTime::from_secs_f64(secs / 3.0));
    for c in &conns {
        c.handle.reset(sim.now());
    }
    sim.run_until(SimTime::from_secs_f64(secs));
    let now = sim.now();
    let line_rate_mbps = 100.0;
    let mut pct: Vec<f64> = conns
        .iter()
        .map(|c| c.handle.goodput_mbps(now) / line_rate_mbps * 100.0)
        .collect();
    let total: f64 = pct.iter().sum::<f64>() / n as f64;
    let jain = jain_index(&pct);
    pct.sort_by(f64::total_cmp);
    PermutationResult {
        throughput_pct: total,
        ranked_pct: pct,
        jain,
    }
}

/// The long-flow side of the §VI-B.2 dynamic experiment.
#[derive(Debug, Clone, Copy)]
pub enum LongFlows {
    /// Regular TCP (one subflow, random path).
    Tcp,
    /// MPTCP with the given algorithm and subflow count (the paper: 8).
    Mptcp(Algorithm, usize),
}

/// Results of the short-flow experiment (Fig. 14 / Table III).
#[derive(Debug, Clone)]
pub struct ShortFlowResult {
    /// Mean short-flow completion time, milliseconds.
    pub mean_fct_ms: f64,
    /// Standard deviation of completion times, milliseconds.
    pub std_fct_ms: f64,
    /// Mean utilization across the network-core links.
    pub core_utilization: f64,
    /// `(fct_ms_bin_center, density)` PDF points — Fig. 14.
    pub pdf: Vec<(f64, f64)>,
    /// Completed / planned short flows.
    pub completed: usize,
    /// Planned short flows.
    pub planned: usize,
}

/// Run the §VI-B.2 dynamic experiment on a 4:1 oversubscribed `k`-ary
/// FatTree: one-third of hosts send long-lived flows (per `long`), the rest
/// send 70 kB Poisson short flows over regular TCP.
pub fn short_flows(k: usize, long: LongFlows, horizon_s: f64, seed: u64) -> ShortFlowResult {
    let mut sim = Simulation::new(seed);
    let _trace = crate::tracing::attach_from_env(&mut sim, "fattree_shortflows", seed);
    short_flows_in(&mut sim, k, long, horizon_s, seed)
}

/// [`short_flows`] on a caller-provided simulation (see [`permutation_in`]).
pub fn short_flows_in(
    sim: &mut Simulation,
    k: usize,
    long: LongFlows,
    horizon_s: f64,
    seed: u64,
) -> ShortFlowResult {
    let ftcfg = FatTreeConfig {
        oversubscription: 4.0,
        ..FatTreeConfig::default()
    };
    let ft = FatTree::build(sim, k, &ftcfg);
    let n = ft.num_hosts();
    let mut rng = SimRng::seed_from_u64(seed ^ 0x54F1);
    let perm = permutation_traffic(&mut rng, n);
    let (long_hosts, short_hosts) = long_short_split(n);
    let cfg = dc_config();

    // Long-lived flows.
    let long_conns: Vec<Connection> = long_hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| {
            let (alg, nsub) = match long {
                LongFlows::Tcp => (Algorithm::Reno, 1),
                LongFlows::Mptcp(a, s) => (a, s),
            };
            ft.connect(sim, h, perm[h], alg, nsub, None, cfg, &mut rng, i as u64)
        })
        .collect();
    for c in &long_conns {
        let jitter = SimDuration::from_secs_f64(rng.f64() * 0.5);
        sim.start_endpoint_at(c.source, SimTime::ZERO + jitter);
    }

    // Short flows: planned up front, installed as individual connections.
    let dests: Vec<usize> = short_hosts.iter().map(|&h| perm[h]).collect();
    let plan = short_flow_plan(&mut rng, &short_hosts, &dests, horizon_s);
    let warmup_s = 2.0;
    let short_conns: Vec<(f64, Connection)> = plan
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let conn = ft.connect(
                sim,
                f.src,
                f.dst,
                Algorithm::Reno,
                1,
                Some(f.size_packets),
                cfg,
                &mut rng,
                10_000 + i as u64,
            );
            let at = SimTime::from_secs_f64(warmup_s + f.start_s);
            sim.start_endpoint_at(conn.source, at);
            (f.start_s, conn)
        })
        .collect();

    // Warmup (long flows reach equilibrium), then measure core utilization
    // over the short-flow window.
    sim.run_until(SimTime::from_secs_f64(warmup_s));
    sim.reset_queue_stats();
    let end_s = warmup_s + horizon_s + 3.0; // grace period for stragglers
    sim.run_until(SimTime::from_secs_f64(end_s));

    let mut hist = Histogram::new(10.0, 60); // 10 ms bins to 600 ms
    let mut fcts = Vec::new();
    for (_, conn) in &short_conns {
        if let Some(fct) = conn.handle.completion_time() {
            let ms = fct * 1e3;
            hist.record(ms);
            fcts.push(ms);
        }
    }
    let elapsed_ns = (sim.now() - SimTime::from_secs_f64(warmup_s)).as_nanos();
    let core = ft.core_queues();
    let core_utilization = core
        .iter()
        .map(|&q| sim.queue_stats(q).utilization(elapsed_ns))
        .sum::<f64>()
        / core.len() as f64;
    ShortFlowResult {
        mean_fct_ms: hist.mean(),
        std_fct_ms: hist.std(),
        core_utilization,
        pdf: hist.pdf(),
        completed: fcts.len(),
        planned: plan.len(),
    }
}

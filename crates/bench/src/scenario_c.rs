//! Packet-level measurement of Scenario C (Figs. 5, 11, 12).

use eventsim::SimRng;
use metrics::Summary;
use netsim::Simulation;
use tcpsim::Connection;
use topo::{ScenarioC, ScenarioCParams};

use crate::{mean_goodput_mbps, replicate, warmup_and_measure, RunCfg};

/// Replicated measurements for one Scenario C configuration.
#[derive(Debug, Clone)]
pub struct ScenarioCMeasurement {
    /// Normalized multipath throughput `(x1+x2)/C1`.
    pub multipath_norm: Summary,
    /// Normalized single-path throughput `y/C2`.
    pub single_norm: Summary,
    /// Loss probability at AP1.
    pub p1: Summary,
    /// Loss probability at AP2.
    pub p2: Summary,
}

/// Run `cfg.replications` independent simulations of Scenario C and
/// summarize.
pub fn measure(params: &ScenarioCParams, cfg: &RunCfg) -> ScenarioCMeasurement {
    let reps = replicate(cfg, |seed| {
        let mut sim = Simulation::new(seed);
        let _trace = crate::tracing::attach_from_env(&mut sim, "scenario_c", seed);
        let s = ScenarioC::build(&mut sim, params);
        let all: Vec<Connection> = s.multipath.iter().chain(s.single.iter()).cloned().collect();
        let mut rng = SimRng::seed_from_u64(seed ^ 0xC3C3);
        let end = warmup_and_measure(&mut sim, &all, cfg, &mut rng);
        (
            mean_goodput_mbps(&s.multipath, end) / params.c1_mbps,
            mean_goodput_mbps(&s.single, end) / params.c2_mbps,
            sim.queue_stats(s.ap1).loss_probability(),
            sim.queue_stats(s.ap2).loss_probability(),
        )
    });
    ScenarioCMeasurement {
        multipath_norm: Summary::of(&reps.iter().map(|r| r.0).collect::<Vec<_>>()),
        single_norm: Summary::of(&reps.iter().map(|r| r.1).collect::<Vec<_>>()),
        p1: Summary::of(&reps.iter().map(|r| r.2).collect::<Vec<_>>()),
        p2: Summary::of(&reps.iter().map(|r| r.3).collect::<Vec<_>>()),
    }
}

//! Packet-level measurement of Scenario B (Tables I and II).

use eventsim::SimRng;
use metrics::Summary;
use netsim::Simulation;
use tcpsim::Connection;
use topo::{ScenarioB, ScenarioBParams};

use crate::{mean_goodput_mbps, replicate, warmup_and_measure, RunCfg};

/// Replicated measurements for one Scenario B configuration — the Table I/II
/// presentation: per-user rates and the aggregate.
#[derive(Debug, Clone)]
pub struct ScenarioBMeasurement {
    /// Per-Blue-user rate, Mb/s.
    pub blue_mbps: Summary,
    /// Per-Red-user rate, Mb/s.
    pub red_mbps: Summary,
    /// Aggregate goodput across all users, Mb/s.
    pub aggregate_mbps: Summary,
    /// Loss probability at ISP X's access link.
    pub p_x: Summary,
    /// Loss probability at ISP T's access link.
    pub p_t: Summary,
}

/// Run `cfg.replications` independent simulations of Scenario B and
/// summarize.
pub fn measure(params: &ScenarioBParams, cfg: &RunCfg) -> ScenarioBMeasurement {
    let reps = replicate(cfg, |seed| {
        let mut sim = Simulation::new(seed);
        let _trace = crate::tracing::attach_from_env(&mut sim, "scenario_b", seed);
        let s = ScenarioB::build(&mut sim, params);
        let all: Vec<Connection> = s.blue.iter().chain(s.red.iter()).cloned().collect();
        let mut rng = SimRng::seed_from_u64(seed ^ 0xB4B4);
        let end = warmup_and_measure(&mut sim, &all, cfg, &mut rng);
        let b = mean_goodput_mbps(&s.blue, end);
        let r = mean_goodput_mbps(&s.red, end);
        (
            b,
            r,
            b * s.blue.len() as f64 + r * s.red.len() as f64,
            sim.queue_stats(s.x).loss_probability(),
            sim.queue_stats(s.t).loss_probability(),
        )
    });
    ScenarioBMeasurement {
        blue_mbps: Summary::of(&reps.iter().map(|r| r.0).collect::<Vec<_>>()),
        red_mbps: Summary::of(&reps.iter().map(|r| r.1).collect::<Vec<_>>()),
        aggregate_mbps: Summary::of(&reps.iter().map(|r| r.2).collect::<Vec<_>>()),
        p_x: Summary::of(&reps.iter().map(|r| r.3).collect::<Vec<_>>()),
        p_t: Summary::of(&reps.iter().map(|r| r.4).collect::<Vec<_>>()),
    }
}

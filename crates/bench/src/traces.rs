//! Window and α traces of the two-bottleneck example (Figs. 7–8).

use eventsim::{SimDuration, SimRng, SimTime};
use mpsim_core::Algorithm;
use netsim::Simulation;
use tcpsim::{Connection, TcpConfig};
use topo::{stagger_starts, TwoBottleneck, TwoBottleneckParams};

/// The recorded traces plus the derived quantities the paper discusses.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// `(t, w)` samples for subflow 0 and 1.
    pub cwnd: [Vec<(f64, f64)>; 2],
    /// `(t, α)` samples for subflow 0 and 1 (empty for non-OLIA).
    pub alpha: [Vec<(f64, f64)>; 2],
    /// Time-average window per subflow over the trace.
    pub mean_cwnd: [f64; 2],
    /// Fraction of time each subflow's window sat at ≤ 1.5 MSS — OLIA keeps
    /// the congested path there "most of the time" (§IV-C).
    pub frac_at_floor: [f64; 2],
    /// Goodput of the multipath user, Mb/s.
    pub goodput_mbps: f64,
}

/// Run the two-bottleneck scenario for `secs` simulated seconds with window
/// tracing on the multipath user.
pub fn run(
    c_mbps: f64,
    n1: usize,
    n2: usize,
    algorithm: Algorithm,
    secs: f64,
    seed: u64,
) -> TraceResult {
    let config = TcpConfig {
        trace: true,
        trace_interval: 0.05,
        ..TcpConfig::default()
    };
    let params = TwoBottleneckParams {
        c_mbps,
        n1,
        n2,
        algorithm,
        config,
    };
    let mut sim = Simulation::new(seed);
    let _trace = crate::tracing::attach_from_env(&mut sim, "two_bottleneck", seed);
    let s = TwoBottleneck::build(&mut sim, &params);
    let all: Vec<Connection> = std::iter::once(s.multipath.clone())
        .chain(s.tcp1.iter().cloned())
        .chain(s.tcp2.iter().cloned())
        .collect();
    let mut rng = SimRng::seed_from_u64(seed ^ 0x7777);
    stagger_starts(&mut sim, &all, SimDuration::from_secs(2), &mut rng);
    // Reset the goodput window after the first quarter (startup transient);
    // the traces themselves record the whole run.
    sim.run_until(SimTime::from_secs_f64(secs * 0.25));
    s.multipath.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(secs));

    let h = &s.multipath.handle;
    let series = |pts: &[(f64, f64)]| {
        let mut ts = metrics::TimeSeries::new();
        for &(t, v) in pts {
            ts.push(SimTime::from_secs_f64(t), v);
        }
        ts
    };
    let cwnd = [h.cwnd_trace(0), h.cwnd_trace(1)];
    let alpha = [h.alpha_trace(0), h.alpha_trace(1)];
    let mean_cwnd = [
        series(&cwnd[0]).time_average().unwrap_or(0.0),
        series(&cwnd[1]).time_average().unwrap_or(0.0),
    ];
    let frac_at_floor = [
        series(&cwnd[0]).fraction_at_or_below(1.5).unwrap_or(0.0),
        series(&cwnd[1]).fraction_at_or_below(1.5).unwrap_or(0.0),
    ];
    let goodput = h.goodput_mbps(sim.now());
    TraceResult {
        cwnd,
        alpha,
        mean_cwnd,
        frac_at_floor,
        goodput_mbps: goodput,
    }
}

//! A small recursive-descent JSON parser and serializer.
//!
//! The scenario-file front door used `serde`/`serde_json`, which the
//! offline build environment cannot fetch; the grammar a scenario file
//! needs (objects, arrays, strings, numbers, booleans, null) fits in a page
//! of hand-rolled parser, so that is what this is. Errors carry byte
//! offsets so a broken scenario file points at the problem.
//!
//! Serialization (for the machine-readable run reports) is the mirror
//! image: [`Json::render`] emits compact JSON, [`Json::render_pretty`] the
//! indented form written under `results/`. Objects are `BTreeMap`s, so
//! output field order is sorted and byte-stable across runs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`; scenario files never need
    /// 2^53+ integers).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A field of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Build an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Compact single-line serialization.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented serialization (2 spaces), for files meant to be read by
    /// humans too.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => out.push_str(&render_number(*n)),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Shortest-roundtrip number formatting; integral values print without a
/// fractional part, non-finite values (JSON has no NaN/inf) become `null`.
fn render_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Number(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Number(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

/// Parse error: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by scenario
                            // files; map lone surrogates to the replacement
                            // character rather than failing.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("valid UTF-8 slice"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::String("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{ "a": [1, 2, {"b": "c"}], "d": {} }"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert!(v.get("d").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn unicode_and_escapes() {
        assert_eq!(
            parse(r#""café — ok""#).unwrap(),
            Json::String("café — ok".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{ nope").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        let err = parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn deterministic_object_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&String> = v.as_object().unwrap().keys().collect();
        assert_eq!(keys, ["a", "z"]);
    }

    #[test]
    fn render_roundtrips() {
        let v = Json::object([
            ("name", Json::from("run \"x\"\n")),
            ("n", Json::from(3_u64)),
            ("x", Json::from(0.125)),
            ("flag", Json::from(true)),
            ("items", Json::from(vec![Json::Null, Json::from(2.5)])),
            ("empty", Json::object::<String>([])),
        ]);
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn numbers_render_cleanly() {
        assert_eq!(Json::Number(3.0).render(), "3");
        assert_eq!(Json::Number(-2.0).render(), "-2");
        assert_eq!(Json::Number(0.1).render(), "0.1");
        assert_eq!(Json::Number(f64::NAN).render(), "null");
        assert_eq!(Json::Number(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_output_is_indented_and_sorted() {
        let v = Json::object([("b", Json::from(1_u64)), ("a", Json::from(2_u64))]);
        assert_eq!(v.render(), r#"{"a":2,"b":1}"#);
        assert_eq!(v.render_pretty(), "{\n  \"a\": 2,\n  \"b\": 1\n}");
    }

    #[test]
    fn control_chars_escaped() {
        let v = Json::String("a\u{1}b\tc".into());
        assert_eq!(v.render(), "\"a\\u0001b\\tc\"");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}

//! JSON-described custom scenarios.
//!
//! A scenario file declares named links, groups of connections over them,
//! and the measurement windows; [`run_scenario`] builds it in the simulator
//! and returns per-group goodputs and per-link statistics. This is the
//! general-purpose front door for experiments the paper didn't run — see
//! `scenarios/*.json` at the repository root for examples and the
//! `repro_run` binary for the CLI.
//!
//! ```json
//! {
//!   "seed": 1,
//!   "warmup_s": 10.0,
//!   "measure_s": 30.0,
//!   "jitter_s": 1.0,
//!   "links": [
//!     { "name": "ap", "rate_mbps": 10.0, "latency_ms": 10.0,
//!       "queue": { "kind": "red_paper" } },
//!     { "name": "rev", "rate_mbps": 10000.0, "latency_ms": 40.0,
//!       "queue": { "kind": "drop_tail", "limit": 100000 } }
//!   ],
//!   "flows": [
//!     { "name": "mptcp", "algorithm": "olia", "count": 2,
//!       "paths": [ { "fwd": ["ap"], "rev": ["rev"] } ] }
//!   ]
//! }
//! ```

use std::collections::BTreeMap;

use eventsim::{SimDuration, SimRng, SimTime};
use metrics::Registry;
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, QueueId, RedParams, Simulation};
use tcpsim::{Connection, ConnectionSpec, PathSpec};
use topo::stagger_starts;

use crate::json::Json;

/// Queue discipline selection in a scenario file.
#[derive(Debug, Clone)]
pub enum QueueSpec {
    /// The paper's capacity-scaled averaged-RED profile.
    RedPaper,
    /// Explicit RED parameters.
    Red {
        /// No drops below this length (packets).
        min_th: f64,
        /// `max_p` is reached here.
        max_th: f64,
        /// Drop probability at `max_th`.
        max_p: f64,
        /// Hard cap (packets).
        limit: usize,
        /// EWMA weight (0 = instantaneous).
        ewma_weight: f64,
    },
    /// Drop-tail with the given packet cap.
    DropTail {
        /// Buffer capacity in packets.
        limit: usize,
    },
    /// Fixed independent loss probability.
    Bernoulli {
        /// Per-packet drop probability.
        p: f64,
        /// Buffer capacity in packets.
        limit: usize,
    },
}

/// One named link (one direction).
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Name referenced by flow paths.
    pub name: String,
    /// Rate in Mb/s.
    pub rate_mbps: f64,
    /// Propagation latency in milliseconds.
    pub latency_ms: f64,
    /// Drop discipline.
    pub queue: QueueSpec,
}

/// A path named by the links it traverses.
#[derive(Debug, Clone)]
pub struct PathSpecNames {
    /// Forward (data) links, in order.
    pub fwd: Vec<String>,
    /// Reverse (ACK) links, in order.
    pub rev: Vec<String>,
}

/// A group of identical connections.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Group name for the report.
    pub name: String,
    /// Algorithm name (`olia`, `lia`, `reno`, ...).
    pub algorithm: String,
    /// How many identical connections to create.
    pub count: usize,
    /// The paths every connection in the group uses.
    pub paths: Vec<PathSpecNames>,
    /// Finite flow size in packets (absent = long-lived).
    pub size_packets: Option<u64>,
    /// Enable the §VII path-pruning extension with this cooldown (seconds).
    pub prune_cooldown_s: Option<f64>,
}

/// A whole scenario file.
#[derive(Debug, Clone)]
pub struct ScenarioFile {
    /// RNG seed (determinism!).
    pub seed: u64,
    /// Warmup seconds discarded before measuring.
    pub warmup_s: f64,
    /// Measured seconds.
    pub measure_s: f64,
    /// Start jitter window, seconds.
    pub jitter_s: f64,
    /// The links.
    pub links: Vec<LinkSpec>,
    /// The flow groups.
    pub flows: Vec<FlowSpec>,
}

// ---- JSON field extraction (hand-rolled: see crate::json) ----------------

fn field<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("scenario parse error: {ctx}: missing field {key:?}"))
}

fn num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    field(obj, key, ctx)?
        .as_f64()
        .ok_or_else(|| format!("scenario parse error: {ctx}: field {key:?} must be a number"))
}

fn num_or(obj: &Json, key: &str, ctx: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("scenario parse error: {ctx}: field {key:?} must be a number")),
    }
}

fn string(obj: &Json, key: &str, ctx: &str) -> Result<String, String> {
    field(obj, key, ctx)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("scenario parse error: {ctx}: field {key:?} must be a string"))
}

fn string_list(v: &Json, ctx: &str) -> Result<Vec<String>, String> {
    v.as_array()
        .ok_or_else(|| format!("scenario parse error: {ctx}: expected an array of strings"))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("scenario parse error: {ctx}: expected a string"))
        })
        .collect()
}

fn items<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a [Json], String> {
    field(obj, key, ctx)?
        .as_array()
        .ok_or_else(|| format!("scenario parse error: {ctx}: field {key:?} must be an array"))
}

fn queue_spec(v: &Json, ctx: &str) -> Result<QueueSpec, String> {
    let kind = string(v, "kind", ctx)?;
    match kind.as_str() {
        "red_paper" => Ok(QueueSpec::RedPaper),
        "red" => Ok(QueueSpec::Red {
            min_th: num(v, "min_th", ctx)?,
            max_th: num(v, "max_th", ctx)?,
            max_p: num(v, "max_p", ctx)?,
            limit: num(v, "limit", ctx)? as usize,
            ewma_weight: num_or(v, "ewma_weight", ctx, 0.0)?,
        }),
        "drop_tail" => Ok(QueueSpec::DropTail {
            limit: num(v, "limit", ctx)? as usize,
        }),
        "bernoulli" => Ok(QueueSpec::Bernoulli {
            p: num(v, "p", ctx)?,
            limit: num(v, "limit", ctx)? as usize,
        }),
        other => Err(format!(
            "scenario parse error: {ctx}: unknown queue kind {other:?}"
        )),
    }
}

/// Per-group result.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// Group name.
    pub name: String,
    /// Goodput of each connection, Mb/s.
    pub goodputs_mbps: Vec<f64>,
    /// Completion times (seconds) of finished finite flows.
    pub completion_times_s: Vec<f64>,
}

/// Per-link result.
#[derive(Debug, Clone)]
pub struct LinkReport {
    /// Link name.
    pub name: String,
    /// Loss probability over the measurement window.
    pub loss_probability: f64,
    /// Utilization over the measurement window.
    pub utilization: f64,
}

/// The scenario outcome.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// One entry per flow group.
    pub groups: Vec<GroupReport>,
    /// One entry per link.
    pub links: Vec<LinkReport>,
    /// Every counter and gauge of the run under stable dotted names
    /// (`queue.<link>.dropped`, `flow.<group>.<i>.goodput_mbps`, ...),
    /// ready to snapshot into a machine-readable run report.
    pub registry: Registry,
    /// Simulation events dispatched over the whole run.
    pub events_processed: u64,
    /// Simulated seconds covered (warmup + measurement).
    pub sim_end: SimTime,
}

/// Parse a scenario from JSON text.
pub fn parse_scenario(json: &str) -> Result<ScenarioFile, String> {
    let doc = crate::json::parse(json).map_err(|e| format!("scenario parse error: {e}"))?;
    let links = items(&doc, "links", "scenario")?
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let ctx = format!("links[{i}]");
            Ok(LinkSpec {
                name: string(l, "name", &ctx)?,
                rate_mbps: num(l, "rate_mbps", &ctx)?,
                latency_ms: num(l, "latency_ms", &ctx)?,
                queue: queue_spec(field(l, "queue", &ctx)?, &ctx)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let flows = items(&doc, "flows", "scenario")?
        .iter()
        .enumerate()
        .map(|(i, fl)| {
            let ctx = format!("flows[{i}]");
            let paths = items(fl, "paths", &ctx)?
                .iter()
                .map(|p| {
                    Ok(PathSpecNames {
                        fwd: string_list(field(p, "fwd", &ctx)?, &ctx)?,
                        rev: string_list(field(p, "rev", &ctx)?, &ctx)?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(FlowSpec {
                name: string(fl, "name", &ctx)?,
                algorithm: string(fl, "algorithm", &ctx)?,
                count: num_or(fl, "count", &ctx, 1.0)? as usize,
                paths,
                size_packets: fl
                    .get("size_packets")
                    .and_then(Json::as_f64)
                    .map(|n| n as u64),
                prune_cooldown_s: fl.get("prune_cooldown_s").and_then(Json::as_f64),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ScenarioFile {
        seed: num_or(&doc, "seed", "scenario", 1.0)? as u64,
        warmup_s: num(&doc, "warmup_s", "scenario")?,
        measure_s: num(&doc, "measure_s", "scenario")?,
        jitter_s: num_or(&doc, "jitter_s", "scenario", 0.0)?,
        links,
        flows,
    })
}

/// Build and run a parsed scenario.
///
/// Returns an error for dangling link names, unknown algorithms, or empty
/// path lists — everything else panics only on programmer error.
pub fn run_scenario(spec: &ScenarioFile) -> Result<ScenarioReport, String> {
    let mut sim = Simulation::new(spec.seed);
    let _trace = crate::tracing::attach_from_env(&mut sim, "custom", spec.seed);
    // BTreeMap, not HashMap: only keyed lookups today, but a sorted map
    // keeps any future iteration (e.g. error listings) deterministic.
    let mut by_name: BTreeMap<&str, QueueId> = BTreeMap::new();
    for link in &spec.links {
        if link.rate_mbps <= 0.0 {
            return Err(format!("link {}: rate must be positive", link.name));
        }
        let rate = link.rate_mbps * 1e6;
        let latency = SimDuration::from_secs_f64(link.latency_ms / 1e3);
        let config = match &link.queue {
            QueueSpec::RedPaper => QueueConfig::red_paper(rate, latency),
            QueueSpec::Red {
                min_th,
                max_th,
                max_p,
                limit,
                ewma_weight,
            } => QueueConfig::red(
                rate,
                latency,
                RedParams {
                    min_th: *min_th,
                    max_th: *max_th,
                    max_p: *max_p,
                    limit: *limit,
                    ewma_weight: *ewma_weight,
                },
            ),
            QueueSpec::DropTail { limit } => QueueConfig::drop_tail(rate, latency, *limit),
            QueueSpec::Bernoulli { p, limit } => QueueConfig::bernoulli(rate, latency, *p, *limit),
        };
        let id = sim.add_queue(config);
        if by_name.insert(link.name.as_str(), id).is_some() {
            return Err(format!("duplicate link name {:?}", link.name));
        }
    }

    let resolve = |names: &[String]| -> Result<Vec<QueueId>, String> {
        names
            .iter()
            .map(|n| {
                by_name
                    .get(n.as_str())
                    .copied()
                    .ok_or_else(|| format!("unknown link {n:?}"))
            })
            .collect()
    };

    let mut groups: Vec<(String, Vec<Connection>)> = Vec::new();
    let mut conn_id = 0;
    for flow in &spec.flows {
        let algorithm = Algorithm::from_name(&flow.algorithm)
            .ok_or_else(|| format!("unknown algorithm {:?}", flow.algorithm))?;
        if flow.paths.is_empty() {
            return Err(format!("flow {:?} has no paths", flow.name));
        }
        let mut conns = Vec::with_capacity(flow.count);
        for _ in 0..flow.count.max(1) {
            let mut cspec = ConnectionSpec::new(algorithm);
            for p in &flow.paths {
                cspec = cspec.with_path(PathSpec::new(
                    route(&resolve(&p.fwd)?),
                    route(&resolve(&p.rev)?),
                ));
            }
            if let Some(n) = flow.size_packets {
                cspec = cspec.with_size_packets(n);
            }
            if let Some(cd) = flow.prune_cooldown_s {
                cspec = cspec.with_path_pruning(SimDuration::from_secs_f64(cd));
            }
            conns.push(cspec.install(&mut sim, conn_id));
            conn_id += 1;
        }
        groups.push((flow.name.clone(), conns));
    }

    let all: Vec<Connection> = groups.iter().flat_map(|(_, c)| c.iter().cloned()).collect();
    let mut rng = SimRng::seed_from_u64(spec.seed ^ 0xCF61);
    stagger_starts(
        &mut sim,
        &all,
        SimDuration::from_secs_f64(spec.jitter_s),
        &mut rng,
    );
    let warm = SimTime::from_secs_f64(spec.warmup_s);
    sim.run_until(warm);
    sim.reset_queue_stats();
    for c in &all {
        c.handle.reset(sim.now());
    }
    let end = SimTime::from_secs_f64(spec.warmup_s + spec.measure_s);
    sim.run_until(end);

    let elapsed_ns = (end - warm).as_nanos();
    let mut registry = Registry::new();
    let group_reports: Vec<GroupReport> = groups
        .iter()
        .map(|(name, conns)| GroupReport {
            name: name.clone(),
            goodputs_mbps: conns.iter().map(|c| c.handle.goodput_mbps(end)).collect(),
            completion_times_s: conns
                .iter()
                .filter_map(|c| c.handle.completion_time())
                .collect(),
        })
        .collect();
    for g in &group_reports {
        for (i, &mbps) in g.goodputs_mbps.iter().enumerate() {
            registry.set_gauge(&format!("flow.{}.{i}.goodput_mbps", g.name), mbps);
        }
        for &fct in &g.completion_times_s {
            registry
                .histogram(&format!("flow.{}.fct_s", g.name), 0.25, 400)
                .record(fct);
        }
    }
    let link_reports: Vec<LinkReport> = spec
        .links
        .iter()
        .map(|l| {
            let stats = sim.queue_stats(by_name[l.name.as_str()]);
            let q = format!("queue.{}", l.name);
            registry.inc(&format!("{q}.arrived"), stats.arrived);
            registry.inc(&format!("{q}.dropped"), stats.dropped);
            registry.inc(&format!("{q}.dropped_down"), stats.dropped_down);
            registry.inc(&format!("{q}.marked"), stats.marked);
            registry.inc(&format!("{q}.forwarded"), stats.forwarded);
            registry.set_gauge(&format!("{q}.loss_probability"), stats.loss_probability());
            registry.set_gauge(&format!("{q}.utilization"), stats.utilization(elapsed_ns));
            LinkReport {
                name: l.name.clone(),
                loss_probability: stats.loss_probability(),
                utilization: stats.utilization(elapsed_ns),
            }
        })
        .collect();
    Ok(ScenarioReport {
        groups: group_reports,
        links: link_reports,
        registry,
        events_processed: sim.events_processed(),
        sim_end: end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"{
        "seed": 4,
        "warmup_s": 5.0,
        "measure_s": 15.0,
        "jitter_s": 1.0,
        "links": [
            { "name": "ap", "rate_mbps": 10.0, "latency_ms": 10.0,
              "queue": { "kind": "red_paper" } },
            { "name": "back", "rate_mbps": 10.0, "latency_ms": 10.0,
              "queue": { "kind": "drop_tail", "limit": 100 } },
            { "name": "rev", "rate_mbps": 10000.0, "latency_ms": 40.0,
              "queue": { "kind": "drop_tail", "limit": 100000 } }
        ],
        "flows": [
            { "name": "mptcp", "algorithm": "olia", "count": 2,
              "paths": [ { "fwd": ["ap"], "rev": ["rev"] },
                          { "fwd": ["back"], "rev": ["rev"] } ] },
            { "name": "tcp", "algorithm": "reno",
              "paths": [ { "fwd": ["ap"], "rev": ["rev"] } ] }
        ]
    }"#;

    #[test]
    fn parses_and_runs_demo() {
        let spec = parse_scenario(DEMO).expect("parse");
        assert_eq!(spec.links.len(), 3);
        assert_eq!(spec.flows[0].count, 2);
        let report = run_scenario(&spec).expect("run");
        assert_eq!(report.groups.len(), 2);
        assert_eq!(report.groups[0].goodputs_mbps.len(), 2);
        // Everyone delivers something over 15 measured seconds.
        for g in &report.groups {
            for &r in &g.goodputs_mbps {
                assert!(r > 0.5, "group {} rate {r}", g.name);
            }
        }
        // The shared AP is busy.
        assert!(report.links[0].utilization > 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = parse_scenario(DEMO).unwrap();
        let a = run_scenario(&spec).unwrap();
        let b = run_scenario(&spec).unwrap();
        assert_eq!(a.groups[0].goodputs_mbps, b.groups[0].goodputs_mbps);
    }

    #[test]
    fn unknown_link_rejected() {
        let bad = DEMO.replace("\"fwd\": [\"back\"]", "\"fwd\": [\"nope\"]");
        let spec = parse_scenario(&bad).unwrap();
        let err = run_scenario(&spec).unwrap_err();
        assert!(err.contains("unknown link"), "{err}");
    }

    #[test]
    fn unknown_algorithm_rejected() {
        let bad = DEMO.replace("\"reno\"", "\"warp-speed\"");
        let spec = parse_scenario(&bad).unwrap();
        assert!(run_scenario(&spec)
            .unwrap_err()
            .contains("unknown algorithm"));
    }

    #[test]
    fn duplicate_link_rejected() {
        let bad = DEMO.replace("\"name\": \"back\"", "\"name\": \"ap\"");
        let spec = parse_scenario(&bad).unwrap();
        assert!(run_scenario(&spec).unwrap_err().contains("duplicate link"));
    }

    #[test]
    fn garbage_json_is_an_error() {
        assert!(parse_scenario("{ nope").is_err());
    }

    #[test]
    fn finite_flows_report_completions() {
        let spec = parse_scenario(
            r#"{
            "warmup_s": 0.0, "measure_s": 20.0,
            "links": [
                { "name": "l", "rate_mbps": 50.0, "latency_ms": 5.0,
                  "queue": { "kind": "drop_tail", "limit": 200 } },
                { "name": "r", "rate_mbps": 50.0, "latency_ms": 5.0,
                  "queue": { "kind": "drop_tail", "limit": 200 } }
            ],
            "flows": [
                { "name": "short", "algorithm": "reno", "count": 3,
                  "size_packets": 47,
                  "paths": [ { "fwd": ["l"], "rev": ["r"] } ] }
            ]
        }"#,
        )
        .unwrap();
        let report = run_scenario(&spec).unwrap();
        assert_eq!(report.groups[0].completion_times_s.len(), 3);
    }
}

//! Packet-level measurement of Scenario A (Figs. 1, 9, 10).

use eventsim::SimRng;
use metrics::Summary;
use netsim::Simulation;
use tcpsim::Connection;
use topo::{ScenarioA, ScenarioAParams};

use crate::{mean_goodput_mbps, replicate, warmup_and_measure, RunCfg};

/// Replicated measurements for one Scenario A configuration.
#[derive(Debug, Clone)]
pub struct ScenarioAMeasurement {
    /// Normalized type1 throughput `(x1+x2)/C1`.
    pub type1_norm: Summary,
    /// Normalized type2 throughput `y/C2`.
    pub type2_norm: Summary,
    /// Loss probability at the streaming-server bottleneck.
    pub p1: Summary,
    /// Loss probability at the shared AP.
    pub p2: Summary,
}

/// Run `cfg.replications` independent simulations of Scenario A and
/// summarize.
pub fn measure(params: &ScenarioAParams, cfg: &RunCfg) -> ScenarioAMeasurement {
    let reps = replicate(cfg, |seed| {
        let mut sim = Simulation::new(seed);
        let _trace = crate::tracing::attach_from_env(&mut sim, "scenario_a", seed);
        let s = ScenarioA::build(&mut sim, params);
        let all: Vec<Connection> = s.type1.iter().chain(s.type2.iter()).cloned().collect();
        let mut rng = SimRng::seed_from_u64(seed ^ 0xA5A5);
        let end = warmup_and_measure(&mut sim, &all, cfg, &mut rng);
        (
            mean_goodput_mbps(&s.type1, end) / params.c1_mbps,
            mean_goodput_mbps(&s.type2, end) / params.c2_mbps,
            sim.queue_stats(s.r1).loss_probability(),
            sim.queue_stats(s.r2).loss_probability(),
        )
    });
    ScenarioAMeasurement {
        type1_norm: Summary::of(&reps.iter().map(|r| r.0).collect::<Vec<_>>()),
        type2_norm: Summary::of(&reps.iter().map(|r| r.1).collect::<Vec<_>>()),
        p1: Summary::of(&reps.iter().map(|r| r.2).collect::<Vec<_>>()),
        p2: Summary::of(&reps.iter().map(|r| r.3).collect::<Vec<_>>()),
    }
}

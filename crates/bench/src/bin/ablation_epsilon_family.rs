//! Ablation: the ε design spectrum of §II on Scenario C.
//!
//! ε = 0 (fully coupled, also "OLIA without α"), ε = 1 (LIA), ε = 2
//! (uncoupled Reno per subflow), the related-work baselines EWTCP and
//! semi-coupled, OLIA itself, and the simulated probing-cost optimum —
//! measuring how much AP2 capacity each leaves to the single-path TCP users
//! and how well each uses its own AP1.
//!
//! Expected ordering for the single-path users: uncoupled (worst, no
//! congestion balancing) < LIA < fully-coupled ≈ OLIA (best); and the
//! fully-coupled algorithm pays for it with poor probing/responsiveness,
//! which the two-bottleneck responsiveness ablation quantifies.

use bench::report::RunReport;
use bench::table::{f3, f4, pm, Table};
use bench::{scenario_c, RunCfg};
use mpsim_core::Algorithm;
use topo::ScenarioCParams;

fn main() {
    let cfg = RunCfg::from_env();
    let mut report = RunReport::start("ablation_epsilon_family");
    report.cfg(&cfg);
    println!(
        "ε-family ablation on Scenario C (N1=N2=10, C1/C2=2); {} replications\n",
        cfg.replications
    );
    let mut t = Table::new(
        "Scenario C across the algorithm family",
        &[
            "algorithm",
            "single-path norm",
            "multipath norm",
            "p2",
            "p1",
        ],
    );
    for alg in [
        Algorithm::Uncoupled,
        Algorithm::Ewtcp,
        Algorithm::SemiCoupled,
        Algorithm::Lia,
        Algorithm::FullyCoupled,
        Algorithm::Olia,
        Algorithm::OptimumProbe,
    ] {
        let m = scenario_c::measure(&ScenarioCParams::paper(10, 2.0, alg), &cfg);
        t.row(&[
            alg.name().into(),
            pm(m.single_norm.mean, m.single_norm.ci95),
            pm(m.multipath_norm.mean, m.multipath_norm.ci95),
            f4(m.p2.mean),
            f4(m.p1.mean),
        ]);
    }
    t.print();
    t.write_csv("ablation_epsilon_family");
    report.table(&t);
    report.write_or_warn();
    println!(
        "Reading: uncoupled grabs the most from the TCP users; OLIA leaves AP2 nearly\n\
         untouched while still filling AP1 — escaping the ε tradeoff. {}",
        f3(0.0) // keep formatting helpers exercised even when unused elsewhere
    );
}

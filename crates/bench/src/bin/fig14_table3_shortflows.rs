//! Figure 14 and Table III: short flows competing with long-lived flows in
//! a 4:1 oversubscribed FatTree.
//!
//! One-third of the hosts send a continuous flow (TCP, MPTCP-LIA ×8, or
//! MPTCP-OLIA ×8); the rest send 70 kB TCP flows at Poisson instants
//! (mean gap 200 ms). Reports mean ± std completion time, the FCT
//! distribution, and network-core utilization.
//!
//! Paper values: LIA 98±57 ms / 63.2%; OLIA 90±42 ms / 63%; TCP
//! 73±57 ms / 39.3%.

use bench::fattree::{self, LongFlows};
use bench::report::RunReport;
use bench::table::{f3, Table};
use mpsim_core::Algorithm;

fn main() {
    let quick = std::env::var_os("REPRO_QUICK").is_some();
    let (k, horizon) = if quick { (4, 12.0) } else { (8, 30.0) };
    let mut report = RunReport::start("fig14_table3_shortflows");
    report.param("k", k as u64);
    report.param("horizon_s", horizon);
    report.param("seed", 11u64);
    println!("Short flows in a 4:1 oversubscribed FatTree (Fig. 14/Table III) — k={k}\n");

    let cases = [
        ("MPTCP-LIA", LongFlows::Mptcp(Algorithm::Lia, 8)),
        ("MPTCP-OLIA", LongFlows::Mptcp(Algorithm::Olia, 8)),
        ("TCP", LongFlows::Tcp),
    ];
    let mut t3 = Table::new(
        "Table III",
        &[
            "long flows",
            "short FCT mean ms",
            "FCT std ms",
            "core util %",
            "completed",
            "paper FCT / util",
        ],
    );
    let paper = ["98 ± 57 / 63.2%", "90 ± 42 / 63%", "73 ± 57 / 39.3%"];
    let mut pdfs: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for ((name, long), paper_row) in cases.into_iter().zip(paper) {
        let r = fattree::short_flows(k, long, horizon, 11);
        t3.row(&[
            name.into(),
            f3(r.mean_fct_ms),
            f3(r.std_fct_ms),
            f3(r.core_utilization * 100.0),
            format!("{}/{}", r.completed, r.planned),
            paper_row.into(),
        ]);
        pdfs.push((name.into(), r.pdf));
    }
    t3.print();
    t3.write_csv("table3_shortflows");

    let mut f14 = Table::new(
        "Fig 14: PDF of short-flow completion times (density per ms)",
        &["fct_ms", "LIA", "OLIA", "TCP"],
    );
    for i in 0..pdfs[0].1.len().min(40) {
        f14.row(&[
            f3(pdfs[0].1[i].0),
            format!("{:.5}", pdfs[0].1[i].1),
            format!("{:.5}", pdfs[1].1[i].1),
            format!("{:.5}", pdfs[2].1[i].1),
        ]);
    }
    f14.print();
    f14.write_csv("fig14_shortflow_pdf");
    report.table(&t3);
    report.table(&f14);
    report.write_or_warn();
    println!(
        "Paper shape: OLIA matches LIA's core utilization but completes short flows\n\
         ~10% faster on average (more for the slow tail); plain TCP is fastest for the\n\
         short flows but leaves most of the core idle."
    );
}

//! Figure 1(b)/(c): Scenario A under MPTCP-LIA.
//!
//! Prints, for the paper's grid (N1/N2 ∈ {1,2,3}, C1/C2 ∈ {0.75,1,1.5}):
//! normalized type1/type2 throughputs and the shared-AP loss probability p2
//! — measured by packet-level simulation, predicted by the fixed-point
//! analysis (Appendix A), and bounded by the theoretical optimum with
//! probing cost.
//!
//! `REPRO_QUICK=1` shortens the runs.

use bench::report::RunReport;
use bench::table::{f3, f4, pm, Table};
use bench::{scenario_a, RunCfg};
use fluid::scenario_a as analysis;
use mpsim_core::Algorithm;
use topo::ScenarioAParams;

fn main() {
    let cfg = RunCfg::from_env();
    let mut report = RunReport::start("fig1_scenario_a");
    report.cfg(&cfg);
    report.param("algorithm", "lia");
    println!(
        "Scenario A (Fig. 1) — LIA; {} replications of {}s+{}s each\n",
        cfg.replications, cfg.warmup_s, cfg.measure_s
    );
    let mut thr = Table::new(
        "Fig 1(b): normalized throughput",
        &[
            "N1/N2",
            "C1/C2",
            "type1 sim",
            "type1 theory",
            "type2 sim",
            "type2 theory",
            "type2 optimum",
        ],
    );
    let mut loss = Table::new(
        "Fig 1(c): loss probability p2 at the shared AP",
        &[
            "N1/N2",
            "C1/C2",
            "p2 sim",
            "p2 theory",
            "p1 sim",
            "p1 theory",
        ],
    );
    for ratio in [1.0, 2.0, 3.0] {
        for c in [0.75, 1.0, 1.5] {
            let params = ScenarioAParams::paper((10.0 * ratio) as usize, c, Algorithm::Lia);
            let m = scenario_a::measure(&params, &cfg);
            let inputs = analysis::ScenarioAInputs::paper(ratio, c);
            let th = analysis::lia(&inputs);
            let opt = analysis::optimal_with_probing(&inputs);
            thr.row(&[
                f3(ratio),
                f3(c),
                pm(m.type1_norm.mean, m.type1_norm.ci95),
                f3(th.type1_norm),
                pm(m.type2_norm.mean, m.type2_norm.ci95),
                f3(th.type2_norm),
                f3(opt.type2_norm),
            ]);
            loss.row(&[
                f3(ratio),
                f3(c),
                f4(m.p2.mean),
                f4(th.p2),
                f4(m.p1.mean),
                f4(th.p1),
            ]);
        }
    }
    thr.print();
    thr.write_csv("fig1b_scenario_a_throughput");
    loss.print();
    loss.write_csv("fig1c_scenario_a_loss");
    report.table(&thr);
    report.table(&loss);
    report.write_or_warn();
    println!(
        "Paper shape: type1 stays at 1.0 (capped by the server); type2 falls ~30% at\n\
         N1=N2 and 50-60% at N1=3N2; p2 grows with N1/N2 — LIA fails to balance congestion."
    );
}

//! Ablation: RTT heterogeneity (Remark 3 of §V-B).
//!
//! The paper notes that TCP-compatible algorithms inherit TCP's RTT bias,
//! and that LIA/OLIA *compensate for different RTTs* in their increase
//! terms. A two-path user over two identical 10 Mb/s bottlenecks (each
//! shared with 3 TCP flows at that path's RTT), but with one-way
//! propagation 20 ms vs 80 ms. Uncoupled Reno splits ∝ 1/rtt; the coupled
//! algorithms' allocations reflect their design (OLIA concentrates on the
//! path with the higher TCP rate — the short-RTT one — per Theorem 1).

use bench::report::RunReport;
use bench::table::{f3, Table};
use eventsim::{SimDuration, SimRng, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, Simulation};
use tcpsim::{Connection, ConnectionSpec, PathSpec};
use topo::stagger_starts;

/// Returns (fast-path Mb/s, slow-path Mb/s, total) for the multipath user.
fn run(alg: Algorithm, secs: f64) -> (f64, f64, f64) {
    let mut sim = Simulation::new(37);
    let mk = |sim: &mut Simulation, one_way_ms: u64| {
        (
            sim.add_queue(QueueConfig::red_paper(
                10e6,
                SimDuration::from_millis(one_way_ms),
            )),
            sim.add_queue(QueueConfig::drop_tail(
                10e9,
                SimDuration::from_millis(one_way_ms),
                1_000_000,
            )),
        )
    };
    let (fast_f, fast_r) = mk(&mut sim, 20);
    let (slow_f, slow_r) = mk(&mut sim, 80);
    let mptcp = ConnectionSpec::new(alg)
        .with_path(PathSpec::new(route(&[fast_f]), route(&[fast_r])))
        .with_path(PathSpec::new(route(&[slow_f]), route(&[slow_r])))
        .install(&mut sim, 0);
    let mut conns: Vec<Connection> = vec![mptcp.clone()];
    for i in 0..3 {
        conns.push(
            ConnectionSpec::new(Algorithm::Reno)
                .with_path(PathSpec::new(route(&[fast_f]), route(&[fast_r])))
                .install(&mut sim, 1 + i),
        );
        conns.push(
            ConnectionSpec::new(Algorithm::Reno)
                .with_path(PathSpec::new(route(&[slow_f]), route(&[slow_r])))
                .install(&mut sim, 10 + i),
        );
    }
    let mut rng = SimRng::seed_from_u64(37);
    stagger_starts(&mut sim, &conns, SimDuration::from_secs(1), &mut rng);
    sim.run_until(SimTime::from_secs_f64(secs / 3.0));
    mptcp.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(secs));
    let fast = mptcp.handle.subflow_mbps(0, sim.now());
    let slow = mptcp.handle.subflow_mbps(1, sim.now());
    (fast, slow, fast + slow)
}

fn main() {
    let secs = if std::env::var_os("REPRO_QUICK").is_some() {
        60.0
    } else {
        150.0
    };
    let mut report = RunReport::start("ablation_rtt_compensation");
    report.param("secs", secs);
    report.param("seed", 37u64);
    let mut t = Table::new(
        "RTT heterogeneity: 40 ms-RTT path vs 160 ms-RTT path (Mb/s)",
        &[
            "algorithm",
            "fast path",
            "slow path",
            "total",
            "fast share %",
        ],
    );
    for alg in [Algorithm::Uncoupled, Algorithm::Lia, Algorithm::Olia] {
        let (fast, slow, total) = run(alg, secs);
        t.row(&[
            alg.name().into(),
            f3(fast),
            f3(slow),
            f3(total),
            f3(fast / total * 100.0),
        ]);
    }
    t.print();
    t.write_csv("ablation_rtt_compensation");
    report.table(&t);
    report.write_or_warn();
    println!(
        "Reading: the three algorithms pursue different objectives under RTT\n\
         heterogeneity (Remark 3). Uncoupled Reno takes a TCP-fair share of *each*\n\
         path (biased toward the fast one as plain TCP is). LIA couples via loss:\n\
         w_r ∝ 1/p_r puts more window on the less-congested slow path even though\n\
         its rate per window is 4× lower. OLIA ranks paths by the TCP rate\n\
         √(2/p)/rtt — the fast path wins despite its higher loss — and concentrates\n\
         there, as Theorem 1 predicts for heterogeneous RTTs."
    );
}

//! Numerical verification of the paper's theory (§V) via the fluid model.
//!
//! * Theorem 1: at OLIA's fixed points only best paths carry traffic and
//!   each user's total equals a regular TCP's rate on its best path.
//! * Theorem 4: V(x(t)) is nondecreasing along OLIA trajectories (equal
//!   RTTs) and converges.
//! * Problem P1 in the fluid model: LIA's equilibrium puts substantial
//!   traffic on a congested path where OLIA puts (almost) none.

use bench::report::RunReport;
use bench::table::{f3, Table};
use fluid::ode::{
    FluidAlgorithm, FluidLink, FluidNetwork, FluidParams, FluidRoute, FluidUser, LossModel,
};
use fluid::utility::{utility_v, v_trajectory, verify_theorem1};

/// The asymmetric two-bottleneck network of Fig. 6(b), fluid version: one
/// multipath user, 5 single-path users on link 1, 10 on link 2.
fn asymmetric() -> FluidNetwork {
    let mut users = vec![FluidUser {
        routes: vec![
            FluidRoute {
                links: vec![0],
                rtt: 0.1,
            },
            FluidRoute {
                links: vec![1],
                rtt: 0.1,
            },
        ],
    }];
    for _ in 0..5 {
        users.push(FluidUser {
            routes: vec![FluidRoute {
                links: vec![0],
                rtt: 0.1,
            }],
        });
    }
    for _ in 0..10 {
        users.push(FluidUser {
            routes: vec![FluidRoute {
                links: vec![1],
                rtt: 0.1,
            }],
        });
    }
    FluidNetwork {
        links: vec![
            FluidLink::with_capacity(833.0), // ≈10 Mb/s in MSS/s
            FluidLink::with_capacity(833.0),
        ],
        users,
        loss: LossModel::default(),
    }
}

fn initial(net: &FluidNetwork) -> Vec<Vec<f64>> {
    net.users
        .iter()
        .map(|u| vec![20.0; u.routes.len()])
        .collect()
}

fn main() {
    let mut run_report = RunReport::start("theory_fluid");
    run_report.param("kind", "fluid");
    let net = asymmetric();
    let x0 = initial(&net);
    let params = FluidParams {
        steps: 600_000,
        ..FluidParams::default()
    };

    println!("Fluid-model verification on the Fig. 6(b) network\n");

    let olia = net.equilibrium(FluidAlgorithm::Olia, &x0, &params);
    let lia = net.equilibrium(FluidAlgorithm::Lia, &x0, &params);

    let mut t = Table::new(
        "Multipath user's equilibrium rates (MSS/s)",
        &[
            "algorithm",
            "clean path",
            "congested path",
            "congested share %",
        ],
    );
    for (name, x) in [("olia", &olia), ("lia", &lia)] {
        let (a, b) = (x[0][0], x[0][1]);
        t.row(&[name.into(), f3(a), f3(b), f3(b / (a + b) * 100.0)]);
    }
    t.print();
    t.write_csv("theory_fluid_equilibria");
    run_report.table(&t);

    let report = verify_theorem1(&net, &olia);
    println!(
        "Theorem 1 at the OLIA equilibrium: holds = {}",
        report.holds(0.10, 0.06)
    );
    for (u, ((got, want), frac)) in report
        .totals
        .iter()
        .zip(&report.non_best_fraction)
        .enumerate()
        .take(3)
    {
        println!(
            "  user {u}: total {} vs best-path TCP rate {} (non-best fraction {})",
            f3(*got),
            f3(*want),
            f3(*frac)
        );
    }

    let vs = v_trajectory(&net, &initial(&net), &params, 12);
    let monotone = vs.windows(2).all(|w| w[1] >= w[0] - 1e-9 * w[0].abs());
    println!(
        "\nTheorem 4: V(x(t)) nondecreasing = {monotone}; V start {} → end {}",
        f3(vs[0]),
        f3(*vs.last().unwrap())
    );
    println!(
        "final V at OLIA equilibrium: {}",
        f3(utility_v(&net, &olia))
    );
    run_report.metric("theorem1_holds", report.holds(0.10, 0.06) as u8 as f64);
    run_report.metric("theorem4_v_monotone", monotone as u8 as f64);
    run_report.metric("v_final", utility_v(&net, &olia));
    run_report.write_or_warn();
    println!(
        "\nReading: OLIA's congested-path share collapses toward the probing floor\n\
         (Theorem 1), LIA's stays substantial — the fluid-level root of P1/P2."
    );
}

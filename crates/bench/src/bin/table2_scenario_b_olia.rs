//! Table II: Scenario B measured with OLIA.
//!
//! Paper values (Mb/s): single-path 2.2 / 1.8 / 59.3; multipath
//! 2.2 / 1.7 / 57.8 — only a 3.5% aggregate drop (the unavoidable probing
//! overhead), versus 13% under LIA.

use bench::report::RunReport;
use bench::table::{f3, pm, Table};
use bench::{scenario_b, RunCfg};
use mpsim_core::Algorithm;
use topo::ScenarioBParams;

fn main() {
    let cfg = RunCfg::from_env();
    let mut report = RunReport::start("table2_scenario_b_olia");
    report.cfg(&cfg);
    report.param("algorithm", "olia");
    println!(
        "Scenario B (Table II) — OLIA; CX=27, CT=36 Mb/s, 15+15 users; {} replications\n",
        cfg.replications
    );
    let single = scenario_b::measure(&ScenarioBParams::paper(false, Algorithm::Olia), &cfg);
    let multi = scenario_b::measure(&ScenarioBParams::paper(true, Algorithm::Olia), &cfg);
    let mut t = Table::new(
        "Table II (OLIA)",
        &[
            "Red users",
            "Blue rate/user",
            "Red rate/user",
            "Aggregate",
            "paper",
        ],
    );
    t.row(&[
        "single-path".into(),
        pm(single.blue_mbps.mean, single.blue_mbps.ci95),
        pm(single.red_mbps.mean, single.red_mbps.ci95),
        pm(single.aggregate_mbps.mean, single.aggregate_mbps.ci95),
        "2.2 / 1.8 / 59.3".into(),
    ]);
    t.row(&[
        "multipath".into(),
        pm(multi.blue_mbps.mean, multi.blue_mbps.ci95),
        pm(multi.red_mbps.mean, multi.red_mbps.ci95),
        pm(multi.aggregate_mbps.mean, multi.aggregate_mbps.ci95),
        "2.2 / 1.7 / 57.8".into(),
    ]);
    t.print();
    t.write_csv("table2_scenario_b_olia");
    let drop = (1.0 - multi.aggregate_mbps.mean / single.aggregate_mbps.mean) * 100.0;
    println!(
        "Aggregate drop from the upgrade: {}% (paper: 3.5%, vs 13% for LIA)",
        f3(drop)
    );
    report.table(&t);
    report.metric("aggregate_drop_pct", drop);
    report.write_or_warn();
}

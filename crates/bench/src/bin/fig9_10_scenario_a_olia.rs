//! Figures 9 and 10: Scenario A — OLIA vs LIA.
//!
//! Fig. 9: with OLIA, type2 users recover (up to 2× the LIA rate) at no cost
//! to type1. Fig. 10: OLIA keeps the shared-AP loss probability p2 near its
//! no-multipath level (growth ≈1.3× worst case, vs ≈5× under LIA).

use bench::report::RunReport;
use bench::table::{f3, f4, pm, Table};
use bench::{scenario_a, RunCfg};
use fluid::scenario_a as analysis;
use mpsim_core::Algorithm;
use topo::ScenarioAParams;

fn main() {
    let cfg = RunCfg::from_env();
    let mut report = RunReport::start("fig9_10_scenario_a_olia");
    report.cfg(&cfg);
    report.param("algorithms", "lia,olia");
    println!(
        "Scenario A (Figs. 9/10) — OLIA vs LIA; {} replications\n",
        cfg.replications
    );
    let mut thr = Table::new(
        "Fig 9: normalized type2 throughput",
        &[
            "N1/N2",
            "C1/C2",
            "type2 LIA",
            "type2 OLIA",
            "optimum",
            "type1 LIA",
            "type1 OLIA",
        ],
    );
    let mut loss = Table::new(
        "Fig 10: loss probability p2 at the shared AP",
        &["N1/N2", "C1/C2", "p2 LIA", "p2 OLIA", "p2 optimum"],
    );
    for ratio in [1.0, 2.0, 3.0] {
        for c in [0.75, 1.0, 1.5] {
            let n1 = (10.0 * ratio) as usize;
            let lia = scenario_a::measure(&ScenarioAParams::paper(n1, c, Algorithm::Lia), &cfg);
            let olia = scenario_a::measure(&ScenarioAParams::paper(n1, c, Algorithm::Olia), &cfg);
            let opt = analysis::optimal_with_probing(&analysis::ScenarioAInputs::paper(ratio, c));
            thr.row(&[
                f3(ratio),
                f3(c),
                pm(lia.type2_norm.mean, lia.type2_norm.ci95),
                pm(olia.type2_norm.mean, olia.type2_norm.ci95),
                f3(opt.type2_norm),
                f3(lia.type1_norm.mean),
                f3(olia.type1_norm.mean),
            ]);
            loss.row(&[
                f3(ratio),
                f3(c),
                f4(lia.p2.mean),
                f4(olia.p2.mean),
                f4(opt.p2),
            ]);
        }
    }
    thr.print();
    thr.write_csv("fig9_scenario_a_olia_throughput");
    loss.print();
    loss.write_csv("fig10_scenario_a_olia_loss");
    report.table(&thr);
    report.table(&loss);
    report.write_or_warn();
    println!(
        "Paper shape: OLIA's type2 rates approach the probing-cost optimum (up to 2×\n\
         LIA's), with no reduction for type1; OLIA's p2 stays well below LIA's."
    );
}

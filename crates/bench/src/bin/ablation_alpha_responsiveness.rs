//! Ablation: what OLIA's α term buys — responsiveness.
//!
//! DESIGN.md calls out the α term as the responsiveness/non-flappiness
//! mechanism (the first term alone is Kelly–Voice-style and probes
//! congested paths too slowly, one of the §II criticisms of the fully
//! coupled algorithms). We measure reaction to a mid-run capacity shift: a
//! two-path user competes with 5 TCP flows on path 1 and 10 *finite* TCP
//! flows on path 2 sized to drain near the midpoint of the run. A
//! responsive algorithm re-opens path 2 quickly once they are gone.
//!
//! Compared: OLIA vs FullyCoupled (= OLIA without α) vs LIA.

use bench::report::RunReport;
use bench::table::{f3, Table};
use eventsim::{SimDuration, SimRng, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, Simulation};
use tcpsim::{ConnectionSpec, PathSpec};
use topo::stagger_starts;

/// Run the shift experiment; returns the multipath user's path-2 rate
/// (Mb/s) before the competitors leave, its final rate, and the time (s)
/// it took to reclaim half the freed link after they left.
fn capacity_shift(alg: Algorithm, secs: f64, seed: u64) -> (f64, f64, f64) {
    let mut sim = Simulation::new(seed);
    let mk_red = |sim: &mut Simulation| {
        sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(10)))
    };
    let link1 = mk_red(&mut sim);
    let link2 = mk_red(&mut sim);
    let pad = |sim: &mut Simulation| {
        sim.add_queue(QueueConfig::drop_tail(
            10e9,
            SimDuration::from_millis(30),
            1_000_000,
        ))
    };
    let (p1, p2) = (pad(&mut sim), pad(&mut sim));
    let rev = sim.add_queue(QueueConfig::drop_tail(
        10e9,
        SimDuration::from_millis(40),
        1_000_000,
    ));
    let multipath = ConnectionSpec::new(alg)
        .with_path(PathSpec::new(route(&[link1, p1]), route(&[rev])))
        .with_path(PathSpec::new(route(&[link2, p2]), route(&[rev])))
        .install(&mut sim, 0);
    let mut conns = vec![multipath.clone()];
    for i in 0..5 {
        conns.push(
            ConnectionSpec::new(Algorithm::Reno)
                .with_path(PathSpec::new(route(&[link1, p1]), route(&[rev])))
                .install(&mut sim, 1 + i),
        );
    }
    // Path-2 competitors: finite flows that collectively drain around the
    // midpoint (10 flows sharing 10 Mb/s).
    let half_packets = (10e6 * secs / 2.0 / 10.0 / 8.0 / 1500.0) as u64;
    for i in 0..10 {
        conns.push(
            ConnectionSpec::new(Algorithm::Reno)
                .with_size_packets(half_packets)
                .with_path(PathSpec::new(route(&[link2, p2]), route(&[rev])))
                .install(&mut sim, 100 + i),
        );
    }
    let mut rng = SimRng::seed_from_u64(seed);
    stagger_starts(&mut sim, &conns, SimDuration::from_secs(1), &mut rng);
    // Before-window: [secs/4, secs/2], while path 2 is congested.
    sim.run_until(SimTime::from_secs_f64(secs / 4.0));
    multipath.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(secs / 2.0));
    let before = multipath.handle.subflow_mbps(1, sim.now());
    // Reaction timeline: path-2 rate in 2-second buckets after the drain.
    // "Time to reclaim" = first bucket whose rate exceeds half the link.
    let drain_t = secs / 2.0;
    let mut t_half = f64::INFINITY;
    let mut t = drain_t;
    let bucket = 2.0;
    while t < secs {
        multipath.handle.reset(sim.now());
        sim.run_until(SimTime::from_secs_f64(t + bucket));
        let rate = multipath.handle.subflow_mbps(1, sim.now());
        if rate > 5.0 && t_half.is_infinite() {
            t_half = t + bucket - drain_t;
        }
        t += bucket;
    }
    // Final steady-state rate over the last bucket.
    let after = multipath.handle.subflow_mbps(1, sim.now());
    (before, after, t_half)
}

fn main() {
    let secs = if std::env::var_os("REPRO_QUICK").is_some() {
        80.0
    } else {
        160.0
    };
    let mut report = RunReport::start("ablation_alpha_responsiveness");
    report.param("secs", secs);
    report.param("seed", 5u64);
    let mut t = Table::new(
        "α-term responsiveness: reclaiming a freed path",
        &[
            "algorithm",
            "before Mb/s",
            "final Mb/s",
            "t to reclaim 50% (s)",
        ],
    );
    for alg in [Algorithm::Olia, Algorithm::FullyCoupled, Algorithm::Lia] {
        let (before, after, t_half) = capacity_shift(alg, secs, 5);
        t.row(&[
            alg.name().into(),
            f3(before),
            f3(after),
            if t_half.is_finite() {
                f3(t_half)
            } else {
                "never".into()
            },
        ]);
    }
    t.print();
    t.write_csv("ablation_alpha_responsiveness");
    report.table(&t);
    report.write_or_warn();
    println!(
        "Reading: while path 2 is congested all three keep little traffic there; once\n\
         it frees up, OLIA's α (and LIA's slow start) reclaim the capacity within a\n\
         few seconds, while the fully-coupled variant (OLIA without α) — whose\n\
         increase is proportional to its own near-zero window — takes far longer.\n\
         This is the ε=0 probing failure that motivated LIA, solved by OLIA's α."
    );
}

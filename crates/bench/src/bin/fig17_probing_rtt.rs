//! Figure 17: the probing-cost optimum for Scenario B at two RTTs.
//!
//! The minimum probing traffic is one MSS per RTT per path, so a smaller
//! RTT means a *larger* absolute probing overhead — the optimal curves for
//! RTT = 25 ms sit visibly below those for RTT = 100 ms.

use bench::report::RunReport;
use bench::table::{f3, Table};
use fluid::scenario_b as analysis;

fn main() {
    let mut report = RunReport::start("fig17_probing_rtt");
    report.param("kind", "analytic");
    for rtt_ms in [100.0, 25.0] {
        let mut t = Table::new(
            &format!("Fig 17: optimum with probing, RTT = {rtt_ms} ms"),
            &[
                "CX/CT",
                "blue (red single)",
                "red (red single)",
                "blue (red mptcp)",
                "red (red mptcp)",
            ],
        );
        let mut x = 0.15;
        while x <= 1.5 + 1e-9 {
            let mut inp = analysis::ScenarioBInputs::paper(x);
            inp.rtt_s = rtt_ms / 1e3;
            let os = analysis::optimal_red_single(&inp);
            let om = analysis::optimal_red_multipath(&inp);
            t.row(&[
                f3(x),
                f3(os.blue_norm),
                f3(os.red_norm),
                f3(om.blue_norm),
                f3(om.red_norm),
            ]);
            x += 0.15;
        }
        t.print();
        t.write_csv(&format!("fig17_probing_rtt{}", rtt_ms as u32));
        report.table(&t);
    }
    report.write_or_warn();
    println!(
        "Paper shape: the upgrade costs only the probing overhead N·MSS/rtt, which is\n\
         4× larger at RTT 25 ms than at 100 ms."
    );
}

//! Tracked population-scale benchmark for the flow-level backend.
//!
//! Where `perf_scale` tracks how the *packet* simulator holds up as the
//! FatTree grows (10³–10⁴ connections), this harness tracks the regime the
//! flow backend exists for: **10⁵ concurrent MPTCP connections under
//! Poisson churn with heavy-tailed sizes**, which the packet backend
//! cannot reach at all. Two measurement points:
//!
//! * `flow_check` — k = 8 (128 hosts), 2 000 resident connections plus a
//!   churn overlay. Small enough to re-run as the CI gate.
//! * `flow_100k` — k = 16 (1024 hosts), 100 000 resident connections plus
//!   ~40 000 heavy-tailed churn flows over a 2-second horizon. The
//!   acceptance point: events/sec, bytes/flow, and the FNV-1a trace digest
//!   are recorded here.
//!
//! Each point is phased through a live-bytes counting allocator —
//! topology bytes, flow-install bytes (the headline `bytes_per_flow`), and
//! the run high-water mark — then re-run traced into an FNV-1a digest
//! recorded in `params` as a behaviour golden. The install protocol
//! mirrors `flowsim::fattree::heavytail_churn` exactly (same RNG stream,
//! same permutation-resident + Poisson-churn workload), re-spelled here
//! only so the phase boundaries can be snapshotted.
//!
//! Usage mirrors `perf_scale`:
//!
//! ```text
//! perf_flowscale                        # run, write results/perf_flowscale.json
//! perf_flowscale --out BENCH_flowscale.json --baseline-from old.json
//! perf_flowscale --check BENCH_flowscale.json  # flow_check: digest + memory
//! ```
//!
//! `--check` is timing-free: it re-runs `flow_check` and fails if the
//! trace digest drifted or `bytes_per_flow` exceeds the recorded value by
//! more than the slack factor, so behaviour and memory regressions are
//! machine-caught even on loaded machines.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use bench::json::{parse, Json};
use bench::report::RunReport;
use eventsim::{SimDuration, SimRng, SimTime};
use flowsim::fattree::FlowFatTree;
use flowsim::{FlowFatTreeConfig, FlowNet, FlowSim, FlowSimConfig};
use mpsim_core::Algorithm;
use netsim::profile::RunProfile;
use trace::{DigestSink, Tracer};
use workload::{heavytail_churn_plan, permutation_traffic, HeavyTailMix};

/// Live-bytes counting allocator (same scheme as `perf_scale`): alloc
/// adds, dealloc subtracts, so scenario phases can be attributed by
/// snapshot deltas.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

fn track(delta: i64) {
    let live = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
    if delta > 0 {
        PEAK.fetch_max(live, Ordering::Relaxed);
    }
}

/// Bytes currently allocated (layout sizes, not allocator overhead).
fn live_bytes() -> i64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water live bytes since the last [`reset_peak`].
fn peak_bytes() -> i64 {
    PEAK.load(Ordering::Relaxed)
}

/// Restart high-water tracking from the current live level.
fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

// SAFETY: delegates directly to `System`; the counters are relaxed atomics
// with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        track(layout.size() as i64);
        // SAFETY: same layout contract as the caller's.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        track(-(layout.size() as i64));
        // SAFETY: same pointer/layout contract as the caller's.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        track(new_size as i64 - layout.size() as i64);
        // SAFETY: same pointer/layout contract as the caller's.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Perf passes per scenario (memory numbers are deterministic; only
/// events/sec takes the best-of).
const PERF_PASSES: usize = 2;

/// `--check` tolerates this much growth over the recorded `bytes_per_flow`
/// before failing.
const CHECK_SLACK: f64 = 1.25;

/// One population-scale churn measurement point.
struct ChurnScenario {
    name: &'static str,
    k: usize,
    resident: usize,
    subflows: usize,
    /// Mean per-host gap between churn arrivals, milliseconds.
    mean_gap_ms: f64,
    /// Simulated horizon, seconds.
    horizon_s: f64,
    seed: u64,
}

const SCENARIOS: &[ChurnScenario] = &[
    ChurnScenario {
        name: "flow_check",
        k: 8,
        resident: 2_000,
        subflows: 2,
        mean_gap_ms: 50.0,
        horizon_s: 2.0,
        seed: 7,
    },
    ChurnScenario {
        name: "flow_100k",
        k: 16,
        resident: 100_000,
        subflows: 2,
        mean_gap_ms: 50.0,
        horizon_s: 2.0,
        seed: 16,
    },
];

/// Everything one phased churn run leaves behind.
struct ChurnRun {
    /// Total flows installed (resident + planned churn).
    flows: usize,
    resident: usize,
    planned_churn: usize,
    /// Heap growth while building the link table.
    topo_bytes: i64,
    /// Heap growth while installing + scheduling every flow.
    setup_bytes: i64,
    /// High-water heap over the whole scenario, relative to its start.
    peak_live_bytes: i64,
    /// Wall seconds of the run phase only.
    run_wall_s: f64,
    events: u64,
    events_per_sec: f64,
    recomputes: u64,
    started: u64,
    completed: u64,
    peak_active: usize,
}

/// Build the fabric, install the resident population and the churn
/// overlay (the same protocol and RNG stream as
/// [`flowsim::fattree::heavytail_churn`]), run to the horizon. Phase
/// boundaries snapshot the live-byte counter.
fn run_churn(s: &ChurnScenario, tracer: &Tracer) -> ChurnRun {
    let live0 = live_bytes();
    reset_peak();
    let ftcfg = FlowFatTreeConfig::default();
    let mut net = FlowNet::new();
    let ft = FlowFatTree::build(&mut net, s.k, &ftcfg);
    let hosts = ft.num_hosts();
    let mut sim = FlowSim::new(net, FlowSimConfig::large_scale());
    sim.set_tracer(tracer.clone());
    let live_topo = live_bytes();

    let mut rng = SimRng::seed_from_u64(s.seed ^ 0x5CA1E);
    let mut conn = 0u64;
    let mut resident = 0usize;
    while resident < s.resident {
        let perm = permutation_traffic(&mut rng, hosts);
        for (h, &dst) in perm.iter().enumerate() {
            if resident >= s.resident {
                break;
            }
            let f = ft.connect(
                &mut sim,
                h,
                dst,
                Algorithm::Olia,
                s.subflows,
                None,
                &mut rng,
                conn,
            );
            let jitter = SimDuration::from_secs_f64(rng.f64());
            sim.start_at(f, SimTime::ZERO + jitter);
            conn += 1;
            resident += 1;
        }
    }
    let senders: Vec<usize> = (0..hosts).collect();
    let dests: Vec<usize> = (0..hosts).map(|h| (h + hosts / 2) % hosts).collect();
    let plan = heavytail_churn_plan(
        &mut rng,
        &senders,
        &dests,
        &HeavyTailMix::default(),
        s.mean_gap_ms / 1e3,
        s.horizon_s,
    );
    for spec in &plan {
        let f = ft.connect(
            &mut sim,
            spec.src,
            spec.dst,
            Algorithm::Olia,
            s.subflows,
            Some(spec.size_packets),
            &mut rng,
            conn,
        );
        sim.start_at(f, SimTime::ZERO + SimDuration::from_secs_f64(spec.start_s));
        conn += 1;
    }
    let live_setup = live_bytes();

    let w = RunProfile::start();
    sim.run_until(SimTime::ZERO + SimDuration::from_secs_f64(s.horizon_s));
    let run_wall_s = w.finish().wall_s;
    let events = sim.events_processed();
    ChurnRun {
        flows: resident + plan.len(),
        resident,
        planned_churn: plan.len(),
        topo_bytes: live_topo - live0,
        setup_bytes: live_setup - live_topo,
        peak_live_bytes: peak_bytes() - live0,
        run_wall_s,
        events,
        events_per_sec: events as f64 / run_wall_s.max(1e-9),
        recomputes: sim.recomputes(),
        started: sim.started_flows(),
        completed: sim.completed_flows(),
        peak_active: sim.peak_active(),
    }
}

/// Untraced perf passes: memory phases from the first pass (deterministic),
/// best events/sec across passes.
fn measure(s: &ChurnScenario) -> ChurnRun {
    let mut best: Option<ChurnRun> = None;
    for _ in 0..PERF_PASSES {
        let r = run_churn(s, &Tracer::disabled());
        if best
            .as_ref()
            .is_none_or(|b| r.events_per_sec > b.events_per_sec)
        {
            best = Some(r);
        }
    }
    // PERF_PASSES ≥ 1, so a measurement was recorded.
    best.unwrap_or_else(|| unreachable!("no perf pass ran"))
}

/// Traced digest pass: the full JSONL trace folded into FNV-1a.
fn digest(s: &ChurnScenario) -> (u64, u64) {
    let (tracer, sink) = Tracer::to_sink(DigestSink::new());
    let r = run_churn(s, &tracer);
    drop(r);
    drop(tracer);
    let sink = sink.borrow();
    (sink.digest(), sink.bytes())
}

fn report_churn(report: &mut RunReport, r: &ChurnRun, name: &str) {
    let n = r.flows as f64;
    report.metric(&format!("{name}.flows"), n);
    report.metric(&format!("{name}.resident"), r.resident as f64);
    report.metric(&format!("{name}.planned_churn"), r.planned_churn as f64);
    report.metric(&format!("{name}.events"), r.events as f64);
    report.metric(&format!("{name}.events_per_sec"), r.events_per_sec);
    report.metric(&format!("{name}.wall_s"), r.run_wall_s);
    report.metric(&format!("{name}.recomputes"), r.recomputes as f64);
    report.metric(&format!("{name}.started"), r.started as f64);
    report.metric(&format!("{name}.completed"), r.completed as f64);
    report.metric(&format!("{name}.peak_active"), r.peak_active as f64);
    report.metric(&format!("{name}.topo_bytes"), r.topo_bytes as f64);
    report.metric(&format!("{name}.bytes_per_flow"), r.setup_bytes as f64 / n);
    report.metric(&format!("{name}.peak_live_bytes"), r.peak_live_bytes as f64);
}

/// `--check`: re-run `flow_check`, compare its digest and bytes-per-flow
/// against the tracked report. Timing-free.
fn check(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_flowscale: cannot read {path}: {e}");
            return 1;
        }
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perf_flowscale: cannot parse {path}: {e}");
            return 1;
        }
    };
    let Some(s) = SCENARIOS.iter().find(|s| s.name == "flow_check") else {
        eprintln!("perf_flowscale: no flow_check scenario registered");
        return 1;
    };
    let mut failures = 0;

    // Memory budget: untraced run, deterministic byte accounting.
    let r = run_churn(s, &Tracer::disabled());
    let bytes_per_flow = r.setup_bytes as f64 / r.flows as f64;
    drop(r);
    let budget = doc
        .get("metrics")
        .and_then(|m| m.get("flow_check.bytes_per_flow"))
        .and_then(Json::as_f64);
    match budget {
        Some(b) => {
            let limit = b * CHECK_SLACK;
            if bytes_per_flow <= limit {
                println!("bytes_per_flow flow_check: {bytes_per_flow:.0} <= {limit:.0} OK");
            } else {
                eprintln!(
                    "bytes_per_flow flow_check: {bytes_per_flow:.0} exceeds budget {limit:.0} \
                     (recorded {b:.0} x {CHECK_SLACK}) — memory regression!"
                );
                failures += 1;
            }
        }
        None => {
            eprintln!("perf_flowscale: {path} has no metrics.flow_check.bytes_per_flow");
            failures += 1;
        }
    }

    // Behaviour: trace digest must match the recorded golden byte-for-byte.
    let golden = doc
        .get("params")
        .and_then(|p| p.get("digest.flow_check"))
        .and_then(Json::as_str);
    match golden {
        Some(golden) => {
            let (d, _) = digest(s);
            let hex = format!("{d:016x}");
            if hex == golden {
                println!("digest flow_check: {hex} OK");
            } else {
                eprintln!(
                    "digest flow_check: computed {hex} != golden {golden} — behaviour changed!"
                );
                failures += 1;
            }
        }
        None => {
            eprintln!("perf_flowscale: {path} has no params.digest.flow_check");
            failures += 1;
        }
    }

    if failures == 0 {
        println!("perf_flowscale: flow_check smoke passed");
        0
    } else {
        1
    }
}

/// Copy `metrics.*` of a previous report in as `baseline.*` and derive
/// `shrink.*` / `speedup.*` ratios for the shared scenarios.
fn merge_baseline(report: &mut RunReport, current: &[(String, f64, f64)], path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc = parse(&text).unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_object)
        .unwrap_or_else(|| panic!("baseline {path} has no metrics object"));
    for (k, v) in metrics {
        if k.starts_with("baseline.") || k.starts_with("shrink.") || k.starts_with("speedup.") {
            continue; // don't chain baselines of baselines
        }
        if let Some(x) = v.as_f64() {
            report.metric(&format!("baseline.{k}"), x);
        }
    }
    for (name, bytes_per_flow, events_per_sec) in current {
        if let Some(base) = metrics
            .get(&format!("{name}.bytes_per_flow"))
            .and_then(Json::as_f64)
        {
            if *bytes_per_flow > 0.0 {
                report.metric(&format!("shrink.{name}"), base / bytes_per_flow);
            }
        }
        if let Some(base) = metrics
            .get(&format!("{name}.events_per_sec"))
            .and_then(Json::as_f64)
        {
            if base > 0.0 {
                report.metric(&format!("speedup.{name}"), events_per_sec / base);
            }
        }
    }
    report.param("baseline_from", path);
}

fn main() {
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next(),
            "--baseline-from" => baseline = args.next(),
            "--check" => {
                let Some(path) = args.next() else {
                    eprintln!("perf_flowscale: --check needs a report path");
                    std::process::exit(2);
                };
                std::process::exit(check(&path));
            }
            other => {
                eprintln!("perf_flowscale: unknown argument {other:?}");
                eprintln!(
                    "usage: perf_flowscale [--out FILE] [--baseline-from REPORT] [--check REPORT]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut report = RunReport::start("perf_flowscale");
    report.param("backend", "flow");
    report.param("perf_passes", PERF_PASSES as u64);

    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>14} {:>12} {:>14}",
        "scenario", "flows", "events", "events/sec", "bytes/flow", "recomputes", "peak live MB"
    );
    let mut current = Vec::new();
    for s in SCENARIOS {
        let r = measure(s);
        let bytes_per_flow = r.setup_bytes as f64 / r.flows as f64;
        println!(
            "{:<12} {:>8} {:>10} {:>12.0} {:>14.0} {:>12} {:>14.2}",
            s.name,
            r.flows,
            r.events,
            r.events_per_sec,
            bytes_per_flow,
            r.recomputes,
            r.peak_live_bytes as f64 / 1e6,
        );
        report.param(&format!("{}.k", s.name), s.k as u64);
        report.param(&format!("{}.subflows", s.name), s.subflows as u64);
        report.param(&format!("{}.horizon_s", s.name), s.horizon_s);
        report_churn(&mut report, &r, s.name);
        current.push((s.name.to_string(), bytes_per_flow, r.events_per_sec));
    }

    for s in SCENARIOS {
        let (d, bytes) = digest(s);
        let hex = format!("{d:016x}");
        eprintln!("digest {}: {hex} ({bytes} trace bytes)", s.name);
        report.param(&format!("digest.{}", s.name), hex);
        report.param(&format!("trace_bytes.{}", s.name), bytes);
    }

    if let Some(path) = &baseline {
        merge_baseline(&mut report, &current, path);
    }

    match out {
        Some(path) => {
            let doc = report.finish();
            if let Err(e) = bench::report::validate(&doc) {
                eprintln!("perf_flowscale: produced report fails validation: {e}");
                std::process::exit(1);
            }
            std::fs::write(&path, doc.render_pretty() + "\n")
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("flowscale report: {path}");
        }
        None => report.write_or_warn(),
    }
}

//! Robustness experiment: core-link failures in the FatTree.
//!
//! The reliability motivation behind multipath (Scenario B's "Blue users use
//! multi-homing ... to increase their reliability") at data-center scale:
//! run the Fig. 13 permutation workload, then fail 5% of the core link
//! directions mid-run. A cross-pod path needs four distinct core-adjacent
//! queues alive (data up/down + ACK up/down), so even 5% queue failures
//! kill ≈19% of *paths*: a single-path TCP flow on one of them stalls
//! outright, while an MPTCP connection with several subflows almost surely
//! keeps an alive path and shifts its window there.

use bench::fattree::dc_config;
use bench::table::{f3, Table};
use eventsim::{SimDuration, SimRng, SimTime};
use mpsim_core::Algorithm;
use netsim::Simulation;
use topo::{FatTree, FatTreeConfig};
use workload::permutation_traffic;

/// Returns (aggregate % of optimal before failures, after failures).
fn run(k: usize, algorithm: Algorithm, subflows: usize, secs: f64, seed: u64) -> (f64, f64) {
    let mut sim = Simulation::new(seed);
    let ft = FatTree::build(&mut sim, k, &FatTreeConfig::default());
    let n = ft.num_hosts();
    let mut rng = SimRng::seed_from_u64(seed ^ 0xD0C5);
    let perm = permutation_traffic(&mut rng, n);
    let cfg = dc_config();
    let conns: Vec<_> = (0..n)
        .map(|h| {
            ft.connect(
                &mut sim,
                h,
                perm[h],
                algorithm,
                subflows,
                None,
                cfg,
                &mut rng,
                h as u64,
            )
        })
        .collect();
    for c in &conns {
        let jitter = SimDuration::from_secs_f64(rng.f64() * 0.2);
        sim.start_endpoint_at(c.source, SimTime::ZERO + jitter);
    }
    // Healthy window.
    sim.run_until(SimTime::from_secs_f64(secs / 3.0));
    for c in &conns {
        c.handle.reset(sim.now());
    }
    sim.run_until(SimTime::from_secs_f64(secs * 2.0 / 3.0));
    let now = sim.now();
    let before =
        conns.iter().map(|c| c.handle.goodput_mbps(now)).sum::<f64>() / n as f64;

    // Fail 5% of the unidirectional core queues, sampled independently
    // (as real fabric failures are).
    let core = ft.core_queues();
    for &q in core.iter().filter(|_| rng.chance(0.05)) {
        sim.set_queue_down(q, true);
    }
    // Grace period for loss detection, then measure the degraded window.
    sim.run_until(SimTime::from_secs_f64(secs * 2.0 / 3.0 + 2.0));
    for c in &conns {
        c.handle.reset(sim.now());
    }
    sim.run_until(SimTime::from_secs_f64(secs + 2.0));
    let now = sim.now();
    let after =
        conns.iter().map(|c| c.handle.goodput_mbps(now)).sum::<f64>() / n as f64;
    (before, after)
}

fn main() {
    let quick = std::env::var_os("REPRO_QUICK").is_some();
    let (k, secs) = if quick { (4, 12.0) } else { (8, 18.0) };
    println!("FatTree core-link failures (5% of core queue directions die mid-run) — k={k}\n");
    let mut t = Table::new(
        "aggregate per-host goodput, % of line rate",
        &["long flows", "before failures", "after failures", "retained %"],
    );
    for (name, alg, nsub) in [
        ("TCP", Algorithm::Reno, 1),
        ("MPTCP-LIA ×4", Algorithm::Lia, 4),
        ("MPTCP-OLIA ×4", Algorithm::Olia, 4),
    ] {
        let (before, after) = run(k, alg, nsub, secs, 3);
        t.row(&[
            name.into(),
            f3(before),
            f3(after),
            f3(after / before * 100.0),
        ]);
    }
    t.print();
    t.write_csv("dc_robustness");
    println!(
        "Reading: a failed path stalls a single-path TCP flow outright (RTO-limited\n\
         trickle), while MPTCP connections almost surely hold an alive subflow and\n\
         shift their window onto it — the reliability argument for multipath,\n\
         quantified. (At much higher failure rates every path of every connection\n\
         dies and the distinction collapses — path diversity, not multipath itself,\n\
         is what buys the robustness.)"
    );
}

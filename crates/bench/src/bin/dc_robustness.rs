//! Robustness experiment: core-link failures in the FatTree.
//!
//! The reliability motivation behind multipath (Scenario B's "Blue users use
//! multi-homing ... to increase their reliability") at data-center scale:
//! run the Fig. 13 permutation workload, then fail 5% of the core link
//! directions mid-run. A cross-pod path needs four distinct core-adjacent
//! queues alive (data up/down + ACK up/down), so even 5% queue failures
//! kill ≈19% of *paths*: a single-path TCP flow on one of them stalls
//! outright, while an MPTCP connection with several subflows almost surely
//! keeps an alive path and shifts its window there.
//!
//! A second set of scenarios drives the path manager directly on a two-path
//! dumbbell with scripted chaos plans — link flapping, degradation (rate
//! collapse + loss burst), and a full partition of one path — and reports
//! goodput during the fault, goodput after repair, and how long the failed
//! subflow took to rejoin after the repair (the §VII re-probe machinery).

use bench::fattree::dc_config;
use bench::report::RunReport;
use bench::table::{f3, Table};
use eventsim::{SimDuration, SimRng, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, FaultAction, FaultPlan, QueueConfig, QueueId, Simulation};
use tcpsim::{ConnectionSpec, PathSpec};
use topo::{FatTree, FatTreeConfig};
use workload::permutation_traffic;

/// Returns (aggregate % of optimal before failures, after failures).
fn run(k: usize, algorithm: Algorithm, subflows: usize, secs: f64, seed: u64) -> (f64, f64) {
    let mut sim = Simulation::new(seed);
    let ft = FatTree::build(&mut sim, k, &FatTreeConfig::default());
    let n = ft.num_hosts();
    let mut rng = SimRng::seed_from_u64(seed ^ 0xD0C5);
    let perm = permutation_traffic(&mut rng, n);
    let cfg = dc_config();
    let conns: Vec<_> = (0..n)
        .map(|h| {
            ft.connect(
                &mut sim, h, perm[h], algorithm, subflows, None, cfg, &mut rng, h as u64,
            )
        })
        .collect();
    for c in &conns {
        let jitter = SimDuration::from_secs_f64(rng.f64() * 0.2);
        sim.start_endpoint_at(c.source, SimTime::ZERO + jitter);
    }
    // Healthy window.
    sim.run_until(SimTime::from_secs_f64(secs / 3.0));
    for c in &conns {
        c.handle.reset(sim.now());
    }
    sim.run_until(SimTime::from_secs_f64(secs * 2.0 / 3.0));
    let now = sim.now();
    let before = conns
        .iter()
        .map(|c| c.handle.goodput_mbps(now))
        .sum::<f64>()
        / n as f64;

    // Fail 5% of the unidirectional core queues, sampled independently
    // (as real fabric failures are).
    for q in ft.core_queues().filter(|_| rng.chance(0.05)) {
        sim.set_queue_down(q, true);
    }
    // Grace period for loss detection, then measure the degraded window.
    sim.run_until(SimTime::from_secs_f64(secs * 2.0 / 3.0 + 2.0));
    for c in &conns {
        c.handle.reset(sim.now());
    }
    sim.run_until(SimTime::from_secs_f64(secs + 2.0));
    let now = sim.now();
    let after = conns
        .iter()
        .map(|c| c.handle.goodput_mbps(now))
        .sum::<f64>()
        / n as f64;
    (before, after)
}

/// One direction of a paper-style 10 Mb/s, 40 ms access link (RED forward
/// queue, fat reverse queue for ACKs).
fn link(sim: &mut Simulation) -> (QueueId, QueueId) {
    (
        sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40))),
        sim.add_queue(QueueConfig::drop_tail(
            10e9,
            SimDuration::from_millis(40),
            100_000,
        )),
    )
}

struct FaultOutcome {
    /// Connection goodput while the fault is active, Mb/s.
    during: f64,
    /// Connection goodput after the repair, Mb/s.
    after: f64,
    /// Seconds from repair until path 0 rejoined (None: the subflow was
    /// never declared Failed, or it already recovered before the repair).
    recovery: Option<f64>,
    /// Failed transitions / re-probe packets on path 0.
    failures: u64,
    reprobes: u64,
}

/// A two-path connection with a scripted fault on path 0 active during
/// `[fault_start, fault_end]`; measures until `measure_until`.
fn run_fault_scenario(
    alg: Algorithm,
    fault_start: f64,
    fault_end: f64,
    measure_until: f64,
    plan: impl FnOnce(QueueId, QueueId) -> FaultPlan,
    seed: u64,
) -> FaultOutcome {
    let mut sim = Simulation::new(seed);
    let (f1, r1) = link(&mut sim);
    let (f2, r2) = link(&mut sim);
    let conn = ConnectionSpec::new(alg)
        .with_path(PathSpec::new(route(&[f1]), route(&[r1])))
        .with_path(PathSpec::new(route(&[f2]), route(&[r2])))
        .install(&mut sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);
    sim.install_fault_plan(plan(f1, r1));

    sim.run_until(SimTime::from_secs_f64(fault_start));
    conn.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(fault_end));
    let during = conn.handle.goodput_mbps(sim.now());
    conn.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(measure_until));
    let after = conn.handle.goodput_mbps(sim.now());

    let repair = SimTime::from_secs_f64(fault_end);
    let recovery = conn
        .handle
        .last_recovered_at(0)
        .filter(|&t| t >= repair)
        .map(|t| t.saturating_since(repair).as_secs_f64());
    let (failures, reprobes) = conn.handle.failure_counts(0);
    FaultOutcome {
        during,
        after,
        recovery,
        failures,
        reprobes,
    }
}

fn fault_scenarios(report: &mut RunReport) {
    println!("\nChaos plans on a two-path dumbbell (10 Mb/s + 40 ms per path, fault on path 0)\n");
    let mut t = Table::new(
        "connection goodput Mb/s; recovery = path-0 rejoin lag after repair",
        &[
            "scenario",
            "algorithm",
            "during fault",
            "after repair",
            "recovery s",
            "failures",
            "reprobes",
        ],
    );
    for (name, alg) in [("LIA ×2", Algorithm::Lia), ("OLIA ×2", Algorithm::Olia)] {
        // Flap: three 4 s outages separated by 2 s of calm; last repair at
        // t=31 s.
        let o = run_fault_scenario(
            alg,
            15.0,
            31.0,
            46.0,
            |f1, _| {
                FaultPlan::new().flap(
                    f1,
                    SimTime::from_secs_f64(15.0),
                    SimDuration::from_secs(4),
                    SimDuration::from_secs(2),
                    3,
                )
            },
            21,
        );
        push_row(&mut t, "flap (3× 4s down / 2s up)", name, &o);

        // Degrade: path 0 collapses to 0.5 Mb/s with a 10% loss burst for
        // 16 s, then both are lifted.
        let o = run_fault_scenario(
            alg,
            15.0,
            31.0,
            46.0,
            |f1, _| {
                FaultPlan::new()
                    .at(
                        SimTime::from_secs_f64(15.0),
                        FaultAction::SetRate {
                            queue: f1,
                            rate_bps: 0.5e6,
                        },
                    )
                    .at(
                        SimTime::from_secs_f64(15.0),
                        FaultAction::LossBurst {
                            queue: f1,
                            p: 0.1,
                            duration: SimDuration::from_secs(16),
                        },
                    )
                    .at(
                        SimTime::from_secs_f64(31.0),
                        FaultAction::SetRate {
                            queue: f1,
                            rate_bps: 10e6,
                        },
                    )
                    .at(
                        SimTime::from_secs_f64(31.0),
                        FaultAction::ClearImpairments(f1),
                    )
            },
            22,
        );
        push_row(&mut t, "degrade (0.5 Mb/s + 10% loss)", name, &o);

        // Partition: both directions of path 0 die for 16 s — even ACKs for
        // old data cannot get back.
        let o = run_fault_scenario(
            alg,
            15.0,
            31.0,
            46.0,
            |f1, r1| {
                FaultPlan::new()
                    .down_between(
                        f1,
                        SimTime::from_secs_f64(15.0),
                        SimTime::from_secs_f64(31.0),
                    )
                    .down_between(
                        r1,
                        SimTime::from_secs_f64(15.0),
                        SimTime::from_secs_f64(31.0),
                    )
            },
            23,
        );
        push_row(&mut t, "partition (fwd + rev down)", name, &o);
    }
    t.print();
    t.write_csv("dc_robustness_faults");
    report.table(&t);
    println!(
        "Reading: during a hard fault the survivor path carries the connection at\n\
         its full share; the failed subflow is declared dead after a handful of\n\
         consecutive RTOs and re-probed on a capped exponential schedule, so the\n\
         rejoin lag after repair is bounded by the probe cap (8 s) rather than by\n\
         classic RTO backoff (minutes). Degradation without an outage keeps the\n\
         path technically alive — the coupling just moves traffic off it, and no\n\
         Failed transition is needed."
    );
}

fn push_row(t: &mut Table, scenario: &str, alg: &str, o: &FaultOutcome) {
    t.row(&[
        scenario.into(),
        alg.into(),
        f3(o.during),
        f3(o.after),
        o.recovery.map_or_else(|| "-".into(), f3),
        o.failures.to_string(),
        o.reprobes.to_string(),
    ]);
}

fn main() {
    let quick = std::env::var_os("REPRO_QUICK").is_some();
    let (k, secs) = if quick { (4, 12.0) } else { (8, 18.0) };
    let mut report = RunReport::start("dc_robustness");
    report.param("k", k as u64);
    report.param("secs", secs);
    report.param("seed", 3u64);
    println!("FatTree core-link failures (5% of core queue directions die mid-run) — k={k}\n");
    let mut t = Table::new(
        "aggregate per-host goodput, % of line rate",
        &[
            "long flows",
            "before failures",
            "after failures",
            "retained %",
        ],
    );
    for (name, alg, nsub) in [
        ("TCP", Algorithm::Reno, 1),
        ("MPTCP-LIA ×4", Algorithm::Lia, 4),
        ("MPTCP-OLIA ×4", Algorithm::Olia, 4),
    ] {
        let (before, after) = run(k, alg, nsub, secs, 3);
        t.row(&[
            name.into(),
            f3(before),
            f3(after),
            f3(after / before * 100.0),
        ]);
    }
    t.print();
    t.write_csv("dc_robustness");
    report.table(&t);
    println!(
        "Reading: a failed path stalls a single-path TCP flow outright (RTO-limited\n\
         trickle), while MPTCP connections almost surely hold an alive subflow and\n\
         shift their window onto it — the reliability argument for multipath,\n\
         quantified. (At much higher failure rates every path of every connection\n\
         dies and the distinction collapses — path diversity, not multipath itself,\n\
         is what buys the robustness.)"
    );
    fault_scenarios(&mut report);
    report.write_or_warn();
}

//! Tracked scale benchmark: how the simulator holds up as the FatTree grows.
//!
//! Where `perf_eventloop` tracks per-event cost on small fixed scenarios,
//! this harness tracks the two axes that gate production-scale topologies
//! (ROADMAP item 4): **memory per connection** and **topology build time**
//! as functions of the FatTree arity k.
//!
//! Three kinds of measurements:
//!
//! * `k8_perm` / `k16_perm` — permutation traffic (every host sends one
//!   long-lived OLIA flow to a distinct host) on k = 8 (128 hosts) and
//!   k = 16 (1024 hosts) fabrics. A live-bytes counting allocator snapshots
//!   the heap between phases, splitting the footprint into topology bytes,
//!   connection-setup bytes (the headline `bytes_per_conn`), and the run
//!   high-water mark (`peak_live_bytes`, the RSS proxy).
//! * `build.k{8,16,32}` — topology construction alone, best-of-N wall time
//!   (`build_wall_s`) plus resident topology bytes. k = 32 is 8192 hosts /
//!   49152 queues: the build must not be eagerly O(total queues).
//! * digest passes — the permutation scenarios traced into FNV-1a digests,
//!   recorded in `params` as behaviour goldens.
//!
//! Usage mirrors `perf_eventloop`:
//!
//! ```text
//! perf_scale                          # run, write results/perf_scale.json
//! perf_scale --out BENCH_scale.json --baseline-from old.json
//! perf_scale --check BENCH_scale.json # k=16 smoke: digest + memory budget
//! ```
//!
//! `--check` is the CI gate: timing-free, it re-runs the k = 16 permutation
//! and fails if the trace digest drifted or `bytes_per_conn` exceeds the
//! recorded value by more than the slack factor — so a memory regression is
//! machine-caught even on loaded machines where wall-clock numbers are
//! meaningless.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use bench::fattree::dc_config;
use bench::json::{parse, Json};
use bench::report::RunReport;
use eventsim::{SimDuration, SimRng, SimTime};
use mpsim_core::Algorithm;
use netsim::profile::RunProfile;
use netsim::Simulation;
use tcpsim::Connection;
use topo::{FatTree, FatTreeConfig};
use trace::{DigestSink, Tracer};
use workload::permutation_traffic;

/// Live-bytes counting allocator. Unlike `perf_eventloop`'s cumulative
/// counter, this one tracks the *currently resident* bytes (alloc adds,
/// dealloc subtracts) and their high-water mark, so scenario phases can be
/// attributed by snapshot deltas.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

fn track(delta: i64) {
    let live = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
    if delta > 0 {
        PEAK.fetch_max(live, Ordering::Relaxed);
    }
}

/// Bytes currently allocated (layout sizes, not allocator overhead).
fn live_bytes() -> i64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water live bytes since the last [`reset_peak`].
fn peak_bytes() -> i64 {
    PEAK.load(Ordering::Relaxed)
}

/// Restart high-water tracking from the current live level.
fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

// SAFETY: delegates directly to `System`; the counters are relaxed atomics
// with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        track(layout.size() as i64);
        // SAFETY: same layout contract as the caller's.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        track(-(layout.size() as i64));
        // SAFETY: same pointer/layout contract as the caller's.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        track(new_size as i64 - layout.size() as i64);
        // SAFETY: same pointer/layout contract as the caller's.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Perf passes per permutation scenario (memory numbers are deterministic;
/// only events/sec takes the best-of).
const PERF_PASSES: usize = 2;

/// Build-only timing passes (cheap, so more repeats for timer stability).
const BUILD_PASSES: usize = 5;

/// `--check` tolerates this much growth over the recorded `bytes_per_conn`
/// before failing. Allocation sizes are deterministic, so the slack only
/// absorbs std-library differences across toolchain versions.
const CHECK_SLACK: f64 = 1.25;

/// One permutation measurement point.
struct PermScenario {
    name: &'static str,
    k: usize,
    subflows: usize,
    /// Simulated horizon; start jitter spreads over the first quarter.
    secs: f64,
    seed: u64,
}

const PERM: &[PermScenario] = &[
    PermScenario {
        name: "k8_perm",
        k: 8,
        subflows: 4,
        secs: 0.5,
        seed: 8,
    },
    PermScenario {
        name: "k16_perm",
        k: 16,
        subflows: 4,
        secs: 0.2,
        seed: 16,
    },
];

/// Build-only arity points. k = 32 never carries traffic here: the point is
/// that *constructing* a 49k-queue fabric must stay cheap.
const BUILD_KS: &[usize] = &[8, 16, 32];

/// Everything one phased permutation run leaves behind.
struct PermRun {
    sim: Simulation,
    conns: usize,
    build_wall_s: f64,
    /// Heap growth while building the topology.
    topo_bytes: i64,
    /// Heap growth while installing + scheduling all connections.
    setup_bytes: i64,
    /// High-water heap over the whole scenario, relative to its start.
    peak_live_bytes: i64,
    /// Wall seconds of the run phase only.
    run_wall_s: f64,
    /// Events/sec over the run phase only.
    events_per_sec: f64,
    /// Total data packets delivered to sinks (behaviour sanity metric).
    delivered: f64,
    /// Route-arena occupancy after connection setup: distinct routes and
    /// total hops (recycle diagnostics; bounded by the path set, not runs).
    routes: usize,
    route_hops: usize,
}

/// Build the fabric, install one OLIA connection per host along a fixed
/// permutation, run to the horizon. Phase boundaries snapshot the live-byte
/// counter; the caller picks which deltas to report.
fn run_perm(s: &PermScenario, tracer: &Tracer) -> PermRun {
    // The route arena is thread-local and would otherwise carry the previous
    // scenario's interned paths into this one's byte accounting. Safe here:
    // any prior `PermRun` kept by the caller is only read for scalar stats,
    // never for its routes. The connection-state pool is cleared for the
    // same reason: rings returned by the previous scenario's teardown must
    // not subsidize (or be charged to) this one.
    netsim::routes::clear();
    tcpsim::pool::clear();
    let live0 = live_bytes();
    reset_peak();
    let mut sim = Simulation::new(s.seed);
    sim.set_tracer(tracer.clone());
    let bw = RunProfile::start();
    let ft = FatTree::build(&mut sim, s.k, &FatTreeConfig::default());
    let build_wall_s = bw.finish().wall_s;
    let live_topo = live_bytes();

    let mut rng = SimRng::seed_from_u64(s.seed ^ 0x5CA1E);
    let perm = permutation_traffic(&mut rng, ft.num_hosts());
    let cfg = dc_config();
    let conns: Vec<Connection> = (0..ft.num_hosts())
        .map(|h| {
            ft.connect(
                &mut sim,
                h,
                perm[h],
                Algorithm::Olia,
                s.subflows,
                None,
                cfg,
                &mut rng,
                h as u64,
            )
        })
        .collect();
    for c in &conns {
        let jitter = SimDuration::from_secs_f64(rng.f64() * s.secs * 0.25);
        sim.start_endpoint_at(c.source, SimTime::ZERO + jitter);
    }
    let live_setup = live_bytes();
    let (routes, route_hops) = netsim::routes::store_stats();

    let w = RunProfile::start();
    sim.run_until(SimTime::from_secs_f64(s.secs));
    let p = w.finish();
    let peak = peak_bytes();
    let delivered: f64 = conns
        .iter()
        .map(|c| c.handle.read(|f| f.delivered_packets as f64))
        .sum();
    PermRun {
        conns: conns.len(),
        build_wall_s,
        topo_bytes: live_topo - live0,
        setup_bytes: live_setup - live_topo,
        peak_live_bytes: peak - live0,
        run_wall_s: p.wall_s,
        events_per_sec: p.events_per_sec(),
        delivered,
        routes,
        route_hops,
        sim,
    }
}

/// Untraced perf passes: memory phases from the first pass (deterministic),
/// best events/sec across passes.
fn measure_perm(s: &PermScenario) -> PermRun {
    let mut best: Option<PermRun> = None;
    for _ in 0..PERF_PASSES {
        let r = run_perm(s, &Tracer::disabled());
        if best
            .as_ref()
            .is_none_or(|b| r.events_per_sec > b.events_per_sec)
        {
            best = Some(r);
        }
    }
    // PERF_PASSES ≥ 1, so a measurement was recorded.
    best.unwrap_or_else(|| unreachable!("no perf pass ran"))
}

/// Total queues an eager k-ary FatTree materializes: 2 per host plus 2 per
/// edge↔agg and agg↔core link — 3k³/2.
fn total_queues(k: usize) -> u64 {
    (3 * k * k * k / 2) as u64
}

/// Topology construction alone: best-of-N wall seconds and resident bytes.
fn measure_build(k: usize) -> (f64, i64) {
    let mut best = f64::INFINITY;
    let mut topo_bytes = 0;
    for _ in 0..BUILD_PASSES {
        let live0 = live_bytes();
        let mut sim = Simulation::new(0xB11D ^ k as u64);
        let w = RunProfile::start();
        let ft = FatTree::build(&mut sim, k, &FatTreeConfig::default());
        let wall = w.finish().wall_s;
        topo_bytes = live_bytes() - live0;
        std::hint::black_box(&ft);
        best = best.min(wall);
    }
    (best, topo_bytes)
}

/// Traced digest pass: the full JSONL byte stream folded into FNV-1a.
fn digest(s: &PermScenario) -> (u64, u64) {
    let (tracer, sink) = Tracer::to_sink(DigestSink::new());
    let r = run_perm(s, &tracer);
    drop(r);
    drop(tracer);
    let sink = sink.borrow();
    (sink.digest(), sink.bytes())
}

fn report_perm(report: &mut RunReport, r: &PermRun, name: &str) {
    let n = r.conns as f64;
    report.metric(&format!("{name}.conns"), n);
    report.metric(&format!("{name}.events"), r.sim.events_processed() as f64);
    report.metric(&format!("{name}.events_per_sec"), r.events_per_sec);
    report.metric(&format!("{name}.wall_s"), r.run_wall_s);
    report.metric(&format!("{name}.build_wall_s"), r.build_wall_s);
    report.metric(&format!("{name}.topo_bytes"), r.topo_bytes as f64);
    report.metric(&format!("{name}.bytes_per_conn"), r.setup_bytes as f64 / n);
    report.metric(
        &format!("{name}.peak_bytes_per_conn"),
        (r.peak_live_bytes - r.topo_bytes) as f64 / n,
    );
    report.metric(&format!("{name}.peak_live_bytes"), r.peak_live_bytes as f64);
    report.metric(&format!("{name}.delivered"), r.delivered);
    report.metric(&format!("{name}.routes"), r.routes as f64);
    report.metric(&format!("{name}.route_hops"), r.route_hops as f64);
    let s = r.sim.loop_stats();
    report.metric(&format!("{name}.peak_heap"), s.peak_heap as f64);
    report.metric(&format!("{name}.peak_arena"), s.peak_arena as f64);
    report.metric(&format!("{name}.peak_timers"), s.peak_timers as f64);
}

/// `--check`: re-run the k = 16 permutation, compare its digest and
/// bytes-per-connection against the tracked report. Timing-free.
fn check(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_scale: cannot read {path}: {e}");
            return 1;
        }
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perf_scale: cannot parse {path}: {e}");
            return 1;
        }
    };
    let Some(s) = PERM.iter().find(|s| s.name == "k16_perm") else {
        eprintln!("perf_scale: no k16_perm scenario registered");
        return 1;
    };
    let mut failures = 0;

    // Memory budget: untraced run, deterministic byte accounting.
    let r = run_perm(s, &Tracer::disabled());
    let bytes_per_conn = r.setup_bytes as f64 / r.conns as f64;
    drop(r);
    let budget = doc
        .get("metrics")
        .and_then(|m| m.get("k16_perm.bytes_per_conn"))
        .and_then(Json::as_f64);
    match budget {
        Some(b) => {
            let limit = b * CHECK_SLACK;
            if bytes_per_conn <= limit {
                println!("bytes_per_conn k16_perm: {bytes_per_conn:.0} <= {limit:.0} OK");
            } else {
                eprintln!(
                    "bytes_per_conn k16_perm: {bytes_per_conn:.0} exceeds budget {limit:.0} \
                     (recorded {b:.0} x {CHECK_SLACK}) — memory regression!"
                );
                failures += 1;
            }
        }
        None => {
            eprintln!("perf_scale: {path} has no metrics.k16_perm.bytes_per_conn");
            failures += 1;
        }
    }

    // Behaviour: trace digest must match the recorded golden byte-for-byte.
    let golden = doc
        .get("params")
        .and_then(|p| p.get("digest.k16_perm"))
        .and_then(Json::as_str);
    match golden {
        Some(golden) => {
            let (d, _) = digest(s);
            let hex = format!("{d:016x}");
            if hex == golden {
                println!("digest k16_perm: {hex} OK");
            } else {
                eprintln!(
                    "digest k16_perm: computed {hex} != golden {golden} — behaviour changed!"
                );
                failures += 1;
            }
        }
        None => {
            eprintln!("perf_scale: {path} has no params.digest.k16_perm");
            failures += 1;
        }
    }

    if failures == 0 {
        println!("perf_scale: k16 smoke passed");
        0
    } else {
        1
    }
}

/// Copy `metrics.*` of a previous report in as `baseline.*` and derive
/// `shrink.*` / `speedup.*` ratios for the shared scenarios.
fn merge_baseline(report: &mut RunReport, current: &[(String, f64, f64)], path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc = parse(&text).unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_object)
        .unwrap_or_else(|| panic!("baseline {path} has no metrics object"));
    for (k, v) in metrics {
        if k.starts_with("baseline.") || k.starts_with("shrink.") || k.starts_with("speedup.") {
            continue; // don't chain baselines of baselines
        }
        if let Some(x) = v.as_f64() {
            report.metric(&format!("baseline.{k}"), x);
        }
    }
    for (name, bytes_per_conn, events_per_sec) in current {
        if let Some(base) = metrics
            .get(&format!("{name}.bytes_per_conn"))
            .and_then(Json::as_f64)
        {
            if *bytes_per_conn > 0.0 {
                report.metric(&format!("shrink.{name}"), base / bytes_per_conn);
            }
        }
        if let Some(base) = metrics
            .get(&format!("{name}.events_per_sec"))
            .and_then(Json::as_f64)
        {
            if base > 0.0 {
                report.metric(&format!("speedup.{name}"), events_per_sec / base);
            }
        }
    }
    report.param("baseline_from", path);
}

fn main() {
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next(),
            "--baseline-from" => baseline = args.next(),
            "--check" => {
                let Some(path) = args.next() else {
                    eprintln!("perf_scale: --check needs a report path");
                    std::process::exit(2);
                };
                std::process::exit(check(&path));
            }
            other => {
                eprintln!("perf_scale: unknown argument {other:?}");
                eprintln!(
                    "usage: perf_scale [--out FILE] [--baseline-from REPORT] [--check REPORT]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut report = RunReport::start("perf_scale");
    report.param("perf_passes", PERF_PASSES as u64);
    report.param("build_passes", BUILD_PASSES as u64);

    println!(
        "{:<10} {:>6} {:>12} {:>14} {:>12} {:>14} {:>12}",
        "scenario", "conns", "events", "events/sec", "bytes/conn", "peak live MB", "build ms"
    );
    let mut current = Vec::new();
    for s in PERM {
        let r = measure_perm(s);
        let bytes_per_conn = r.setup_bytes as f64 / r.conns as f64;
        println!(
            "{:<10} {:>6} {:>12} {:>14.0} {:>12.0} {:>14.2} {:>12.3}",
            s.name,
            r.conns,
            r.sim.events_processed(),
            r.events_per_sec,
            bytes_per_conn,
            r.peak_live_bytes as f64 / 1e6,
            r.build_wall_s * 1e3,
        );
        report.param(&format!("{}.k", s.name), s.k as u64);
        report.param(&format!("{}.subflows", s.name), s.subflows as u64);
        report_perm(&mut report, &r, s.name);
        current.push((s.name.to_string(), bytes_per_conn, r.events_per_sec));
    }

    for &k in BUILD_KS {
        let (wall, topo_bytes) = measure_build(k);
        let name = format!("build.k{k}");
        println!(
            "{:<10} {:>6} {:>12} {:>14} {:>12} {:>14.2} {:>12.3}",
            name,
            "-",
            total_queues(k),
            "-",
            "-",
            topo_bytes as f64 / 1e6,
            wall * 1e3,
        );
        report.metric(&format!("{name}.build_wall_s"), wall);
        report.metric(&format!("{name}.queues"), total_queues(k) as f64);
        report.metric(&format!("{name}.topo_bytes"), topo_bytes as f64);
    }

    for s in PERM {
        let (d, bytes) = digest(s);
        let hex = format!("{d:016x}");
        eprintln!("digest {}: {hex} ({bytes} trace bytes)", s.name);
        report.param(&format!("digest.{}", s.name), hex);
        report.param(&format!("trace_bytes.{}", s.name), bytes);
    }

    if let Some(path) = &baseline {
        merge_baseline(&mut report, &current, path);
    }

    match out {
        Some(path) => {
            let doc = report.finish();
            if let Err(e) = bench::report::validate(&doc) {
                eprintln!("perf_scale: produced report fails validation: {e}");
                std::process::exit(1);
            }
            std::fs::write(&path, doc.render_pretty() + "\n")
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("scale report: {path}");
        }
        None => report.write_or_warn(),
    }
}

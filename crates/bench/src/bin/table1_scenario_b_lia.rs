//! Table I: Scenario B measured with LIA — per-user rates and aggregate,
//! before and after the Red users upgrade to MPTCP.
//!
//! Paper values (Mb/s): single-path 2.5 / 1.5 / 59.8; multipath
//! 2.0 / 1.4 / 52.0 — a 13% aggregate drop.

use bench::report::RunReport;
use bench::table::{f3, pm, Table};
use bench::{scenario_b, RunCfg};
use mpsim_core::Algorithm;
use topo::ScenarioBParams;

fn main() {
    let cfg = RunCfg::from_env();
    let mut report = RunReport::start("table1_scenario_b_lia");
    report.cfg(&cfg);
    report.param("algorithm", "lia");
    println!(
        "Scenario B (Table I) — LIA; CX=27, CT=36 Mb/s, 15+15 users; {} replications\n",
        cfg.replications
    );
    let single = scenario_b::measure(&ScenarioBParams::paper(false, Algorithm::Lia), &cfg);
    let multi = scenario_b::measure(&ScenarioBParams::paper(true, Algorithm::Lia), &cfg);
    let mut t = Table::new(
        "Table I (LIA)",
        &[
            "Red users",
            "Blue rate/user",
            "Red rate/user",
            "Aggregate",
            "paper",
        ],
    );
    t.row(&[
        "single-path".into(),
        pm(single.blue_mbps.mean, single.blue_mbps.ci95),
        pm(single.red_mbps.mean, single.red_mbps.ci95),
        pm(single.aggregate_mbps.mean, single.aggregate_mbps.ci95),
        "2.5 / 1.5 / 59.8".into(),
    ]);
    t.row(&[
        "multipath".into(),
        pm(multi.blue_mbps.mean, multi.blue_mbps.ci95),
        pm(multi.red_mbps.mean, multi.red_mbps.ci95),
        pm(multi.aggregate_mbps.mean, multi.aggregate_mbps.ci95),
        "2.0 / 1.4 / 52.0".into(),
    ]);
    t.print();
    t.write_csv("table1_scenario_b_lia");
    let drop = (1.0 - multi.aggregate_mbps.mean / single.aggregate_mbps.mean) * 100.0;
    println!(
        "Aggregate drop from the upgrade: {}% (paper: 13%)",
        f3(drop)
    );
    report.table(&t);
    report.metric("aggregate_drop_pct", drop);
    report.write_or_warn();
}

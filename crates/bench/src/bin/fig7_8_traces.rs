//! Figures 7 and 8: window and α evolution for a two-path flow.
//!
//! Symmetric case (Fig. 7): each path shared with 5 TCP flows — OLIA uses
//! both paths, like LIA, with no flapping. Asymmetric case (Fig. 8): path 2
//! shared with 10 TCP flows — OLIA parks the congested subflow at 1 MSS
//! while LIA keeps significant traffic there.
//!
//! Prints summary statistics and writes the full traces as CSV under
//! `results/` for plotting.

use bench::report::RunReport;
use bench::table::{f3, Table};
use bench::traces;
use mpsim_core::Algorithm;

fn dump_traces(name: &str, r: &traces::TraceResult) {
    let mut t = bench::table::Table::new(name, &["t_s", "w1", "w2", "a1", "a2"]);
    // Align on subflow-0 window samples; α samples use the same clock.
    let lookup = |series: &[(f64, f64)], t: f64| -> f64 {
        match series.binary_search_by(|&(ts, _)| ts.total_cmp(&t)) {
            Ok(i) => series[i].1,
            Err(0) => 0.0,
            Err(i) => series[i - 1].1,
        }
    };
    for &(ts, w1) in &r.cwnd[0] {
        t.row(&[
            f3(ts),
            f3(w1),
            f3(lookup(&r.cwnd[1], ts)),
            f3(lookup(&r.alpha[0], ts)),
            f3(lookup(&r.alpha[1], ts)),
        ]);
    }
    t.write_csv(name);
}

fn main() {
    let secs = if std::env::var_os("REPRO_QUICK").is_some() {
        60.0
    } else {
        120.0
    };
    let mut report = RunReport::start("fig7_8_traces");
    report.param("secs", secs);
    report.param("seed", 42u64);
    let mut summary = Table::new(
        "Figs 7/8: two-bottleneck window behaviour",
        &[
            "case",
            "algorithm",
            "mean w1",
            "mean w2",
            "w2 at floor %",
            "goodput Mb/s",
        ],
    );
    for (case, n2) in [("symmetric (5/5)", 5usize), ("asymmetric (5/10)", 10)] {
        for alg in [Algorithm::Olia, Algorithm::Lia] {
            let r = traces::run(10.0, 5, n2, alg, secs, 42);
            summary.row(&[
                case.into(),
                alg.name().into(),
                f3(r.mean_cwnd[0]),
                f3(r.mean_cwnd[1]),
                f3(r.frac_at_floor[1] * 100.0),
                f3(r.goodput_mbps),
            ]);
            let tag = format!(
                "fig{}_trace_{}",
                if n2 == 5 { "7" } else { "8" },
                alg.name()
            );
            dump_traces(&tag, &r);
        }
    }
    summary.print();
    summary.write_csv("fig7_8_summary");
    report.table(&summary);
    report.write_or_warn();
    println!(
        "Paper shape: symmetric case — both algorithms keep both windows open (no\n\
         flapping; OLIA's α ≈ 0). Asymmetric case — OLIA's congested-path window sits\n\
         at 1 MSS most of the time (brief α-driven probes), while LIA maintains a\n\
         significant window there. Full traces: results/fig7_trace_*.csv,\n\
         results/fig8_trace_*.csv."
    );
}

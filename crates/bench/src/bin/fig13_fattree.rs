//! Figure 13: FatTree permutation throughput.
//!
//! (a) aggregate long-flow throughput (% of optimal) vs number of subflows
//! for MPTCP-LIA and MPTCP-OLIA, plus single-path TCP; (b) per-flow
//! throughputs ranked, at 8 subflows.
//!
//! Paper scale is k=8 (128 hosts, 80 switches); `REPRO_QUICK=1` runs k=4.

use bench::fattree;
use bench::report::RunReport;
use bench::table::{f3, Table};
use mpsim_core::Algorithm;

fn main() {
    let quick = std::env::var_os("REPRO_QUICK").is_some();
    let (k, secs) = if quick { (4, 9.0) } else { (8, 15.0) };
    let mut report = RunReport::start("fig13_fattree");
    report.param("k", k as u64);
    report.param("secs", secs);
    report.param("seed", 7u64);
    println!("FatTree permutation (Fig. 13) — k={k}, {secs}s per point\n");

    let mut fa = Table::new(
        "Fig 13(a): aggregate throughput, % of optimal",
        &["subflows", "LIA", "OLIA"],
    );
    let subflow_counts: &[usize] = if quick {
        &[2, 4, 8]
    } else {
        &[2, 3, 4, 5, 6, 7, 8]
    };
    let mut ranked: Vec<(String, Vec<f64>)> = Vec::new();
    for &nsub in subflow_counts {
        let lia = fattree::permutation(k, Algorithm::Lia, nsub, secs, 7);
        let olia = fattree::permutation(k, Algorithm::Olia, nsub, secs, 7);
        fa.row(&[
            nsub.to_string(),
            f3(lia.throughput_pct),
            f3(olia.throughput_pct),
        ]);
        if nsub == 8 {
            ranked.push(("LIA-8".into(), lia.ranked_pct));
            ranked.push(("OLIA-8".into(), olia.ranked_pct));
        }
    }
    let tcp = fattree::permutation(k, Algorithm::Reno, 1, secs, 7);
    println!("Single-path TCP: {} % of optimal\n", f3(tcp.throughput_pct));
    ranked.push(("TCP".into(), tcp.ranked_pct));
    fa.print();
    fa.write_csv("fig13a_fattree_aggregate");

    let mut fb = Table::new(
        "Fig 13(b): ranked per-flow throughput (% of line rate)",
        &["rank", "LIA-8", "OLIA-8", "TCP"],
    );
    let n = ranked[0].1.len();
    let step = (n / 16).max(1);
    for i in (0..n).step_by(step) {
        fb.row(&[
            i.to_string(),
            f3(ranked
                .iter()
                .find(|r| r.0 == "LIA-8")
                .map(|r| r.1[i])
                .unwrap_or(0.0)),
            f3(ranked
                .iter()
                .find(|r| r.0 == "OLIA-8")
                .map(|r| r.1[i])
                .unwrap_or(0.0)),
            f3(ranked
                .iter()
                .find(|r| r.0 == "TCP")
                .map(|r| r.1[i])
                .unwrap_or(0.0)),
        ]);
    }
    fb.print();
    fb.write_csv("fig13b_fattree_ranked");
    report.metric("tcp_throughput_pct", tcp.throughput_pct);
    report.table(&fa);
    report.table(&fb);
    report.write_or_warn();
    println!(
        "Paper shape: MPTCP (either algorithm) approaches full utilization as subflows\n\
         grow and exceeds single-path TCP by a wide margin; LIA ≈ OLIA here because all\n\
         paths are equally good, and both are fairer than TCP across flows."
    );
}

//! Figure 4(a)/(b): Scenario B analytic sweep over CX/CT.
//!
//! Normalized group throughputs (N·rate/CT) for Red users on a single path
//! (dashed curves) and after upgrading to multipath (solid), under LIA
//! (Fig. 4a) and under the theoretical optimum with probing cost (Fig. 4b).
//! The paper's headline: with LIA the upgrade hurts *everyone* for every
//! CX/CT — problem P1.

use bench::report::RunReport;
use bench::table::{f3, Table};
use fluid::scenario_b as analysis;

fn main() {
    let mut report = RunReport::start("fig4_scenario_b");
    report.param("kind", "analytic");
    let mut lia = Table::new(
        "Fig 4(a): LIA — normalized throughputs vs CX/CT",
        &[
            "CX/CT",
            "blue (red single)",
            "red (red single)",
            "blue (red mptcp)",
            "red (red mptcp)",
            "blue drop %",
        ],
    );
    let mut opt = Table::new(
        "Fig 4(b): optimum with probing cost",
        &[
            "CX/CT",
            "blue (red single)",
            "red (red single)",
            "blue (red mptcp)",
            "red (red mptcp)",
            "blue drop %",
        ],
    );
    let mut x = 0.15;
    while x <= 1.5 + 1e-9 {
        let inp = analysis::ScenarioBInputs::paper(x);
        let ls = analysis::lia_red_single(&inp);
        let lm = analysis::lia_red_multipath(&inp);
        lia.row(&[
            f3(x),
            f3(ls.blue_norm),
            f3(ls.red_norm),
            f3(lm.blue_norm),
            f3(lm.red_norm),
            f3((1.0 - lm.blue_norm / ls.blue_norm) * 100.0),
        ]);
        let os = analysis::optimal_red_single(&inp);
        let om = analysis::optimal_red_multipath(&inp);
        opt.row(&[
            f3(x),
            f3(os.blue_norm),
            f3(os.red_norm),
            f3(om.blue_norm),
            f3(om.red_norm),
            f3((1.0 - om.blue_norm / os.blue_norm) * 100.0),
        ]);
        x += 0.15;
    }
    lia.print();
    lia.write_csv("fig4a_scenario_b_lia");
    opt.print();
    opt.write_csv("fig4b_scenario_b_optimal");
    report.table(&lia);
    report.table(&opt);
    report.write_or_warn();
    println!(
        "Paper shape: under LIA the upgrade costs the Blue users up to ~21% (peak near\n\
         CX/CT ≈ 0.75); under the optimum the loss is the ~3% probing overhead."
    );
}

//! Ablation: queue-discipline sensitivity — classic averaged RED (the
//! testbed's Click configuration), instantaneous RED, and drop-tail.
//!
//! The paper ran its scenarios over RED and notes drop-tail was also
//! studied in htsim. This ablation re-runs a Scenario-C-like comparison
//! (LIA vs OLIA) over all three disciplines to show the headline
//! conclusions don't hinge on the AQM choice.

use bench::report::RunReport;
use bench::table::{f3, f4, Table};
use eventsim::{SimDuration, SimRng, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, RedParams, Simulation};
use tcpsim::{Connection, ConnectionSpec, PathSpec};
use topo::stagger_starts;

#[derive(Clone, Copy)]
enum Variant {
    RedAveraged,
    RedInstant,
    DropTail,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::RedAveraged => "RED (averaged)",
            Variant::RedInstant => "RED (instantaneous)",
            Variant::DropTail => "drop-tail",
        }
    }

    fn queue(self, sim: &mut Simulation, rate_bps: f64) -> netsim::QueueId {
        let lat = SimDuration::from_millis(10);
        match self {
            Variant::RedAveraged => sim.add_queue(QueueConfig::red_paper(rate_bps, lat)),
            Variant::RedInstant => sim.add_queue(QueueConfig::red(
                rate_bps,
                lat,
                RedParams::paper_profile(rate_bps).instantaneous(),
            )),
            Variant::DropTail => {
                // Same buffer budget as the RED profile's hard cap.
                let limit = RedParams::paper_profile(rate_bps).limit;
                sim.add_queue(QueueConfig::drop_tail(rate_bps, lat, limit))
            }
        }
    }
}

/// Scenario-C-like: 10 multipath users (AP1 20 Mb/s exclusive, AP2 10 Mb/s
/// shared) vs 10 TCP users on AP2. Returns (single-path norm, p2).
fn run(variant: Variant, alg: Algorithm, secs: f64) -> (f64, f64) {
    let mut sim = Simulation::new(31);
    let ap1 = variant.queue(&mut sim, 20e6);
    let ap2 = variant.queue(&mut sim, 10e6);
    let pad1 = sim.add_queue(QueueConfig::drop_tail(
        10e9,
        SimDuration::from_millis(30),
        1_000_000,
    ));
    let rev = sim.add_queue(QueueConfig::drop_tail(
        10e9,
        SimDuration::from_millis(40),
        1_000_000,
    ));
    let mut conns: Vec<Connection> = Vec::new();
    for i in 0..10 {
        conns.push(
            ConnectionSpec::new(alg)
                .with_path(PathSpec::new(route(&[ap1, pad1]), route(&[rev])))
                .with_path(PathSpec::new(route(&[ap2, pad1]), route(&[rev])))
                .install(&mut sim, i),
        );
    }
    let mut singles = Vec::new();
    for i in 0..10 {
        let c = ConnectionSpec::new(Algorithm::Reno)
            .with_path(PathSpec::new(route(&[ap2, pad1]), route(&[rev])))
            .install(&mut sim, 100 + i);
        singles.push(c.clone());
        conns.push(c);
    }
    let mut rng = SimRng::seed_from_u64(31);
    stagger_starts(&mut sim, &conns, SimDuration::from_secs(2), &mut rng);
    sim.run_until(SimTime::from_secs_f64(secs / 3.0));
    sim.reset_queue_stats();
    for c in &conns {
        c.handle.reset(sim.now());
    }
    sim.run_until(SimTime::from_secs_f64(secs));
    let single_norm = singles
        .iter()
        .map(|c| c.handle.goodput_mbps(sim.now()))
        .sum::<f64>()
        / 10.0;
    (single_norm, sim.queue_stats(ap2).loss_probability())
}

fn main() {
    let secs = if std::env::var_os("REPRO_QUICK").is_some() {
        45.0
    } else {
        120.0
    };
    let mut report = RunReport::start("ablation_red_variants");
    report.param("secs", secs);
    report.param("seed", 31u64);
    let mut t = Table::new(
        "Queue-discipline sensitivity (Scenario-C-like, C1/C2 = 2)",
        &[
            "discipline",
            "TCP users LIA",
            "TCP users OLIA",
            "p2 LIA",
            "p2 OLIA",
        ],
    );
    for v in [Variant::RedAveraged, Variant::RedInstant, Variant::DropTail] {
        let (lia, p_lia) = run(v, Algorithm::Lia, secs);
        let (olia, p_olia) = run(v, Algorithm::Olia, secs);
        t.row(&[v.name().into(), f3(lia), f3(olia), f4(p_lia), f4(p_olia)]);
    }
    t.print();
    t.write_csv("ablation_red_variants");
    report.table(&t);
    report.write_or_warn();
    println!(
        "Reading: OLIA leaves more to the TCP users than LIA under every\n\
         discipline — the paper's conclusion is not an artifact of the Click RED\n\
         configuration."
    );
}

//! Ablation: receive-window limitations (§VII lists them as future
//! experimental work).
//!
//! A two-path OLIA user over two clean 10 Mb/s paths. With an unlimited
//! receive buffer it pools both links (~20 Mb/s); a small receive window
//! caps the *sum* of the subflow windows at `rcv_wnd/rtt`, capping
//! throughput no matter how many paths exist.

use bench::report::RunReport;
use bench::table::{f3, Table};
use eventsim::{SimDuration, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, Simulation};
use tcpsim::{ConnectionSpec, PathSpec, TcpConfig};

fn run(rcv_wnd_mss: f64, secs: f64) -> f64 {
    let mut sim = Simulation::new(29);
    let link = |sim: &mut Simulation| {
        (
            sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40))),
            sim.add_queue(QueueConfig::drop_tail(
                10e9,
                SimDuration::from_millis(40),
                1_000_000,
            )),
        )
    };
    let (f1, r1) = link(&mut sim);
    let (f2, r2) = link(&mut sim);
    // Per-subflow receive-window share: the connection-level buffer divided
    // evenly (a common MPTCP deployment configuration).
    let cfg = TcpConfig {
        rcv_wnd: rcv_wnd_mss / 2.0,
        ..TcpConfig::default()
    };
    let conn = ConnectionSpec::new(Algorithm::Olia)
        .with_config(cfg)
        .with_path(PathSpec::new(route(&[f1]), route(&[r1])))
        .with_path(PathSpec::new(route(&[f2]), route(&[r2])))
        .install(&mut sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);
    sim.run_until(SimTime::from_secs_f64(secs / 4.0));
    conn.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(secs));
    conn.handle.goodput_mbps(sim.now())
}

fn main() {
    let secs = if std::env::var_os("REPRO_QUICK").is_some() {
        40.0
    } else {
        90.0
    };
    let mut report = RunReport::start("ablation_rcv_window");
    report.param("secs", secs);
    report.param("seed", 29u64);
    let mut t = Table::new(
        "Receive-window limitation: 2×10 Mb/s paths, ~100 ms RTT",
        &["rcv buffer (MSS)", "goodput Mb/s", "window-bound Mb/s"],
    );
    for &wnd in &[8.0, 16.0, 32.0, 64.0, 128.0, 1e9] {
        let goodput = run(wnd, secs);
        // Bound: rcv_wnd · MSS · 8 / rtt, with rtt ≈ 100 ms prop + queueing.
        let bound = if wnd >= 1e9 {
            f64::INFINITY
        } else {
            wnd * 1500.0 * 8.0 / 0.1 / 1e6
        };
        t.row(&[
            if wnd >= 1e9 {
                "unlimited".into()
            } else {
                format!("{wnd:.0}")
            },
            f3(goodput),
            if bound.is_finite() {
                f3(bound)
            } else {
                "-".into()
            },
        ]);
    }
    t.print();
    t.write_csv("ablation_rcv_window");
    report.table(&t);
    report.write_or_warn();
    println!(
        "Reading: below ~BDP·paths (≈130 MSS here) the receive buffer, not\n\
         congestion control, limits MPTCP throughput — the §VII caveat that\n\
         receive-window limitations deserve their own experiments."
    );
}

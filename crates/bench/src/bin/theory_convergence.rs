//! Future-work study (§VII): stability and convergence of OLIA.
//!
//! The paper proves Pareto-optimality of the fixed points and defers
//! stability/convergence analysis. This binary measures, in the fluid
//! model, how fast OLIA / LIA / uncoupled trajectories converge to their
//! equilibria from perturbed starting points — time until the utility V
//! stays within 1% of its final value — and whether the OLIA utility V is
//! monotone along the way (Theorem 4's Lyapunov property, which is what
//! ultimately underwrites convergence in the equal-RTT case).

use bench::report::RunReport;
use bench::table::{f3, Table};
use fluid::ode::{
    FluidAlgorithm, FluidLink, FluidNetwork, FluidParams, FluidRoute, FluidUser, LossModel,
};
use fluid::utility::utility_v;

/// Three users over three links, one multipath user bridging them.
fn network() -> FluidNetwork {
    let mk_user = |links: Vec<usize>| FluidUser {
        routes: links
            .into_iter()
            .map(|l| FluidRoute {
                links: vec![l],
                rtt: 0.1,
            })
            .collect(),
    };
    FluidNetwork {
        links: vec![
            FluidLink::with_capacity(400.0),
            FluidLink::with_capacity(700.0),
            FluidLink::with_capacity(300.0),
        ],
        users: vec![
            mk_user(vec![0, 1]),
            mk_user(vec![1, 2]),
            mk_user(vec![0]),
            mk_user(vec![2]),
        ],
        loss: LossModel::default(),
    }
}

/// Integrate and return (time for the utility V to stay within 1% of its
/// final value, V monotone?, final V).
fn converge(alg: FluidAlgorithm, x0: &Vec<Vec<f64>>) -> (f64, bool, f64) {
    let net = network();
    let dt = 1e-3;
    let chunk_steps = 2_000; // 2 s of fluid time per sample
    let chunks = 120;
    let params = FluidParams {
        dt,
        steps: chunk_steps,
        ..FluidParams::default()
    };
    let mut x = x0.clone();
    let mut trajectory = vec![x.clone()];
    let mut vs = vec![utility_v(&net, &x)];
    for _ in 0..chunks {
        x = net.integrate(alg, &x, &params);
        trajectory.push(x.clone());
        vs.push(utility_v(&net, &x));
    }
    let _ = trajectory;
    // Settle metric: first time the utility stays within 1% of its final
    // value. (Raw rates chatter benignly around the differential
    // inclusion's switching surfaces, so utility distance is the meaningful
    // Lyapunov criterion.)
    let v_final = *vs.last().unwrap();
    let mut settle = chunks;
    for i in (0..=chunks).rev() {
        if (vs[i] - v_final).abs() <= 0.01 * v_final.abs() {
            settle = i;
        } else {
            break;
        }
    }
    let settle_time = settle as f64 * chunk_steps as f64 * dt;
    let monotone = vs.windows(2).all(|w| w[1] >= w[0] - 1e-6 * w[0].abs());
    (settle_time, monotone, v_final)
}

fn main() {
    let mut report = RunReport::start("theory_convergence");
    report.param("kind", "fluid");
    let net = network();
    let starts: Vec<(&str, Vec<Vec<f64>>)> = vec![
        (
            "uniform 10",
            net.users
                .iter()
                .map(|u| vec![10.0; u.routes.len()])
                .collect(),
        ),
        (
            "skewed",
            net.users
                .iter()
                .map(|u| {
                    (0..u.routes.len())
                        .map(|r| if r == 0 { 300.0 } else { 1.0 })
                        .collect()
                })
                .collect(),
        ),
        (
            "overloaded",
            net.users
                .iter()
                .map(|u| vec![500.0; u.routes.len()])
                .collect(),
        ),
    ];
    let mut t = Table::new(
        "Fluid convergence from perturbed starts (settle time, s of fluid time)",
        &["start", "OLIA", "LIA", "uncoupled", "V monotone (OLIA)"],
    );
    for (name, x0) in &starts {
        let (t_olia, mono, _) = converge(FluidAlgorithm::Olia, x0);
        let (t_lia, _, _) = converge(FluidAlgorithm::Lia, x0);
        let (t_unc, _, _) = converge(FluidAlgorithm::Uncoupled, x0);
        t.row(&[
            (*name).into(),
            f3(t_olia),
            f3(t_lia),
            f3(t_unc),
            mono.to_string(),
        ]);
    }
    t.print();
    t.write_csv("theory_convergence");
    report.table(&t);
    report.write_or_warn();
    println!(
        "Reading: OLIA converges on the same timescale as LIA and the uncoupled\n\
         fluid from every start, and its utility V increases monotonically along\n\
         each trajectory (the Lyapunov property behind Theorem 4) — evidence for\n\
         the stability the paper leaves to future work."
    );
}

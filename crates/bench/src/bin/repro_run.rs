//! `repro_run` — run a JSON-described custom scenario.
//!
//! ```text
//! cargo run --release -p bench --bin repro_run -- scenarios/two_ap.json
//! ```
//!
//! See `bench::config` for the file format and `scenarios/` for examples.

use bench::config::{parse_scenario, run_scenario};
use bench::report::RunReport;
use bench::table::{f3, f4, Table};
use metrics::Summary;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: repro_run <scenario.json>");
            std::process::exit(2);
        }
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let spec = match parse_scenario(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    println!(
        "scenario {path}: {} links, {} flow groups, warmup {}s + measure {}s, seed {}\n",
        spec.links.len(),
        spec.flows.len(),
        spec.warmup_s,
        spec.measure_s,
        spec.seed
    );
    let mut run_report = RunReport::start("repro_run");
    run_report.param("scenario", path.as_str());
    run_report.param("seed", spec.seed);
    run_report.param("warmup_s", spec.warmup_s);
    run_report.param("measure_s", spec.measure_s);
    run_report.param("jitter_s", spec.jitter_s);
    let report = match run_scenario(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let mut groups = Table::new(
        "flow groups",
        &[
            "group",
            "flows",
            "mean Mb/s",
            "min",
            "max",
            "completed (FCT mean s)",
        ],
    );
    for g in &report.groups {
        let s = Summary::of(&g.goodputs_mbps);
        let fct = if g.completion_times_s.is_empty() {
            "-".to_string()
        } else {
            let fs = Summary::of(&g.completion_times_s);
            format!("{} ({})", g.completion_times_s.len(), f3(fs.mean))
        };
        groups.row(&[
            g.name.clone(),
            g.goodputs_mbps.len().to_string(),
            f3(s.mean),
            f3(s.min),
            f3(s.max),
            fct,
        ]);
    }
    groups.print();
    let mut links = Table::new("links", &["link", "loss prob", "utilization"]);
    for l in &report.links {
        links.row(&[l.name.clone(), f4(l.loss_probability), f3(l.utilization)]);
    }
    links.print();
    run_report.table(&groups);
    run_report.table(&links);
    run_report.registry("", &report.registry, report.sim_end);
    run_report.metric("events_processed", report.events_processed as f64);
    run_report.write_or_warn();
}

//! `validate_report` — check run-report JSON files against the schema.
//!
//! ```text
//! cargo run --release -p bench --bin validate_report -- results/*.json
//! ```
//!
//! Exits 0 when every file parses and validates (see [`bench::report`]),
//! 1 otherwise. CI runs this against freshly produced reports so schema
//! drift is caught in the same change that introduces it.

use bench::json::parse;
use bench::report::validate;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: validate_report <report.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &files {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read: {e}"))
            .and_then(|text| parse(&text).map_err(|e| format!("invalid JSON: {e}")))
            .and_then(|doc| validate(&doc));
        match outcome {
            Ok(()) => println!("ok      {path}"),
            Err(e) => {
                println!("INVALID {path}: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

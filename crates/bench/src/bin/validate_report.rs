//! `validate_report` — check run-report JSON files against the schema.
//!
//! ```text
//! cargo run --release -p bench --bin validate_report -- results/*.json
//! cargo run --release -p bench --bin validate_report -- --strict results/
//! ```
//!
//! Arguments may be report files or directories; a directory is scanned
//! (non-recursively, sorted) for `*.json` files. Exit status:
//!
//! * `0` — every report found parses and validates (see [`bench::report`]).
//!   With no reports found this is still `0`, but a warning is printed:
//!   "nothing to validate" and "everything valid" are different outcomes,
//!   and a glob that silently matched nothing has masked real schema drift
//!   before.
//! * `1` — at least one report is invalid, or no reports were found and
//!   `--strict` was given (CI passes `--strict` so an empty results
//!   directory fails the gate instead of vacuously passing it).
//! * `2` — usage or I/O error.

use bench::json::parse;
use bench::report::{
    is_lint_schema, validate, validate_chaos, validate_lint, validate_sweep, CHAOS_SCHEMA,
    SWEEP_SCHEMA,
};

fn main() {
    let mut strict = false;
    let mut args: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--strict" => strict = true,
            "--help" | "-h" => {
                eprintln!("usage: validate_report [--strict] <report.json | dir>...");
                std::process::exit(2);
            }
            _ => args.push(a),
        }
    }
    if args.is_empty() {
        eprintln!("usage: validate_report [--strict] <report.json | dir>...");
        std::process::exit(2);
    }

    // Expand directory arguments into their *.json files, sorted so the
    // output (and any first-failure) is deterministic.
    let mut files: Vec<String> = Vec::new();
    for arg in &args {
        let path = std::path::Path::new(arg);
        if path.is_dir() {
            let entries = match std::fs::read_dir(path) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("validate_report: cannot read directory {arg}: {e}");
                    std::process::exit(2);
                }
            };
            let mut found: Vec<String> = entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "json"))
                .map(|p| p.to_string_lossy().into_owned())
                .collect();
            found.sort();
            files.extend(found);
        } else {
            files.push(arg.clone());
        }
    }

    if files.is_empty() {
        eprintln!(
            "validate_report: WARNING: no report files found in: {}",
            args.join(", ")
        );
        std::process::exit(if strict { 1 } else { 0 });
    }

    let mut failed = false;
    let mut checked = 0usize;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                println!("INVALID {path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let doc = match parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                println!("INVALID {path}: invalid JSON: {e}");
                failed = true;
                continue;
            }
        };
        // A results/ directory also holds the simlint report (validated
        // through simlint's own schema checker, v1 and v2); an orchestra
        // run directory holds the frozen input manifest, which is an
        // input, not a report — skip exactly that schema so directory
        // scans stay usable. Anything else unknown is still an error.
        let schema = doc.get("schema").and_then(|s| s.as_str());
        if schema == Some("mptcp-manifest/v1") {
            println!("skip    {path} (mptcp-manifest/v1 — orchestra input, not a report)");
            continue;
        }
        checked += 1;
        // Sweep reports (orchestra's cross-seed aggregation), chaos
        // campaign reports, and lint reports have their own schemas;
        // everything else must be a plain run report.
        let result = if schema == Some(SWEEP_SCHEMA) {
            validate_sweep(&doc)
        } else if schema == Some(CHAOS_SCHEMA) {
            validate_chaos(&doc)
        } else if schema.is_some_and(is_lint_schema) {
            validate_lint(&text)
        } else {
            validate(&doc)
        };
        match result {
            Ok(()) => println!("ok      {path}"),
            Err(e) => {
                println!("INVALID {path}: {e}");
                failed = true;
            }
        }
    }
    println!(
        "validate_report: {checked} report(s) checked{}",
        if failed {
            ", FAILURES above"
        } else {
            ", all valid"
        }
    );
    std::process::exit(if failed { 1 } else { 0 });
}

//! Figure 5(b)/(c)/(d): Scenario C under MPTCP-LIA.
//!
//! Fig. 5(b): analytic sweep over C1/C2 at N1 = N2 — LIA vs the optimum with
//! probing cost. Figs. 5(c)/(d): packet-level measurements over N1/N2 for
//! C1/C2 ∈ {1, 2}, including the AP2 loss probability.

use bench::report::RunReport;
use bench::table::{f3, f4, pm, Table};
use bench::{scenario_c, RunCfg};
use fluid::scenario_c as analysis;
use mpsim_core::Algorithm;
use topo::ScenarioCParams;

fn main() {
    let cfg = RunCfg::from_env();
    let mut report = RunReport::start("fig5_scenario_c");
    report.cfg(&cfg);
    report.param("algorithm", "lia");

    // Fig 5(b): analytic sweep.
    let mut fb = Table::new(
        "Fig 5(b): analytic, N1 = N2",
        &[
            "C1/C2",
            "multipath LIA",
            "single LIA",
            "multipath optimum",
            "single optimum",
        ],
    );
    let mut g = 0.1;
    while g <= 1.5 + 1e-9 {
        let inp = analysis::ScenarioCInputs::paper(1.0, g);
        let l = analysis::lia(&inp);
        let o = analysis::optimal_with_probing(&inp);
        fb.row(&[
            f3(g),
            f3(l.multipath_norm),
            f3(l.single_norm),
            f3(o.multipath_norm),
            f3(o.single_norm),
        ]);
        g += 0.1;
    }
    fb.print();
    fb.write_csv("fig5b_scenario_c_analytic");

    // Fig 5(c)/(d): simulation.
    let mut fc = Table::new(
        "Fig 5(c): measured normalized throughputs (LIA)",
        &[
            "N1/N2",
            "C1/C2",
            "multipath sim",
            "multipath theory",
            "single sim",
            "single theory",
            "single optimum",
        ],
    );
    let mut fd = Table::new(
        "Fig 5(d): loss probability p2 at AP2 (LIA)",
        &["N1/N2", "C1/C2", "p2 sim", "p2 theory", "p1 sim"],
    );
    for n1 in [5usize, 10, 20, 30] {
        for c in [1.0, 2.0] {
            let ratio = n1 as f64 / 10.0;
            let m = scenario_c::measure(&ScenarioCParams::paper(n1, c, Algorithm::Lia), &cfg);
            let inp = analysis::ScenarioCInputs::paper(ratio, c);
            let th = analysis::lia(&inp);
            let opt = analysis::optimal_with_probing(&inp);
            fc.row(&[
                f3(ratio),
                f3(c),
                pm(m.multipath_norm.mean, m.multipath_norm.ci95),
                f3(th.multipath_norm),
                pm(m.single_norm.mean, m.single_norm.ci95),
                f3(th.single_norm),
                f3(opt.single_norm),
            ]);
            fd.row(&[
                f3(ratio),
                f3(c),
                f4(m.p2.mean),
                th.p2.map(f4).unwrap_or_else(|| "-".into()),
                f4(m.p1.mean),
            ]);
        }
    }
    fc.print();
    fc.write_csv("fig5c_scenario_c_measured");
    fd.print();
    fd.write_csv("fig5d_scenario_c_loss");
    report.table(&fb);
    report.table(&fc);
    report.table(&fd);
    report.write_or_warn();
    println!(
        "Paper shape: above C1/C2 = 1/(2+N1/N2), LIA's multipath users keep taking AP2\n\
         capacity a fair allocation would leave to TCP users (problem P2); p2 rises\n\
         steeply with N1/N2 while the optimum stays near the no-multipath level."
    );
}

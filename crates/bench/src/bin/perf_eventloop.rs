//! Tracked event-loop performance benchmark.
//!
//! Runs three canonical scenarios at pinned seeds and measures how fast the
//! discrete-event core chews through them:
//!
//! * `scenario_b` — the paper's Scenario B (Tables I/II) at quick scale;
//! * `fattree` — a Fig. 13 FatTree slice (k = 4, OLIA ×4, permutation
//!   traffic);
//! * `flap` — the dc_robustness two-path dumbbell with a scripted
//!   link-flap chaos plan (path manager + re-probe machinery).
//!
//! Each scenario is run twice: an **untraced perf pass** (repeated, best of
//! N) reporting events/sec plus event-loop internals, and a **traced digest
//! pass** whose full JSONL trace is folded into an FNV-1a digest. The digest
//! is the behaviour proof: an optimization PR must leave every digest
//! byte-identical while moving events/sec.
//!
//! Usage:
//!
//! ```text
//! perf_eventloop                        # run, write results/perf_eventloop.json
//! perf_eventloop --out BENCH_eventloop.json --baseline-from old.json
//! perf_eventloop --check BENCH_eventloop.json   # digests only, compare to goldens
//! ```
//!
//! The report follows the `mptcp-run-report/v1` schema (`validate_report`
//! accepts it); trace digests ride in `params` as hex strings, perf numbers
//! in `metrics`. `--baseline-from` copies an earlier report's metrics under
//! `baseline.*` and derives `speedup.*` ratios so `BENCH_eventloop.json`
//! records the trajectory, not just the endpoint.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bench::json::{parse, Json};
use bench::report::RunReport;
use eventsim::{SimDuration, SimRng, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, FaultPlan, QueueConfig, QueueId, Simulation};
use tcpsim::{ConnectionSpec, PathSpec, TcpConfig};
use topo::{FatTree, FatTreeConfig, ScenarioB, ScenarioBParams};
use trace::{DigestSink, Tracer};
use workload::permutation_traffic;

/// Counting allocator: measures how many heap allocations (and bytes) each
/// perf pass performs. The arena/pre-sizing work exists to push these down,
/// so the trajectory file records them alongside events/sec.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counters are relaxed atomics
// with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: same layout contract as the caller's.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same pointer/layout contract as the caller's.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        // SAFETY: same pointer/layout contract as the caller's.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Perf passes per scenario; the best events/sec is reported (first pass
/// warms caches and the page allocator).
const PERF_PASSES: usize = 3;

/// What one scenario run leaves behind for the report.
struct Measurement {
    name: &'static str,
    /// Events dispatched by the run (identical across passes).
    events: u64,
    /// Best events/sec over the perf passes.
    events_per_sec: f64,
    /// Simulated-seconds to wall-seconds ratio of the best pass.
    sim_wall_ratio: f64,
    /// Wall seconds of the best pass.
    wall_s: f64,
    /// Heap allocations during one perf pass.
    allocs: u64,
    /// Bytes requested during one perf pass.
    alloc_bytes: u64,
    /// Event-loop internals (peak pending events, arena occupancy, ...).
    internals: Vec<(&'static str, f64)>,
}

/// Build + run one scenario to its horizon inside a fresh simulation,
/// returning the simulation for post-run inspection.
type ScenarioFn = fn(&Tracer) -> Simulation;

/// Scenario B, quick scale: the paper's 15+15-user ISP topology, 10
/// simulated seconds, seed 1.
fn run_scenario_b(tracer: &Tracer) -> Simulation {
    let seed = 1;
    let mut sim = Simulation::new(seed);
    sim.set_tracer(tracer.clone());
    let s = ScenarioB::build(&mut sim, &ScenarioBParams::paper(false, Algorithm::Lia));
    let all: Vec<_> = s.blue.iter().chain(s.red.iter()).cloned().collect();
    let mut rng = SimRng::seed_from_u64(seed ^ 0xB4B4);
    topo::stagger_starts(&mut sim, &all, SimDuration::from_secs(2), &mut rng);
    sim.run_until(SimTime::from_secs_f64(10.0));
    sim
}

/// Fig. 13 FatTree slice: k = 4, OLIA with 4 subflows, permutation traffic,
/// 2 simulated seconds, seed 5.
fn run_fattree(tracer: &Tracer) -> Simulation {
    let seed = 5;
    let mut sim = Simulation::new(seed);
    sim.set_tracer(tracer.clone());
    let ft = FatTree::build(&mut sim, 4, &FatTreeConfig::default());
    let mut rng = SimRng::seed_from_u64(seed);
    let perm = permutation_traffic(&mut rng, ft.num_hosts());
    let conns: Vec<_> = (0..ft.num_hosts())
        .map(|h| {
            ft.connect(
                &mut sim,
                h,
                perm[h],
                Algorithm::Olia,
                4,
                None,
                TcpConfig::default(),
                &mut rng,
                h as u64,
            )
        })
        .collect();
    for c in &conns {
        sim.start_endpoint_at(c.source, SimTime::ZERO);
    }
    sim.run_until(SimTime::from_secs_f64(2.0));
    sim
}

/// One direction of a 10 Mb/s, 40 ms access link (RED forward queue, fat
/// reverse queue), as in `dc_robustness`.
fn flap_link(sim: &mut Simulation) -> (QueueId, QueueId) {
    (
        sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40))),
        sim.add_queue(QueueConfig::drop_tail(
            10e9,
            SimDuration::from_millis(40),
            100_000,
        )),
    )
}

/// dc_robustness flap: a two-path OLIA dumbbell where path 0 flaps three
/// times (4 s down / 2 s up), 46 simulated seconds, seed 21. Exercises the
/// RTO/backoff, path-manager, and re-probe timer machinery.
fn run_flap(tracer: &Tracer) -> Simulation {
    let seed = 21;
    let mut sim = Simulation::new(seed);
    sim.set_tracer(tracer.clone());
    let (f1, r1) = flap_link(&mut sim);
    let (f2, r2) = flap_link(&mut sim);
    let conn = ConnectionSpec::new(Algorithm::Olia)
        .with_path(PathSpec::new(route(&[f1]), route(&[r1])))
        .with_path(PathSpec::new(route(&[f2]), route(&[r2])))
        .install(&mut sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);
    sim.install_fault_plan(FaultPlan::new().flap(
        f1,
        SimTime::from_secs_f64(15.0),
        SimDuration::from_secs(4),
        SimDuration::from_secs(2),
        3,
    ));
    sim.run_until(SimTime::from_secs_f64(46.0));
    sim
}

const SCENARIOS: &[(&str, ScenarioFn)] = &[
    ("scenario_b", run_scenario_b),
    ("fattree", run_fattree),
    ("flap", run_flap),
];

/// Untraced perf passes: best events/sec of [`PERF_PASSES`] runs.
fn measure(name: &'static str, run: ScenarioFn) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..PERF_PASSES {
        let window = netsim::profile::RunProfile::start();
        let alloc0 = ALLOCS.load(Ordering::Relaxed);
        let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
        let sim = run(&Tracer::disabled());
        let p = window.finish();
        let allocs = ALLOCS.load(Ordering::Relaxed) - alloc0;
        let alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes0;
        let m = Measurement {
            name,
            events: sim.events_processed(),
            events_per_sec: p.events_per_sec(),
            sim_wall_ratio: p.sim_wall_ratio(),
            wall_s: p.wall_s,
            allocs,
            alloc_bytes,
            internals: loop_internals(&sim),
        };
        if best
            .as_ref()
            .is_none_or(|b| m.events_per_sec > b.events_per_sec)
        {
            best = Some(m);
        }
    }
    // PERF_PASSES ≥ 1, so a measurement was recorded.
    best.unwrap_or_else(|| unreachable!("no perf pass ran"))
}

/// Event-loop internals worth tracking across PRs: peak pending events in
/// the heap, packet-arena occupancy, and how many cancelled timers the loop
/// drained lazily.
fn loop_internals(sim: &Simulation) -> Vec<(&'static str, f64)> {
    let s = sim.loop_stats();
    vec![
        ("peak_heap", s.peak_heap as f64),
        ("peak_arena", s.peak_arena as f64),
        ("arena_live_end", s.arena_live as f64),
        ("arena_inserts", s.arena_inserts as f64),
        ("peak_timers", s.peak_timers as f64),
        ("stale_timer_drains", s.stale_timer_drains as f64),
    ]
}

/// Traced digest pass: full JSONL trace folded into an FNV-1a digest
/// (byte-for-byte what a `JsonlSink` would have written — see
/// `trace::DigestSink`).
fn digest(run: ScenarioFn) -> (u64, u64) {
    let (tracer, sink) = Tracer::to_sink(DigestSink::new());
    let sim = run(&tracer);
    drop(sim);
    drop(tracer);
    let sink = sink.borrow();
    (sink.digest(), sink.bytes())
}

fn digest_params(report: &mut RunReport) -> Vec<(String, String)> {
    let mut golden = Vec::new();
    for &(name, run) in SCENARIOS {
        let (d, bytes) = digest(run);
        let hex = format!("{d:016x}");
        eprintln!("digest {name}: {hex} ({bytes} trace bytes)");
        report.param(&format!("digest.{name}"), hex.clone());
        report.param(&format!("trace_bytes.{name}"), bytes);
        golden.push((name.to_string(), hex));
    }
    golden
}

/// `--check`: recompute digests and compare against the goldens recorded in
/// an existing report's params. Exit code 1 on any mismatch.
fn check(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_eventloop: cannot read {path}: {e}");
            return 1;
        }
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perf_eventloop: cannot parse {path}: {e}");
            return 1;
        }
    };
    let mut failures = 0;
    for &(name, run) in SCENARIOS {
        let key = format!("digest.{name}");
        let golden = doc
            .get("params")
            .and_then(|p| p.get(&key))
            .and_then(Json::as_str);
        let Some(golden) = golden else {
            eprintln!("perf_eventloop: {path} has no params.{key}");
            failures += 1;
            continue;
        };
        let (d, _) = digest(run);
        let hex = format!("{d:016x}");
        if hex == golden {
            println!("digest {name}: {hex} OK");
        } else {
            eprintln!("digest {name}: computed {hex} != golden {golden} — behaviour changed!");
            failures += 1;
        }
    }
    if failures == 0 {
        println!("perf_eventloop: all {} digests match", SCENARIOS.len());
        0
    } else {
        1
    }
}

/// Copy `metrics.*` of a previous report in as `baseline.*` and derive
/// `speedup.*` ratios for the shared scenarios.
fn merge_baseline(report: &mut RunReport, current: &[Measurement], path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc = parse(&text).unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_object)
        .unwrap_or_else(|| panic!("baseline {path} has no metrics object"));
    for (k, v) in metrics {
        if k.starts_with("baseline.") || k.starts_with("speedup.") {
            continue; // don't chain baselines of baselines
        }
        if let Some(x) = v.as_f64() {
            report.metric(&format!("baseline.{k}"), x);
        }
    }
    for m in current {
        let key = format!("{}.events_per_sec", m.name);
        if let Some(base) = metrics.get(&key).and_then(Json::as_f64) {
            if base > 0.0 {
                report.metric(&format!("speedup.{}", m.name), m.events_per_sec / base);
            }
        }
    }
    report.param("baseline_from", path);
}

fn main() {
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next(),
            "--baseline-from" => baseline = args.next(),
            "--check" => {
                let Some(path) = args.next() else {
                    eprintln!("perf_eventloop: --check needs a report path");
                    std::process::exit(2);
                };
                std::process::exit(check(&path));
            }
            other => {
                eprintln!("perf_eventloop: unknown argument {other:?}");
                eprintln!(
                    "usage: perf_eventloop [--out FILE] [--baseline-from REPORT] [--check REPORT]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut report = RunReport::start("perf_eventloop");
    report.param("perf_passes", PERF_PASSES as u64);
    println!(
        "{:<12} {:>12} {:>14} {:>10} {:>12} {:>12}",
        "scenario", "events", "events/sec", "sim/wall", "allocs", "peak heap"
    );
    let mut measurements = Vec::new();
    for &(name, run) in SCENARIOS {
        let m = measure(name, run);
        let peak_heap = m
            .internals
            .iter()
            .find(|(k, _)| *k == "peak_heap")
            .map_or(0.0, |(_, v)| *v);
        println!(
            "{:<12} {:>12} {:>14.0} {:>10.1} {:>12} {:>12.0}",
            m.name, m.events, m.events_per_sec, m.sim_wall_ratio, m.allocs, peak_heap
        );
        report.metric(&format!("{}.events", m.name), m.events as f64);
        report.metric(&format!("{}.events_per_sec", m.name), m.events_per_sec);
        report.metric(&format!("{}.sim_wall_ratio", m.name), m.sim_wall_ratio);
        report.metric(&format!("{}.wall_s", m.name), m.wall_s);
        report.metric(&format!("{}.allocs", m.name), m.allocs as f64);
        report.metric(&format!("{}.alloc_bytes", m.name), m.alloc_bytes as f64);
        for (k, v) in &m.internals {
            report.metric(&format!("{}.{k}", m.name), *v);
        }
        measurements.push(m);
    }

    digest_params(&mut report);
    if let Some(path) = &baseline {
        merge_baseline(&mut report, &measurements, path);
    }

    match out {
        Some(path) => {
            let doc = report.finish();
            if let Err(e) = bench::report::validate(&doc) {
                eprintln!("perf_eventloop: produced report fails validation: {e}");
                std::process::exit(1);
            }
            std::fs::write(&path, doc.render_pretty() + "\n")
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("perf report: {path}");
        }
        None => report.write_or_warn(),
    }
}

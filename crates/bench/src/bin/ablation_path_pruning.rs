//! Ablation: the §VII future-work extension — "discarding bad paths from
//! the set of available paths".
//!
//! A two-path OLIA user whose second path loses a third of all packets.
//! Plain OLIA keeps the 1-MSS probe (plus retransmissions) flowing there
//! forever; with pruning, the subflow leaves the established set after the
//! quality check fails and only re-probes each cooldown.

use bench::report::RunReport;
use bench::table::{f3, Table};
use eventsim::{SimDuration, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, Simulation};
use tcpsim::{ConnectionSpec, PathSpec};

/// Returns (packets sent into the lossy path, total goodput Mb/s).
fn run(prune: bool, cooldown_s: f64, secs: f64) -> (u64, f64) {
    let mut sim = Simulation::new(23);
    let good = sim.add_queue(QueueConfig::red_paper(10e6, SimDuration::from_millis(40)));
    let bad = sim.add_queue(QueueConfig::bernoulli(
        10e6,
        SimDuration::from_millis(40),
        0.33,
        100,
    ));
    let rev = sim.add_queue(QueueConfig::drop_tail(
        10e9,
        SimDuration::from_millis(40),
        1_000_000,
    ));
    let mut spec = ConnectionSpec::new(Algorithm::Olia)
        .with_path(PathSpec::new(route(&[good]), route(&[rev])))
        .with_path(PathSpec::new(route(&[bad]), route(&[rev])));
    if prune {
        spec = spec.with_path_pruning(SimDuration::from_secs_f64(cooldown_s));
    }
    let conn = spec.install(&mut sim, 0);
    sim.start_endpoint_at(conn.source, SimTime::ZERO);
    sim.run_until(SimTime::from_secs_f64(secs / 4.0));
    sim.reset_queue_stats();
    conn.handle.reset(sim.now());
    sim.run_until(SimTime::from_secs_f64(secs));
    (
        sim.queue_stats(bad).arrived,
        conn.handle.goodput_mbps(sim.now()),
    )
}

fn main() {
    let secs = if std::env::var_os("REPRO_QUICK").is_some() {
        60.0
    } else {
        120.0
    };
    let mut report = RunReport::start("ablation_path_pruning");
    report.param("secs", secs);
    report.param("seed", 23u64);
    let mut t = Table::new(
        "Path pruning on a 33%-loss path",
        &["variant", "pkts offered to bad path", "total goodput Mb/s"],
    );
    let (base_pkts, base_goodput) = run(false, 0.0, secs);
    t.row(&[
        "OLIA (always probe)".into(),
        base_pkts.to_string(),
        f3(base_goodput),
    ]);
    for cooldown in [2.0, 5.0, 15.0] {
        let (pkts, goodput) = run(true, cooldown, secs);
        t.row(&[
            format!("OLIA + prune, cooldown {cooldown}s"),
            pkts.to_string(),
            f3(goodput),
        ]);
    }
    t.print();
    t.write_csv("ablation_path_pruning");
    report.table(&t);
    report.write_or_warn();
    println!(
        "Reading: pruning removes most of the wasted probe/retransmission traffic on\n\
         a hopeless path at no cost to total goodput; longer cooldowns probe less.\n\
         The flip side (not shown): a pruned path cannot be rediscovered faster than\n\
         its cooldown, trading §VII's probing overhead against responsiveness."
    );
}

//! Figures 11 and 12: Scenario C — OLIA vs LIA.
//!
//! Fig. 11: with OLIA, multipath users send only the probe over AP2, and
//! single-path users recover up to 2× their LIA rate. Fig. 12: OLIA's p2
//! grows ≈2× from N1=0 to N1=3N2 versus 4–6× under LIA.

use bench::report::RunReport;
use bench::table::{f3, f4, pm, Table};
use bench::{scenario_c, RunCfg};
use fluid::scenario_c as analysis;
use mpsim_core::Algorithm;
use topo::ScenarioCParams;

fn main() {
    let cfg = RunCfg::from_env();
    let mut report = RunReport::start("fig11_12_scenario_c_olia");
    report.cfg(&cfg);
    report.param("algorithms", "lia,olia");
    println!(
        "Scenario C (Figs. 11/12) — OLIA vs LIA; {} replications\n",
        cfg.replications
    );
    let mut thr = Table::new(
        "Fig 11: normalized throughputs",
        &[
            "N1/N2",
            "C1/C2",
            "single LIA",
            "single OLIA",
            "single optimum",
            "multi LIA",
            "multi OLIA",
        ],
    );
    let mut loss = Table::new(
        "Fig 12: loss probability p2 at AP2",
        &["N1/N2", "C1/C2", "p2 LIA", "p2 OLIA", "p2 optimum"],
    );
    for n1 in [5usize, 10, 20, 30] {
        for c in [1.0, 2.0] {
            let ratio = n1 as f64 / 10.0;
            let lia = scenario_c::measure(&ScenarioCParams::paper(n1, c, Algorithm::Lia), &cfg);
            let olia = scenario_c::measure(&ScenarioCParams::paper(n1, c, Algorithm::Olia), &cfg);
            let opt = analysis::optimal_with_probing(&analysis::ScenarioCInputs::paper(ratio, c));
            thr.row(&[
                f3(ratio),
                f3(c),
                pm(lia.single_norm.mean, lia.single_norm.ci95),
                pm(olia.single_norm.mean, olia.single_norm.ci95),
                f3(opt.single_norm),
                f3(lia.multipath_norm.mean),
                f3(olia.multipath_norm.mean),
            ]);
            loss.row(&[
                f3(ratio),
                f3(c),
                f4(lia.p2.mean),
                f4(olia.p2.mean),
                opt.p2.map(f4).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    thr.print();
    thr.write_csv("fig11_scenario_c_olia_throughput");
    loss.print();
    loss.write_csv("fig12_scenario_c_olia_loss");
    report.table(&thr);
    report.table(&loss);
    report.write_or_warn();
    println!(
        "Paper shape: OLIA's single-path users reach up to 2× their LIA rates and its\n\
         p2 stays 4–6× below LIA's at N1 = 3·N2."
    );
}

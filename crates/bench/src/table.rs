//! Aligned-table printing and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::json::Json;

/// A simple column-aligned table with a title, for terminal output in the
/// style of the paper's tables.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// The table's title (the key it is embedded under in run reports).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// As an array of row objects keyed by the column headers, for the
    /// machine-readable run reports. Cells that parse as numbers become
    /// JSON numbers; everything else (e.g. `"1.2 ± 0.3"`) stays a string.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                Json::object(self.header.iter().zip(row).map(|(h, cell)| {
                    let value = match cell.parse::<f64>() {
                        Ok(n) if n.is_finite() => Json::Number(n),
                        _ => Json::String(cell.clone()),
                    };
                    (h.clone(), value)
                }))
            })
            .collect();
        Json::Array(rows)
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for i in 0..ncols {
                let _ = write!(s, "{:>w$}  ", cells[i], w = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
        let _ = writeln!(out, "{}", "-".repeat(total.min(100)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Write as CSV under `results/<name>.csv` (best effort; the directory
    /// is created if missing).
    pub fn write_csv(&self, name: &str) {
        let dir = Path::new("results");
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        let mut csv = String::new();
        let esc = |s: &str| {
            if s.contains(',') {
                format!("\"{s}\"")
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            csv,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                csv,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        let _ = fs::write(dir.join(format!("{name}.csv")), csv);
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 4 decimals (loss probabilities).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format `mean ± ci`.
pub fn pm(mean: f64, ci: f64) -> String {
    format!("{mean:.3} ± {ci:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        t.row(&["10".into(), "200000".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f4(0.01234), "0.0123");
        assert!(pm(1.0, 0.1).contains('±'));
    }
}

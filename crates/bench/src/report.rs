//! Machine-readable run reports.
//!
//! Every experiment binary ends by writing `results/<name>.json` through a
//! [`RunReport`]: what was run (scenario parameters, seed), what came out
//! (scalar metrics, the same tables the binary prints), and how fast the
//! simulator went (wall time, events processed, events/sec, sim-time to
//! wall-time ratio). The format is versioned ([`SCHEMA`]) and checked by
//! [`validate`], which CI runs against freshly produced reports — this is
//! the perf trajectory the `BENCH_*.json` files track across PRs.
//!
//! Shape of a report (all five top-level sections are required):
//!
//! ```json
//! {
//!   "schema": "mptcp-run-report/v1",
//!   "name": "fig1_scenario_a",
//!   "params": { "replications": 5, "seed": 1 },
//!   "metrics": { "flow.0.goodput.mbps": 3.2 },
//!   "tables": { "flow groups": [ { "group": "mptcp", "mean Mb/s": 4.1 } ] },
//!   "profile": { "wall_s": 1.2, "events": 410000, "events_per_sec": 3.4e5,
//!                "sim_s": 45.0, "sim_wall_ratio": 37.5 }
//! }
//! ```

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use eventsim::SimTime;
use metrics::Registry;
use netsim::profile::RunProfile;

use crate::json::Json;
use crate::table::Table;

/// Version tag every report carries in its `schema` field.
pub const SCHEMA: &str = "mptcp-run-report/v1";

/// Accumulates one experiment run's parameters and results, then writes the
/// machine-readable summary (module docs) to `results/`.
///
/// Construct with [`RunReport::start`] *before* the simulations run: that
/// opens the profiling window the final report's `profile` section closes.
#[derive(Debug)]
pub struct RunReport {
    name: String,
    params: BTreeMap<String, Json>,
    metrics: BTreeMap<String, f64>,
    tables: BTreeMap<String, Json>,
    profile: RunProfile,
}

impl RunReport {
    /// Begin a report named `name` (also the output file stem) and open its
    /// profiling window.
    pub fn start(name: &str) -> RunReport {
        RunReport {
            name: name.to_string(),
            params: BTreeMap::new(),
            metrics: BTreeMap::new(),
            tables: BTreeMap::new(),
            profile: RunProfile::start(),
        }
    }

    /// Record one scenario parameter (seed, replication count, flag, ...).
    pub fn param(&mut self, key: &str, value: impl Into<Json>) {
        self.params.insert(key.to_string(), value.into());
    }

    /// Record one scalar result metric.
    pub fn metric(&mut self, key: &str, value: f64) {
        self.metrics.insert(key.to_string(), value);
    }

    /// Record the standard measurement-window parameters every figure
    /// binary shares.
    pub fn cfg(&mut self, cfg: &crate::RunCfg) {
        self.param("warmup_s", cfg.warmup_s);
        self.param("measure_s", cfg.measure_s);
        self.param("jitter_s", cfg.jitter_s);
        self.param("replications", cfg.replications as u64);
        self.param("seed", cfg.seed);
    }

    /// Snapshot a whole [`Registry`] into the metrics section, prefixing
    /// every flattened name with `prefix.` (or nothing when empty).
    pub fn registry(&mut self, prefix: &str, registry: &Registry, now: SimTime) {
        for (name, value) in registry.snapshot(now) {
            let key = if prefix.is_empty() {
                name
            } else {
                format!("{prefix}.{name}")
            };
            self.metrics.insert(key, value);
        }
    }

    /// Embed a results table (the same one the binary prints), keyed by its
    /// title. Numeric-looking cells become JSON numbers.
    pub fn table(&mut self, table: &Table) {
        self.tables
            .insert(table.title().to_string(), table.to_json());
    }

    /// Close the profiling window and assemble the report document.
    pub fn finish(&self) -> Json {
        let p = self.profile.finish();
        let profile = Json::object([
            ("wall_s", Json::from(p.wall_s)),
            ("events", Json::from(p.events)),
            ("events_per_sec", Json::from(p.events_per_sec())),
            ("sim_s", Json::from(p.sim_ns as f64 / 1e9)),
            ("sim_wall_ratio", Json::from(p.sim_wall_ratio())),
        ]);
        Json::object([
            ("schema", Json::from(SCHEMA)),
            ("name", Json::from(self.name.clone())),
            ("params", Json::Object(self.params.clone())),
            (
                "metrics",
                Json::Object(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            ("tables", Json::Object(self.tables.clone())),
            ("profile", profile),
        ])
    }

    /// Finish and write `results/<name>.json` (pretty, trailing newline).
    pub fn write(&self) -> io::Result<PathBuf> {
        let doc = self.finish();
        debug_assert!(validate(&doc).is_ok(), "self-produced report invalid");
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, doc.render_pretty() + "\n")?;
        Ok(path)
    }

    /// [`write`](RunReport::write), reporting the outcome on stderr instead
    /// of propagating it — experiment binaries should still print their
    /// tables even when `results/` is unwritable.
    pub fn write_or_warn(&self) {
        match self.write() {
            Ok(path) => eprintln!("run report: {}", path.display()),
            Err(e) => eprintln!("run report: cannot write results/{}.json: {e}", self.name),
        }
    }
}

fn require<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key)
        .ok_or_else(|| format!("missing required field {key:?}"))
}

fn require_number(obj: &Json, section: &str, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{section}.{key} must be a number"))
}

/// Validate a parsed document against the run-report schema.
///
/// Checks the version tag, the presence and JSON types of every section,
/// that metrics are numeric, that tables are arrays of objects holding only
/// scalars, and that the profile carries all five measurements with sane
/// signs. Returns the first problem found.
pub fn validate(doc: &Json) -> Result<(), String> {
    if doc.as_object().is_none() {
        return Err("report must be a JSON object".to_string());
    }
    match require(doc, "schema")?.as_str() {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema {other:?} (expected {SCHEMA:?})")),
        None => return Err("schema must be a string".to_string()),
    }
    if require(doc, "name")?.as_str().is_none_or(str::is_empty) {
        return Err("name must be a non-empty string".to_string());
    }
    let params = require(doc, "params")?;
    if params.as_object().is_none() {
        return Err("params must be an object".to_string());
    }
    let metrics = require(doc, "metrics")?
        .as_object()
        .ok_or("metrics must be an object")?;
    for (k, v) in metrics {
        if v.as_f64().is_none() {
            return Err(format!("metrics.{k} must be a number"));
        }
    }
    let tables = require(doc, "tables")?
        .as_object()
        .ok_or("tables must be an object")?;
    for (name, rows) in tables {
        let rows = rows
            .as_array()
            .ok_or_else(|| format!("tables.{name:?} must be an array"))?;
        for row in rows {
            let cells = row
                .as_object()
                .ok_or_else(|| format!("tables.{name:?} rows must be objects"))?;
            for (col, cell) in cells {
                if cell.as_f64().is_none() && cell.as_str().is_none() {
                    return Err(format!(
                        "tables.{name:?} cell {col:?} must be a number or string"
                    ));
                }
            }
        }
    }
    let profile = require(doc, "profile")?;
    if profile.as_object().is_none() {
        return Err("profile must be an object".to_string());
    }
    for key in [
        "wall_s",
        "events",
        "events_per_sec",
        "sim_s",
        "sim_wall_ratio",
    ] {
        if require_number(profile, "profile", key)? < 0.0 {
            return Err(format!("profile.{key} must be non-negative"));
        }
    }
    let events = require_number(profile, "profile", "events")?;
    if events.fract() != 0.0 {
        return Err("profile.events must be an integer".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn produced_reports_validate() {
        let mut r = RunReport::start("unit_test_run");
        r.param("seed", 7u64);
        r.param("algorithm", "olia");
        r.metric("goodput.mbps", 3.25);
        let mut t = Table::new("demo", &["flow", "Mb/s"]);
        t.row(&["mptcp".into(), "4.2".into()]);
        r.table(&t);
        let doc = r.finish();
        validate(&doc).expect("fresh report must validate");
        // And survives a serialize/parse round trip.
        let reparsed = parse(&doc.render_pretty()).unwrap();
        validate(&reparsed).unwrap();
        assert_eq!(
            reparsed.get("name").unwrap().as_str(),
            Some("unit_test_run")
        );
        let profile = reparsed.get("profile").unwrap();
        assert!(profile.get("wall_s").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn registry_snapshot_lands_in_metrics() {
        let mut reg = Registry::new();
        reg.inc("queue.ap.dropped", 3);
        reg.set_gauge("flow.0.goodput_mbps", 2.5);
        let mut r = RunReport::start("unit_test_registry");
        r.registry("", &reg, SimTime::ZERO);
        r.registry("rep0", &reg, SimTime::ZERO);
        let doc = r.finish();
        validate(&doc).unwrap();
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(metrics.get("queue.ap.dropped").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            metrics.get("rep0.flow.0.goodput_mbps").unwrap().as_f64(),
            Some(2.5)
        );
    }

    #[test]
    fn validation_rejects_malformed_reports() {
        let good = RunReport::start("x").finish();
        validate(&good).unwrap();

        let cases = [
            (r#"{"schema":"bogus/v9"}"#, "unknown schema"),
            (r#"{"name":"x"}"#, "missing required field \"schema\""),
            (
                r#"{"schema":"mptcp-run-report/v1","name":"","params":{},"metrics":{},"tables":{},"profile":{}}"#,
                "non-empty",
            ),
            (
                r#"{"schema":"mptcp-run-report/v1","name":"x","params":{},"metrics":{"m":"nope"},"tables":{},"profile":{}}"#,
                "metrics.m",
            ),
            (
                r#"{"schema":"mptcp-run-report/v1","name":"x","params":{},"metrics":{},"tables":{"t":{}},"profile":{}}"#,
                "must be an array",
            ),
            (
                r#"{"schema":"mptcp-run-report/v1","name":"x","params":{},"metrics":{},"tables":{},"profile":{"wall_s":0.1}}"#,
                "profile.events",
            ),
            ("[1,2]", "must be a JSON object"),
        ];
        for (text, needle) in cases {
            let err = validate(&parse(text).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn negative_profile_values_rejected() {
        let text = r#"{"schema":"mptcp-run-report/v1","name":"x","params":{},
            "metrics":{},"tables":{},
            "profile":{"wall_s":-1,"events":0,"events_per_sec":0,"sim_s":0,"sim_wall_ratio":0}}"#;
        assert!(validate(&parse(text).unwrap())
            .unwrap_err()
            .contains("wall_s"));
    }
}

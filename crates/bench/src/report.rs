//! Machine-readable run reports.
//!
//! Every experiment binary ends by writing `results/<name>.json` through a
//! [`RunReport`]: what was run (scenario parameters, seed), what came out
//! (scalar metrics, the same tables the binary prints), and how fast the
//! simulator went (wall time, events processed, events/sec, sim-time to
//! wall-time ratio). The format is versioned ([`SCHEMA`]) and checked by
//! [`validate`], which CI runs against freshly produced reports — this is
//! the perf trajectory the `BENCH_*.json` files track across PRs.
//!
//! Shape of a report (all five top-level sections are required):
//!
//! ```json
//! {
//!   "schema": "mptcp-run-report/v2",
//!   "name": "fig1_scenario_a",
//!   "params": { "replications": 5, "seed": 1 },
//!   "metrics": { "flow.0.goodput.mbps": 3.2 },
//!   "tables": { "flow groups": [ { "group": "mptcp", "mean Mb/s": 4.1 } ] },
//!   "profile": { "wall_s": 1.2, "events": 410000, "events_per_sec": 3.4e5,
//!                "sim_s": 45.0, "sim_wall_ratio": 37.5,
//!                "percentiles": { "fct_s": { "p50": 1.1, "p95": 2.0, "p99": 2.4 } } }
//! }
//! ```
//!
//! v2 adds the optional `profile.percentiles` section — tail percentiles
//! of every histogram snapshot into the report (the sweep explorer's
//! per-point pages surface them). [`validate`] accepts both versions, so
//! tracked v1 artifacts (`BENCH_*.json`) stay valid.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use eventsim::SimTime;
use metrics::Registry;
use netsim::profile::RunProfile;

use crate::json::Json;
use crate::table::Table;

/// Version tag every report carries in its `schema` field.
pub const SCHEMA: &str = "mptcp-run-report/v2";

/// The previous run-report version, still accepted by [`validate`] so
/// tracked baselines (e.g. `BENCH_eventloop.json`) keep validating.
pub const SCHEMA_V1: &str = "mptcp-run-report/v1";

/// Version tag of the cross-seed sweep reports `orchestra` emits (see
/// [`validate_sweep`]).
pub const SWEEP_SCHEMA: &str = "mptcp-sweep-report/v1";

/// Version tag of the chaos-fuzzing campaign reports the `chaos` crate
/// emits (see [`validate_chaos`]).
pub const CHAOS_SCHEMA: &str = "mptcp-chaos-report/v1";

/// Accumulates one experiment run's parameters and results, then writes the
/// machine-readable summary (module docs) to `results/`.
///
/// Construct with [`RunReport::start`] *before* the simulations run: that
/// opens the profiling window the final report's `profile` section closes.
#[derive(Debug)]
pub struct RunReport {
    name: String,
    params: BTreeMap<String, Json>,
    metrics: BTreeMap<String, f64>,
    tables: BTreeMap<String, Json>,
    percentiles: BTreeMap<String, [f64; 3]>,
    profile: RunProfile,
}

impl RunReport {
    /// Begin a report named `name` (also the output file stem) and open its
    /// profiling window.
    pub fn start(name: &str) -> RunReport {
        RunReport {
            name: name.to_string(),
            params: BTreeMap::new(),
            metrics: BTreeMap::new(),
            tables: BTreeMap::new(),
            percentiles: BTreeMap::new(),
            profile: RunProfile::start(),
        }
    }

    /// Record one scenario parameter (seed, replication count, flag, ...).
    pub fn param(&mut self, key: &str, value: impl Into<Json>) {
        self.params.insert(key.to_string(), value.into());
    }

    /// Record one scalar result metric.
    pub fn metric(&mut self, key: &str, value: f64) {
        self.metrics.insert(key.to_string(), value);
    }

    /// Record the standard measurement-window parameters every figure
    /// binary shares.
    pub fn cfg(&mut self, cfg: &crate::RunCfg) {
        self.param("warmup_s", cfg.warmup_s);
        self.param("measure_s", cfg.measure_s);
        self.param("jitter_s", cfg.jitter_s);
        self.param("replications", cfg.replications as u64);
        self.param("seed", cfg.seed);
    }

    /// Snapshot a whole [`Registry`] into the metrics section, prefixing
    /// every flattened name with `prefix.` (or nothing when empty).
    pub fn registry(&mut self, prefix: &str, registry: &Registry, now: SimTime) {
        for (name, value) in registry.snapshot(now) {
            let key = if prefix.is_empty() {
                name
            } else {
                format!("{prefix}.{name}")
            };
            self.metrics.insert(key, value);
        }
        // Histograms additionally export their tail percentiles into the
        // profile section (v2), where sweep tooling picks them up.
        for (name, h) in registry.histograms() {
            if h.total() == 0 {
                continue;
            }
            let key = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            };
            self.percentiles
                .insert(key, [h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)]);
        }
    }

    /// Embed a results table (the same one the binary prints), keyed by its
    /// title. Numeric-looking cells become JSON numbers.
    pub fn table(&mut self, table: &Table) {
        self.tables
            .insert(table.title().to_string(), table.to_json());
    }

    /// Close the profiling window and assemble the report document.
    pub fn finish(&self) -> Json {
        let p = self.profile.finish();
        let mut profile_fields = vec![
            ("wall_s", Json::from(p.wall_s)),
            ("events", Json::from(p.events)),
            ("events_per_sec", Json::from(p.events_per_sec())),
            ("sim_s", Json::from(p.sim_ns as f64 / 1e9)),
            ("sim_wall_ratio", Json::from(p.sim_wall_ratio())),
        ];
        if !self.percentiles.is_empty() {
            let pcts: BTreeMap<String, Json> = self
                .percentiles
                .iter()
                .map(|(name, [p50, p95, p99])| {
                    (
                        name.clone(),
                        Json::object([
                            ("p50", Json::from(*p50)),
                            ("p95", Json::from(*p95)),
                            ("p99", Json::from(*p99)),
                        ]),
                    )
                })
                .collect();
            profile_fields.push(("percentiles", Json::Object(pcts)));
        }
        let profile = Json::object(profile_fields);
        Json::object([
            ("schema", Json::from(SCHEMA)),
            ("name", Json::from(self.name.clone())),
            ("params", Json::Object(self.params.clone())),
            (
                "metrics",
                Json::Object(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            ("tables", Json::Object(self.tables.clone())),
            ("profile", profile),
        ])
    }

    /// Finish and write `results/<name>.json` (pretty, trailing newline).
    pub fn write(&self) -> io::Result<PathBuf> {
        let doc = self.finish();
        debug_assert!(validate(&doc).is_ok(), "self-produced report invalid");
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, doc.render_pretty() + "\n")?;
        Ok(path)
    }

    /// [`write`](RunReport::write), reporting the outcome on stderr instead
    /// of propagating it — experiment binaries should still print their
    /// tables even when `results/` is unwritable.
    pub fn write_or_warn(&self) {
        match self.write() {
            Ok(path) => eprintln!("run report: {}", path.display()),
            Err(e) => eprintln!("run report: cannot write results/{}.json: {e}", self.name),
        }
    }
}

fn require<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key)
        .ok_or_else(|| format!("missing required field {key:?}"))
}

fn require_number(obj: &Json, section: &str, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{section}.{key} must be a number"))
}

/// Validate a parsed document against the run-report schema.
///
/// Checks the version tag, the presence and JSON types of every section,
/// that metrics are numeric, that tables are arrays of objects holding only
/// scalars, and that the profile carries all five measurements with sane
/// signs. Returns the first problem found.
pub fn validate(doc: &Json) -> Result<(), String> {
    if doc.as_object().is_none() {
        return Err("report must be a JSON object".to_string());
    }
    match require(doc, "schema")?.as_str() {
        Some(SCHEMA) | Some(SCHEMA_V1) => {}
        Some(other) => return Err(format!("unknown schema {other:?} (expected {SCHEMA:?})")),
        None => return Err("schema must be a string".to_string()),
    }
    if require(doc, "name")?.as_str().is_none_or(str::is_empty) {
        return Err("name must be a non-empty string".to_string());
    }
    let params = require(doc, "params")?;
    if params.as_object().is_none() {
        return Err("params must be an object".to_string());
    }
    // Reports may record which simulation engine produced them; when they
    // do, the value must name a real backend so `--strict` scans catch a
    // mislabeled run instead of filing it under a phantom engine.
    if let Some(backend) = params.get("backend") {
        if !matches!(backend.as_str(), Some("packet") | Some("flow")) {
            return Err(format!(
                "params.backend must be \"packet\" or \"flow\", got {backend:?}"
            ));
        }
    }
    let metrics = require(doc, "metrics")?
        .as_object()
        .ok_or("metrics must be an object")?;
    for (k, v) in metrics {
        if v.as_f64().is_none() {
            return Err(format!("metrics.{k} must be a number"));
        }
    }
    let tables = require(doc, "tables")?
        .as_object()
        .ok_or("tables must be an object")?;
    for (name, rows) in tables {
        let rows = rows
            .as_array()
            .ok_or_else(|| format!("tables.{name:?} must be an array"))?;
        for row in rows {
            let cells = row
                .as_object()
                .ok_or_else(|| format!("tables.{name:?} rows must be objects"))?;
            for (col, cell) in cells {
                if cell.as_f64().is_none() && cell.as_str().is_none() {
                    return Err(format!(
                        "tables.{name:?} cell {col:?} must be a number or string"
                    ));
                }
            }
        }
    }
    let profile = require(doc, "profile")?;
    if profile.as_object().is_none() {
        return Err("profile must be an object".to_string());
    }
    for key in [
        "wall_s",
        "events",
        "events_per_sec",
        "sim_s",
        "sim_wall_ratio",
    ] {
        if require_number(profile, "profile", key)? < 0.0 {
            return Err(format!("profile.{key} must be non-negative"));
        }
    }
    let events = require_number(profile, "profile", "events")?;
    if events.fract() != 0.0 {
        return Err("profile.events must be an integer".to_string());
    }
    if let Some(pcts) = profile.get("percentiles") {
        let pcts = pcts
            .as_object()
            .ok_or("profile.percentiles must be an object")?;
        for (name, entry) in pcts {
            let ctx = format!("profile.percentiles.{name}");
            let q = |key: &str| require_number(entry, &ctx, key);
            let (p50, p95, p99) = (q("p50")?, q("p95")?, q("p99")?);
            if !(p50 <= p95 && p95 <= p99) {
                return Err(format!("{ctx}: quantiles must satisfy p50 <= p95 <= p99"));
            }
        }
    }
    Ok(())
}

fn require_count(obj: &Json, section: &str, key: &str) -> Result<f64, String> {
    let n = require_number(obj, section, key)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("{section}.{key} must be a non-negative integer"));
    }
    Ok(n)
}

/// Validate a parsed document against the sweep-report schema
/// ([`SWEEP_SCHEMA`]) that the `orchestra` runner writes as
/// `results/orchestra/<run-id>/sweep.json`.
///
/// A sweep report carries the manifest identity, job accounting
/// (`total == done + failed`, plus the pool's abandoned-thread tally),
/// one entry per parameter point with
/// cross-seed statistics (`n`/`mean`/`std`/`min`/`max`/`ci95` per metric)
/// plus the per-seed trace digests, and a `job_index` of every job's
/// outcome. Returns the first problem found.
pub fn validate_sweep(doc: &Json) -> Result<(), String> {
    if doc.as_object().is_none() {
        return Err("sweep report must be a JSON object".to_string());
    }
    match require(doc, "schema")?.as_str() {
        Some(SWEEP_SCHEMA) => {}
        Some(other) => {
            return Err(format!(
                "unknown schema {other:?} (expected {SWEEP_SCHEMA:?})"
            ))
        }
        None => return Err("schema must be a string".to_string()),
    }
    let manifest = require(doc, "manifest")?;
    if manifest.as_object().is_none() {
        return Err("manifest must be an object".to_string());
    }
    if manifest
        .get("id")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        return Err("manifest.id must be a non-empty string".to_string());
    }
    if manifest.get("scale").and_then(Json::as_str).is_none() {
        return Err("manifest.scale must be a string".to_string());
    }
    let seeds = manifest
        .get("seeds")
        .and_then(Json::as_array)
        .ok_or("manifest.seeds must be an array")?;
    if seeds.is_empty() || seeds.iter().any(|s| s.as_f64().is_none()) {
        return Err("manifest.seeds must be a non-empty array of numbers".to_string());
    }
    let jobs = require(doc, "jobs")?;
    if jobs.as_object().is_none() {
        return Err("jobs must be an object".to_string());
    }
    let total = require_count(jobs, "jobs", "total")?;
    let done = require_count(jobs, "jobs", "done")?;
    let failed = require_count(jobs, "jobs", "failed")?;
    if done + failed != total {
        return Err("jobs.total must equal jobs.done + jobs.failed".to_string());
    }
    require_count(jobs, "jobs", "abandoned")?;
    let points = require(doc, "points")?
        .as_array()
        .ok_or("points must be an array")?;
    for (i, point) in points.iter().enumerate() {
        let ctx = format!("points[{i}]");
        if point
            .get("scenario")
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("{ctx}.scenario must be a non-empty string"));
        }
        if point.get("params").and_then(Json::as_object).is_none() {
            return Err(format!("{ctx}.params must be an object"));
        }
        let pt_seeds = point
            .get("seeds")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{ctx}.seeds must be an array"))?;
        if pt_seeds.iter().any(|s| s.as_f64().is_none()) {
            return Err(format!("{ctx}.seeds must hold numbers"));
        }
        let metrics = point
            .get("metrics")
            .and_then(Json::as_object)
            .ok_or_else(|| format!("{ctx}.metrics must be an object"))?;
        for (name, stats) in metrics {
            let sctx = format!("{ctx}.metrics.{name}");
            if stats.as_object().is_none() {
                return Err(format!("{sctx} must be a stats object"));
            }
            let n = require_count(stats, &sctx, "n")?;
            if n < 1.0 {
                return Err(format!("{sctx}.n must be >= 1"));
            }
            for key in ["mean", "std", "min", "max", "ci95"] {
                require_number(stats, &sctx, key)?;
            }
        }
        let digests = point
            .get("digests")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{ctx}.digests must be an array"))?;
        if digests.iter().any(|d| d.as_str().is_none()) {
            return Err(format!("{ctx}.digests must hold strings"));
        }
    }
    let index = require(doc, "job_index")?
        .as_array()
        .ok_or("job_index must be an array")?;
    if index.len() as f64 != total {
        return Err("job_index length must equal jobs.total".to_string());
    }
    for (i, entry) in index.iter().enumerate() {
        let ctx = format!("job_index[{i}]");
        if entry
            .get("job")
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("{ctx}.job must be a non-empty string"));
        }
        let status = entry
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}.status must be a string"))?;
        let attempts = require_count(entry, &ctx, "attempts")?;
        if attempts < 1.0 {
            return Err(format!("{ctx}.attempts must be >= 1"));
        }
        match status {
            "done" => {
                if entry.get("report").and_then(Json::as_str).is_none() {
                    return Err(format!("{ctx}.report must be a string for done jobs"));
                }
            }
            "failed" => {
                if entry.get("error").and_then(Json::as_str).is_none() {
                    return Err(format!("{ctx}.error must be a string for failed jobs"));
                }
            }
            other => {
                return Err(format!(
                    "{ctx}.status must be \"done\" or \"failed\", got {other:?}"
                ))
            }
        }
    }
    Ok(())
}

/// Validate a parsed document against the chaos-campaign schema
/// ([`CHAOS_SCHEMA`]) that the `chaos` binary writes under
/// `results/chaos/`.
///
/// A chaos report carries the campaign identity (seed, budget), a summary
/// whose counts must reconcile (`run == violating + clean`) with the
/// campaign-wide determinism digest, and one entry per shrunk repro — each
/// holding a replayable minimal case, the trace digest a replay must
/// reproduce, and the first invariant violation. Returns the first problem
/// found.
pub fn validate_chaos(doc: &Json) -> Result<(), String> {
    if doc.as_object().is_none() {
        return Err("chaos report must be a JSON object".to_string());
    }
    match require(doc, "schema")?.as_str() {
        Some(CHAOS_SCHEMA) => {}
        Some(other) => {
            return Err(format!(
                "unknown schema {other:?} (expected {CHAOS_SCHEMA:?})"
            ))
        }
        None => return Err("schema must be a string".to_string()),
    }
    let campaign = require(doc, "campaign")?;
    if campaign.as_object().is_none() {
        return Err("campaign must be an object".to_string());
    }
    if campaign
        .get("seed_hex")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        return Err("campaign.seed_hex must be a non-empty string".to_string());
    }
    require_count(campaign, "campaign", "iterations")?;
    require_count(campaign, "campaign", "jobs")?;
    if campaign
        .get("stop_on_first")
        .and_then(Json::as_bool)
        .is_none()
    {
        return Err("campaign.stop_on_first must be a boolean".to_string());
    }
    let summary = require(doc, "summary")?;
    if summary.as_object().is_none() {
        return Err("summary must be an object".to_string());
    }
    let run = require_count(summary, "summary", "run")?;
    let violating = require_count(summary, "summary", "violating")?;
    let clean = require_count(summary, "summary", "clean")?;
    if violating + clean != run {
        return Err("summary.run must equal summary.violating + summary.clean".to_string());
    }
    if summary
        .get("campaign_digest")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        return Err("summary.campaign_digest must be a non-empty string".to_string());
    }
    require_count(summary, "summary", "events")?;
    if require_number(summary, "summary", "sim_s")? < 0.0 {
        return Err("summary.sim_s must be non-negative".to_string());
    }
    let repros = require(doc, "repros")?
        .as_array()
        .ok_or("repros must be an array")?;
    if repros.len() as f64 != violating {
        return Err("repros length must equal summary.violating".to_string());
    }
    for (i, repro) in repros.iter().enumerate() {
        let ctx = format!("repros[{i}]");
        require_count(repro, &ctx, "iteration")?;
        let case = repro
            .get("case")
            .ok_or_else(|| format!("{ctx}.case is required"))?;
        if case.as_object().is_none() {
            return Err(format!("{ctx}.case must be an object"));
        }
        if case
            .get("seed_hex")
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("{ctx}.case.seed_hex must be a non-empty string"));
        }
        if case
            .get("algorithm")
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("{ctx}.case.algorithm must be a non-empty string"));
        }
        let cctx = format!("{ctx}.case");
        if require_number(case, &cctx, "horizon_s")? <= 0.0 {
            return Err(format!("{cctx}.horizon_s must be positive"));
        }
        let case_clauses = case
            .get("clauses")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{cctx}.clauses must be an array"))?;
        let clauses = require_count(repro, &ctx, "clauses")?;
        if case_clauses.len() as f64 != clauses {
            return Err(format!("{ctx}.clauses must match the case's clause count"));
        }
        let original = require_count(repro, &ctx, "original_clauses")?;
        if original < clauses {
            return Err(format!(
                "{ctx}.original_clauses must be >= {ctx}.clauses (shrinking never grows)"
            ));
        }
        require_count(repro, &ctx, "shrink_executions")?;
        if repro
            .get("trace_digest")
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("{ctx}.trace_digest must be a non-empty string"));
        }
        let violation = repro
            .get("violation")
            .ok_or_else(|| format!("{ctx}.violation is required"))?;
        if violation.as_object().is_none() {
            return Err(format!("{ctx}.violation must be an object"));
        }
        let vctx = format!("{ctx}.violation");
        require_count(violation, &vctx, "t_ns")?;
        if violation
            .get("what")
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("{vctx}.what must be a non-empty string"));
        }
        if require_count(repro, &ctx, "violations")? < 1.0 {
            return Err(format!("{ctx}.violations must be >= 1"));
        }
    }
    Ok(())
}

/// Validate a simlint workspace report (`mptcp-lint-report/v1` or `/v2`)
/// from its raw JSON text.
///
/// The lint report sits in the same `results/` directory the run reports
/// land in, so `validate_report` must understand it — but it is produced
/// by [`simlint`] with its own JSON representation, so this delegates:
/// parse with simlint's parser, check with simlint's schema validator
/// (which accepts both versions and cross-checks v2's `rule_counts`
/// against the findings list).
pub fn validate_lint(text: &str) -> Result<(), String> {
    let doc = simlint::json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    simlint::report::validate(&doc)
}

/// Does `schema` name a simlint report version [`validate_lint`] handles?
pub fn is_lint_schema(schema: &str) -> bool {
    schema == simlint::report::SCHEMA || schema == simlint::report::SCHEMA_V1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn produced_reports_validate() {
        let mut r = RunReport::start("unit_test_run");
        r.param("seed", 7u64);
        r.param("algorithm", "olia");
        r.metric("goodput.mbps", 3.25);
        let mut t = Table::new("demo", &["flow", "Mb/s"]);
        t.row(&["mptcp".into(), "4.2".into()]);
        r.table(&t);
        let doc = r.finish();
        validate(&doc).expect("fresh report must validate");
        // And survives a serialize/parse round trip.
        let reparsed = parse(&doc.render_pretty()).unwrap();
        validate(&reparsed).unwrap();
        assert_eq!(
            reparsed.get("name").unwrap().as_str(),
            Some("unit_test_run")
        );
        let profile = reparsed.get("profile").unwrap();
        assert!(profile.get("wall_s").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn registry_snapshot_lands_in_metrics() {
        let mut reg = Registry::new();
        reg.inc("queue.ap.dropped", 3);
        reg.set_gauge("flow.0.goodput_mbps", 2.5);
        let mut r = RunReport::start("unit_test_registry");
        r.registry("", &reg, SimTime::ZERO);
        r.registry("rep0", &reg, SimTime::ZERO);
        let doc = r.finish();
        validate(&doc).unwrap();
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(metrics.get("queue.ap.dropped").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            metrics.get("rep0.flow.0.goodput_mbps").unwrap().as_f64(),
            Some(2.5)
        );
    }

    #[test]
    fn histogram_percentiles_land_in_profile() {
        let mut reg = Registry::new();
        for v in [1.0, 2.0, 3.0, 4.0, 50.0] {
            reg.histogram("fct_s", 0.5, 200).record(v);
        }
        reg.inc("drops", 1); // non-histograms must not produce entries
        let mut r = RunReport::start("unit_test_percentiles");
        r.registry("", &reg, SimTime::ZERO);
        let doc = r.finish();
        validate(&doc).expect("v2 report with percentiles must validate");
        let pcts = doc
            .get("profile")
            .and_then(|p| p.get("percentiles"))
            .expect("profile.percentiles missing");
        let fct = pcts.get("fct_s").expect("fct_s percentiles missing");
        let p50 = fct.get("p50").unwrap().as_f64().unwrap();
        let p99 = fct.get("p99").unwrap().as_f64().unwrap();
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert!(pcts.get("drops").is_none());

        // A registry without histogram samples adds no percentiles section.
        let mut r = RunReport::start("unit_test_no_percentiles");
        let mut empty = Registry::new();
        empty.inc("drops", 1);
        r.registry("", &empty, SimTime::ZERO);
        let doc = r.finish();
        validate(&doc).unwrap();
        assert!(doc.get("profile").unwrap().get("percentiles").is_none());
    }

    #[test]
    fn both_schema_versions_validate() {
        let v1 = r#"{"schema":"mptcp-run-report/v1","name":"x","params":{},"metrics":{},
            "tables":{},"profile":{"wall_s":0,"events":0,"events_per_sec":0,"sim_s":0,"sim_wall_ratio":0}}"#;
        validate(&parse(v1).unwrap()).expect("v1 must stay valid");
        let v2 = v1.replace("/v1", "/v2");
        validate(&parse(&v2).unwrap()).expect("v2 must validate");
    }

    #[test]
    fn disordered_percentiles_rejected() {
        let bad = r#"{"schema":"mptcp-run-report/v2","name":"x","params":{},"metrics":{},
            "tables":{},"profile":{"wall_s":0,"events":0,"events_per_sec":0,"sim_s":0,"sim_wall_ratio":0,
            "percentiles":{"fct_s":{"p50":5.0,"p95":2.0,"p99":9.0}}}}"#;
        let err = validate(&parse(bad).unwrap()).unwrap_err();
        assert!(err.contains("p50 <= p95"), "{err}");
        let missing = r#"{"schema":"mptcp-run-report/v2","name":"x","params":{},"metrics":{},
            "tables":{},"profile":{"wall_s":0,"events":0,"events_per_sec":0,"sim_s":0,"sim_wall_ratio":0,
            "percentiles":{"fct_s":{"p50":1.0}}}}"#;
        let err = validate(&parse(missing).unwrap()).unwrap_err();
        assert!(err.contains("p95"), "{err}");
    }

    #[test]
    fn validation_rejects_malformed_reports() {
        let good = RunReport::start("x").finish();
        validate(&good).unwrap();

        let cases = [
            (r#"{"schema":"bogus/v9"}"#, "unknown schema"),
            (r#"{"name":"x"}"#, "missing required field \"schema\""),
            (
                r#"{"schema":"mptcp-run-report/v1","name":"","params":{},"metrics":{},"tables":{},"profile":{}}"#,
                "non-empty",
            ),
            (
                r#"{"schema":"mptcp-run-report/v1","name":"x","params":{},"metrics":{"m":"nope"},"tables":{},"profile":{}}"#,
                "metrics.m",
            ),
            (
                r#"{"schema":"mptcp-run-report/v1","name":"x","params":{},"metrics":{},"tables":{"t":{}},"profile":{}}"#,
                "must be an array",
            ),
            (
                r#"{"schema":"mptcp-run-report/v1","name":"x","params":{},"metrics":{},"tables":{},"profile":{"wall_s":0.1}}"#,
                "profile.events",
            ),
            (
                r#"{"schema":"mptcp-run-report/v1","name":"x","params":{"backend":"hybrid"},"metrics":{},"tables":{},"profile":{}}"#,
                "params.backend",
            ),
            (
                r#"{"schema":"mptcp-run-report/v1","name":"x","params":{"backend":1},"metrics":{},"tables":{},"profile":{}}"#,
                "params.backend",
            ),
            ("[1,2]", "must be a JSON object"),
        ];
        for (text, needle) in cases {
            let err = validate(&parse(text).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn validation_accepts_flow_backend_reports() {
        let mut r = RunReport::start("flowscale_churn");
        r.param("backend", Json::from("flow"));
        validate(&r.finish()).unwrap();
        let mut r = RunReport::start("scenario_a");
        r.param("backend", Json::from("packet"));
        validate(&r.finish()).unwrap();
    }

    fn sweep_doc() -> String {
        r#"{
          "schema": "mptcp-sweep-report/v1",
          "manifest": {"id": "ci_quick", "scale": "quick", "seeds": [1, 2]},
          "jobs": {"total": 3, "done": 2, "failed": 1, "abandoned": 0},
          "points": [
            {
              "scenario": "smoke",
              "params": {"algorithm": "lia"},
              "seeds": [1, 2],
              "metrics": {
                "goodput.mbps": {"n": 2, "mean": 3.0, "std": 0.1,
                                 "min": 2.9, "max": 3.1, "ci95": 0.14}
              },
              "digests": ["0011223344556677", "8899aabbccddeeff"]
            }
          ],
          "job_index": [
            {"job": "smoke?algorithm=lia#seed=1", "status": "done",
             "attempts": 1, "report": "jobs/a.json", "digest": "0011223344556677"},
            {"job": "smoke?algorithm=lia#seed=2", "status": "done",
             "attempts": 2, "report": "jobs/b.json", "digest": "8899aabbccddeeff"},
            {"job": "smoke?algorithm=bogus#seed=1", "status": "failed",
             "attempts": 3, "error": "panicked: unknown algorithm"}
          ]
        }"#
        .to_string()
    }

    #[test]
    fn sweep_validation_accepts_well_formed_report() {
        validate_sweep(&parse(&sweep_doc()).unwrap()).unwrap();
    }

    #[test]
    fn sweep_validation_rejects_malformed_reports() {
        let base = sweep_doc();
        let cases = [
            (
                base.replace("mptcp-sweep-report/v1", "bogus/v9"),
                "unknown schema",
            ),
            (
                base.replace(r#""id": "ci_quick""#, r#""id": """#),
                "manifest.id",
            ),
            (
                base.replace(r#""total": 3"#, r#""total": 4"#),
                "jobs.done + jobs.failed",
            ),
            (base.replace(r#""n": 2"#, r#""n": 0"#), "n must be >= 1"),
            (base.replace(r#", "abandoned": 0"#, ""), "jobs.abandoned"),
            (
                base.replace(r#""std": 0.1"#, r#""std": "x""#),
                "std must be a number",
            ),
            (
                base.replace(r#""status": "failed""#, r#""status": "exploded""#),
                "status must be",
            ),
            (
                base.replace(
                    r#""error": "panicked: unknown algorithm""#,
                    r#""note": "x""#,
                ),
                "error must be a string",
            ),
            (
                base.replace(r#""attempts": 1,"#, r#""attempts": 0,"#),
                "attempts must be >= 1",
            ),
        ];
        for (text, needle) in cases {
            let err = validate_sweep(&parse(&text).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{needle} not in {err}");
        }
        // Dropping a job_index entry breaks the total invariant.
        let doc = parse(&sweep_doc()).unwrap();
        let mut obj = doc.as_object().unwrap().clone();
        let trimmed: Vec<Json> = obj["job_index"].as_array().unwrap()[..2].to_vec();
        obj.insert("job_index".into(), Json::Array(trimmed));
        let err = validate_sweep(&Json::Object(obj)).unwrap_err();
        assert!(err.contains("job_index length"), "{err}");
    }

    fn chaos_doc() -> String {
        r#"{
          "schema": "mptcp-chaos-report/v1",
          "campaign": {"seed_hex": "0000000000000001", "iterations": 500,
                       "jobs": 4, "stop_on_first": true},
          "summary": {"run": 24, "violating": 1, "clean": 23,
                      "campaign_digest": "00aabbccddeeff11",
                      "events": 123456, "sim_s": 840.5},
          "repros": [
            {
              "iteration": 23,
              "case": {"seed_hex": "deadbeefdeadbeef", "algorithm": "lia",
                       "rate_mbps": [8, 8], "delay_ms": [20, 40],
                       "horizon_s": 30.0,
                       "clauses": [{"kind": "outage", "path": 0,
                                    "from_s": 4.0, "dur_s": 18.0}]},
              "clauses": 1,
              "original_clauses": 3,
              "shrink_executions": 9,
              "trace_digest": "1122334455667788",
              "violation": {"t_ns": 19000000000,
                            "what": "re-probe backoff exceeds cap: 16s > 8s"},
              "violations": 2
            }
          ]
        }"#
        .to_string()
    }

    #[test]
    fn chaos_validation_accepts_well_formed_report() {
        validate_chaos(&parse(&chaos_doc()).unwrap()).unwrap();
    }

    #[test]
    fn chaos_validation_rejects_malformed_reports() {
        let base = chaos_doc();
        let cases = [
            (
                base.replace("mptcp-chaos-report/v1", "bogus/v9"),
                "unknown schema",
            ),
            (
                base.replace(r#""seed_hex": "0000000000000001""#, r#""seed_hex": """#),
                "campaign.seed_hex",
            ),
            (
                base.replace(r#""run": 24"#, r#""run": 25"#),
                "summary.violating + summary.clean",
            ),
            (
                base.replace(r#""violating": 1"#, r#""violating": 0"#),
                "summary.violating",
            ),
            (
                base.replace(r#""stop_on_first": true"#, r#""stop_on_first": 1"#),
                "stop_on_first must be a boolean",
            ),
            (
                base.replace(
                    r#""trace_digest": "1122334455667788""#,
                    r#""trace_digest": """#,
                ),
                "trace_digest",
            ),
            (
                base.replace(r#""original_clauses": 3"#, r#""original_clauses": 0"#),
                "shrinking never grows",
            ),
            (
                base.replace(r#""violations": 2"#, r#""violations": 0"#),
                "violations must be >= 1",
            ),
            (
                base.replace(r#""horizon_s": 30.0"#, r#""horizon_s": 0"#),
                "horizon_s must be positive",
            ),
        ];
        for (text, needle) in cases {
            let err = validate_chaos(&parse(&text).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{needle} not in {err}");
        }
    }

    #[test]
    fn negative_profile_values_rejected() {
        let text = r#"{"schema":"mptcp-run-report/v1","name":"x","params":{},
            "metrics":{},"tables":{},
            "profile":{"wall_s":-1,"events":0,"events_per_sec":0,"sim_s":0,"sim_wall_ratio":0}}"#;
        assert!(validate(&parse(text).unwrap())
            .unwrap_err()
            .contains("wall_s"));
    }

    #[test]
    fn lint_reports_validate_in_both_versions() {
        // A freshly built v2 document round-trips through the text-level
        // entry point the validate_report binary uses.
        let run = simlint::LintRun {
            files_scanned: 3,
            findings: vec![],
            hot_paths: vec!["crates/eventsim/src/queue.rs".to_string()],
            roots: vec!["EventQueue::pop*".to_string()],
            matched_roots: vec!["crates/eventsim/src/queue.rs: EventQueue::pop".to_string()],
        };
        let v2 = simlint::report::to_json(".", &run).pretty();
        assert!(is_lint_schema(simlint::report::SCHEMA));
        validate_lint(&v2).unwrap();

        // Legacy v1 artifacts (no rule_counts / hot_paths / roots) stay
        // valid, so tracked results from older checkouts keep passing.
        let v1 = r#"{"schema":"mptcp-lint-report/v1","root":".","files_scanned":1,
            "rules":[{"id":"R1","name":"wall-clock","summary":"no wall clock"}],
            "findings":[],"summary":{"suppressed":0,"unsuppressed":0}}"#;
        assert!(is_lint_schema("mptcp-lint-report/v1"));
        validate_lint(v1).unwrap();

        // Corruption is caught through the same path.
        let broken = v2.replace("\"files_scanned\": 3", "\"files_scanned\": -3");
        assert!(validate_lint(&broken).is_err());
    }
}

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! Experiment harness for the reproduction of *"MPTCP is not
//! Pareto-Optimal"* (Khalili et al., CoNEXT 2012).
//!
//! Each table and figure of the paper has a binary under `src/bin/` that
//! reruns the experiment and prints the paper's rows/series; the shared
//! machinery lives here so the workspace's integration tests can reuse it:
//!
//! * [`RunCfg`] — warmup/measurement windows and replication seeds
//!   (`quick()` for CI-scale runs, `paper()` for full-length ones; the
//!   `REPRO_QUICK` environment variable switches the binaries);
//! * [`scenario_a`], [`scenario_b`], [`scenario_c`] — packet-level
//!   measurements of the three testbed scenarios;
//! * [`traces`] — the window/α time series of Figs. 7–8;
//! * [`fattree`] — the data-center experiments of Figs. 13–14/Table III;
//! * [`table`] — aligned-table printing and CSV output under `results/`;
//! * [`config`] — JSON-described custom scenarios (the `repro_run` CLI);
//! * [`jobs`] — the scenarios as single-seed callable jobs with their paper
//!   parameter grids, for the `orchestra` experiment orchestrator;
//! * [`report`] — machine-readable JSON run reports under `results/`
//!   (schema-versioned; includes events/sec and sim/wall profiling);
//! * [`tracing`] — `MPTCP_TRACE`-driven structured JSONL trace capture for
//!   any binary.

pub mod config;
pub mod fattree;
pub mod jobs;
pub mod json;
pub mod report;
pub mod scenario_a;
pub mod scenario_b;
pub mod scenario_c;
pub mod table;
pub mod traces;
pub mod tracing;

use eventsim::{SimDuration, SimRng, SimTime};
use netsim::Simulation;
use tcpsim::Connection;

/// Windows and replication for one measurement.
#[derive(Debug, Clone, Copy)]
pub struct RunCfg {
    /// Seconds of simulated warmup discarded before measuring.
    pub warmup_s: f64,
    /// Seconds of simulated time measured.
    pub measure_s: f64,
    /// Flow start jitter window, seconds.
    pub jitter_s: f64,
    /// Independent replications (the paper took 5 measurements per point).
    pub replications: usize,
    /// Base RNG seed; replication `i` uses `seed + i`.
    pub seed: u64,
}

impl RunCfg {
    /// CI-scale: short windows, 2 replications.
    pub fn quick() -> RunCfg {
        RunCfg {
            warmup_s: 20.0,
            measure_s: 25.0,
            jitter_s: 2.0,
            replications: 2,
            seed: 1,
        }
    }

    /// Paper-scale: 120 s runs, 5 replications (§III Testbed Setup).
    pub fn paper() -> RunCfg {
        RunCfg {
            warmup_s: 40.0,
            measure_s: 80.0,
            jitter_s: 3.0,
            replications: 5,
            seed: 1,
        }
    }

    /// `paper()` unless the environment variable `REPRO_QUICK` is set.
    pub fn from_env() -> RunCfg {
        if std::env::var_os("REPRO_QUICK").is_some() {
            RunCfg::quick()
        } else {
            RunCfg::paper()
        }
    }

    /// End of the simulated run.
    pub fn end_time(&self) -> SimTime {
        SimTime::from_secs_f64(self.warmup_s + self.measure_s)
    }
}

/// Run one replication closure per seed, each on its own OS thread (a
/// `Simulation` is single-threaded internally — `Rc` handles and all — but
/// independent replications parallelize perfectly).
pub fn replicate<T: Send>(cfg: &RunCfg, run: impl Fn(u64) -> T + Sync) -> Vec<T> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.replications)
            .map(|i| {
                let run = &run;
                let seed = cfg.seed + i as u64;
                scope.spawn(move || run(seed))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replication thread panicked"))
            .collect()
    })
}

/// Start `conns` with random jitter, run warmup, reset all statistics, then
/// run the measurement window. Returns the measurement end time.
pub fn warmup_and_measure(
    sim: &mut Simulation,
    conns: &[Connection],
    cfg: &RunCfg,
    rng: &mut SimRng,
) -> SimTime {
    topo::stagger_starts(sim, conns, SimDuration::from_secs_f64(cfg.jitter_s), rng);
    let warm = SimTime::from_secs_f64(cfg.warmup_s);
    sim.run_until(warm);
    sim.reset_queue_stats();
    for c in conns {
        c.handle.reset(sim.now());
    }
    let end = cfg.end_time();
    sim.run_until(end);
    end
}

/// Mean goodput (Mb/s) across a group of connections over the measurement
/// window.
pub fn mean_goodput_mbps(conns: &[Connection], now: SimTime) -> f64 {
    assert!(!conns.is_empty(), "empty connection group");
    conns
        .iter()
        .map(|c| c.handle.goodput_mbps(now))
        .sum::<f64>()
        / conns.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_presets() {
        let q = RunCfg::quick();
        let p = RunCfg::paper();
        assert!(q.measure_s < p.measure_s);
        assert_eq!(p.replications, 5);
        assert_eq!(
            p.end_time(),
            SimTime::from_secs_f64(p.warmup_s + p.measure_s)
        );
    }
}

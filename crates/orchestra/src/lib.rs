#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! Parallel deterministic experiment orchestrator.
//!
//! The paper's evaluation is a grid: scenarios × parameter points × seeds.
//! Each cell is one single-threaded, bit-deterministic simulation — which
//! makes the grid embarrassingly parallel *if* nothing about scheduling
//! leaks into the results. This crate is that harness:
//!
//! * [`manifest`] — the JSON job manifest, its expansion into a flat job
//!   list, and the FNV-derived per-job seeds (stable across worker count,
//!   scheduling, and resume);
//! * [`pool`] — the fixed-size worker pool with per-job timeout, bounded
//!   retries, and panic isolation;
//! * [`rundir`] — the checkpointed `results/orchestra/<run-id>/` layout
//!   whose append-only journal makes interrupted runs resumable;
//! * [`sweep`] — cross-seed aggregation into a schema-validated
//!   `mptcp-sweep-report/v1`.
//!
//! The determinism contract, tested end to end: the same manifest produces
//! byte-identical `sweep.json` and per-job reports whether run with 1 or 8
//! workers, interrupted and resumed or not. Only `journal.jsonl` line
//! order (completion order) and anything wall-clock is scheduling-
//! dependent, and neither feeds the reports.

pub mod manifest;
pub mod pool;
pub mod rundir;
pub mod sweep;

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bench::jobs::JobCtx;

use manifest::Job;
use pool::{JobResult, Outcome, PoolCfg, Runner};
use rundir::{JournalEntry, RunDir};

/// Options for one orchestrated run.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Worker threads.
    pub workers: usize,
    /// Per-attempt timeout.
    pub timeout: Duration,
    /// Retries after a first failed attempt.
    pub retries: u32,
    /// Only run jobs of this scenario.
    pub filter: Option<String>,
    /// Capture per-job trace digests (the determinism witness). On by
    /// default; turning it off trades the witness for speed.
    pub digest: bool,
    /// Print per-job progress lines to stderr.
    pub verbose: bool,
    /// Render the sweep explorer (`index.html` + per-point pages) into the
    /// run directory after `sweep.json` is written.
    pub viz: bool,
}

impl Default for RunOpts {
    fn default() -> RunOpts {
        RunOpts {
            workers: 1,
            timeout: Duration::from_secs(600),
            retries: 1,
            filter: None,
            digest: true,
            verbose: false,
            viz: false,
        }
    }
}

/// What a finished (or partially failed) run looks like.
#[derive(Debug)]
pub struct RunSummary {
    /// Jobs in the (filtered) expansion.
    pub total: usize,
    /// Jobs completed, including ones skipped via the journal.
    pub done: usize,
    /// Jobs whose retries were exhausted.
    pub failed: usize,
    /// Jobs skipped because the journal already had them done.
    pub skipped: usize,
    /// Attempt threads abandoned to timeouts (also in `sweep.json` as
    /// `jobs.abandoned`).
    pub abandoned: usize,
    /// Keys of the failed jobs, sorted.
    pub failed_jobs: Vec<String>,
    /// Where `sweep.json` was written.
    pub sweep_path: PathBuf,
}

/// Scenario lookup across every registry the orchestrator can drive: the
/// paper scenarios in [`bench::jobs::REGISTRY`] plus the chaos crate's
/// `fuzz` job kind ([`chaos::scenario::SCENARIOS`]).
pub fn find_scenario(name: &str) -> Option<&'static bench::jobs::ScenarioDef> {
    bench::jobs::find(name).or_else(|| chaos::scenario::find(name))
}

/// Every scenario name [`find_scenario`] resolves, in listing order.
pub fn scenario_defs() -> impl Iterator<Item = &'static bench::jobs::ScenarioDef> {
    bench::jobs::REGISTRY
        .iter()
        .chain(chaos::scenario::SCENARIOS.iter())
}

/// The production runner: dispatch a job into the combined scenario
/// registry ([`find_scenario`]).
pub fn registry_runner(quick: bool, digest: bool) -> Runner {
    Arc::new(move |job: &Job| {
        let def = find_scenario(&job.scenario)
            .unwrap_or_else(|| panic!("unknown scenario {:?}", job.scenario));
        let ctx = JobCtx {
            seed: job.seed,
            quick,
            digest,
            params: job.params.clone(),
        };
        (def.run)(&ctx)
    })
}

/// Execute (or resume) the run directory's frozen manifest with the
/// standard registry runner.
pub fn run(dir: &RunDir, opts: &RunOpts) -> Result<RunSummary, String> {
    let manifest = dir.manifest()?;
    let runner = registry_runner(manifest.scale.is_quick(), opts.digest);
    run_with(dir, opts, &runner)
}

/// [`run`] with an injected job body — the test hook for misbehaving jobs.
pub fn run_with(dir: &RunDir, opts: &RunOpts, runner: &Runner) -> Result<RunSummary, String> {
    let manifest = dir.manifest()?;
    let jobs = manifest.expand(opts.filter.as_deref())?;

    // Resume: the latest journal state decides what still runs.
    let journal = dir.journal()?;
    let mut pending = Vec::new();
    let mut skipped = 0usize;
    for job in &jobs {
        if journal.get(&job.key).is_some_and(JournalEntry::is_done) {
            skipped += 1;
        } else {
            pending.push(job.clone());
        }
    }

    let cfg = PoolCfg {
        workers: opts.workers.max(1),
        timeout: opts.timeout,
        retries: opts.retries,
        ..PoolCfg::default()
    };
    // The journal (and stderr) are shared across workers; one lock
    // serializes both so lines never interleave.
    let io_state: Mutex<Option<String>> = Mutex::new(None);
    let on_complete = |_i: usize, job: &Job, result: &JobResult| {
        let mut io_error = io_state.lock().expect("journal lock poisoned");
        let entry = match &result.outcome {
            Outcome::Done(out) => match dir.write_job_report(&manifest, job, out) {
                Ok(rel) => JournalEntry::done(job, result.attempts, out, rel),
                Err(e) => {
                    io_error.get_or_insert(e);
                    return;
                }
            },
            Outcome::Failed { error } => JournalEntry::failed(job, result.attempts, error.clone()),
        };
        if opts.verbose {
            let note = match &result.outcome {
                Outcome::Done(_) => "done".to_string(),
                Outcome::Failed { error } => format!("FAILED ({error})"),
            };
            eprintln!(
                "orchestra: {} {note} [attempts {}]",
                job.key, result.attempts
            );
        }
        if let Err(e) = dir.append(&entry) {
            io_error.get_or_insert(e);
        }
    };
    let (results, stats) = pool::run_pool(&pending, &cfg, runner, &on_complete);
    if let Some(e) = io_state.into_inner().expect("journal lock poisoned") {
        return Err(e);
    }

    // Merge journal-skipped and fresh results into the terminal picture.
    let mut terminal: BTreeMap<String, JournalEntry> = BTreeMap::new();
    for job in &jobs {
        if let Some(entry) = journal.get(&job.key) {
            if entry.is_done() {
                terminal.insert(job.key.clone(), entry.clone());
            }
        }
    }
    for (job, result) in pending.iter().zip(&results) {
        let entry = match &result.outcome {
            Outcome::Done(out) => JournalEntry::done(
                job,
                result.attempts,
                out,
                format!("jobs/{}.json", manifest::file_stem(&job.key)),
            ),
            Outcome::Failed { error } => JournalEntry::failed(job, result.attempts, error.clone()),
        };
        terminal.insert(job.key.clone(), entry);
    }

    let doc = sweep::build_sweep(&manifest, &jobs, &terminal, stats.abandoned);
    bench::report::validate_sweep(&doc)
        .map_err(|e| format!("self-produced sweep report invalid: {e}"))?;
    let sweep_path = dir.write_sweep(&doc)?;

    if opts.viz {
        // Page bytes are independent of worker count; reusing the pool
        // width only parallelizes the rendering.
        for (name, html) in viz::render_run_dir(dir.root(), opts.workers)? {
            let path = dir.root().join(&name);
            std::fs::write(&path, html)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
    }

    let mut failed_jobs: Vec<String> = terminal
        .values()
        .filter(|e| !e.is_done())
        .map(|e| e.job.clone())
        .collect();
    failed_jobs.sort();
    let failed = failed_jobs.len();
    Ok(RunSummary {
        total: jobs.len(),
        done: jobs.len() - failed,
        failed,
        skipped,
        abandoned: stats.abandoned,
        failed_jobs,
        sweep_path,
    })
}

//! Checkpointed run directories: `results/orchestra/<run-id>/`.
//!
//! Layout:
//!
//! ```text
//! results/orchestra/<run-id>/
//!   manifest.json    frozen input manifest — authoritative on resume
//!   journal.jsonl    append-only: one line per finished job attempt-group
//!   jobs/<stem>.json one mptcp-run-report/v1 per completed job
//!   sweep.json       mptcp-sweep-report/v1 cross-seed aggregation
//! ```
//!
//! The journal is the resume point: every finished job (done *or* failed)
//! appends one self-contained line with its metrics and trace digest. A
//! resumed run re-expands the frozen manifest, skips every job whose latest
//! journal status is `done`, re-runs the rest, and rebuilds `sweep.json`
//! from the merged picture — so an interrupted-then-resumed run emits the
//! same bytes as an uninterrupted one. Journal line *order* is completion
//! order (scheduling-dependent and intentionally not compared); all
//! deterministic artifacts are keyed by job, not by position.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use bench::jobs::JobOutput;
use bench::json::Json;

use crate::manifest::{file_stem, Job, Manifest};

/// One journal line: everything the sweep needs to know about a finished
/// job, so resume never has to re-parse per-job reports.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Job key.
    pub job: String,
    /// `"done"` or `"failed"`.
    pub status: String,
    /// Attempts made.
    pub attempts: u32,
    /// Trace digest (16 hex chars, or `"-"` when capture was off; empty
    /// for failed jobs).
    pub digest: String,
    /// Scalar metrics of a done job.
    pub metrics: BTreeMap<String, f64>,
    /// Events the digest sink absorbed.
    pub trace_events: u64,
    /// Events the simulation dispatched.
    pub events: u64,
    /// Simulated seconds covered.
    pub sim_s: f64,
    /// Failure cause (empty for done jobs).
    pub error: String,
    /// Run-dir-relative report path (empty for failed jobs).
    pub report: String,
}

impl JournalEntry {
    /// Entry for a completed job.
    pub fn done(job: &Job, attempts: u32, out: &JobOutput, report: String) -> JournalEntry {
        JournalEntry {
            job: job.key.clone(),
            status: "done".to_string(),
            attempts,
            digest: out.digest.clone(),
            metrics: out.metrics.clone(),
            trace_events: out.trace_events,
            events: out.events,
            sim_s: out.sim_s,
            error: String::new(),
            report,
        }
    }

    /// Entry for a job whose attempts were exhausted.
    pub fn failed(job: &Job, attempts: u32, error: String) -> JournalEntry {
        JournalEntry {
            job: job.key.clone(),
            status: "failed".to_string(),
            attempts,
            digest: String::new(),
            metrics: BTreeMap::new(),
            trace_events: 0,
            events: 0,
            sim_s: 0.0,
            error,
            report: String::new(),
        }
    }

    /// Whether this job needs no re-run on resume.
    pub fn is_done(&self) -> bool {
        self.status == "done"
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("job", Json::from(self.job.as_str())),
            ("status", Json::from(self.status.as_str())),
            ("attempts", Json::from(self.attempts as u64)),
            ("digest", Json::from(self.digest.as_str())),
            (
                "metrics",
                Json::Object(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            ("trace_events", Json::from(self.trace_events)),
            ("events", Json::from(self.events)),
            ("sim_s", Json::from(self.sim_s)),
            ("error", Json::from(self.error.as_str())),
            ("report", Json::from(self.report.as_str())),
        ])
    }

    fn from_json(doc: &Json) -> Result<JournalEntry, String> {
        let text = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("journal entry missing {key:?}"))
        };
        let num = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("journal entry missing {key:?}"))
        };
        let status = text("status")?;
        if status != "done" && status != "failed" {
            return Err(format!("journal entry has unknown status {status:?}"));
        }
        let mut metrics = BTreeMap::new();
        for (k, v) in doc
            .get("metrics")
            .and_then(Json::as_object)
            .ok_or("journal entry missing \"metrics\"")?
        {
            metrics.insert(
                k.clone(),
                v.as_f64()
                    .ok_or_else(|| format!("journal metric {k:?} not a number"))?,
            );
        }
        Ok(JournalEntry {
            job: text("job")?,
            status,
            attempts: num("attempts")? as u32,
            digest: text("digest")?,
            metrics,
            trace_events: num("trace_events")? as u64,
            events: num("events")? as u64,
            sim_s: num("sim_s")?,
            error: text("error")?,
            report: text("report")?,
        })
    }
}

/// A handle on one run directory.
#[derive(Debug)]
pub struct RunDir {
    root: PathBuf,
}

impl RunDir {
    /// Create `out_root/run_id` for a fresh run and freeze its manifest.
    /// Refuses a directory that already holds a manifest — that is a
    /// previous run; resume it or pick another `--run-id`.
    pub fn create(out_root: &Path, run_id: &str, manifest: &Manifest) -> Result<RunDir, String> {
        let root = out_root.join(run_id);
        if root.join("manifest.json").exists() {
            return Err(format!(
                "run directory {} already exists — use --resume {run_id} or a fresh --run-id",
                root.display()
            ));
        }
        fs::create_dir_all(root.join("jobs"))
            .map_err(|e| format!("cannot create {}: {e}", root.display()))?;
        let path = root.join("manifest.json");
        fs::write(&path, manifest.to_json().render_pretty() + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(RunDir { root })
    }

    /// Open an existing run directory for resume.
    pub fn open(out_root: &Path, run_id: &str) -> Result<RunDir, String> {
        let root = out_root.join(run_id);
        if !root.join("manifest.json").exists() {
            return Err(format!(
                "{} has no manifest.json — not a run directory",
                root.display()
            ));
        }
        fs::create_dir_all(root.join("jobs"))
            .map_err(|e| format!("cannot create {}: {e}", root.display()))?;
        Ok(RunDir { root })
    }

    /// The directory itself.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The frozen manifest this run executes.
    pub fn manifest(&self) -> Result<Manifest, String> {
        Manifest::from_file(&self.root.join("manifest.json"))
    }

    /// Latest journal state: job key → last entry (a resumed run's re-run
    /// appends a newer line that supersedes an older `failed` one). Partial
    /// trailing lines — the interruption case — are skipped.
    pub fn journal(&self) -> Result<BTreeMap<String, JournalEntry>, String> {
        let path = self.root.join("journal.jsonl");
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let mut latest = BTreeMap::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(doc) = bench::json::parse(line) else {
                continue; // torn final write from an interrupted run
            };
            let entry = JournalEntry::from_json(&doc)?;
            latest.insert(entry.job.clone(), entry);
        }
        Ok(latest)
    }

    /// Append one journal line (callers serialize; the pool's `on_complete`
    /// runs under a lock).
    pub fn append(&self, entry: &JournalEntry) -> Result<(), String> {
        let path = self.root.join("journal.jsonl");
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        f.write_all((entry.to_json().render() + "\n").as_bytes())
            .and_then(|()| f.flush())
            .map_err(|e| format!("cannot append to {}: {e}", path.display()))
    }

    /// Write the per-job `mptcp-run-report/v1` under `jobs/`, returning the
    /// run-dir-relative path. The report is a pure function of the job and
    /// its output — wall-clock profile fields are zeroed so the bytes are
    /// identical across worker counts and resumes.
    pub fn write_job_report(
        &self,
        manifest: &Manifest,
        job: &Job,
        out: &JobOutput,
    ) -> Result<String, String> {
        let stem = file_stem(&job.key);
        let doc = job_report(manifest, job, out, &stem);
        debug_assert!(
            bench::report::validate(&doc).is_ok(),
            "self-produced job report invalid: {:?}",
            bench::report::validate(&doc)
        );
        let rel = format!("jobs/{stem}.json");
        let path = self.root.join(&rel);
        fs::write(&path, doc.render_pretty() + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(rel)
    }

    /// Write `sweep.json`.
    pub fn write_sweep(&self, doc: &Json) -> Result<PathBuf, String> {
        let path = self.root.join("sweep.json");
        fs::write(&path, doc.render_pretty() + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(path)
    }
}

/// Assemble a job's `mptcp-run-report/v1`. Profile wall-clock fields are
/// deliberately zero (see [`RunDir::write_job_report`]); `events` and
/// `sim_s` are simulation-deterministic and kept.
fn job_report(manifest: &Manifest, job: &Job, out: &JobOutput, stem: &str) -> Json {
    let mut params: BTreeMap<String, Json> = job.params.clone();
    params.insert("scenario".to_string(), Json::from(job.scenario.as_str()));
    params.insert("manifest_seed".to_string(), Json::from(job.manifest_seed));
    // The derived seed is a full 64-bit hash; JSON numbers are doubles, so
    // carry it as hex text.
    params.insert(
        "seed_hex".to_string(),
        Json::from(format!("{:016x}", job.seed)),
    );
    params.insert("scale".to_string(), Json::from(manifest.scale.name()));
    params.insert("trace_digest".to_string(), Json::from(out.digest.as_str()));
    let metrics: BTreeMap<String, Json> = out
        .metrics
        .iter()
        .map(|(k, v)| (k.clone(), Json::from(*v)))
        .collect();
    Json::object([
        ("schema", Json::from(bench::report::SCHEMA)),
        ("name", Json::from(stem)),
        ("params", Json::Object(params)),
        ("metrics", Json::Object(metrics)),
        ("tables", Json::Object(BTreeMap::new())),
        (
            "profile",
            Json::object([
                ("wall_s", Json::from(0.0)),
                ("events", Json::from(out.events)),
                ("events_per_sec", Json::from(0.0)),
                ("sim_s", Json::from(out.sim_s)),
                ("sim_wall_ratio", Json::from(0.0)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/orchestra-unit")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn demo_manifest() -> Manifest {
        let text = r#"{
          "schema": "mptcp-manifest/v1", "id": "t", "scale": "quick",
          "seeds": [1],
          "scenarios": [{ "name": "smoke", "grid": { "algorithm": ["lia"] } }]
        }"#;
        Manifest::parse(&bench::json::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn journal_round_trips_and_latest_entry_wins() {
        let out_root = tmp("journal_roundtrip");
        let m = demo_manifest();
        let dir = RunDir::create(&out_root, "r1", &m).unwrap();
        let job = &m.expand(None).unwrap()[0];
        dir.append(&JournalEntry::failed(job, 2, "panicked: boom".to_string()))
            .unwrap();
        let output = JobOutput {
            metrics: BTreeMap::from([("m".to_string(), 1.5)]),
            digest: "00112233aabbccdd".to_string(),
            trace_events: 10,
            events: 20,
            sim_s: 3.0,
        };
        dir.append(&JournalEntry::done(
            job,
            1,
            &output,
            "jobs/x.json".to_string(),
        ))
        .unwrap();
        let latest = dir.journal().unwrap();
        assert_eq!(latest.len(), 1);
        let e = &latest[&job.key];
        assert!(e.is_done());
        assert_eq!(e.metrics["m"], 1.5);
        assert_eq!(e.digest, "00112233aabbccdd");
        assert_eq!(e.report, "jobs/x.json");
        // A torn trailing line (interrupted write) is ignored.
        let path = dir.root().join("journal.jsonl");
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"job\":\"trunc").unwrap();
        drop(f);
        assert_eq!(dir.journal().unwrap().len(), 1);
    }

    #[test]
    fn create_refuses_existing_run_and_open_requires_one() {
        let out_root = tmp("create_refuses");
        let m = demo_manifest();
        RunDir::create(&out_root, "r1", &m).unwrap();
        let err = RunDir::create(&out_root, "r1", &m).unwrap_err();
        assert!(err.contains("--resume"), "{err}");
        assert!(RunDir::open(&out_root, "r1").is_ok());
        assert!(RunDir::open(&out_root, "r2").is_err());
        // The frozen manifest expands identically to the original.
        let dir = RunDir::open(&out_root, "r1").unwrap();
        let frozen = dir.manifest().unwrap();
        assert_eq!(
            frozen.expand(None).unwrap()[0].seed,
            m.expand(None).unwrap()[0].seed
        );
    }

    #[test]
    fn job_reports_validate_and_are_deterministic() {
        let out_root = tmp("job_reports");
        let m = demo_manifest();
        let dir = RunDir::create(&out_root, "r1", &m).unwrap();
        let job = &m.expand(None).unwrap()[0];
        let output = JobOutput {
            metrics: BTreeMap::from([("m".to_string(), 2.0)]),
            digest: "0011223344556677".to_string(),
            trace_events: 5,
            events: 9,
            sim_s: 3.0,
        };
        let rel = dir.write_job_report(&m, job, &output).unwrap();
        let first = fs::read(dir.root().join(&rel)).unwrap();
        let rel2 = dir.write_job_report(&m, job, &output).unwrap();
        assert_eq!(rel, rel2);
        assert_eq!(first, fs::read(dir.root().join(&rel)).unwrap());
        let doc = bench::json::parse(std::str::from_utf8(&first).unwrap()).unwrap();
        bench::report::validate(&doc).unwrap();
        assert_eq!(
            doc.get("params").unwrap().get("scenario").unwrap().as_str(),
            Some("smoke")
        );
    }
}

//! The fixed-size worker pool that fans jobs out across OS threads.
//!
//! Each *simulation* stays single-threaded and deterministic; the pool only
//! decides which jobs run concurrently. Workers pull the next job index
//! from a shared atomic counter, so any worker count processes the same job
//! list — results land in a slot-per-job vector, making the merge order a
//! property of the job list, never of scheduling.
//!
//! One job attempt = one freshly spawned thread running the job body under
//! `catch_unwind`, reporting back over a channel the worker waits on with a
//! timeout:
//!
//! * a **panic** (bad parameter, scenario bug) is caught and converted to
//!   an attempt failure — the worker, its siblings, and the run survive;
//! * a **timeout** (hung or runaway job) abandons the attempt thread (it is
//!   detached; its eventual result is discarded with the channel) and
//!   counts as an attempt failure;
//! * attempt failures retry up to the configured bound, after which the job
//!   is recorded `failed` with the last error. Other jobs are unaffected.
//!
//! Abandoned threads are *bounded*: every abandonment is tallied in a
//! run-wide ledger, a still-running abandoned thread counts as **live**
//! until its body returns, and once `abandon_cap` threads are live further
//! attempts fail fast instead of spawning — a manifest full of hung jobs
//! degrades into fast failures rather than an unbounded pile of zombie
//! threads. The total is reported in `sweep.json` (`jobs.abandoned`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use bench::jobs::JobOutput;

use crate::manifest::Job;

/// The job body the pool runs: maps a job to its output, panicking on
/// invalid input. The production runner dispatches into
/// [`bench::jobs::REGISTRY`]; tests inject misbehaving runners.
pub type Runner = Arc<dyn Fn(&Job) -> JobOutput + Send + Sync>;

/// Pool shape and per-job failure policy.
#[derive(Debug, Clone, Copy)]
pub struct PoolCfg {
    /// Concurrent workers (>= 1; each runs one job at a time).
    pub workers: usize,
    /// Per-attempt wall-clock budget.
    pub timeout: Duration,
    /// Retries after the first failed attempt (`retries = 2` means up to 3
    /// attempts).
    pub retries: u32,
    /// Most timed-out attempt threads allowed to stay live at once; at the
    /// cap, new attempts fail fast instead of spawning.
    pub abandon_cap: usize,
}

impl Default for PoolCfg {
    fn default() -> PoolCfg {
        PoolCfg {
            workers: 1,
            timeout: Duration::from_secs(600),
            retries: 1,
            abandon_cap: 8,
        }
    }
}

/// Run-wide accounting the pool returns next to the per-job results.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Attempt threads abandoned to a timeout over the whole run (whether
    /// or not they have finished since).
    pub abandoned: usize,
}

/// Attempt-thread lifecycle, shared between the waiting worker and the
/// detached attempt thread. Exactly one side wins the `RUNNING` slot:
/// the worker (timeout → `ABANDONED`, ledger incremented) or the thread
/// body (return → `DONE`). A thread that finds itself `ABANDONED` on exit
/// releases its live-ledger slot.
const RUNNING: u8 = 0;
const ABANDONED: u8 = 1;
const DONE: u8 = 2;

/// Tracks abandoned attempt threads across one `run_pool` call. The live
/// counter is behind an `Arc` because the detached threads that decrement
/// it outlive the pool's stack frame.
#[derive(Debug, Default)]
struct AbandonLedger {
    /// Abandoned threads whose bodies have not returned yet.
    live: Arc<AtomicUsize>,
    /// All abandonments, monotone (what `sweep.json` reports).
    total: AtomicUsize,
}

impl AbandonLedger {
    fn live(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    fn abandon(&self) {
        self.live.fetch_add(1, Ordering::SeqCst);
        self.total.fetch_add(1, Ordering::SeqCst);
    }
}

/// How one job ended.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The job body returned.
    Done(JobOutput),
    /// Every attempt panicked or timed out; the last error is kept.
    Failed {
        /// Human-readable cause (`panicked: ...` / `timed out after ...`).
        error: String,
    },
}

/// One job's result after retries.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Attempts actually made (1..=retries+1).
    pub attempts: u32,
    /// Terminal outcome.
    pub outcome: Outcome,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `job` once on its own thread, waiting at most `timeout`. Fails fast
/// (without spawning) while `cfg.abandon_cap` abandoned threads are live.
fn attempt(
    runner: &Runner,
    job: &Job,
    cfg: &PoolCfg,
    ledger: &AbandonLedger,
) -> Result<JobOutput, String> {
    let live = ledger.live();
    if live >= cfg.abandon_cap {
        return Err(format!(
            "abandoned-thread cap reached ({live} live, cap {}): failing fast \
             without an attempt",
            cfg.abandon_cap
        ));
    }
    let (tx, rx) = mpsc::channel();
    let runner = Arc::clone(runner);
    let job = job.clone();
    let state = Arc::new(AtomicU8::new(RUNNING));
    let thread_state = Arc::clone(&state);
    let live_for_thread = Arc::clone(&ledger.live);
    thread::Builder::new()
        .name("orchestra-job".to_string())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| runner(&job)));
            // The receiver is gone after a timeout; a late result is
            // dropped with the channel.
            let _ = tx.send(result.map_err(panic_message));
            if thread_state.swap(DONE, Ordering::SeqCst) == ABANDONED {
                live_for_thread.fetch_sub(1, Ordering::SeqCst);
            }
        })
        .expect("spawn job attempt thread");
    match rx.recv_timeout(cfg.timeout) {
        Ok(Ok(out)) => Ok(out),
        Ok(Err(msg)) => Err(format!("panicked: {msg}")),
        Err(RecvTimeoutError::Timeout) => {
            // Claim the RUNNING slot; if the body finished in the race
            // window the thread is already gone and nothing leaks.
            if state
                .compare_exchange(RUNNING, ABANDONED, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                ledger.abandon();
            }
            Err(format!("timed out after {:.1}s", cfg.timeout.as_secs_f64()))
        }
        Err(RecvTimeoutError::Disconnected) => {
            Err("job thread vanished without reporting".to_string())
        }
    }
}

fn run_one(runner: &Runner, job: &Job, cfg: &PoolCfg, ledger: &AbandonLedger) -> JobResult {
    let max_attempts = cfg.retries + 1;
    let mut last_error = String::new();
    for n in 1..=max_attempts {
        match attempt(runner, job, cfg, ledger) {
            Ok(out) => {
                return JobResult {
                    attempts: n,
                    outcome: Outcome::Done(out),
                }
            }
            Err(e) => last_error = e,
        }
    }
    JobResult {
        attempts: max_attempts,
        outcome: Outcome::Failed { error: last_error },
    }
}

/// Fan `jobs` over `cfg.workers` threads. `on_complete` fires once per job
/// as it finishes (journal appends, progress) — callers needing exclusive
/// state must lock inside it. The returned vector is indexed like `jobs`,
/// so the merge order is scheduling-independent; [`PoolStats`] carries the
/// run-wide abandonment tally.
pub fn run_pool(
    jobs: &[Job],
    cfg: &PoolCfg,
    runner: &Runner,
    on_complete: &(dyn Fn(usize, &Job, &JobResult) + Sync),
) -> (Vec<JobResult>, PoolStats) {
    assert!(cfg.workers >= 1, "pool needs at least one worker");
    let next = AtomicUsize::new(0);
    let ledger = AbandonLedger::default();
    let slots: Vec<Mutex<Option<JobResult>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..cfg.workers.min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let result = run_one(runner, job, cfg, &ledger);
                on_complete(i, job, &result);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without filling its slot")
        })
        .collect();
    let stats = PoolStats {
        abandoned: ledger.total.load(Ordering::SeqCst),
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn job(key: &str) -> Job {
        Job {
            key: key.to_string(),
            point_key: key.to_string(),
            scenario: "test".to_string(),
            params: BTreeMap::new(),
            manifest_seed: 1,
            seed: 1,
        }
    }

    fn ok_output(tag: f64) -> JobOutput {
        JobOutput {
            metrics: BTreeMap::from([("tag".to_string(), tag)]),
            digest: "-".to_string(),
            trace_events: 0,
            events: 1,
            sim_s: 0.0,
        }
    }

    #[test]
    fn results_keep_job_order_regardless_of_workers() {
        let jobs: Vec<Job> = (0..9).map(|i| job(&format!("j{i}"))).collect();
        let runner: Runner = Arc::new(|j: &Job| {
            let i: f64 = j.key[1..].parse().unwrap();
            // Stagger so completion order scrambles under concurrency.
            thread::sleep(Duration::from_millis(20 - 2 * i as u64));
            ok_output(i)
        });
        for workers in [1, 4] {
            let cfg = PoolCfg {
                workers,
                ..PoolCfg::default()
            };
            let (results, stats) = run_pool(&jobs, &cfg, &runner, &|_, _, _| {});
            for (i, r) in results.iter().enumerate() {
                match &r.outcome {
                    Outcome::Done(out) => assert_eq!(out.metrics["tag"], i as f64),
                    Outcome::Failed { error } => panic!("job {i} failed: {error}"),
                }
            }
            assert_eq!(stats.abandoned, 0, "no job timed out");
        }
    }

    #[test]
    fn panicking_job_is_retried_then_failed_without_hurting_siblings() {
        let jobs = vec![job("good"), job("bad"), job("also-good")];
        let runner: Runner = Arc::new(|j: &Job| {
            if j.key == "bad" {
                panic!("boom at {}", j.key);
            }
            ok_output(0.0)
        });
        let cfg = PoolCfg {
            workers: 2,
            retries: 2,
            ..PoolCfg::default()
        };
        let completions = Mutex::new(Vec::new());
        let (results, _) = run_pool(&jobs, &cfg, &runner, &|i, _, _| {
            completions.lock().unwrap().push(i);
        });
        assert!(matches!(results[0].outcome, Outcome::Done(_)));
        assert!(matches!(results[2].outcome, Outcome::Done(_)));
        match &results[1].outcome {
            Outcome::Failed { error } => {
                assert!(error.contains("panicked: boom at bad"), "{error}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(results[1].attempts, 3, "retries exhausted");
        assert_eq!(completions.lock().unwrap().len(), 3);
    }

    #[test]
    fn hung_job_times_out_and_is_recorded_failed() {
        let jobs = vec![job("hang"), job("fine")];
        let runner: Runner = Arc::new(|j: &Job| {
            if j.key == "hang" {
                thread::sleep(Duration::from_secs(30));
            }
            ok_output(1.0)
        });
        let cfg = PoolCfg {
            workers: 2,
            timeout: Duration::from_millis(100),
            retries: 1,
            ..PoolCfg::default()
        };
        let (results, stats) = run_pool(&jobs, &cfg, &runner, &|_, _, _| {});
        match &results[0].outcome {
            Outcome::Failed { error } => assert!(error.contains("timed out"), "{error}"),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(results[0].attempts, 2);
        assert!(matches!(results[1].outcome, Outcome::Done(_)));
        assert_eq!(stats.abandoned, 2, "both attempts were abandoned");
    }

    #[test]
    fn abandoned_threads_are_capped_and_counted() {
        // Five jobs that hang far past the timeout, one worker, no
        // retries, cap 2: the first two jobs each abandon a thread, the
        // remaining three fail fast at the cap without spawning. The
        // ledger therefore reports exactly 2 abandonments.
        let jobs: Vec<Job> = (0..5).map(|i| job(&format!("hang{i}"))).collect();
        let runner: Runner = Arc::new(|_: &Job| {
            thread::sleep(Duration::from_secs(30));
            ok_output(0.0)
        });
        let cfg = PoolCfg {
            workers: 1,
            timeout: Duration::from_millis(50),
            retries: 0,
            abandon_cap: 2,
        };
        let (results, stats) = run_pool(&jobs, &cfg, &runner, &|_, _, _| {});
        assert_eq!(stats.abandoned, 2, "cap must bound live zombies");
        let errors: Vec<&str> = results
            .iter()
            .map(|r| match &r.outcome {
                Outcome::Failed { error } => error.as_str(),
                other => panic!("expected failure, got {other:?}"),
            })
            .collect();
        assert!(errors[0].contains("timed out"), "{}", errors[0]);
        assert!(errors[1].contains("timed out"), "{}", errors[1]);
        for e in &errors[2..] {
            assert!(e.contains("abandoned-thread cap reached"), "{e}");
        }
    }
}

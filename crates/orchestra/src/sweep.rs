//! Cross-seed aggregation: the `mptcp-sweep-report/v1` document.
//!
//! After every job has a terminal journal entry, the sweep groups jobs by
//! parameter point, computes per-metric statistics across the point's
//! completed seeds with [`metrics::Summary`] (n, mean, sample stddev,
//! min/max, 95% CI), and records every job's outcome in a flat `job_index`.
//! Everything is ordered by key — points by point key, jobs by job key,
//! metrics by name — so the document's bytes are a pure function of the
//! manifest and the job outcomes, never of worker count or completion
//! order. `bench::report::validate_sweep` checks the result (CI runs it via
//! `validate_report --strict`).

use std::collections::BTreeMap;

use bench::json::Json;
use metrics::Summary;

use crate::manifest::{Job, Manifest};
use crate::rundir::JournalEntry;

fn stats_json(values: &[f64]) -> Json {
    let s = Summary::of(values);
    Json::object([
        ("n", Json::from(s.n as u64)),
        ("mean", Json::from(s.mean)),
        ("std", Json::from(s.std)),
        ("min", Json::from(s.min)),
        ("max", Json::from(s.max)),
        ("ci95", Json::from(s.ci95)),
    ])
}

/// Build the sweep document. `results` must hold a terminal entry for every
/// job in `jobs` (the orchestrator guarantees this after the pool drains);
/// a missing entry is a bug and panics. `abandoned` is the pool's
/// abandoned-thread tally (timed-out attempts whose threads were detached).
pub fn build_sweep(
    manifest: &Manifest,
    jobs: &[Job],
    results: &BTreeMap<String, JournalEntry>,
    abandoned: usize,
) -> Json {
    // Group by parameter point, keeping each point's jobs in expansion
    // (manifest seed) order.
    let mut points: BTreeMap<&str, Vec<&Job>> = BTreeMap::new();
    for job in jobs {
        points.entry(&job.point_key).or_default().push(job);
    }
    let mut point_docs = Vec::new();
    for (point_key, point_jobs) in &points {
        let mut seeds = Vec::new();
        let mut failed_seeds = Vec::new();
        let mut digests = Vec::new();
        let mut series: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for job in point_jobs {
            let entry = results
                .get(&job.key)
                .unwrap_or_else(|| panic!("no terminal result for job {:?}", job.key));
            if entry.is_done() {
                seeds.push(Json::from(job.manifest_seed));
                digests.push(Json::from(entry.digest.as_str()));
                for (name, value) in &entry.metrics {
                    series.entry(name).or_default().push(*value);
                }
            } else {
                failed_seeds.push(Json::from(job.manifest_seed));
            }
        }
        let metrics: BTreeMap<String, Json> = series
            .iter()
            .map(|(name, values)| (name.to_string(), stats_json(values)))
            .collect();
        point_docs.push(Json::object([
            ("point", Json::from(*point_key)),
            ("scenario", Json::from(point_jobs[0].scenario.as_str())),
            ("params", Json::Object(point_jobs[0].params.clone())),
            ("seeds", Json::Array(seeds)),
            ("failed_seeds", Json::Array(failed_seeds)),
            ("metrics", Json::Object(metrics)),
            ("digests", Json::Array(digests)),
        ]));
    }

    // Flat per-job index, sorted by key.
    let mut sorted: Vec<&Job> = jobs.iter().collect();
    sorted.sort_by(|a, b| a.key.cmp(&b.key));
    let mut index = Vec::new();
    let mut done = 0u64;
    let mut failed = 0u64;
    for job in sorted {
        let entry = results
            .get(&job.key)
            .unwrap_or_else(|| panic!("no terminal result for job {:?}", job.key));
        let mut doc = BTreeMap::from([
            ("job".to_string(), Json::from(job.key.as_str())),
            ("status".to_string(), Json::from(entry.status.as_str())),
            ("attempts".to_string(), Json::from(entry.attempts as u64)),
        ]);
        if entry.is_done() {
            done += 1;
            doc.insert("digest".to_string(), Json::from(entry.digest.as_str()));
            doc.insert("report".to_string(), Json::from(entry.report.as_str()));
        } else {
            failed += 1;
            doc.insert("error".to_string(), Json::from(entry.error.as_str()));
        }
        index.push(Json::Object(doc));
    }

    Json::object([
        ("schema", Json::from(bench::report::SWEEP_SCHEMA)),
        (
            "manifest",
            Json::object([
                ("id", Json::from(manifest.id.as_str())),
                ("scale", Json::from(manifest.scale.name())),
                (
                    "seeds",
                    Json::Array(manifest.seeds.iter().map(|&s| Json::from(s)).collect()),
                ),
            ]),
        ),
        (
            "jobs",
            Json::object([
                ("total", Json::from(done + failed)),
                ("done", Json::from(done)),
                ("failed", Json::from(failed)),
                ("abandoned", Json::from(abandoned as u64)),
            ]),
        ),
        ("points", Json::Array(point_docs)),
        ("job_index", Json::Array(index)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bench::jobs::JobOutput;

    fn manifest() -> Manifest {
        let text = r#"{
          "schema": "mptcp-manifest/v1", "id": "s", "scale": "quick",
          "seeds": [1, 2],
          "scenarios": [{ "name": "smoke", "grid": { "algorithm": ["lia", "olia"] } }]
        }"#;
        Manifest::parse(&bench::json::parse(text).unwrap()).unwrap()
    }

    fn output(v: f64) -> JobOutput {
        JobOutput {
            metrics: BTreeMap::from([("m".to_string(), v)]),
            digest: format!("{:016x}", (v * 1e6) as u64),
            trace_events: 1,
            events: 2,
            sim_s: 3.0,
        }
    }

    #[test]
    fn sweep_aggregates_per_point_and_validates() {
        let m = manifest();
        let jobs = m.expand(None).unwrap();
        assert_eq!(jobs.len(), 4);
        let mut results = BTreeMap::new();
        for (i, job) in jobs.iter().enumerate() {
            let entry = if job.key.contains("olia") && job.manifest_seed == 2 {
                JournalEntry::failed(job, 3, "panicked: boom".to_string())
            } else {
                JournalEntry::done(job, 1, &output(i as f64), format!("jobs/{i}.json"))
            };
            results.insert(job.key.clone(), entry);
        }
        let doc = build_sweep(&m, &jobs, &results, 1);
        bench::report::validate_sweep(&doc).expect("sweep must validate");

        let points = doc.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 2);
        // The lia point has both seeds; mean of m over seeds 1,2.
        let lia = &points[0];
        assert_eq!(
            lia.get("point").unwrap().as_str().unwrap(),
            "smoke?algorithm=lia"
        );
        let stats = lia.get("metrics").unwrap().get("m").unwrap();
        assert_eq!(stats.get("n").unwrap().as_f64(), Some(2.0));
        assert_eq!(stats.get("mean").unwrap().as_f64(), Some(0.5));
        // The olia point lost seed 2.
        let olia = &points[1];
        assert_eq!(olia.get("seeds").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(
            olia.get("failed_seeds").unwrap().as_array().unwrap().len(),
            1
        );
        let counts = doc.get("jobs").unwrap();
        assert_eq!(counts.get("done").unwrap().as_f64(), Some(3.0));
        assert_eq!(counts.get("failed").unwrap().as_f64(), Some(1.0));
        assert_eq!(counts.get("abandoned").unwrap().as_f64(), Some(1.0));
        // Byte-stable under identical inputs.
        assert_eq!(
            doc.render_pretty(),
            build_sweep(&m, &jobs, &results, 1).render_pretty()
        );
    }
}

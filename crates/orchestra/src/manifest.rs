//! Job manifests: what to run, at which parameter points, over which seeds.
//!
//! A manifest is a small JSON document ([`MANIFEST_SCHEMA`]) naming
//! scenarios from the [`bench::jobs`] registry, optionally overriding their
//! parameter grids, and listing the seeds every point is replicated over:
//!
//! ```json
//! {
//!   "schema": "mptcp-manifest/v1",
//!   "id": "ci_quick",
//!   "scale": "quick",
//!   "seeds": [1, 2],
//!   "scenarios": [
//!     { "name": "smoke" },
//!     { "name": "smoke", "grid": { "algorithm": ["olia"], "n1": [3] } }
//!   ]
//! }
//! ```
//!
//! [`Manifest::expand`] turns this into the flat job list: the cartesian
//! product of each scenario's grid axes (axes sorted by name, values in
//! listed order), crossed with the seed list. Expansion is a pure function
//! of the manifest — the job list, the job *keys*, and the derived
//! simulation seeds never depend on worker count, scheduling, or wall
//! clock, which is what makes `--jobs 8` byte-identical to `--jobs 1` and
//! lets an interrupted run resume against the frozen manifest in its run
//! directory.
//!
//! Per-job seeds are derived by [`Manifest::derive_seed`]: an FNV-1a hash
//! (via [`trace::Digest64`]) of `manifest id + "\0" + job key`. Two jobs
//! never share a seed unless the manifest itself collides, and renumbering
//! or reordering unrelated jobs cannot shift anyone else's seed.

use std::collections::{BTreeMap, BTreeSet};

use bench::json::Json;
use trace::Digest64;

/// Version tag of manifest documents (also embedded in the frozen copy the
/// run directory keeps).
pub const MANIFEST_SCHEMA: &str = "mptcp-manifest/v1";

/// Grid-axis names the orchestrator itself writes into per-job reports;
/// manifests may not use them as parameter axes.
const RESERVED_AXES: &[&str] = &["scenario", "seed", "manifest_seed", "scale", "trace_digest"];

/// Measurement scale, selecting each scenario's quick (CI) or full (paper)
/// windows and default grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-scale windows.
    Quick,
    /// Full paper-scale windows.
    Full,
}

impl Scale {
    /// The manifest spelling.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Parse the manifest spelling.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Whether this is the quick scale (the flag jobs receive).
    pub fn is_quick(self) -> bool {
        self == Scale::Quick
    }
}

/// One scenario selection in a manifest: the registry name plus an optional
/// grid override (axis name → values). Without an override the scenario's
/// default paper grid for the manifest's scale is swept.
#[derive(Debug, Clone)]
pub struct ScenarioEntry {
    /// Name in [`bench::jobs::REGISTRY`].
    pub name: String,
    /// Grid override; `None` means the registry default.
    pub grid: Option<Vec<(String, Vec<Json>)>>,
}

/// A parsed, validated job manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Stable identifier; salts every derived seed and names the default
    /// run directory.
    pub id: String,
    /// Measurement scale.
    pub scale: Scale,
    /// Seeds every parameter point is replicated over.
    pub seeds: Vec<u64>,
    /// The scenarios to sweep, in manifest order.
    pub entries: Vec<ScenarioEntry>,
}

/// One expanded job: a single (scenario, parameter point, seed) simulation.
#[derive(Debug, Clone)]
pub struct Job {
    /// Stable key `scenario?axis=value&...#seed=N` (axes sorted by name);
    /// names the job in the journal, the job index, and its report file.
    pub key: String,
    /// The key minus the `#seed=` suffix — all seeds of one parameter point
    /// share it, and the sweep aggregates over it.
    pub point_key: String,
    /// Registry scenario name.
    pub scenario: String,
    /// The parameter point.
    pub params: BTreeMap<String, Json>,
    /// The manifest seed this job replicates (small, human-chosen).
    pub manifest_seed: u64,
    /// The derived simulation seed (full 64-bit, manifest-stable).
    pub seed: u64,
}

fn grid_from_json(name: &str, grid: &Json) -> Result<Vec<(String, Vec<Json>)>, String> {
    let obj = grid
        .as_object()
        .ok_or_else(|| format!("scenarios[{name}].grid must be an object"))?;
    let mut axes = Vec::new();
    for (axis, values) in obj {
        if RESERVED_AXES.contains(&axis.as_str()) {
            return Err(format!(
                "scenarios[{name}].grid axis {axis:?} is reserved by the orchestrator"
            ));
        }
        let values = values
            .as_array()
            .ok_or_else(|| format!("scenarios[{name}].grid.{axis} must be an array"))?;
        if values.is_empty() {
            return Err(format!("scenarios[{name}].grid.{axis} must not be empty"));
        }
        for v in values {
            if v.as_f64().is_none() && v.as_str().is_none() && v.as_bool().is_none() {
                return Err(format!(
                    "scenarios[{name}].grid.{axis} values must be scalars, got {v:?}"
                ));
            }
            // The backend axis selects the simulation engine; catch typos
            // at parse time instead of failing every expanded job.
            if axis == "backend" && !matches!(v.as_str(), Some("packet") | Some("flow")) {
                return Err(format!(
                    "scenarios[{name}].grid.backend values must be \"packet\" or \"flow\", got {v:?}"
                ));
            }
        }
        axes.push((axis.clone(), values.to_vec()));
    }
    Ok(axes)
}

impl Manifest {
    /// Parse and validate a manifest document.
    pub fn parse(doc: &Json) -> Result<Manifest, String> {
        if doc.as_object().is_none() {
            return Err("manifest must be a JSON object".to_string());
        }
        match doc.get("schema").and_then(Json::as_str) {
            Some(MANIFEST_SCHEMA) => {}
            Some(other) => {
                return Err(format!(
                    "unknown manifest schema {other:?} (expected {MANIFEST_SCHEMA:?})"
                ))
            }
            None => return Err("manifest.schema must be a string".to_string()),
        }
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or("manifest.id must be a non-empty string")?
            .to_string();
        let scale = doc
            .get("scale")
            .and_then(Json::as_str)
            .and_then(Scale::parse)
            .ok_or("manifest.scale must be \"quick\" or \"full\"")?;
        let seeds_json = doc
            .get("seeds")
            .and_then(Json::as_array)
            .ok_or("manifest.seeds must be an array")?;
        if seeds_json.is_empty() {
            return Err("manifest.seeds must not be empty".to_string());
        }
        let mut seeds = Vec::new();
        for s in seeds_json {
            let v = s.as_f64().ok_or("manifest.seeds must hold numbers")?;
            if v < 0.0 || v.fract() != 0.0 || v >= 9.0e15 {
                return Err(format!(
                    "manifest seed {v} is not a small non-negative integer"
                ));
            }
            seeds.push(v as u64);
        }
        if seeds.iter().collect::<BTreeSet<_>>().len() != seeds.len() {
            return Err("manifest.seeds must be distinct".to_string());
        }
        let scenarios = doc
            .get("scenarios")
            .and_then(Json::as_array)
            .ok_or("manifest.scenarios must be an array")?;
        if scenarios.is_empty() {
            return Err("manifest.scenarios must not be empty".to_string());
        }
        let mut entries = Vec::new();
        for s in scenarios {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .filter(|n| !n.is_empty())
                .ok_or("scenarios[].name must be a non-empty string")?
                .to_string();
            if crate::find_scenario(&name).is_none() {
                let known: Vec<&str> = crate::scenario_defs().map(|d| d.name).collect();
                return Err(format!(
                    "unknown scenario {name:?} (known: {})",
                    known.join(", ")
                ));
            }
            let grid = match s.get("grid") {
                None => None,
                Some(g) => Some(grid_from_json(&name, g)?),
            };
            entries.push(ScenarioEntry { name, grid });
        }
        Ok(Manifest {
            id,
            scale,
            seeds,
            entries,
        })
    }

    /// Parse a manifest from a file on disk.
    pub fn from_file(path: &std::path::Path) -> Result<Manifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = bench::json::parse(&text)
            .map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
        Manifest::parse(&doc)
    }

    /// Render back to the document form (the frozen `manifest.json` a run
    /// directory keeps; reparsing it yields an equal manifest).
    pub fn to_json(&self) -> Json {
        let scenarios: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                let mut obj = BTreeMap::new();
                obj.insert("name".to_string(), Json::from(e.name.as_str()));
                if let Some(grid) = &e.grid {
                    obj.insert(
                        "grid".to_string(),
                        Json::Object(
                            grid.iter()
                                .map(|(axis, values)| (axis.clone(), Json::Array(values.clone())))
                                .collect(),
                        ),
                    );
                }
                Json::Object(obj)
            })
            .collect();
        Json::object([
            ("schema", Json::from(MANIFEST_SCHEMA)),
            ("id", Json::from(self.id.as_str())),
            ("scale", Json::from(self.scale.name())),
            (
                "seeds",
                Json::Array(self.seeds.iter().map(|&s| Json::from(s)).collect()),
            ),
            ("scenarios", Json::Array(scenarios)),
        ])
    }

    /// Derive the simulation seed for a job key: FNV-1a over
    /// `id + "\0" + key`. Stable across worker counts, scheduling, resume,
    /// and unrelated manifest edits.
    pub fn derive_seed(&self, key: &str) -> u64 {
        let mut d = Digest64::new();
        d.update(self.id.as_bytes());
        d.update(b"\0");
        d.update(key.as_bytes());
        d.finish()
    }

    /// Expand into the flat job list (see module docs for ordering).
    /// `filter` keeps only scenarios whose name equals it. Duplicate job
    /// keys (two entries producing the same point) are an error.
    pub fn expand(&self, filter: Option<&str>) -> Result<Vec<Job>, String> {
        let mut jobs = Vec::new();
        let mut seen = BTreeSet::new();
        for entry in &self.entries {
            if filter.is_some_and(|f| f != entry.name) {
                continue;
            }
            let def = crate::find_scenario(&entry.name)
                .ok_or_else(|| format!("unknown scenario {:?}", entry.name))?;
            let mut axes = match &entry.grid {
                Some(grid) => grid.clone(),
                None => (def.grid)(self.scale.is_quick()),
            };
            axes.sort_by(|a, b| a.0.cmp(&b.0));
            for (axis, _) in &axes {
                if RESERVED_AXES.contains(&axis.as_str()) {
                    return Err(format!(
                        "scenario {:?}: grid axis {axis:?} is reserved",
                        entry.name
                    ));
                }
            }
            let mut points: Vec<BTreeMap<String, Json>> = vec![BTreeMap::new()];
            for (axis, values) in &axes {
                let mut next = Vec::with_capacity(points.len() * values.len());
                for point in &points {
                    for v in values {
                        let mut p = point.clone();
                        p.insert(axis.clone(), v.clone());
                        next.push(p);
                    }
                }
                points = next;
            }
            for params in points {
                let point_key = point_key(&entry.name, &params);
                for &manifest_seed in &self.seeds {
                    let key = format!("{point_key}#seed={manifest_seed}");
                    if !seen.insert(key.clone()) {
                        return Err(format!("duplicate job {key:?} — overlapping grids?"));
                    }
                    let seed = self.derive_seed(&key);
                    jobs.push(Job {
                        key,
                        point_key: point_key.clone(),
                        scenario: entry.name.clone(),
                        params: params.clone(),
                        manifest_seed,
                        seed,
                    });
                }
            }
        }
        if jobs.is_empty() {
            return Err(match filter {
                Some(f) => format!("no jobs: filter {f:?} matches no manifest scenario"),
                None => "no jobs: manifest expands to an empty grid".to_string(),
            });
        }
        Ok(jobs)
    }
}

/// `scenario?axis=value&...` with axes in sorted order; string values are
/// embedded raw (no quotes), everything else in JSON spelling.
fn point_key(scenario: &str, params: &BTreeMap<String, Json>) -> String {
    if params.is_empty() {
        return scenario.to_string();
    }
    let parts: Vec<String> = params
        .iter()
        .map(|(k, v)| match v {
            Json::String(s) => format!("{k}={s}"),
            other => format!("{k}={}", other.render()),
        })
        .collect();
    format!("{scenario}?{}", parts.join("&"))
}

/// A filesystem-safe stem for a job's report file: the key with
/// non-`[A-Za-z0-9._-]` bytes folded to `-`, truncated, plus a short hash
/// of the full key so distinct jobs never collide.
pub fn file_stem(key: &str) -> String {
    let mut s: String = key
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect();
    s.truncate(80);
    format!("{s}-{:08x}", Digest64::of(key.as_bytes()) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bench::json::parse;

    fn demo() -> Manifest {
        let text = r#"{
          "schema": "mptcp-manifest/v1",
          "id": "demo",
          "scale": "quick",
          "seeds": [1, 2],
          "scenarios": [
            { "name": "smoke", "grid": { "algorithm": ["lia", "olia"], "c1_over_c2": [0.8] } }
          ]
        }"#;
        Manifest::parse(&parse(text).unwrap()).unwrap()
    }

    #[test]
    fn expansion_is_deterministic_and_ordered() {
        let m = demo();
        let jobs = m.expand(None).unwrap();
        assert_eq!(jobs.len(), 4);
        let keys: Vec<&str> = jobs.iter().map(|j| j.key.as_str()).collect();
        assert_eq!(
            keys,
            [
                "smoke?algorithm=lia&c1_over_c2=0.8#seed=1",
                "smoke?algorithm=lia&c1_over_c2=0.8#seed=2",
                "smoke?algorithm=olia&c1_over_c2=0.8#seed=1",
                "smoke?algorithm=olia&c1_over_c2=0.8#seed=2",
            ]
        );
        assert_eq!(jobs[0].point_key, jobs[1].point_key);
        assert_ne!(jobs[0].seed, jobs[1].seed);
        // Same manifest, same derived seeds — and they differ under another
        // manifest id (the id salts the hash).
        let again = m.expand(None).unwrap();
        assert_eq!(jobs[0].seed, again[0].seed);
        let mut other = m.clone();
        other.id = "demo2".to_string();
        assert_ne!(jobs[0].seed, other.expand(None).unwrap()[0].seed);
    }

    #[test]
    fn default_grid_comes_from_the_registry() {
        let text = r#"{
          "schema": "mptcp-manifest/v1", "id": "d", "scale": "quick",
          "seeds": [7], "scenarios": [{ "name": "smoke" }]
        }"#;
        let m = Manifest::parse(&parse(text).unwrap()).unwrap();
        // smoke's default grid is 2 algorithms x 2 capacity ratios.
        assert_eq!(m.expand(None).unwrap().len(), 4);
        assert!(m.expand(Some("smoke")).is_ok());
        assert!(m.expand(Some("scenario_a")).is_err());
    }

    #[test]
    fn round_trips_through_json() {
        let m = demo();
        let again = Manifest::parse(&m.to_json()).unwrap();
        let a = m.expand(None).unwrap();
        let b = again.expand(None).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.seed, y.seed);
        }
    }

    #[test]
    fn rejects_malformed_manifests() {
        let cases = [
            (r#"{"id":"x"}"#, "schema"),
            (
                r#"{"schema":"mptcp-manifest/v1","id":"","scale":"quick","seeds":[1],"scenarios":[{"name":"smoke"}]}"#,
                "id",
            ),
            (
                r#"{"schema":"mptcp-manifest/v1","id":"x","scale":"slow","seeds":[1],"scenarios":[{"name":"smoke"}]}"#,
                "scale",
            ),
            (
                r#"{"schema":"mptcp-manifest/v1","id":"x","scale":"quick","seeds":[1,1],"scenarios":[{"name":"smoke"}]}"#,
                "distinct",
            ),
            (
                r#"{"schema":"mptcp-manifest/v1","id":"x","scale":"quick","seeds":[1],"scenarios":[{"name":"nope"}]}"#,
                "unknown scenario",
            ),
            (
                r#"{"schema":"mptcp-manifest/v1","id":"x","scale":"quick","seeds":[1],"scenarios":[{"name":"smoke","grid":{"seed":[1]}}]}"#,
                "reserved",
            ),
            (
                r#"{"schema":"mptcp-manifest/v1","id":"x","scale":"quick","seeds":[1],"scenarios":[{"name":"smoke","grid":{"n1":[]}}]}"#,
                "empty",
            ),
            (
                r#"{"schema":"mptcp-manifest/v1","id":"x","scale":"quick","seeds":[1],"scenarios":[{"name":"smoke","grid":{"backend":["hybrid"]}}]}"#,
                "backend",
            ),
            (
                r#"{"schema":"mptcp-manifest/v1","id":"x","scale":"quick","seeds":[1],"scenarios":[{"name":"smoke","grid":{"backend":[1]}}]}"#,
                "backend",
            ),
        ];
        for (text, needle) in cases {
            let err = Manifest::parse(&parse(text).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{needle:?} not in {err:?}");
        }
    }

    #[test]
    fn file_stems_are_safe_and_distinct() {
        let a = file_stem("smoke?algorithm=lia&c1_over_c2=0.8#seed=1");
        let b = file_stem("smoke?algorithm=lia&c1_over_c2=0.8#seed=2");
        assert_ne!(a, b);
        assert!(a
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'));
        // Long keys truncate but stay distinct via the hash suffix.
        let long1 = file_stem(&format!("x?p={}#seed=1", "y".repeat(200)));
        let long2 = file_stem(&format!("x?p={}#seed=2", "y".repeat(200)));
        assert_ne!(long1, long2);
        assert!(long1.len() < 100);
    }
}

//! `orchestra` — run a manifest's (scenario × parameters × seed) job grid
//! across a worker pool, deterministically.
//!
//! ```text
//! orchestra --manifest manifests/ci_quick.json --jobs 4
//! orchestra --resume ci_quick-quick          # skip journaled-done jobs
//! orchestra --list                           # registered scenarios
//! ```
//!
//! Exit status: `0` all jobs done, `1` at least one job failed (or an
//! orchestrator error), `2` usage error. Results land in
//! `<out-root>/<run-id>/` (see [`orchestra::rundir`]): per-job
//! `mptcp-run-report/v1` files, the append-only journal, and the
//! cross-seed `sweep.json` — all byte-identical for any `--jobs` value.

use std::path::PathBuf;
use std::time::Duration;

use orchestra::manifest::{Manifest, Scale};
use orchestra::rundir::RunDir;
use orchestra::{run, RunOpts};

const USAGE: &str = "\
usage: orchestra --manifest <file> [options]
       orchestra --resume <run-id> [options]
       orchestra --list

options:
  --jobs N        worker threads (default: available parallelism)
  --run-id ID     run directory name (default: <manifest-id>-<scale>)
  --out-root DIR  parent of run directories (default: results/orchestra)
  --filter NAME   only run jobs of one scenario
  --quick         force quick scale regardless of the manifest
  --timeout-s S   per-attempt wall-clock budget, seconds (default: 600)
  --retries N     retries after a failed attempt (default: 1)
  --no-digest     skip per-job trace digest capture
  --viz           render the sweep explorer HTML into the run directory
  --quiet         no per-job progress lines";

struct Cli {
    manifest: Option<PathBuf>,
    resume: Option<String>,
    list: bool,
    run_id: Option<String>,
    out_root: PathBuf,
    quick: bool,
    opts: RunOpts,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("orchestra: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        manifest: None,
        resume: None,
        list: false,
        run_id: None,
        out_root: PathBuf::from("results/orchestra"),
        quick: false,
        opts: RunOpts {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            verbose: true,
            ..RunOpts::default()
        },
    };
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next()
            .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--manifest" => cli.manifest = Some(PathBuf::from(value("--manifest", &mut args))),
            "--resume" => cli.resume = Some(value("--resume", &mut args)),
            "--list" => cli.list = true,
            "--run-id" => cli.run_id = Some(value("--run-id", &mut args)),
            "--out-root" => cli.out_root = PathBuf::from(value("--out-root", &mut args)),
            "--filter" => cli.opts.filter = Some(value("--filter", &mut args)),
            "--quick" => cli.quick = true,
            "--no-digest" => cli.opts.digest = false,
            "--viz" => cli.opts.viz = true,
            "--quiet" => cli.opts.verbose = false,
            "--jobs" => {
                cli.opts.workers = value("--jobs", &mut args)
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage_error("--jobs needs a positive integer"))
            }
            "--timeout-s" => {
                let s: f64 = value("--timeout-s", &mut args)
                    .parse()
                    .ok()
                    .filter(|&s| s > 0.0)
                    .unwrap_or_else(|| usage_error("--timeout-s needs a positive number"));
                cli.opts.timeout = Duration::from_secs_f64(s);
            }
            "--retries" => {
                cli.opts.retries = value("--retries", &mut args)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--retries needs a non-negative integer"))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    cli
}

fn list_scenarios() {
    println!("registered scenarios:");
    for def in orchestra::scenario_defs() {
        println!("  {:<22} {}", def.name, def.summary);
    }
}

/// Keep worker-job panics quiet: the pool catches them and records the
/// job as failed with the message; the default hook's stderr backtrace
/// would interleave with progress output.
fn silence_job_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if std::thread::current().name() == Some("orchestra-job") {
            return;
        }
        previous(info);
    }));
}

fn main() {
    let cli = parse_cli();
    if cli.list {
        list_scenarios();
        return;
    }

    let dir = match (&cli.manifest, &cli.resume) {
        (Some(_), Some(_)) => usage_error("--manifest and --resume are mutually exclusive"),
        (None, None) => usage_error("need --manifest, --resume, or --list"),
        (Some(path), None) => {
            let mut manifest = match Manifest::from_file(path) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("orchestra: {e}");
                    std::process::exit(1);
                }
            };
            if cli.quick {
                manifest.scale = Scale::Quick;
            }
            let run_id = cli
                .run_id
                .clone()
                .unwrap_or_else(|| format!("{}-{}", manifest.id, manifest.scale.name()));
            match RunDir::create(&cli.out_root, &run_id, &manifest) {
                Ok(dir) => dir,
                Err(e) => {
                    eprintln!("orchestra: {e}");
                    std::process::exit(1);
                }
            }
        }
        (None, Some(run_id)) => match RunDir::open(&cli.out_root, run_id) {
            Ok(dir) => dir,
            Err(e) => {
                eprintln!("orchestra: {e}");
                std::process::exit(1);
            }
        },
    };

    silence_job_panics();
    // simlint: allow(R1) orchestrator wall-clock summary is diagnostic only — nothing feeds back into reports
    let started = std::time::Instant::now();
    match run(&dir, &cli.opts) {
        Ok(summary) => {
            let elapsed = started.elapsed().as_secs_f64();
            let ran = summary.total - summary.skipped;
            eprintln!(
                "orchestra: {} job(s) — {} done ({} resumed from journal), {} failed \
                 — {ran} ran in {elapsed:.1}s on {} worker(s)",
                summary.total, summary.done, summary.skipped, summary.failed, cli.opts.workers,
            );
            for key in &summary.failed_jobs {
                eprintln!("orchestra: FAILED {key}");
            }
            eprintln!("orchestra: sweep report: {}", summary.sweep_path.display());
            if summary.failed > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("orchestra: {e}");
            std::process::exit(1);
        }
    }
}

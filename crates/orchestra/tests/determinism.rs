//! The orchestrator's core contract: worker count is invisible in the
//! results. The same manifest must produce byte-identical `sweep.json` and
//! per-job report files — including per-job trace digests — under
//! `--jobs 1`, `--jobs 4`, and `--jobs 8`.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use orchestra::manifest::Manifest;
use orchestra::rundir::RunDir;
use orchestra::{run, RunOpts};

fn out_root(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn manifest() -> Manifest {
    let text = r#"{
      "schema": "mptcp-manifest/v1",
      "id": "determinism",
      "scale": "quick",
      "seeds": [1, 2],
      "scenarios": [
        { "name": "smoke", "grid": { "algorithm": ["lia", "olia"], "c1_over_c2": [0.8] } }
      ]
    }"#;
    Manifest::parse(&bench::json::parse(text).unwrap()).unwrap()
}

/// Run the manifest with the given worker count; return the sweep bytes
/// and every per-job report keyed by file name.
fn run_with_workers(root: &Path, workers: usize) -> (Vec<u8>, BTreeMap<String, Vec<u8>>) {
    let dir = RunDir::create(root, &format!("w{workers}"), &manifest()).unwrap();
    let opts = RunOpts {
        workers,
        ..RunOpts::default()
    };
    let summary = run(&dir, &opts).unwrap();
    assert_eq!(summary.total, 4);
    assert_eq!(summary.failed, 0, "failed: {:?}", summary.failed_jobs);
    let sweep = fs::read(dir.root().join("sweep.json")).unwrap();
    let mut jobs = BTreeMap::new();
    for entry in fs::read_dir(dir.root().join("jobs")).unwrap() {
        let path = entry.unwrap().path();
        jobs.insert(
            path.file_name().unwrap().to_string_lossy().into_owned(),
            fs::read(&path).unwrap(),
        );
    }
    (sweep, jobs)
}

#[test]
fn worker_count_never_changes_report_bytes() {
    let root = out_root("worker_count");
    let (sweep1, jobs1) = run_with_workers(&root, 1);
    let (sweep4, jobs4) = run_with_workers(&root, 4);
    let (sweep8, jobs8) = run_with_workers(&root, 8);

    assert_eq!(sweep1, sweep4, "--jobs 4 changed sweep.json bytes");
    assert_eq!(sweep1, sweep8, "--jobs 8 changed sweep.json bytes");
    assert_eq!(jobs1.len(), 4);
    assert_eq!(jobs1, jobs4, "--jobs 4 changed per-job reports");
    assert_eq!(jobs1, jobs8, "--jobs 8 changed per-job reports");

    // The sweep validates, and every job carries a real trace digest — the
    // byte-identity above therefore covers the full event stream of every
    // simulation, not just the final metrics.
    let doc = bench::json::parse(std::str::from_utf8(&sweep1).unwrap()).unwrap();
    bench::report::validate_sweep(&doc).unwrap();
    let index = doc.get("job_index").unwrap().as_array().unwrap();
    assert_eq!(index.len(), 4);
    for entry in index {
        let digest = entry.get("digest").unwrap().as_str().unwrap();
        assert_eq!(digest.len(), 16, "digest {digest:?} not 16 hex chars");
        assert!(digest.chars().all(|c| c.is_ascii_hexdigit()));
    }
    // Distinct seeds produce distinct traces (the witness is not a
    // constant).
    let digests: std::collections::BTreeSet<&str> = index
        .iter()
        .map(|e| e.get("digest").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(digests.len(), 4, "all four jobs should trace differently");
}

#[test]
fn per_job_reports_validate_against_run_report_schema() {
    let root = out_root("job_schema");
    let (_, jobs) = run_with_workers(&root, 2);
    for (name, bytes) in &jobs {
        let doc = bench::json::parse(std::str::from_utf8(bytes).unwrap()).unwrap();
        bench::report::validate(&doc).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Wall-clock profile fields must be zeroed — any nonzero value
        // would leak scheduling into bytes that must stay deterministic.
        let profile = doc.get("profile").unwrap();
        assert_eq!(profile.get("wall_s").unwrap().as_f64(), Some(0.0));
        assert!(profile.get("events").unwrap().as_f64().unwrap() > 0.0);
        assert!(profile.get("sim_s").unwrap().as_f64().unwrap() > 0.0);
    }
}

//! Failure isolation through the full orchestrator path: a panicking or
//! hanging job is retried up to the bound, recorded `failed` in the
//! journal, job index, and exit accounting — and its siblings finish
//! normally with a sweep that still validates.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use bench::jobs::JobOutput;
use orchestra::manifest::Manifest;
use orchestra::pool::Runner;
use orchestra::rundir::RunDir;
use orchestra::{run, run_with, RunOpts};

fn out_root(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn manifest(id: &str) -> Manifest {
    let text = format!(
        r#"{{
          "schema": "mptcp-manifest/v1",
          "id": "{id}",
          "scale": "quick",
          "seeds": [1, 2],
          "scenarios": [
            {{ "name": "smoke", "grid": {{ "algorithm": ["lia", "olia"] }} }}
          ]
        }}"#
    );
    Manifest::parse(&bench::json::parse(&text).unwrap()).unwrap()
}

fn ok_output() -> JobOutput {
    JobOutput {
        metrics: BTreeMap::from([("m".to_string(), 1.0)]),
        digest: "0123456789abcdef".to_string(),
        trace_events: 1,
        events: 2,
        sim_s: 3.0,
    }
}

fn sweep(dir: &RunDir) -> bench::json::Json {
    let text = fs::read_to_string(dir.root().join("sweep.json")).unwrap();
    let doc = bench::json::parse(&text).unwrap();
    bench::report::validate_sweep(&doc).expect("sweep with failures must still validate");
    doc
}

fn index_entry<'a>(doc: &'a bench::json::Json, needle: &str) -> &'a bench::json::Json {
    doc.get("job_index")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .find(|e| e.get("job").unwrap().as_str().unwrap().contains(needle))
        .unwrap()
}

#[test]
fn panicking_job_is_retried_to_the_bound_then_recorded_failed() {
    let root = out_root("panic_isolation");
    let dir = RunDir::create(&root, "r", &manifest("panic")).unwrap();
    let runner: Runner = Arc::new(|job| {
        if job.key.contains("olia") && job.manifest_seed == 2 {
            panic!("injected failure");
        }
        ok_output()
    });
    let opts = RunOpts {
        workers: 2,
        retries: 2,
        ..RunOpts::default()
    };
    let summary = run_with(&dir, &opts, &runner).unwrap();
    assert_eq!(summary.total, 4);
    assert_eq!(summary.done, 3, "siblings must finish");
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.failed_jobs.len(), 1);
    assert!(summary.failed_jobs[0].contains("olia"));

    let doc = sweep(&dir);
    let failed = index_entry(&doc, "algorithm=olia#seed=2");
    assert_eq!(failed.get("status").unwrap().as_str(), Some("failed"));
    assert_eq!(
        failed.get("attempts").unwrap().as_f64(),
        Some(3.0),
        "retries=2 means exactly 3 attempts"
    );
    let error = failed.get("error").unwrap().as_str().unwrap();
    assert!(error.contains("panicked: injected failure"), "{error}");
    // The healthy sibling seed of the same point survived.
    let ok = index_entry(&doc, "algorithm=olia#seed=1");
    assert_eq!(ok.get("status").unwrap().as_str(), Some("done"));
}

#[test]
fn hanging_job_times_out_and_siblings_complete() {
    let root = out_root("timeout_isolation");
    let dir = RunDir::create(&root, "r", &manifest("hang")).unwrap();
    let runner: Runner = Arc::new(|job| {
        if job.key.contains("=lia#") {
            // lia jobs hang far past the timeout; the attempt thread is
            // abandoned and its result discarded.
            std::thread::sleep(Duration::from_secs(30));
        }
        ok_output()
    });
    let opts = RunOpts {
        workers: 2,
        retries: 1,
        timeout: Duration::from_millis(150),
        ..RunOpts::default()
    };
    let summary = run_with(&dir, &opts, &runner).unwrap();
    assert_eq!(summary.total, 4);
    assert_eq!(summary.done, 2);
    assert_eq!(summary.failed, 2, "both lia jobs hang");

    let doc = sweep(&dir);
    let failed = index_entry(&doc, "algorithm=lia#seed=1");
    assert_eq!(failed.get("status").unwrap().as_str(), Some("failed"));
    assert_eq!(failed.get("attempts").unwrap().as_f64(), Some(2.0));
    assert!(failed
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("timed out"));
    assert_eq!(
        index_entry(&doc, "algorithm=olia#seed=1")
            .get("status")
            .unwrap()
            .as_str(),
        Some("done")
    );
}

#[test]
fn bad_parameter_fails_through_the_real_registry_runner() {
    let root = out_root("registry_failure");
    let text = r#"{
      "schema": "mptcp-manifest/v1",
      "id": "badparam",
      "scale": "quick",
      "seeds": [1],
      "scenarios": [
        { "name": "smoke", "grid": { "algorithm": ["olia", "no-such-algorithm"] } }
      ]
    }"#;
    let m = Manifest::parse(&bench::json::parse(text).unwrap()).unwrap();
    let dir = RunDir::create(&root, "r", &m).unwrap();
    let opts = RunOpts {
        workers: 2,
        retries: 0,
        ..RunOpts::default()
    };
    let summary = run(&dir, &opts).unwrap();
    assert_eq!((summary.total, summary.done, summary.failed), (2, 1, 1));

    let doc = sweep(&dir);
    let failed = index_entry(&doc, "no-such-algorithm");
    assert_eq!(failed.get("attempts").unwrap().as_f64(), Some(1.0));
    let error = failed.get("error").unwrap().as_str().unwrap();
    assert!(error.contains("not a known algorithm"), "{error}");
    // And the failed point aggregates to zero completed seeds without
    // breaking the sweep schema.
    let points = doc.get("points").unwrap().as_array().unwrap();
    let bad_point = points
        .iter()
        .find(|p| {
            p.get("point")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("no-such")
        })
        .unwrap();
    assert!(bad_point
        .get("seeds")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());
    assert_eq!(
        bad_point
            .get("failed_seeds")
            .unwrap()
            .as_array()
            .unwrap()
            .len(),
        1
    );
}

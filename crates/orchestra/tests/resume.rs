//! Resume contract: a run interrupted after some jobs and resumed must end
//! with byte-identical artifacts to a run that was never interrupted, and
//! must actually skip the journaled-done jobs.

use std::fs;
use std::path::{Path, PathBuf};

use orchestra::manifest::Manifest;
use orchestra::rundir::RunDir;
use orchestra::{run, RunOpts};

fn out_root(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn manifest() -> Manifest {
    let text = r#"{
      "schema": "mptcp-manifest/v1",
      "id": "resume",
      "scale": "quick",
      "seeds": [1, 2],
      "scenarios": [
        { "name": "smoke", "grid": { "algorithm": ["lia", "olia"], "c1_over_c2": [1.2] } }
      ]
    }"#;
    Manifest::parse(&bench::json::parse(text).unwrap()).unwrap()
}

fn job_files(root: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(root.join("jobs"))
        .unwrap()
        .map(|e| {
            let path = e.unwrap().path();
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                fs::read(&path).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn interrupted_then_resumed_run_matches_uninterrupted() {
    let root = out_root("resume_matches");
    let opts = RunOpts {
        workers: 2,
        ..RunOpts::default()
    };

    // Reference: one uninterrupted run.
    let ref_dir = RunDir::create(&root, "uninterrupted", &manifest()).unwrap();
    let ref_summary = run(&ref_dir, &opts).unwrap();
    assert_eq!((ref_summary.total, ref_summary.failed), (4, 0));

    // Interrupted run: complete everything, then rewind the journal to its
    // first two lines and delete the downstream artifacts — exactly the
    // state a kill leaves behind (journal lines are appended+flushed as
    // each job finishes; sweep.json only exists after all of them).
    let dir = RunDir::create(&root, "interrupted", &manifest()).unwrap();
    run(&dir, &opts).unwrap();
    let journal_path = dir.root().join("journal.jsonl");
    let journal = fs::read_to_string(&journal_path).unwrap();
    let kept: Vec<&str> = journal.lines().take(2).collect();
    assert_eq!(kept.len(), 2, "expected >= 2 journal lines");
    fs::write(&journal_path, kept.join("\n") + "\n").unwrap();
    fs::remove_file(dir.root().join("sweep.json")).unwrap();

    // Resume through a freshly opened handle (as the CLI's --resume does).
    let resumed = RunDir::open(&root, "interrupted").unwrap();
    let summary = run(&resumed, &opts).unwrap();
    assert_eq!(summary.total, 4);
    assert_eq!(summary.skipped, 2, "two journaled jobs must be skipped");
    assert_eq!(summary.failed, 0);

    assert_eq!(
        fs::read(ref_dir.root().join("sweep.json")).unwrap(),
        fs::read(dir.root().join("sweep.json")).unwrap(),
        "resumed sweep.json differs from uninterrupted run"
    );
    assert_eq!(
        job_files(ref_dir.root()),
        job_files(dir.root()),
        "resumed per-job reports differ from uninterrupted run"
    );
}

#[test]
fn fully_complete_run_resumes_as_a_no_op() {
    let root = out_root("resume_noop");
    let opts = RunOpts::default();
    let dir = RunDir::create(&root, "r", &manifest()).unwrap();
    run(&dir, &opts).unwrap();
    let sweep_before = fs::read(dir.root().join("sweep.json")).unwrap();

    let summary = run(&RunDir::open(&root, "r").unwrap(), &opts).unwrap();
    assert_eq!(summary.skipped, 4, "everything was already done");
    assert_eq!(summary.failed, 0);
    assert_eq!(
        sweep_before,
        fs::read(dir.root().join("sweep.json")).unwrap()
    );
}

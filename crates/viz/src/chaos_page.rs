//! Chaos-repro pages: a `ChaosCase` file (plus its recorded trace, when
//! present) rendered as a fault-plan schedule and a full timeline.
//!
//! The case file is plain JSON (`chaos::ChaosCase::to_json`); this module
//! reads it structurally so the dependency order stays `chaos → viz`, not
//! the other way around. Clause time windows mirror `chaos::Clause::end_s`
//! exactly — the acceptance test in `tests/viz_timeline.rs` holds the two
//! implementations together by comparing rendered windows against the
//! lowered `FaultPlan`.

use std::fmt::Write as _;

use bench::json::Json;

use crate::page::page;
use crate::render::{meta_line, timeline_body};
use crate::svg::{esc, fmt2, Svg};
use crate::timeline::Timeline;

/// One clause projected onto the time axis.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseWindow {
    /// Clause kind label (`outage`, `blackout`, ...).
    pub kind: String,
    /// Affected path index; `None` means both paths (blackout).
    pub path: Option<u8>,
    /// Window start, nanoseconds.
    pub from_ns: u64,
    /// Window end, nanoseconds (`== from_ns` for instant steps).
    pub to_ns: u64,
}

fn ns(s: f64) -> u64 {
    (s * 1e9).round() as u64
}

fn f(clause: &Json, key: &str) -> Result<f64, String> {
    clause
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("clause field {key:?} missing or not a number"))
}

/// Project every clause of a case document onto the time axis. Mirrors
/// `chaos::Clause::end_s`.
pub fn clause_windows(case: &Json) -> Result<Vec<ClauseWindow>, String> {
    let clauses = case
        .get("clauses")
        .and_then(Json::as_array)
        .ok_or("case has no clauses array")?;
    let mut out = Vec::with_capacity(clauses.len());
    for c in clauses {
        let kind = c
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("clause without kind")?;
        let path = || -> Result<u8, String> { Ok(f(c, "path")? as u8) };
        let w = match kind {
            "outage" | "loss_burst" => ClauseWindow {
                kind: kind.to_string(),
                path: Some(path()?),
                from_ns: ns(f(c, "from_s")?),
                to_ns: ns(f(c, "from_s")? + f(c, "dur_s")?),
            },
            "blackout" => ClauseWindow {
                kind: kind.to_string(),
                path: None,
                from_ns: ns(f(c, "from_s")?),
                to_ns: ns(f(c, "from_s")? + f(c, "dur_s")?),
            },
            "flap" => {
                let cycle = f(c, "down_s")? + f(c, "up_s")?;
                ClauseWindow {
                    kind: kind.to_string(),
                    path: Some(path()?),
                    from_ns: ns(f(c, "from_s")?),
                    to_ns: ns(f(c, "from_s")? + cycle * f(c, "cycles")?),
                }
            }
            "rate_step" | "latency_step" => ClauseWindow {
                kind: kind.to_string(),
                path: Some(path()?),
                from_ns: ns(f(c, "at_s")?),
                to_ns: ns(f(c, "at_s")?),
            },
            "handover" => ClauseWindow {
                kind: kind.to_string(),
                path: Some(path()?),
                from_ns: ns(f(c, "at_s")?),
                to_ns: ns(f(c, "at_s")? + 2.0 * f(c, "dur_s")?),
            },
            other => return Err(format!("unknown clause kind {other:?}")),
        };
        out.push(w);
    }
    Ok(out)
}

/// The fault-plan schedule chart: one lane per path, clause windows shaded
/// with machine-checkable `data-*` attributes.
fn plan_svg(windows: &[ClauseWindow], horizon_ns: u64) -> String {
    const LEFT: f64 = 60.0;
    const PLOT_W: f64 = 888.0;
    const LANE_H: f64 = 26.0;
    let h = 2.0 * LANE_H + 24.0;
    let mut svg = Svg::new(960.0, h, "chart");
    let span = horizon_ns.max(1) as f64;
    let x = |t: u64| LEFT + t as f64 / span * PLOT_W;
    for p in 0..2u8 {
        let top = p as f64 * LANE_H + 4.0;
        svg.text(2.0, top + 14.0, "lane-title", &format!("path {p}"));
        svg.line(
            LEFT,
            top + LANE_H - 6.0,
            LEFT + PLOT_W,
            top + LANE_H - 6.0,
            "axis",
            "",
        );
        for w in windows {
            if w.path.is_some() && w.path != Some(p) {
                continue;
            }
            let attrs =
                format!(
                "data-clause-kind=\"{}\" data-path=\"{}\" data-from-ns=\"{}\" data-to-ns=\"{}\"",
                esc(&w.kind),
                w.path.map(|p| p.to_string()).unwrap_or_else(|| "both".to_string()),
                w.from_ns,
                w.to_ns
            );
            let class = format!("clause-{}", w.kind);
            if w.from_ns == w.to_ns {
                svg.rect(x(w.from_ns) - 1.0, top, 2.0, LANE_H - 8.0, &class, &attrs);
            } else {
                svg.rect(
                    x(w.from_ns),
                    top,
                    x(w.to_ns) - x(w.from_ns),
                    LANE_H - 8.0,
                    &class,
                    &attrs,
                );
            }
        }
    }
    for i in 0..=5u64 {
        let t = horizon_ns.max(1) * i / 5;
        svg.text(
            x(t) - 10.0,
            h - 8.0,
            "tick",
            &format!("{}s", fmt2(t as f64 / 1e9)),
        );
    }
    svg.finish()
}

/// Render a chaos repro page: the case summary, the clause schedule, and —
/// when the recorded trace is provided — the full timeline below it.
pub fn render_chaos_html(
    title: &str,
    case: &Json,
    trace_jsonl: Option<&str>,
) -> Result<String, String> {
    let windows = clause_windows(case)?;
    let horizon_s = case
        .get("horizon_s")
        .and_then(Json::as_f64)
        .ok_or("case has no horizon_s")?;
    let mut body = String::new();
    let _ = writeln!(body, "<h1>{}</h1>", esc(title));

    let g = |k: &str| {
        case.get(k)
            .map(|v| match v {
                Json::String(s) => s.clone(),
                other => other.render(),
            })
            .unwrap_or_default()
    };
    let seed = {
        let hex = g("seed_hex");
        if hex.is_empty() {
            g("seed")
        } else {
            hex
        }
    };
    let _ = writeln!(
        body,
        "<p class=\"meta\">seed {} &middot; algorithm {} &middot; rates {} Mb/s &middot; delays {} ms &middot; horizon {} s &middot; {} clause(s)</p>",
        esc(&seed),
        esc(&g("algorithm")),
        esc(&g("rate_mbps")),
        esc(&g("delay_ms")),
        fmt2(horizon_s),
        windows.len()
    );

    body.push_str("<h2>fault schedule</h2>\n");
    body.push_str(&plan_svg(&windows, ns(horizon_s)));
    body.push_str("<table><tr><th class=\"l\">kind</th><th class=\"l\">path</th><th>from (s)</th><th>to (s)</th></tr>\n");
    for w in &windows {
        let _ = writeln!(
            body,
            "<tr><td class=\"l\">{}</td><td class=\"l\">{}</td><td>{}</td><td>{}</td></tr>",
            esc(&w.kind),
            w.path
                .map(|p| p.to_string())
                .unwrap_or_else(|| "both".to_string()),
            fmt2(w.from_ns as f64 / 1e9),
            fmt2(w.to_ns as f64 / 1e9)
        );
    }
    body.push_str("</table>\n");

    match trace_jsonl {
        Some(text) => {
            let tl = Timeline::from_jsonl(text).map_err(|e| e.to_string())?;
            body.push_str("<h2>recorded timeline</h2>\n");
            body.push_str(&meta_line(&tl));
            body.push_str(&timeline_body(&tl));
        }
        None => {
            body.push_str(
                "<p class=\"meta\">no recorded trace alongside this case; \
                 replay it with the chaos CLI to produce one</p>\n",
            );
        }
    }
    Ok(page(title, &body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bench::json::parse;

    fn case_doc() -> Json {
        parse(
            r#"{
  "seed_hex": "0000000000000007", "algorithm": "lia",
  "rate_mbps": [8.0, 6.0], "delay_ms": [40.0, 20.0], "horizon_s": 30.0,
  "clauses": [
    {"kind": "outage", "path": 0, "from_s": 4.0, "dur_s": 18.0},
    {"kind": "rate_step", "path": 1, "at_s": 10.0, "rate_mbps": 2.0},
    {"kind": "blackout", "from_s": 25.0, "dur_s": 2.0}
  ]
}"#,
        )
        .unwrap()
    }

    #[test]
    fn clause_windows_mirror_clause_semantics() {
        let w = clause_windows(&case_doc()).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(
            w[0],
            ClauseWindow {
                kind: "outage".to_string(),
                path: Some(0),
                from_ns: 4_000_000_000,
                to_ns: 22_000_000_000,
            }
        );
        assert_eq!(w[1].from_ns, w[1].to_ns, "steps are instants");
        assert_eq!(w[2].path, None, "blackout affects both paths");
    }

    #[test]
    fn page_exposes_clause_windows_as_data_attributes() {
        let html = render_chaos_html("repro", &case_doc(), None).unwrap();
        assert!(html.contains(
            "data-clause-kind=\"outage\" data-path=\"0\" data-from-ns=\"4000000000\" data-to-ns=\"22000000000\""
        ));
        assert!(html.contains("data-path=\"both\""));
        assert!(html.contains("no recorded trace"));
    }

    #[test]
    fn page_embeds_a_trace_timeline_when_given_one() {
        let jsonl = "{\"t_ns\":4000000000,\"ev\":\"fault\",\"queue\":0,\"action\":\"link_down\"}\n\
                     {\"t_ns\":22000000000,\"ev\":\"fault\",\"queue\":0,\"action\":\"link_up\"}\n";
        let html = render_chaos_html("repro", &case_doc(), Some(jsonl)).unwrap();
        assert!(html.contains("recorded timeline"));
        assert!(html.contains(
            "data-action=\"link_down\" data-from-ns=\"4000000000\" data-to-ns=\"22000000000\""
        ));
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_chaos_html("r", &case_doc(), None).unwrap();
        let b = render_chaos_html("r", &case_doc(), None).unwrap();
        assert_eq!(a, b);
    }
}

//! `viz` — render workspace artifacts into self-contained HTML.
//!
//! Subcommands:
//!
//! - `viz trace <events.jsonl> [--out FILE]` — timeline page from a trace
//!   JSONL stream (full runs or flight-recorder tails).
//! - `viz sweep <run-dir> [--jobs N] [--out-dir DIR]` — explorer pages
//!   from an orchestra run directory containing `sweep.json`.
//! - `viz chaos <repro.json> [--out FILE]` — fault-plan schedule from a
//!   chaos repro case; embeds `<stem>.trace.jsonl` when present.
//!
//! Output defaults next to the input (`<stem>.html`, or `<run-dir>/` for
//! sweeps). Exit code 0 on success, 2 on usage or input errors.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use viz::timeline::Timeline;

const USAGE: &str = "usage:
  viz trace <events.jsonl> [--out FILE]
  viz sweep <run-dir> [--jobs N] [--out-dir DIR]
  viz chaos <repro.json> [--out FILE]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("trace") => cmd_trace(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("viz: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Split `args` into one required positional plus the value of `flag`.
fn positional_and_flag(args: &[String], flag: &str) -> Result<(PathBuf, Option<String>), String> {
    let mut input = None;
    let mut value = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            value = Some(
                it.next()
                    .ok_or_else(|| format!("{flag} requires a value"))?
                    .clone(),
            );
        } else if a.starts_with("--") {
            return Err(format!("unknown flag {a}\n{USAGE}"));
        } else if input.is_none() {
            input = Some(PathBuf::from(a));
        } else {
            return Err(format!("unexpected argument {a}\n{USAGE}"));
        }
    }
    Ok((
        input.ok_or_else(|| format!("missing input path\n{USAGE}"))?,
        value,
    ))
}

fn default_out(input: &Path) -> PathBuf {
    input.with_extension("html")
}

fn write_page(path: &Path, html: &str) -> Result<(), String> {
    std::fs::write(path, html).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (input, out) = positional_and_flag(args, "--out")?;
    let text = std::fs::read_to_string(&input)
        .map_err(|e| format!("cannot read {}: {e}", input.display()))?;
    let tl = Timeline::from_jsonl(&text).map_err(|e| format!("{}: {e}", input.display()))?;
    let title = input
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".to_string());
    let html = viz::render_timeline_html(&title, &tl);
    let out = out
        .map(PathBuf::from)
        .unwrap_or_else(|| default_out(&input));
    write_page(&out, &html)
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let mut run_dir = None;
    let mut out_dir = None;
    let mut jobs = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = it
                    .next()
                    .ok_or("--jobs requires a value")?
                    .parse()
                    .map_err(|_| "--jobs requires an integer".to_string())?;
            }
            "--out-dir" => {
                out_dir = Some(PathBuf::from(
                    it.next().ok_or("--out-dir requires a value")?,
                ));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n{USAGE}"));
            }
            other => {
                if run_dir.is_some() {
                    return Err(format!("unexpected argument {other}\n{USAGE}"));
                }
                run_dir = Some(PathBuf::from(other));
            }
        }
    }
    let run_dir = run_dir.ok_or_else(|| format!("missing run directory\n{USAGE}"))?;
    let out_dir = out_dir.unwrap_or_else(|| run_dir.clone());
    let pages = viz::render_run_dir(&run_dir, jobs)?;
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    for (name, html) in &pages {
        write_page(&out_dir.join(name), html)?;
    }
    Ok(())
}

fn cmd_chaos(args: &[String]) -> Result<(), String> {
    let (input, out) = positional_and_flag(args, "--out")?;
    let text = std::fs::read_to_string(&input)
        .map_err(|e| format!("cannot read {}: {e}", input.display()))?;
    let case =
        bench::json::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", input.display()))?;
    // The chaos runner writes the recorded trace alongside the case file.
    let trace_path = input.with_extension("trace.jsonl");
    let trace_text = std::fs::read_to_string(&trace_path).ok();
    let title = input
        .file_stem()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "chaos repro".to_string());
    let html = viz::render_chaos_html(&title, &case, trace_text.as_deref())?;
    let out = out
        .map(PathBuf::from)
        .unwrap_or_else(|| default_out(&input));
    write_page(&out, &html)
}

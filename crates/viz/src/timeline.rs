//! From a JSONL trace to a lane-structured timeline model.
//!
//! The model is what the renderer draws: per-(connection, subflow) cwnd /
//! RTT / state-band / event-mark lanes, per-queue occupancy and drop lanes,
//! and fault windows reconstructed from `Fault` events (`link_down` opens a
//! window, `link_up` closes it; other actions are instants). Building the
//! model is a pure left-fold over the event stream, so identical traces —
//! including flight-recorder *tails* that start mid-run — model
//! identically.

use std::collections::BTreeMap;

use trace::{DropReason, SubflowState, TraceEvent};

/// An RTO / fast-retransmit / re-probe instant on a subflow lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkKind {
    /// A retransmission timeout fired.
    Rto,
    /// Fast retransmit entered recovery.
    FastRetransmit,
    /// A re-probe of a failed subflow.
    Probe,
}

impl MarkKind {
    /// Stable label used in CSS classes and `data-mark` attributes.
    pub fn label(self) -> &'static str {
        match self {
            MarkKind::Rto => "rto",
            MarkKind::FastRetransmit => "fast_retransmit",
            MarkKind::Probe => "probe",
        }
    }
}

/// One contiguous interval a subflow spent in one path-manager state.
#[derive(Debug, Clone, Copy)]
pub struct StateBand {
    /// Interval start, nanoseconds.
    pub from_ns: u64,
    /// Interval end, nanoseconds.
    pub to_ns: u64,
    /// The classification throughout the interval.
    pub state: SubflowState,
}

/// Everything one (connection, subflow) pair contributes to the timeline.
#[derive(Debug, Clone, Default)]
pub struct SubflowLane {
    /// Connection tag.
    pub conn: u64,
    /// Subflow index within the connection.
    pub subflow: u16,
    /// `(t_ns, cwnd, ssthresh)` samples, in time order.
    pub cwnd: Vec<(u64, f64, f64)>,
    /// `(t_ns, rtt_ns, srtt_ns)` samples, in time order.
    pub rtt: Vec<(u64, u64, u64)>,
    /// Path-manager state intervals covering the whole span.
    pub states: Vec<StateBand>,
    /// RTO / fast-retransmit / probe instants.
    pub marks: Vec<(u64, MarkKind)>,
}

/// A shaded fault interval (or instant, when `from_ns == to_ns`) on a queue.
#[derive(Debug, Clone)]
pub struct FaultWindow {
    /// The queue the fault action targeted.
    pub queue: u32,
    /// The fault-plan action label (`link_down`, `set_rate`, ...).
    pub action: &'static str,
    /// Window start, nanoseconds.
    pub from_ns: u64,
    /// Window end, nanoseconds (`== from_ns` for instant actions).
    pub to_ns: u64,
}

/// Everything one queue contributes to the timeline.
#[derive(Debug, Clone, Default)]
pub struct QueueLane {
    /// Queue index.
    pub queue: u32,
    /// `(t_ns, occupancy-in-packets)` staircase from enqueue/dequeue events.
    pub occupancy: Vec<(u64, u32)>,
    /// Drop instants with their reasons.
    pub drops: Vec<(u64, DropReason)>,
    /// Fault windows targeting this queue.
    pub faults: Vec<FaultWindow>,
}

/// The full lane-structured model of one trace.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Earliest event time (nonzero for flight-recorder tails).
    pub t_min_ns: u64,
    /// Latest event time.
    pub t_max_ns: u64,
    /// Events folded in.
    pub events: u64,
    /// Subflow lanes, ordered by (conn, subflow).
    pub subflows: Vec<SubflowLane>,
    /// Queue lanes, ordered by queue index.
    pub queues: Vec<QueueLane>,
}

/// Per-subflow fold state not visible in the finished lane.
#[derive(Debug, Clone, Copy)]
struct OpenBand {
    since_ns: u64,
    state: SubflowState,
}

impl Timeline {
    /// Fold a parsed event stream (time order, as all sinks emit) into the
    /// lane model. `span` covers every event; open state bands and fault
    /// windows are closed at the last event's time.
    pub fn from_events<'a, I>(events: I) -> Timeline
    where
        I: IntoIterator<Item = &'a (eventsim::SimTime, TraceEvent)>,
    {
        let mut sf: BTreeMap<(u64, u16), (SubflowLane, Option<OpenBand>)> = BTreeMap::new();
        let mut qs: BTreeMap<u32, (QueueLane, Option<u64>)> = BTreeMap::new();
        let mut t_min = u64::MAX;
        let mut t_max = 0u64;
        let mut count = 0u64;

        for (t, ev) in events {
            let t_ns = t.as_nanos();
            t_min = t_min.min(t_ns);
            t_max = t_max.max(t_ns);
            count += 1;
            match ev {
                TraceEvent::Enqueue { queue, qlen, .. } => {
                    let (q, _) = queue_entry(&mut qs, *queue);
                    q.occupancy.push((t_ns, *qlen));
                }
                TraceEvent::Dequeue { queue, qlen, .. } => {
                    let (q, _) = queue_entry(&mut qs, *queue);
                    q.occupancy.push((t_ns, *qlen));
                }
                TraceEvent::Drop { queue, reason, .. } => {
                    let (q, _) = queue_entry(&mut qs, *queue);
                    q.drops.push((t_ns, *reason));
                }
                TraceEvent::Deliver { .. } => {}
                TraceEvent::Cwnd {
                    conn,
                    subflow,
                    cwnd,
                    ssthresh,
                    ..
                } => {
                    let (l, _) = subflow_entry(&mut sf, *conn, *subflow);
                    l.cwnd.push((t_ns, *cwnd, *ssthresh));
                }
                TraceEvent::RttSample {
                    conn,
                    subflow,
                    rtt_ns,
                    srtt_ns,
                } => {
                    let (l, _) = subflow_entry(&mut sf, *conn, *subflow);
                    l.rtt.push((t_ns, *rtt_ns, *srtt_ns));
                }
                TraceEvent::RtoFire { conn, subflow, .. } => {
                    let (l, _) = subflow_entry(&mut sf, *conn, *subflow);
                    l.marks.push((t_ns, MarkKind::Rto));
                }
                TraceEvent::FastRetransmit { conn, subflow, .. } => {
                    let (l, _) = subflow_entry(&mut sf, *conn, *subflow);
                    l.marks.push((t_ns, MarkKind::FastRetransmit));
                }
                TraceEvent::SubflowState {
                    conn,
                    subflow,
                    from,
                    to,
                } => {
                    let (l, open) = subflow_entry(&mut sf, *conn, *subflow);
                    // Close the elapsed interval using the event's own
                    // `from` state: correct even when the stream is a tail
                    // that missed the transition *into* that state.
                    let since = open.map(|o| o.since_ns).unwrap_or(u64::MAX);
                    l.states.push(StateBand {
                        from_ns: since, // patched to t_min in finish()
                        to_ns: t_ns,
                        state: *from,
                    });
                    *open = Some(OpenBand {
                        since_ns: t_ns,
                        state: *to,
                    });
                }
                TraceEvent::Probe { conn, subflow, .. } => {
                    let (l, _) = subflow_entry(&mut sf, *conn, *subflow);
                    l.marks.push((t_ns, MarkKind::Probe));
                }
                TraceEvent::Fault { queue, action } => {
                    let (q, open_down) = queue_entry(&mut qs, *queue);
                    match *action {
                        "link_down" => {
                            if open_down.is_none() {
                                *open_down = Some(t_ns);
                            }
                        }
                        "link_up" => {
                            let from = open_down.take().unwrap_or(u64::MAX);
                            q.faults.push(FaultWindow {
                                queue: *queue,
                                action: "link_down",
                                from_ns: from, // patched to t_min in finish()
                                to_ns: t_ns,
                            });
                        }
                        other => q.faults.push(FaultWindow {
                            queue: *queue,
                            action: other,
                            from_ns: t_ns,
                            to_ns: t_ns,
                        }),
                    }
                }
            }
        }

        if count == 0 {
            return Timeline::default();
        }

        let mut subflows: Vec<SubflowLane> = Vec::with_capacity(sf.len());
        for ((_, _), (mut l, open)) in sf {
            for b in &mut l.states {
                if b.from_ns == u64::MAX {
                    b.from_ns = t_min;
                }
            }
            match open {
                Some(o) => l.states.push(StateBand {
                    from_ns: o.since_ns,
                    to_ns: t_max,
                    state: o.state,
                }),
                // No transition ever observed: the whole span is one band
                // in the default (Active) state, provided the lane saw any
                // transport activity at all.
                None => {
                    if !(l.cwnd.is_empty() && l.rtt.is_empty() && l.marks.is_empty()) {
                        l.states.push(StateBand {
                            from_ns: t_min,
                            to_ns: t_max,
                            state: SubflowState::Active,
                        });
                    }
                }
            }
            subflows.push(l);
        }

        let mut queues: Vec<QueueLane> = Vec::with_capacity(qs.len());
        for (_, (mut q, open_down)) in qs {
            for w in &mut q.faults {
                if w.from_ns == u64::MAX {
                    w.from_ns = t_min;
                }
            }
            if let Some(from) = open_down {
                q.faults.push(FaultWindow {
                    queue: q.queue,
                    action: "link_down",
                    from_ns: from,
                    to_ns: t_max,
                });
            }
            q.faults
                .sort_by(|a, b| a.from_ns.cmp(&b.from_ns).then(a.to_ns.cmp(&b.to_ns)));
            queues.push(q);
        }

        Timeline {
            t_min_ns: t_min,
            t_max_ns: t_max,
            events: count,
            subflows,
            queues,
        }
    }

    /// Parse JSONL text (one event per line, as any sink writes) and fold
    /// it. Blank lines are skipped; a malformed line is an error.
    pub fn from_jsonl(text: &str) -> Result<Timeline, trace::ParseError> {
        let mut events = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(TraceEvent::from_jsonl(line)?);
        }
        Ok(Timeline::from_events(events.iter()))
    }

    /// Every fault window across all queues, in (from, to, queue) order —
    /// what the renderer shades behind subflow lanes.
    pub fn all_fault_windows(&self) -> Vec<&FaultWindow> {
        let mut all: Vec<&FaultWindow> = self.queues.iter().flat_map(|q| q.faults.iter()).collect();
        all.sort_by(|a, b| {
            a.from_ns
                .cmp(&b.from_ns)
                .then(a.to_ns.cmp(&b.to_ns))
                .then(a.queue.cmp(&b.queue))
        });
        all
    }

    /// The modeled span in nanoseconds (≥ 1 to keep scales well-defined).
    pub fn span_ns(&self) -> u64 {
        (self.t_max_ns - self.t_min_ns).max(1)
    }
}

fn subflow_entry(
    sf: &mut BTreeMap<(u64, u16), (SubflowLane, Option<OpenBand>)>,
    conn: u64,
    subflow: u16,
) -> &mut (SubflowLane, Option<OpenBand>) {
    sf.entry((conn, subflow)).or_insert_with(|| {
        (
            SubflowLane {
                conn,
                subflow,
                ..SubflowLane::default()
            },
            None,
        )
    })
}

fn queue_entry(
    qs: &mut BTreeMap<u32, (QueueLane, Option<u64>)>,
    queue: u32,
) -> &mut (QueueLane, Option<u64>) {
    qs.entry(queue).or_insert_with(|| {
        (
            QueueLane {
                queue,
                ..QueueLane::default()
            },
            None,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventsim::SimTime;
    use trace::{CwndReason, PacketKindLabel};

    fn ev(t: u64, e: TraceEvent) -> (SimTime, TraceEvent) {
        (SimTime::from_nanos(t), e)
    }

    #[test]
    fn fault_windows_pair_down_and_up() {
        let events = [
            ev(
                10,
                TraceEvent::Fault {
                    queue: 0,
                    action: "link_down",
                },
            ),
            ev(
                50,
                TraceEvent::Fault {
                    queue: 0,
                    action: "link_up",
                },
            ),
            ev(
                70,
                TraceEvent::Fault {
                    queue: 1,
                    action: "set_rate",
                },
            ),
            ev(
                80,
                TraceEvent::Fault {
                    queue: 1,
                    action: "link_down",
                },
            ),
        ];
        let tl = Timeline::from_events(events.iter());
        assert_eq!(tl.queues.len(), 2);
        let q0 = &tl.queues[0];
        assert_eq!(q0.faults.len(), 1);
        assert_eq!((q0.faults[0].from_ns, q0.faults[0].to_ns), (10, 50));
        assert_eq!(q0.faults[0].action, "link_down");
        let q1 = &tl.queues[1];
        assert_eq!(q1.faults.len(), 2);
        assert_eq!(q1.faults[0].action, "set_rate");
        assert_eq!(q1.faults[0].from_ns, q1.faults[0].to_ns);
        // Unclosed down-window extends to the end of the trace.
        assert_eq!((q1.faults[1].from_ns, q1.faults[1].to_ns), (80, 80));
    }

    #[test]
    fn state_bands_cover_the_span() {
        let events = [
            ev(
                0,
                TraceEvent::Cwnd {
                    conn: 1,
                    subflow: 0,
                    cwnd: 1.0,
                    ssthresh: 100.0,
                    reason: CwndReason::Ack,
                },
            ),
            ev(
                100,
                TraceEvent::SubflowState {
                    conn: 1,
                    subflow: 0,
                    from: SubflowState::Active,
                    to: SubflowState::Failed,
                },
            ),
            ev(
                200,
                TraceEvent::SubflowState {
                    conn: 1,
                    subflow: 0,
                    from: SubflowState::Failed,
                    to: SubflowState::Active,
                },
            ),
            ev(
                300,
                TraceEvent::Deliver {
                    conn: 1,
                    subflow: 0,
                    newly: 1,
                    total: 1,
                },
            ),
        ];
        let tl = Timeline::from_events(events.iter());
        let lane = &tl.subflows[0];
        let bands: Vec<(u64, u64, SubflowState)> = lane
            .states
            .iter()
            .map(|b| (b.from_ns, b.to_ns, b.state))
            .collect();
        assert_eq!(
            bands,
            vec![
                (0, 100, SubflowState::Active),
                (100, 200, SubflowState::Failed),
                (200, 300, SubflowState::Active),
            ]
        );
    }

    #[test]
    fn tail_streams_anchor_bands_at_first_event() {
        // A flight-recorder tail that starts mid-run, after the transition
        // into Failed was evicted: the band still starts at t_min.
        let events = [
            ev(
                1_000,
                TraceEvent::Probe {
                    conn: 0,
                    subflow: 1,
                    seq: 5,
                    next_interval_ns: 100,
                },
            ),
            ev(
                2_000,
                TraceEvent::SubflowState {
                    conn: 0,
                    subflow: 1,
                    from: SubflowState::Failed,
                    to: SubflowState::Active,
                },
            ),
        ];
        let tl = Timeline::from_events(events.iter());
        assert_eq!(tl.t_min_ns, 1_000);
        let lane = &tl.subflows[0];
        assert_eq!(lane.states[0].from_ns, 1_000);
        assert_eq!(lane.states[0].to_ns, 2_000);
        assert_eq!(lane.states[0].state, SubflowState::Failed);
    }

    #[test]
    fn occupancy_staircase_uses_qlen_from_both_directions() {
        let enq = |t, qlen| {
            ev(
                t,
                TraceEvent::Enqueue {
                    queue: 2,
                    conn: 0,
                    subflow: 0,
                    kind: PacketKindLabel::Data,
                    seq: 0,
                    size: 1500,
                    qlen,
                },
            )
        };
        let deq = |t, qlen| {
            ev(
                t,
                TraceEvent::Dequeue {
                    queue: 2,
                    conn: 0,
                    subflow: 0,
                    kind: PacketKindLabel::Data,
                    seq: 0,
                    size: 1500,
                    qlen,
                },
            )
        };
        let events = [enq(0, 1), enq(5, 2), deq(10, 1), deq(20, 0)];
        let tl = Timeline::from_events(events.iter());
        assert_eq!(
            tl.queues[0].occupancy,
            vec![(0, 1), (5, 2), (10, 1), (20, 0)]
        );
    }

    #[test]
    fn jsonl_round_trip_builds_the_same_model_shape() {
        let text = "\
{\"t_ns\":0,\"ev\":\"cwnd\",\"conn\":1,\"subflow\":0,\"cwnd\":1,\"ssthresh\":100,\"reason\":\"ack\"}\n\
{\"t_ns\":10,\"ev\":\"rtt_sample\",\"conn\":1,\"subflow\":0,\"rtt_ns\":5,\"srtt_ns\":5}\n";
        let tl = Timeline::from_jsonl(text).unwrap();
        assert_eq!(tl.events, 2);
        assert_eq!(tl.subflows.len(), 1);
        assert_eq!(tl.subflows[0].rtt, vec![(10, 5, 5)]);
        assert!(Timeline::from_jsonl("garbage\n").is_err());
    }
}

//! Timeline → self-contained HTML.
//!
//! One section per subflow (state band, cwnd/ssthresh chart with event
//! marks, RTT chart) and per queue (occupancy staircase with drop markers),
//! every chart shaded with the fault windows reconstructed from the trace.
//! Machine-checkable `data-*` attributes ride on the state-band and
//! fault-window rects so tests can assert that what is drawn matches the
//! `FaultPlan` that produced the trace — the rendering is evidence, not
//! just decoration.

use std::fmt::Write as _;

use crate::page::page;
use crate::svg::{esc, fmt2, line_path, step_path, Scale, Svg};
use crate::timeline::{FaultWindow, QueueLane, SubflowLane, Timeline};

const W: f64 = 960.0;
const LEFT: f64 = 60.0;
const RIGHT: f64 = 12.0;
const PLOT_W: f64 = W - LEFT - RIGHT;
/// Cap on discrete markers (RTT dots, drop dots) per chart; above it every
/// k-th marker is kept (deterministically) to bound page size.
const MARKER_CAP: usize = 4000;

/// Render a complete standalone timeline page.
pub fn render_timeline_html(title: &str, tl: &Timeline) -> String {
    let mut body = String::new();
    let _ = writeln!(body, "<h1>{}</h1>", esc(title));
    body.push_str(&meta_line(tl));
    body.push_str(&timeline_body(tl));
    page(title, &body)
}

/// The summary line under a timeline's heading.
pub fn meta_line(tl: &Timeline) -> String {
    let span_s = tl.span_ns() as f64 / 1e9;
    let mut s = format!(
        "<p class=\"meta\">{} event(s) &middot; span {} s &middot; {} subflow lane(s) &middot; {} queue lane(s)",
        tl.events,
        fmt2(span_s),
        tl.subflows.len(),
        tl.queues.len()
    );
    if tl.t_min_ns > 0 {
        let _ = write!(
            s,
            " &middot; tail starting at {} s",
            fmt2(tl.t_min_ns as f64 / 1e9)
        );
    }
    s.push_str("</p>\n");
    s
}

/// The lane sections alone (no page shell) — composed by the chaos page.
pub fn timeline_body(tl: &Timeline) -> String {
    let mut body = String::new();
    if tl.events == 0 {
        body.push_str("<p class=\"meta\">empty trace</p>\n");
        return body;
    }
    let faults = tl.all_fault_windows();
    for lane in &tl.subflows {
        let _ = writeln!(
            body,
            "<h2>conn {} &middot; subflow {}</h2>",
            lane.conn, lane.subflow
        );
        body.push_str(&state_band_svg(tl, lane));
        body.push_str(&cwnd_svg(tl, lane, &faults));
        if !lane.rtt.is_empty() {
            body.push_str(&rtt_svg(tl, lane, &faults));
        }
    }
    for q in &tl.queues {
        let _ = writeln!(body, "<h2>queue {}</h2>", q.queue);
        body.push_str(&queue_svg(tl, q));
    }
    body
}

fn base_scale(tl: &Timeline, top: f64, height: f64, y_max: f64) -> Scale {
    Scale {
        left: LEFT,
        top,
        width: PLOT_W,
        height,
        t_min_ns: tl.t_min_ns,
        t_max_ns: tl.t_max_ns,
        y_max,
    }
}

/// Axes, x time ticks (seconds), y value ticks.
fn frame(svg: &mut Svg, s: &Scale, y_unit: &str) {
    let bottom = s.top + s.height;
    svg.line(s.left, s.top, s.left, bottom, "axis", "");
    svg.line(s.left, bottom, s.left + s.width, bottom, "axis", "");
    for i in 0..=5u64 {
        let t = s.t_min_ns + (s.t_max_ns - s.t_min_ns).max(1) * i / 5;
        let x = s.left + s.width * i as f64 / 5.0;
        svg.line(x, bottom, x, bottom + 3.0, "axis", "");
        svg.text(
            x - 10.0,
            bottom + 13.0,
            "tick",
            &format!("{}s", fmt2(t as f64 / 1e9)),
        );
        if i > 0 {
            svg.line(x, s.top, x, bottom, "grid", "");
        }
    }
    for j in 1..=3u32 {
        let v = s.y_max * j as f64 / 3.0;
        let y = s.y(v);
        svg.line(s.left, y, s.left + s.width, y, "grid", "");
        svg.text(2.0, y + 3.0, "tick", &fmt2(v));
    }
    svg.text(2.0, s.top + 9.0, "lane-title", y_unit);
}

/// Shade every fault window behind a chart's data.
fn shade_faults(svg: &mut Svg, s: &Scale, faults: &[&FaultWindow]) {
    for w in faults {
        let attrs = format!(
            "data-queue=\"{}\" data-action=\"{}\" data-from-ns=\"{}\" data-to-ns=\"{}\"",
            w.queue, w.action, w.from_ns, w.to_ns
        );
        if w.from_ns == w.to_ns {
            svg.line(
                s.x(w.from_ns),
                s.top,
                s.x(w.from_ns),
                s.top + s.height,
                "fault-instant",
                &attrs,
            );
        } else {
            svg.rect(
                s.x(w.from_ns),
                s.top,
                s.x(w.to_ns) - s.x(w.from_ns),
                s.height,
                "fault",
                &attrs,
            );
        }
    }
}

fn state_band_svg(tl: &Timeline, lane: &SubflowLane) -> String {
    let s = base_scale(tl, 2.0, 16.0, 1.0);
    let mut svg = Svg::new(W, 22.0, "chart");
    svg.text(2.0, 13.0, "lane-title", "state");
    for b in &lane.states {
        let attrs = format!(
            "data-conn=\"{}\" data-subflow=\"{}\" data-state=\"{}\" data-from-ns=\"{}\" data-to-ns=\"{}\"",
            lane.conn,
            lane.subflow,
            b.state.label(),
            b.from_ns,
            b.to_ns
        );
        svg.rect(
            s.x(b.from_ns),
            s.top,
            (s.x(b.to_ns) - s.x(b.from_ns)).max(0.5),
            s.height,
            &format!("band-{}", b.state.label()),
            &attrs,
        );
    }
    svg.finish()
}

fn cwnd_svg(tl: &Timeline, lane: &SubflowLane, faults: &[&FaultWindow]) -> String {
    let y_max = lane.cwnd.iter().map(|&(_, c, _)| c).fold(4.0f64, f64::max) * 1.15;
    let s = base_scale(tl, 6.0, 140.0, y_max);
    let mut svg = Svg::new(W, 170.0, "chart");
    shade_faults(&mut svg, &s, faults);
    frame(&mut svg, &s, "cwnd (pkts)");
    if !lane.cwnd.is_empty() {
        let d = step_path(&s, lane.cwnd.iter().map(|&(t, _, ss)| (t, ss)));
        svg.path(&d, "ssthresh", "");
        let d = step_path(&s, lane.cwnd.iter().map(|&(t, c, _)| (t, c)));
        svg.path(&d, "cwnd", "");
    }
    let bottom = s.top + s.height;
    for &(t, kind) in &lane.marks {
        let x = s.x(t);
        svg.line(
            x,
            bottom - 10.0,
            x,
            bottom,
            &format!("mark-{}", kind.label()),
            &format!("data-mark=\"{}\" data-t-ns=\"{t}\"", kind.label()),
        );
    }
    svg.finish()
}

fn rtt_svg(tl: &Timeline, lane: &SubflowLane, faults: &[&FaultWindow]) -> String {
    let y_max_ns = lane
        .rtt
        .iter()
        .map(|&(_, r, sr)| r.max(sr))
        .max()
        .unwrap_or(1)
        .max(1);
    let y_max_ms = y_max_ns as f64 / 1e6 * 1.15;
    let s = base_scale(tl, 6.0, 90.0, y_max_ms);
    let mut svg = Svg::new(W, 120.0, "chart");
    shade_faults(&mut svg, &s, faults);
    frame(&mut svg, &s, "rtt (ms)");
    let stride = (lane.rtt.len() / MARKER_CAP).max(1);
    for (i, &(t, rtt, _)) in lane.rtt.iter().enumerate() {
        if i % stride == 0 {
            svg.circle(s.x(t), s.y(rtt as f64 / 1e6), 1.4, "rtt-sample", "");
        }
    }
    let d = line_path(&s, lane.rtt.iter().map(|&(t, _, sr)| (t, sr as f64 / 1e6)));
    svg.path(&d, "srtt", "");
    svg.finish()
}

fn queue_svg(tl: &Timeline, q: &QueueLane) -> String {
    let y_max = q
        .occupancy
        .iter()
        .map(|&(_, l)| l as f64)
        .fold(4.0f64, f64::max)
        * 1.15;
    let s = base_scale(tl, 6.0, 90.0, y_max);
    let mut svg = Svg::new(W, 120.0, "chart");
    let own: Vec<&FaultWindow> = q.faults.iter().collect();
    shade_faults(&mut svg, &s, &own);
    frame(&mut svg, &s, "occupancy (pkts)");
    if !q.occupancy.is_empty() {
        let d = step_path(&s, q.occupancy.iter().map(|&(t, l)| (t, l as f64)));
        svg.path(&d, "occupancy", "");
    }
    let bottom = s.top + s.height;
    let stride = (q.drops.len() / MARKER_CAP).max(1);
    for (i, &(t, reason)) in q.drops.iter().enumerate() {
        if i % stride == 0 {
            svg.circle(
                s.x(t),
                bottom - 3.0,
                1.8,
                &format!("drop-{}", reason.label()),
                &format!("data-reason=\"{}\" data-t-ns=\"{t}\"", reason.label()),
            );
        }
    }
    svg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventsim::SimTime;
    use trace::{CwndReason, SubflowState, TraceEvent};

    fn sample_timeline() -> Timeline {
        let ev = |t, e| (SimTime::from_nanos(t), e);
        let events = [
            ev(
                0,
                TraceEvent::Cwnd {
                    conn: 1,
                    subflow: 0,
                    cwnd: 1.0,
                    ssthresh: 1e9,
                    reason: CwndReason::Ack,
                },
            ),
            ev(
                1_000_000_000,
                TraceEvent::Fault {
                    queue: 0,
                    action: "link_down",
                },
            ),
            ev(
                1_500_000_000,
                TraceEvent::SubflowState {
                    conn: 1,
                    subflow: 0,
                    from: SubflowState::Active,
                    to: SubflowState::Failed,
                },
            ),
            ev(
                2_000_000_000,
                TraceEvent::Fault {
                    queue: 0,
                    action: "link_up",
                },
            ),
            ev(
                2_500_000_000,
                TraceEvent::RttSample {
                    conn: 1,
                    subflow: 0,
                    rtt_ns: 80_000_000,
                    srtt_ns: 80_000_000,
                },
            ),
        ];
        Timeline::from_events(events.iter())
    }

    #[test]
    fn render_is_byte_deterministic() {
        let tl = sample_timeline();
        let a = render_timeline_html("t", &tl);
        let b = render_timeline_html("t", &tl);
        assert_eq!(a, b);
    }

    #[test]
    fn data_attributes_expose_bands_and_fault_windows() {
        let html = render_timeline_html("t", &sample_timeline());
        assert!(html.contains(
            "data-state=\"failed\" data-from-ns=\"1500000000\" data-to-ns=\"2500000000\""
        ));
        assert!(html.contains(
            "data-action=\"link_down\" data-from-ns=\"1000000000\" data-to-ns=\"2000000000\""
        ));
    }

    #[test]
    fn page_is_self_contained() {
        let html = render_timeline_html("t", &sample_timeline());
        for needle in ["http://", "https://", "file://", "<script"] {
            assert!(!html.contains(needle), "found {needle}");
        }
    }

    #[test]
    fn empty_trace_renders_a_stub() {
        let html = render_timeline_html("t", &Timeline::default());
        assert!(html.contains("empty trace"));
    }
}

//! Sweep explorer: `mptcp-sweep-report/v1` → comparison pages.
//!
//! The index page charts every metric across all parameter points (mean
//! with a ci95 whisker per point) and links one detail page per point with
//! the full per-metric statistics, per-seed determinism digests, and —
//! when the per-job run reports carry them — the p50/p95/p99 tail
//! percentiles exported from `metrics` histograms.
//!
//! Rendering is a pure function of the sweep document plus the job
//! reports, so the emitted bytes are identical across reruns and across
//! `--jobs` settings (point pages are rendered in parallel but joined in
//! point order).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bench::json::Json;

use crate::page::page;
use crate::svg::{esc, fmt2, Svg};

/// One metric's summary at one sweep point (the `metrics.<name>` object).
#[derive(Debug, Clone, Copy)]
struct Stat {
    n: f64,
    mean: f64,
    std: f64,
    min: f64,
    max: f64,
    ci95: f64,
}

/// One sweep point plus everything its detail page needs.
#[derive(Debug, Clone)]
struct Point {
    key: String,
    scenario: String,
    params: Vec<(String, String)>,
    seeds: Vec<u64>,
    failed_seeds: Vec<u64>,
    digests: Vec<String>,
    metrics: BTreeMap<String, Stat>,
    /// Per-seed `(seed, histogram name, [p50, p95, p99])` rows from the
    /// job reports' `profile.percentiles`, when present.
    percentiles: Vec<(u64, String, [f64; 3])>,
}

fn stat_of(j: &Json) -> Option<Stat> {
    Some(Stat {
        n: j.get("n")?.as_f64()?,
        mean: j.get("mean")?.as_f64()?,
        std: j.get("std")?.as_f64()?,
        min: j.get("min")?.as_f64()?,
        max: j.get("max")?.as_f64()?,
        ci95: j.get("ci95")?.as_f64()?,
    })
}

fn render_value(v: &Json) -> String {
    match v {
        Json::String(s) => s.clone(),
        other => other.render(),
    }
}

/// Stable file name for a point page: sanitized key plus an FNV suffix so
/// distinct keys can never collide after sanitization.
pub fn point_file_name(key: &str) -> String {
    let mut slug = String::with_capacity(key.len());
    for c in key.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c);
        } else if !slug.ends_with('-') {
            slug.push('-');
        }
    }
    let slug = slug.trim_matches('-');
    let mut d = trace::Digest64::new();
    d.update(key.as_bytes());
    format!("point-{}-{:08x}.html", slug, d.finish() as u32)
}

fn parse_points(doc: &Json, job_reports: &BTreeMap<String, Json>) -> Result<Vec<Point>, String> {
    let points = doc
        .get("points")
        .and_then(Json::as_array)
        .ok_or("sweep document has no points array")?;
    // Map point key -> (seed, report Json) from the job index.
    let mut reports_by_point: BTreeMap<String, Vec<(u64, &Json)>> = BTreeMap::new();
    if let Some(index) = doc.get("job_index").and_then(Json::as_array) {
        for entry in index {
            let (Some(job), Some(path)) = (
                entry.get("job").and_then(Json::as_str),
                entry.get("report").and_then(Json::as_str),
            ) else {
                continue;
            };
            let Some(report) = job_reports.get(path) else {
                continue;
            };
            let (point_key, seed_part) = job.split_once("#seed=").unwrap_or((job, "0"));
            let seed = seed_part.parse().unwrap_or(0);
            reports_by_point
                .entry(point_key.to_string())
                .or_default()
                .push((seed, report));
        }
    }
    let mut out = Vec::with_capacity(points.len());
    for p in points {
        let key = p
            .get("point")
            .and_then(Json::as_str)
            .ok_or("point without a key")?
            .to_string();
        let scenario = p
            .get("scenario")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let params = p
            .get("params")
            .and_then(Json::as_object)
            .map(|m| {
                m.iter()
                    .map(|(k, v)| (k.clone(), render_value(v)))
                    .collect()
            })
            .unwrap_or_default();
        let seeds_of = |field: &str| -> Vec<u64> {
            p.get(field)
                .and_then(Json::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(Json::as_f64)
                        .map(|v| v as u64)
                        .collect()
                })
                .unwrap_or_default()
        };
        let digests = p
            .get("digests")
            .and_then(Json::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        let metrics = p
            .get("metrics")
            .and_then(Json::as_object)
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| stat_of(v).map(|s| (k.clone(), s)))
                    .collect()
            })
            .unwrap_or_default();
        let mut percentiles = Vec::new();
        if let Some(reports) = reports_by_point.get(&key) {
            let mut sorted = reports.clone();
            sorted.sort_by_key(|(seed, _)| *seed);
            for (seed, report) in sorted {
                let Some(pcts) = report
                    .get("profile")
                    .and_then(|p| p.get("percentiles"))
                    .and_then(Json::as_object)
                else {
                    continue;
                };
                for (hist, v) in pcts {
                    let (Some(p50), Some(p95), Some(p99)) = (
                        v.get("p50").and_then(Json::as_f64),
                        v.get("p95").and_then(Json::as_f64),
                        v.get("p99").and_then(Json::as_f64),
                    ) else {
                        continue;
                    };
                    percentiles.push((seed, hist.clone(), [p50, p95, p99]));
                }
            }
        }
        out.push(Point {
            key,
            scenario,
            params,
            seeds: seeds_of("seeds"),
            failed_seeds: seeds_of("failed_seeds"),
            digests,
            metrics,
            percentiles,
        });
    }
    Ok(out)
}

/// Horizontal mean±ci95 comparison chart for one metric across all points.
fn metric_chart(metric: &str, points: &[Point]) -> String {
    let rows: Vec<(&str, Stat)> = points
        .iter()
        .filter_map(|p| p.metrics.get(metric).map(|s| (p.key.as_str(), *s)))
        .collect();
    let x_max = rows
        .iter()
        .map(|(_, s)| (s.mean + s.ci95).abs().max(s.max.abs()))
        .fold(f64::MIN_POSITIVE, f64::max)
        * 1.1;
    const ROW_H: f64 = 18.0;
    const LEFT: f64 = 300.0;
    const PLOT_W: f64 = 560.0;
    let h = rows.len() as f64 * ROW_H + 24.0;
    let mut svg = Svg::new(900.0, h, "chart");
    let x = |v: f64| LEFT + (v.max(0.0) / x_max) * PLOT_W;
    svg.line(LEFT, 2.0, LEFT, h - 20.0, "axis", "");
    svg.line(LEFT, h - 20.0, LEFT + PLOT_W, h - 20.0, "axis", "");
    for i in 0..=4u32 {
        let v = x_max * i as f64 / 4.0;
        svg.text(x(v) - 8.0, h - 8.0, "tick", &fmt2(v));
    }
    for (i, (key, s)) in rows.iter().enumerate() {
        let y = i as f64 * ROW_H + 4.0;
        svg.text(2.0, y + 10.0, "tick", key);
        svg.rect(
            LEFT,
            y + 2.0,
            x(s.mean) - LEFT,
            ROW_H - 6.0,
            "bar",
            &format!("data-point=\"{}\" data-mean=\"{}\"", esc(key), fmt2(s.mean)),
        );
        let cy = y + ROW_H / 2.0 - 1.0;
        let (lo, hi) = (x((s.mean - s.ci95).max(0.0)), x(s.mean + s.ci95));
        svg.line(lo, cy, hi, cy, "ci", "");
        svg.line(lo, cy - 3.0, lo, cy + 3.0, "ci", "");
        svg.line(hi, cy - 3.0, hi, cy + 3.0, "ci", "");
    }
    svg.finish()
}

fn index_page(doc: &Json, points: &[Point]) -> String {
    let manifest = doc.get("manifest");
    let run_id = manifest
        .and_then(|m| m.get("id"))
        .and_then(Json::as_str)
        .unwrap_or("sweep");
    let scale = manifest
        .and_then(|m| m.get("scale"))
        .and_then(Json::as_str)
        .unwrap_or("");
    let jobs = doc.get("jobs");
    let jn = |k: &str| {
        jobs.and_then(|j| j.get(k))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let mut body = String::new();
    let _ = writeln!(body, "<h1>sweep {}</h1>", esc(run_id));
    let _ = writeln!(
        body,
        "<p class=\"meta\">scale {} &middot; jobs: {} done, {} failed, {} abandoned, {} total</p>",
        esc(scale),
        jn("done"),
        jn("failed"),
        jn("abandoned"),
        jn("total")
    );
    let mut metric_names: Vec<&str> = points
        .iter()
        .flat_map(|p| p.metrics.keys().map(String::as_str))
        .collect();
    metric_names.sort_unstable();
    metric_names.dedup();
    for metric in metric_names {
        let _ = writeln!(body, "<h2>{} (mean &plusmn; ci95)</h2>", esc(metric));
        body.push_str(&metric_chart(metric, points));
    }
    body.push_str("<h2>points</h2>\n<table><tr><th class=\"l\">point</th><th class=\"l\">scenario</th><th>seeds</th><th>failed</th><th class=\"l\">detail</th></tr>\n");
    for p in points {
        let file = point_file_name(&p.key);
        let _ = writeln!(
            body,
            "<tr><td class=\"l\">{}</td><td class=\"l\">{}</td><td>{}</td><td>{}</td><td class=\"l\"><a href=\"{}\">{}</a></td></tr>",
            esc(&p.key),
            esc(&p.scenario),
            p.seeds.len(),
            p.failed_seeds.len(),
            esc(&file),
            esc(&file)
        );
    }
    body.push_str("</table>\n");
    page(&format!("sweep {run_id}"), &body)
}

fn point_page(p: &Point) -> String {
    let mut body = String::new();
    let _ = writeln!(body, "<h1>{}</h1>", esc(&p.key));
    let _ = writeln!(
        body,
        "<p class=\"meta\">scenario {} &middot; {} seed(s), {} failed &middot; <a href=\"index.html\">back to sweep</a></p>",
        esc(&p.scenario),
        p.seeds.len(),
        p.failed_seeds.len()
    );
    if !p.params.is_empty() {
        body.push_str("<h2>parameters</h2>\n<table><tr><th class=\"l\">param</th><th class=\"l\">value</th></tr>\n");
        for (k, v) in &p.params {
            let _ = writeln!(
                body,
                "<tr><td class=\"l\">{}</td><td class=\"l\">{}</td></tr>",
                esc(k),
                esc(v)
            );
        }
        body.push_str("</table>\n");
    }
    body.push_str("<h2>metrics</h2>\n<table><tr><th class=\"l\">metric</th><th>n</th><th>mean</th><th>ci95</th><th>std</th><th>min</th><th>max</th></tr>\n");
    for (name, s) in &p.metrics {
        let _ = writeln!(
            body,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            esc(name),
            s.n,
            fmt2(s.mean),
            fmt2(s.ci95),
            fmt2(s.std),
            fmt2(s.min),
            fmt2(s.max)
        );
    }
    body.push_str("</table>\n");
    if !p.percentiles.is_empty() {
        body.push_str("<h2>tail percentiles (per seed)</h2>\n<table><tr><th>seed</th><th class=\"l\">histogram</th><th>p50</th><th>p95</th><th>p99</th></tr>\n");
        for (seed, hist, [p50, p95, p99]) in &p.percentiles {
            let _ = writeln!(
                body,
                "<tr><td>{}</td><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                seed,
                esc(hist),
                fmt2(*p50),
                fmt2(*p95),
                fmt2(*p99)
            );
        }
        body.push_str("</table>\n");
    }
    if !p.digests.is_empty() {
        body.push_str("<h2>trace digests (determinism witnesses)</h2>\n<table><tr><th>seed</th><th class=\"l\">digest</th></tr>\n");
        for (i, d) in p.digests.iter().enumerate() {
            let seed = p
                .seeds
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "?".to_string());
            let _ = writeln!(
                body,
                "<tr><td>{}</td><td class=\"l\">{}</td></tr>",
                esc(&seed),
                esc(d)
            );
        }
        body.push_str("</table>\n");
    }
    page(&p.key, &body)
}

/// Render the sweep explorer: `("index.html", …)` plus one page per point,
/// in point order. `jobs` only parallelizes point-page rendering — the
/// returned pages are byte-identical for any value.
pub fn sweep_pages(
    doc: &Json,
    job_reports: &BTreeMap<String, Json>,
    jobs: usize,
) -> Result<Vec<(String, String)>, String> {
    let points = parse_points(doc, job_reports)?;
    let mut pages = Vec::with_capacity(points.len() + 1);
    pages.push(("index.html".to_string(), index_page(doc, &points)));

    let n = points.len();
    let slots: Vec<Mutex<Option<String>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.max(1).min(n.max(1)) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                *slots[k].lock().expect("point slot poisoned") = Some(point_page(&points[k]));
            });
        }
    });
    for (i, slot) in slots.into_iter().enumerate() {
        let html = slot
            .into_inner()
            .expect("point slot poisoned")
            .expect("worker exited without rendering its point");
        pages.push((point_file_name(&points[i].key), html));
    }
    Ok(pages)
}

/// Load `sweep.json` (and any job reports it indexes) from an orchestra
/// run directory and render the explorer pages.
pub fn render_run_dir(
    run_dir: &std::path::Path,
    jobs: usize,
) -> Result<Vec<(String, String)>, String> {
    let sweep_path = run_dir.join("sweep.json");
    let text = std::fs::read_to_string(&sweep_path)
        .map_err(|e| format!("cannot read {}: {e}", sweep_path.display()))?;
    let doc = bench::json::parse(&text)
        .map_err(|e| format!("{}: invalid JSON: {e}", sweep_path.display()))?;
    let mut job_reports = BTreeMap::new();
    if let Some(index) = doc.get("job_index").and_then(Json::as_array) {
        for entry in index {
            let Some(rel) = entry.get("report").and_then(Json::as_str) else {
                continue;
            };
            let path = run_dir.join(rel);
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue; // failed jobs have no report; skip silently
            };
            if let Ok(parsed) = bench::json::parse(&text) {
                job_reports.insert(rel.to_string(), parsed);
            }
        }
    }
    sweep_pages(&doc, &job_reports, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bench::json::parse;

    fn sample_doc() -> Json {
        parse(
            r#"{
  "schema": "mptcp-sweep-report/v1",
  "manifest": {"id": "demo", "scale": "quick", "seeds": [1, 2]},
  "jobs": {"done": 4, "failed": 0, "abandoned": 0, "total": 4},
  "job_index": [
    {"job": "smoke?a=1#seed=1", "report": "jobs/r1.json", "status": "done", "attempts": 1},
    {"job": "smoke?a=1#seed=2", "report": "jobs/r2.json", "status": "done", "attempts": 1}
  ],
  "points": [
    {
      "point": "smoke?a=1", "scenario": "smoke",
      "params": {"a": 1}, "seeds": [1, 2], "failed_seeds": [],
      "digests": ["aa", "bb"],
      "metrics": {"goodput": {"n": 2, "mean": 5.0, "std": 0.5, "min": 4.5, "max": 5.5, "ci95": 1.0}}
    },
    {
      "point": "smoke?a=2", "scenario": "smoke",
      "params": {"a": 2}, "seeds": [1, 2], "failed_seeds": [],
      "digests": ["cc", "dd"],
      "metrics": {"goodput": {"n": 2, "mean": 7.0, "std": 0.5, "min": 6.5, "max": 7.5, "ci95": 1.0}}
    }
  ]
}"#,
        )
        .unwrap()
    }

    fn sample_reports() -> BTreeMap<String, Json> {
        let mut m = BTreeMap::new();
        m.insert(
            "jobs/r1.json".to_string(),
            parse(
                r#"{"profile": {"percentiles": {"rtt_ms": {"p50": 40.0, "p95": 80.0, "p99": 95.0}}}}"#,
            )
            .unwrap(),
        );
        m
    }

    #[test]
    fn pages_are_byte_identical_across_jobs_settings() {
        let doc = sample_doc();
        let reports = sample_reports();
        let solo = sweep_pages(&doc, &reports, 1).unwrap();
        let parallel = sweep_pages(&doc, &reports, 4).unwrap();
        assert_eq!(solo, parallel);
        assert_eq!(solo.len(), 3, "index + 2 point pages");
        assert_eq!(solo[0].0, "index.html");
    }

    #[test]
    fn index_links_point_pages_and_charts_metrics() {
        let pages = sweep_pages(&sample_doc(), &BTreeMap::new(), 1).unwrap();
        let index = &pages[0].1;
        assert!(index.contains("goodput"));
        assert!(index.contains(&point_file_name("smoke?a=1")));
        assert!(index.contains("data-mean=\"5.00\""));
        assert!(index.contains("data-mean=\"7.00\""));
    }

    #[test]
    fn point_page_carries_percentiles_when_reports_have_them() {
        let pages = sweep_pages(&sample_doc(), &sample_reports(), 1).unwrap();
        let p1 = pages
            .iter()
            .find(|(name, _)| name == &point_file_name("smoke?a=1"))
            .unwrap();
        assert!(p1.1.contains("tail percentiles"));
        assert!(p1.1.contains("rtt_ms"));
        assert!(p1.1.contains("95.00"));
        // The other point has no report -> no percentile section.
        let p2 = pages
            .iter()
            .find(|(name, _)| name == &point_file_name("smoke?a=2"))
            .unwrap();
        assert!(!p2.1.contains("tail percentiles"));
    }

    #[test]
    fn file_names_are_stable_and_collision_resistant() {
        assert_eq!(point_file_name("a?b=1"), point_file_name("a?b=1"));
        assert_ne!(point_file_name("a?b=1"), point_file_name("a-b-1"));
        let name = point_file_name("smoke?algorithm=lia&c1_over_c2=0.8");
        assert!(name.starts_with("point-smoke-algorithm-lia"), "{name}");
        assert!(name.ends_with(".html"));
    }
}

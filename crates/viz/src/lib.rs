//! Deterministic trace-to-timeline visualization.
//!
//! `viz` turns the artifacts the rest of the workspace already emits —
//! trace JSONL (`trace::TraceEvent`), sweep reports
//! (`mptcp-sweep-report/v1`), chaos repro cases — into self-contained HTML
//! pages: inline SVG, one inline stylesheet, no scripts, no external
//! assets, no wall-clock or locale leakage. The same input bytes always
//! produce the same output bytes, on any host, at any parallelism — pages
//! are artifacts in the same sense as run reports, and CI diffs them.
//!
//! Layers:
//!
//! - [`timeline`] — fold a parsed event stream into per-subflow and
//!   per-queue lanes (cwnd/ssthresh, RTT samples, state bands, queue
//!   occupancy, drop markers, fault windows).
//! - [`svg`] — fixed-precision SVG primitives ([`svg::fmt2`] pins every
//!   coordinate to two decimals).
//! - [`page`] — the shared page shell with the single inline stylesheet.
//! - [`render`] — timeline → HTML.
//! - [`sweep`] — sweep report + job reports → comparison explorer
//!   (index + per-point pages with mean±ci95 charts and percentiles).
//! - [`chaos_page`] — chaos repro case → fault-plan schedule page,
//!   embedding the recorded timeline when a sibling trace exists.
//!
//! The `viz` binary fronts all three renderers; `orchestra --viz` and the
//! chaos campaign runner call into the library directly.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod chaos_page;
pub mod page;
pub mod render;
pub mod svg;
pub mod sweep;
pub mod timeline;

pub use chaos_page::{clause_windows, render_chaos_html, ClauseWindow};
pub use render::render_timeline_html;
pub use sweep::render_run_dir;
pub use timeline::Timeline;

//! Self-contained HTML page scaffolding shared by every renderer.
//!
//! One inline stylesheet, no external assets, no scripts, no generator
//! stamps or timestamps — the page bytes are a pure function of the model.

use crate::svg::esc;

/// The single stylesheet every page inlines. Colors double as the legend:
/// state bands (green active, amber potentially-failed, red failed, gray
/// pruned), series strokes, fault shading.
const STYLE: &str = "\
body{font-family:ui-monospace,monospace;margin:24px;color:#222;background:#fff}\
h1{font-size:18px;margin:0 0 4px 0}\
h2{font-size:14px;margin:18px 0 4px 0}\
h3{font-size:12px;margin:10px 0 2px 0}\
p.meta{font-size:12px;color:#666;margin:2px 0 12px 0}\
table{border-collapse:collapse;font-size:12px;margin:6px 0}\
td,th{border:1px solid #ccc;padding:2px 8px;text-align:right}\
th{background:#f3f3f3}\
td.l,th.l{text-align:left}\
a{color:#06c;text-decoration:none}\
a:hover{text-decoration:underline}\
svg.chart{display:block;margin:2px 0 10px 0}\
.axis{stroke:#999;stroke-width:1}\
.grid{stroke:#eee;stroke-width:1}\
.tick{font-size:9px;fill:#666}\
.lane-title{font-size:10px;fill:#444}\
.cwnd{stroke:#1f77b4;stroke-width:1.2;fill:none}\
.ssthresh{stroke:#ff7f0e;stroke-width:1;stroke-dasharray:4 3;fill:none}\
.srtt{stroke:#2ca02c;stroke-width:1.2;fill:none}\
.rtt-sample{fill:#2ca02c;fill-opacity:.35;stroke:none}\
.occupancy{stroke:#6a3d9a;stroke-width:1.2;fill:none}\
.fault{fill:#d62728;fill-opacity:.12;stroke:none}\
.fault-instant{stroke:#d62728;stroke-width:1;stroke-dasharray:2 2}\
.band-active{fill:#2ca02c;fill-opacity:.55}\
.band-potentially_failed{fill:#ff7f0e;fill-opacity:.65}\
.band-failed{fill:#d62728;fill-opacity:.65}\
.band-pruned{fill:#7f7f7f;fill-opacity:.55}\
.mark-rto{stroke:#d62728;stroke-width:1.4}\
.mark-fast_retransmit{stroke:#ff7f0e;stroke-width:1.4}\
.mark-probe{stroke:#17becf;stroke-width:1.4}\
.drop-tail{fill:#d62728}\
.drop-early_mark{fill:#ff7f0e}\
.drop-bernoulli{fill:#9467bd}\
.drop-admin_down{fill:#8c564b}\
.drop-loss_burst{fill:#e377c2}\
.bar{fill:#1f77b4;fill-opacity:.7}\
.ci{stroke:#222;stroke-width:1.2}\
.clause-outage,.clause-blackout{fill:#d62728;fill-opacity:.25}\
.clause-flap{fill:#ff7f0e;fill-opacity:.25}\
.clause-loss_burst{fill:#e377c2;fill-opacity:.3}\
.clause-handover{fill:#9467bd;fill-opacity:.25}\
.clause-rate_step,.clause-latency_step{fill:#17becf;fill-opacity:.4}\
";

/// Wrap a rendered body in the standard page shell.
pub fn page(title: &str, body: &str) -> String {
    let mut out = String::with_capacity(body.len() + STYLE.len() + 256);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\"><title>");
    out.push_str(&esc(title));
    out.push_str("</title><style>");
    out.push_str(STYLE);
    out.push_str("</style></head>\n<body>\n");
    out.push_str(body);
    out.push_str("\n</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_is_self_contained() {
        let html = page("a & b", "<h1>a &amp; b</h1>");
        assert!(html.contains("<title>a &amp; b</title>"));
        for scheme in ["http://", "https://", "file://", "<script", "@import"] {
            assert!(!html.contains(scheme), "found {scheme}");
        }
    }

    #[test]
    fn identical_input_identical_bytes() {
        assert_eq!(page("t", "b"), page("t", "b"));
    }
}

//! Deterministic SVG-building primitives.
//!
//! Every coordinate is formatted with fixed two-decimal precision via
//! Rust's own `f64` formatting (no locale, no platform variance), so the
//! same model always serializes to the same bytes. Markup is assembled by
//! plain string pushes — no external templating, no namespace URLs (inline
//! SVG in HTML needs none, and the self-containment gate greps for URL
//! schemes).

use std::fmt::Write as _;

/// Fixed two-decimal formatting for SVG coordinates and axis labels.
pub fn fmt2(v: f64) -> String {
    // Negative zero would print "-0.00" and break byte-stability between
    // mathematically equal values.
    let v = if v == 0.0 { 0.0 } else { v };
    format!("{v:.2}")
}

/// Escape text for HTML/SVG content and attribute values.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// An x/y affine mapping from data space to one chart's pixel rectangle.
///
/// X maps `[t_min_ns, t_max_ns]` to `[left, left+width]`; Y maps
/// `[0, y_max]` to `[top+height, top]` (SVG y grows downward).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Left edge of the plot area, px.
    pub left: f64,
    /// Top edge of the plot area, px.
    pub top: f64,
    /// Plot width, px.
    pub width: f64,
    /// Plot height, px.
    pub height: f64,
    /// Data-space start of the x axis, nanoseconds.
    pub t_min_ns: u64,
    /// Data-space end of the x axis, nanoseconds.
    pub t_max_ns: u64,
    /// Data-space top of the y axis (bottom is 0).
    pub y_max: f64,
}

impl Scale {
    /// Map a time to an x pixel.
    pub fn x(&self, t_ns: u64) -> f64 {
        let span = (self.t_max_ns - self.t_min_ns).max(1) as f64;
        self.left + (t_ns.saturating_sub(self.t_min_ns)) as f64 / span * self.width
    }

    /// Map a value to a y pixel (clamped into the plot so huge sentinels
    /// like an "infinite" ssthresh draw along the top edge).
    pub fn y(&self, v: f64) -> f64 {
        let clamped = v.clamp(0.0, self.y_max.max(f64::MIN_POSITIVE));
        self.top + self.height - clamped / self.y_max.max(f64::MIN_POSITIVE) * self.height
    }
}

/// A growing SVG document (one `<svg>` element).
#[derive(Debug)]
pub struct Svg {
    buf: String,
}

impl Svg {
    /// Open an `<svg>` with a fixed pixel viewBox (also used as CSS size).
    pub fn new(width: f64, height: f64, class: &str) -> Svg {
        let mut buf = String::with_capacity(4096);
        let _ = write!(
            buf,
            "<svg class=\"{}\" viewBox=\"0 0 {} {}\" width=\"{}\" height=\"{}\" role=\"img\">",
            esc(class),
            fmt2(width),
            fmt2(height),
            fmt2(width),
            fmt2(height)
        );
        Svg { buf }
    }

    /// A rectangle with a class and optional extra attributes (pre-escaped
    /// `key="value"` pairs).
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, class: &str, attrs: &str) {
        let _ = write!(
            self.buf,
            "<rect class=\"{}\" x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\"{}{}/>",
            esc(class),
            fmt2(x),
            fmt2(y),
            fmt2(w.max(0.0)),
            fmt2(h.max(0.0)),
            if attrs.is_empty() { "" } else { " " },
            attrs
        );
    }

    /// A line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, class: &str, attrs: &str) {
        let _ = write!(
            self.buf,
            "<line class=\"{}\" x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\"{}{}/>",
            esc(class),
            fmt2(x1),
            fmt2(y1),
            fmt2(x2),
            fmt2(y2),
            if attrs.is_empty() { "" } else { " " },
            attrs
        );
    }

    /// A small circle marker.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, class: &str, attrs: &str) {
        let _ = write!(
            self.buf,
            "<circle class=\"{}\" cx=\"{}\" cy=\"{}\" r=\"{}\"{}{}/>",
            esc(class),
            fmt2(cx),
            fmt2(cy),
            fmt2(r),
            if attrs.is_empty() { "" } else { " " },
            attrs
        );
    }

    /// A path from pre-built data (caller formats coordinates via `fmt2`).
    pub fn path(&mut self, d: &str, class: &str, attrs: &str) {
        let _ = write!(
            self.buf,
            "<path class=\"{}\" d=\"{}\"{}{}/>",
            esc(class),
            d,
            if attrs.is_empty() { "" } else { " " },
            attrs
        );
    }

    /// Text anchored per `class` styling (content is escaped here).
    pub fn text(&mut self, x: f64, y: f64, class: &str, content: &str) {
        let _ = write!(
            self.buf,
            "<text class=\"{}\" x=\"{}\" y=\"{}\">{}</text>",
            esc(class),
            fmt2(x),
            fmt2(y),
            esc(content)
        );
    }

    /// Close the element and return the markup.
    pub fn finish(mut self) -> String {
        self.buf.push_str("</svg>");
        self.buf
    }
}

/// Build a step-path (`M … H … V …`) through `(t_ns, value)` points,
/// holding each value until the next point (sample-and-hold semantics, the
/// right reading for cwnd and queue-occupancy series).
pub fn step_path(scale: &Scale, pts: impl Iterator<Item = (u64, f64)>) -> String {
    let mut d = String::new();
    let mut first = true;
    let mut last_y = 0.0;
    for (t, v) in pts {
        let x = scale.x(t);
        let y = scale.y(v);
        if first {
            let _ = write!(d, "M{} {}", fmt2(x), fmt2(y));
            first = false;
        } else {
            if fmt2(y) != fmt2(last_y) {
                let _ = write!(d, "H{} V{}", fmt2(x), fmt2(y));
            }
            // Equal-y steps fold into the next H, keeping paths compact.
        }
        last_y = y;
    }
    if !first {
        let _ = write!(d, "H{}", fmt2(scale.left + scale.width));
    }
    d
}

/// Build a straight polyline path through `(t_ns, value)` points.
pub fn line_path(scale: &Scale, pts: impl Iterator<Item = (u64, f64)>) -> String {
    let mut d = String::new();
    let mut first = true;
    for (t, v) in pts {
        let cmd = if first { 'M' } else { 'L' };
        first = false;
        let _ = write!(d, "{}{} {}", cmd, fmt2(scale.x(t)), fmt2(scale.y(v)));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt2_is_fixed_width_fraction_and_kills_negative_zero() {
        assert_eq!(fmt2(1.0), "1.00");
        assert_eq!(fmt2(2.345), "2.35");
        assert_eq!(fmt2(-0.0), "0.00");
        assert_eq!(fmt2(0.0), "0.00");
    }

    #[test]
    fn esc_covers_html_metacharacters() {
        assert_eq!(
            esc("a<b&\"c\"'d'>"),
            "a&lt;b&amp;&quot;c&quot;&#39;d&#39;&gt;"
        );
    }

    #[test]
    fn scale_maps_endpoints() {
        let s = Scale {
            left: 10.0,
            top: 5.0,
            width: 100.0,
            height: 50.0,
            t_min_ns: 100,
            t_max_ns: 200,
            y_max: 10.0,
        };
        assert_eq!(fmt2(s.x(100)), "10.00");
        assert_eq!(fmt2(s.x(200)), "110.00");
        assert_eq!(fmt2(s.y(0.0)), "55.00");
        assert_eq!(fmt2(s.y(10.0)), "5.00");
        // Clamped above the top.
        assert_eq!(fmt2(s.y(1e12)), "5.00");
    }

    #[test]
    fn svg_assembles_without_urls() {
        let mut svg = Svg::new(100.0, 50.0, "chart");
        svg.rect(0.0, 0.0, 10.0, 10.0, "band", "data-state=\"active\"");
        svg.text(1.0, 2.0, "label", "cwnd <pkts>");
        let out = svg.finish();
        assert!(out.starts_with("<svg "));
        assert!(out.ends_with("</svg>"));
        assert!(out.contains("data-state=\"active\""));
        assert!(out.contains("cwnd &lt;pkts&gt;"));
        assert!(!out.contains("http"), "no namespace URLs: {out}");
    }
}

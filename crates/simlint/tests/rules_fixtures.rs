//! Fixture-based rule tests: each `tests/fixtures/*.rs` snippet is linted
//! under a virtual workspace path where its rule applies, and we assert the
//! rule fires at exactly the expected (line, rule) positions — no more, no
//! fewer — plus the suppression/meta-rule behaviour round-trip.

use simlint::config::Config;
use simlint::rules::{lint_source, Finding};

fn lint(virtual_path: &str, fixture: &str) -> Vec<Finding> {
    lint_source(virtual_path, fixture, &Config::default())
}

/// (rule, line) pairs of all findings, in report order.
fn positions(findings: &[Finding]) -> Vec<(&str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

fn unsuppressed(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.suppressed.is_none()).collect()
}

#[test]
fn r1_wall_clock_fixture() {
    let src = include_str!("fixtures/r1_wall_clock.rs");
    let f = lint("crates/netsim/src/fixture.rs", src);
    // The final line also narrows the u128 nanosecond count — R9 covers
    // that independently of the wall-clock hazard.
    assert_eq!(
        positions(&f),
        vec![("R1", 4), ("R1", 9), ("R1", 10), ("R9", 12)],
        "{f:#?}"
    );
}

#[test]
fn r2_unordered_collection_fixture() {
    let src = include_str!("fixtures/r2_unordered_iter.rs");
    let f = lint("crates/netsim/src/fixture.rs", src);
    // The third hit is inside `#[cfg(test)]` — R2 deliberately applies to
    // test code too, because digest-comparison tests are exactly where
    // iteration order bites.
    assert_eq!(
        positions(&f),
        vec![("R2", 4), ("R2", 7), ("R2", 21)],
        "{f:#?}"
    );
    // Outside the sim crates the same source is clean.
    assert!(lint("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn r3_os_random_fixture() {
    let src = include_str!("fixtures/r3_os_random.rs");
    let f = lint("crates/workload/src/fixture.rs", src);
    assert_eq!(
        positions(&f),
        vec![("R3", 5), ("R3", 10), ("R3", 11)],
        "{f:#?}"
    );
}

#[test]
fn r4_float_eq_fixture() {
    let src = include_str!("fixtures/r4_float_eq.rs");
    let f = lint("crates/core/src/fixture.rs", src);
    assert_eq!(positions(&f), vec![("R4", 4), ("R4", 8)], "{f:#?}");
    // R4 is scoped to congestion-control math in crates/core.
    assert!(lint("crates/netsim/src/fixture.rs", src).is_empty());
}

#[test]
fn r5_hot_unwrap_fixture() {
    let src = include_str!("fixtures/r5_hot_unwrap.rs");
    let f = lint("crates/eventsim/src/fixture.rs", src);
    assert_eq!(positions(&f), vec![("R5", 4), ("R5", 5)], "{f:#?}");
    // The same source outside a hot path is clean.
    assert!(lint("crates/tcpsim/src/fixture.rs", src).is_empty());
}

#[test]
fn r6_raw_unit_api_fixture() {
    let src = include_str!("fixtures/r6_raw_units.rs");
    let f = lint("crates/topo/src/fixture.rs", src);
    // Both raw-time params of `run_for` fire; `rate_bps` and the typed
    // `SimDuration` param do not, nor does the private helper.
    assert_eq!(positions(&f), vec![("R6", 3), ("R6", 3)], "{f:#?}");
    assert!(lint("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn r7_threading_fixture() {
    let src = include_str!("fixtures/r7_threading.rs");
    let f = lint("crates/tcpsim/src/fixture.rs", src);
    // The `#[cfg(test)]` thread call and the bare `sync` ident stay clean.
    assert_eq!(positions(&f), vec![("R7", 4), ("R7", 7)], "{f:#?}");
    // The harness layers parallelize legitimately.
    assert!(lint("crates/orchestra/src/pool.rs", src).is_empty());
    assert!(lint("crates/bench/src/fixture.rs", src).is_empty());
}

/// The viz crate renders byte-deterministic pages, so the clock and
/// entropy rules cover it like any sim crate — while the sim-scoped rules
/// (R2 ordering, R7 threading) stay quiet: viz legitimately fans page
/// rendering across threads.
#[test]
fn viz_crate_is_covered_by_r1_and_r3_but_not_sim_scoped_rules() {
    let src = include_str!("fixtures/viz_hazards.rs");
    let f = lint("crates/viz/src/fixture.rs", src);
    assert_eq!(
        positions(&f),
        vec![("R1", 6), ("R1", 9), ("R1", 10), ("R3", 11)],
        "{f:#?}"
    );
    assert!(unsuppressed(&f).len() == f.len(), "{f:#?}");
}

#[test]
fn suppressed_fixture_has_findings_but_none_unsuppressed() {
    let src = include_str!("fixtures/suppressed_ok.rs");
    let f = lint("crates/tcpsim/src/fixture.rs", src);
    assert_eq!(
        positions(&f),
        vec![("R2", 4), ("R1", 7), ("R1", 10), ("R2", 11)],
        "{f:#?}"
    );
    assert!(unsuppressed(&f).is_empty(), "{f:#?}");
    for finding in &f {
        let reason = finding.suppressed.as_deref().unwrap();
        assert!(
            !reason.is_empty(),
            "suppression without a reason: {finding:?}"
        );
    }
}

/// The acceptance criterion in miniature: strip each allow annotation from
/// the suppressed fixture one at a time and verify the finding it covered
/// comes back unsuppressed — deleting any one allow fails the gate.
#[test]
fn deleting_any_single_allow_resurfaces_its_finding() {
    let src = include_str!("fixtures/suppressed_ok.rs");
    // Assembled at runtime so this test file itself never contains the
    // contiguous annotation marker (the workspace-gate test scans for it).
    let marker = ["// simlint:", " allow("].concat();
    let marker = marker.as_str();
    let annotated: Vec<usize> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(marker))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(annotated.len(), 4, "fixture drifted");

    for &target in &annotated {
        let mutated: String = src
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == target {
                    // Truncate from the annotation onward; line numbering
                    // is preserved so every other allow still matches.
                    &l[..l.find(marker).unwrap()]
                } else {
                    l
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let f = lint("crates/tcpsim/src/fixture.rs", &mutated);
        assert_eq!(
            unsuppressed(&f).len(),
            1,
            "stripping the allow on fixture line {} should resurface exactly \
             its finding: {f:#?}",
            target + 1
        );
    }
}

#[test]
fn bad_allow_fixture_reports_a1_and_suppresses_nothing() {
    let src = include_str!("fixtures/bad_allow.rs");
    let f = lint("crates/netsim/src/fixture.rs", src);
    // Reason-less, unknown-rule, and wrong-verb annotations are each A1;
    // the hazards they sat next to stay unsuppressed.
    assert_eq!(
        positions(&f),
        vec![("R2", 3), ("A1", 3), ("A1", 5), ("R2", 6), ("A1", 8)],
        "{f:#?}"
    );
    assert_eq!(unsuppressed(&f).len(), f.len(), "{f:#?}");
}

#[test]
fn unused_allow_fixture_reports_a2() {
    let src = include_str!("fixtures/unused_allow.rs");
    let f = lint("crates/core/src/fixture.rs", src);
    assert_eq!(positions(&f), vec![("A2", 2)], "{f:#?}");
    assert!(f[0].suppressed.is_none());
}

#[test]
fn r8_unit_mismatch_fixture() {
    let src = include_str!("fixtures/r8_unit_mismatch.rs");
    let f = lint("crates/eventsim/src/fixture.rs", src);
    // Ctor-unit mismatch (ns→secs, ms→secs), accessor±literal both ways,
    // and hand-rolled conversion constants in both operand orders; the
    // typed/ratio/matching-ctor cases stay clean.
    assert_eq!(
        positions(&f),
        vec![
            ("R8", 6),
            ("R8", 10),
            ("R8", 14),
            ("R8", 18),
            ("R8", 22),
            ("R8", 26)
        ],
        "{f:#?}"
    );
    // Outside the sim crates the same source is clean.
    assert!(lint("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn r9_lossy_cast_fixture() {
    let src = include_str!("fixtures/r9_lossy_casts.rs");
    let f = lint("crates/eventsim/src/fixture.rs", src);
    // u64→u32 on time and sequence numbers, u128→u64 key unpack, and
    // f64→f32; widening casts, untracked domains, and test code are clean.
    assert_eq!(
        positions(&f),
        vec![("R9", 4), ("R9", 8), ("R9", 12), ("R9", 16)],
        "{f:#?}"
    );
    // R9's scope is the call-graph universe; topo sits outside it.
    assert!(lint("crates/topo/src/fixture.rs", src).is_empty());
}

#[test]
fn r10_eager_trace_fixture() {
    let src = include_str!("fixtures/r10_eager_trace.rs");
    let f = lint("crates/netsim/src/fixture.rs", src);
    // A closure-less emit and a trace-only local computed outside the
    // closure fire; lazy closures, load-bearing locals, and cheap field
    // copies are clean.
    assert_eq!(positions(&f), vec![("R10", 4), ("R10", 9)], "{f:#?}");
}

#[test]
fn r11_float_fold_fixture() {
    let src = include_str!("fixtures/r11_float_fold.rs");
    let f = lint("crates/tcpsim/src/fixture.rs", src);
    // `.sum::<f64>()`, `.fold(0.0, …)`, and a `+=` loop over an opaque
    // iterator method fire; slice-rooted chains and integer sums are clean.
    assert_eq!(
        positions(&f),
        vec![("R11", 13), ("R11", 17), ("R11", 23)],
        "{f:#?}"
    );
    // R11 is scoped to the sim crates.
    assert!(lint("crates/viz/src/fixture.rs", src).is_empty());
}

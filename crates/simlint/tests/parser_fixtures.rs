//! Parser fixture suite: each `tests/fixtures/parser/*.rs` snippet stresses
//! one recovery hazard (raw strings, nested generics, long chains, opaque
//! macros) and is asserted against the exact item/fn/call/reduction shape
//! the recursive-descent parser must extract — so a parser regression shows
//! up as a count drift here before it silently blinds a rule.

use simlint::ast::{self, ChainRoot, FileAst, ItemKind};
use simlint::lexer;

fn parse(src: &str) -> FileAst {
    ast::parse(&lexer::lex(src))
}

/// (kind, name) of every item, in source order.
fn items(ast: &FileAst) -> Vec<(ItemKind, &str)> {
    ast.items
        .iter()
        .map(|i| (i.kind, i.name.as_str()))
        .collect()
}

/// (joined path, line) of every call, in source order.
fn calls(ast: &FileAst) -> Vec<(String, u32)> {
    ast.calls
        .iter()
        .map(|c| (c.path.join("::"), c.line))
        .collect()
}

#[test]
fn raw_strings_are_opaque() {
    let ast = parse(include_str!("fixtures/parser/raw_strings.rs"));
    // The fn/struct/brace soup inside the string literals must not
    // surface as items, and `HashMap::new()` in a raw string is no call.
    assert_eq!(
        items(&ast),
        vec![(ItemKind::Fn, "render"), (ItemKind::Struct, "Page")]
    );
    assert_eq!(calls(&ast), vec![("to_string".to_string(), 9)]);
    // `format!` is skipped opaquely.
    assert_eq!(ast.skipped_macros, 1);
}

#[test]
fn nested_generics_do_not_derail_items() {
    let ast = parse(include_str!("fixtures/parser/nested_generics.rs"));
    // `Vec<(K, V)>>` lexes its closer as a `>>` shift token; the parser
    // must still find the impl's method and both free functions.
    assert_eq!(
        items(&ast),
        vec![
            (ItemKind::Use, ""),
            (ItemKind::Struct, "Table"),
            (ItemKind::Impl, "Table"),
            (ItemKind::Fn, "get_all"),
            (ItemKind::Fn, "total"),
            (ItemKind::Fn, "shift"),
        ]
    );
    let owners: Vec<(&str, Option<&str>)> = ast
        .fns
        .iter()
        .map(|f| (f.name.as_str(), f.owner.as_deref()))
        .collect();
    assert_eq!(
        owners,
        vec![("get_all", Some("Table")), ("total", None), ("shift", None)]
    );
    // All seven method calls survive, including the ones inside the
    // closure argument of `flat_map`.
    assert_eq!(
        calls(&ast),
        vec![
            ("get".to_string(), 13),
            ("cloned".to_string(), 13),
            ("values".to_string(), 18),
            ("flat_map".to_string(), 18),
            ("iter".to_string(), 18),
            ("copied".to_string(), 18),
            ("sum".to_string(), 18),
        ]
    );
    // The `::<u64>` turbofish keeps the reduction float-free.
    assert_eq!(ast.reductions.len(), 1);
    let r = &ast.reductions[0];
    assert_eq!(r.terminal, "sum");
    assert_eq!(r.links, vec!["values", "flat_map"]);
    assert_eq!(r.root, ChainRoot::Ident("counts".to_string()));
    assert!(!r.float_hint);
}

#[test]
fn method_chains_keep_root_and_links() {
    let ast = parse(include_str!("fixtures/parser/method_chains.rs"));
    assert_eq!(
        items(&ast),
        vec![
            (ItemKind::Struct, "Mix"),
            (ItemKind::Impl, "Mix"),
            (ItemKind::Fn, "best"),
            (ItemKind::Fn, "pairs"),
        ]
    );
    // A field-rooted multi-line chain: the fold terminal records every
    // intermediate link and classifies the root as the base identifier.
    assert_eq!(ast.reductions.len(), 1);
    let r = &ast.reductions[0];
    assert_eq!(r.terminal, "fold");
    assert_eq!(r.links, vec!["iter", "copied", "map"]);
    assert_eq!(r.root, ChainRoot::Ident("self".to_string()));
    assert!(r.float_hint, "f64::MIN seed must set the float hint");
    // Ten method calls across the two chains.
    assert_eq!(ast.calls.len(), 10);
    assert!(ast.calls.iter().all(|c| c.is_method));
}

#[test]
fn macro_bodies_are_skipped_opaquely() {
    let ast = parse(include_str!("fixtures/parser/macros_opaque.rs"));
    // The macro_rules body ($a:expr soup) must not eat the items after
    // it, and the assert_ne! invocation stays opaque too.
    assert_eq!(
        items(&ast),
        vec![
            (ItemKind::MacroDef, "emit_pair"),
            (ItemKind::Fn, "after_macro_def"),
            (ItemKind::Fn, "checked"),
            (ItemKind::Const, "LIMIT"),
        ]
    );
    assert_eq!(ast.skipped_macros, 2);
    // The only real call is the free-fn call between the macros.
    assert_eq!(calls(&ast), vec![("checked".to_string(), 12)]);
    let vis: Vec<bool> = ast.fns.iter().map(|f| f.is_pub).collect();
    assert_eq!(vis, vec![true, false]);
}

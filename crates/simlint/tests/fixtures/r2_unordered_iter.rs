// Known-bad fixture for R2 (unordered-collection): hash collections in a
// sim crate. Iteration order of HashMap/HashSet varies per process, so any
// event scheduled from such a loop reorders the whole run.
use std::collections::HashMap; // line 4: R2

fn tally(flows: &[u64]) {
    let mut seen = std::collections::HashSet::new(); // line 7: R2
    for f in flows {
        seen.insert(*f);
    }
    // A BTreeMap is the deterministic replacement and must not fire.
    let ordered: std::collections::BTreeMap<u64, u64> = Default::default();
    let _ = (seen, ordered);
}

#[cfg(test)]
mod tests {
    // R2 applies inside test code too: digest-comparison tests are exactly
    // where iteration order bites.
    fn t() {
        let s: super::HashMap<u32, u32> = Default::default(); // line 22: R2
        let _ = s;
    }
}

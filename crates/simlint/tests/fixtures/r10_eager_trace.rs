//! R10 known-bad fixture: eager trace emission.

pub fn no_closure(tracer: &Tracer, now: SimTime, seq: u64) {
    tracer.emit(now, TraceEvent::Send { seq }); // event built even when tracing is off
}

pub fn eager_args(ctx: &Ctx, seq: u64) {
    let qlen = queue_depth(seq) + 1;
    ctx.tracer().emit(ctx.now(), || TraceEvent::Queue { qlen });
}

pub fn lazy_ok(ctx: &Ctx, seq: u64) {
    ctx.tracer()
        .emit(ctx.now(), || TraceEvent::Queue { qlen: queue_depth(seq) + 1 });
}

pub fn load_bearing_ok(ctx: &Ctx, seq: u64) {
    let qlen = queue_depth(seq) + 1;
    record(qlen); // the value is used by non-trace code too
    ctx.tracer().emit(ctx.now(), || TraceEvent::Queue { qlen });
}

pub fn cheap_capture_ok(ctx: &Ctx, state: &State) {
    let conn = state.conn;
    ctx.tracer().emit(ctx.now(), || TraceEvent::Open { conn });
}

// Known-bad fixture for R7 (sim-threading): thread and lock machinery
// inside a single-threaded simulation crate. One simulation is sequential
// by contract; parallelism belongs to orchestra/bench, one level up.
use std::sync::mpsc; // line 4: R7

fn spawn_helper() {
    let worker = std::thread::spawn(run_once); // line 7: R7
    worker.join().ok();
    // std::thread mentioned in a comment is prose, not a path: no finding.
}

fn run_once() {}

// An identifier merely named `sync` is not the std::sync path.
fn sync(x: u32) -> u32 {
    x
}

#[cfg(test)]
mod tests {
    // Threaded *test harnesses* around the sequential model are fine: the
    // model itself stays concurrency-free.
    fn t() {
        std::thread::yield_now();
    }
}

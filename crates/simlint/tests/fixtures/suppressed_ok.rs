// Fixture: every hazard here carries a well-formed allow with a reason,
// so the file produces findings but zero UNSUPPRESSED findings.
// simlint: allow(R2) keyed lookups only; this map is never iterated
use std::collections::HashMap;

// simlint: allow(R1) profiling harness measuring real elapsed wall time
use std::time::Instant;

pub fn sample() {
    let started = Instant::now(); // simlint: allow(R1) profiling readout
    let m: HashMap<u32, u32> = Default::default(); // simlint: allow(R2) built and dropped, never iterated
    let _ = (started, m);
}

//! R8 known-bad fixture: unit mismatches in typed-time arithmetic.

use eventsim::{SimDuration, SimTime};

pub fn ctor_mismatch(dt_ns: u64) -> SimDuration {
    SimDuration::from_secs(dt_ns) // a nanosecond quantity fed to a seconds ctor
}

fn ctor_mismatch_ms(delay_ms: f64) -> SimDuration {
    SimDuration::from_secs_f64(delay_ms)
}

pub fn literal_mix(t: SimTime) -> u64 {
    t.as_nanos() + 500 // 500 *what*?
}

pub fn literal_mix_left(d: SimDuration) -> f64 {
    3.5 - d.as_secs_f64()
}

pub fn hand_conversion(elapsed_ns: u64) -> f64 {
    elapsed_ns as f64 / 1e9
}

pub fn hand_conversion_right(rtt: f64) -> f64 {
    1e9 * rtt
}

pub fn ok_typed(d: SimDuration) -> u64 {
    d.as_nanos() // clean: no raw arithmetic
}

pub fn ok_ratio(busy_ns: u64, elapsed_ns: u64) -> f64 {
    busy_ns as f64 / elapsed_ns as f64 // clean: same-unit ratio, no conversion constant
}

pub fn ok_matching_ctor(dt_ns: u64) -> SimDuration {
    SimDuration::from_nanos(dt_ns) // clean: units agree
}

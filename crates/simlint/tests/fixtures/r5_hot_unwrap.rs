// Known-bad fixture for R5 (hot-unwrap): panicking extractors in the
// event-loop hot path. Linted as a virtual `crates/eventsim/src/` file.
fn dispatch(events: &mut Vec<(u64, u32)>) {
    let head = events.pop().unwrap(); // line 4: R5
    let label = name_of(head.1).expect("endpoint must exist"); // line 5: R5
    let _ = (head, label);
}

fn name_of(_id: u32) -> Option<&'static str> {
    None
}

#[cfg(test)]
mod tests {
    // unwrap in test code is fine: a panicking test endangers no experiment.
    fn t() {
        Some(1).unwrap();
    }
}

//! R9 known-bad fixture: lossy `as` casts on time/sequence/DSN domains.

pub fn narrow_time(now_ns: u64) -> u32 {
    now_ns as u32 // truncates after ~4.3 simulated seconds
}

pub fn narrow_seq(seq: u64) -> u32 {
    seq as u32
}

pub fn key_unpack(key: u128) -> u64 {
    (key >> 64) as u64
}

pub fn srtt_to_f32(srtt: f64) -> f32 {
    srtt as f32 // halves the mantissa
}

pub fn widen_ok(count_ns: u64) -> u128 {
    count_ns as u128 // clean: widening cast
}

pub fn unrelated_ok(flags: u64) -> u32 {
    flags as u32 // clean: not a tracked domain
}

#[cfg(test)]
mod tests {
    #[test]
    fn cast_in_test_ok() {
        let now_ns = 5_u64;
        assert_eq!(now_ns as u32, 5); // clean: test code is exempt
    }
}

// Known-bad fixture for R3 (os-random): drawing entropy from the OS
// instead of the seeded SimRng. One such call makes a "seeded" run
// unrepeatable.
fn jitter() -> f64 {
    let mut rng = rand::thread_rng(); // line 5: R3
    rng.gen()
}

fn reseed() {
    let _rng = StdRng::from_entropy(); // line 10: R3
    let _os = OsRng; // line 11: R3
}

fn seeded_ok(seed: u64) {
    // The deterministic path must not fire.
    let _rng = SimRng::seed_from_u64(seed);
}

// Known-bad fixture for the viz crate: the renderer's byte-determinism
// contract means R1 (wall-clock) and R3 (os-random) apply to it exactly as
// to the sim crates, even though viz is a harness-side crate — a timestamp
// or random jitter in a page breaks golden-file identity. Linted as a
// virtual file inside `crates/viz/src/`.
use std::time::SystemTime; // line 6: R1

fn stamp_page(html: &mut String) {
    let now = SystemTime::now(); // line 9: R1
    let wall = Instant::now(); // line 10: R1
    let _jitter = rand::thread_rng().gen::<f64>(); // line 11: R3
    html.push_str("rendered");
    let _ = (now, wall);
}

fn parallel_ok(slots: &std::sync::Mutex<Vec<String>>) {
    // viz parallelizes page rendering across threads (slot-indexed, joined
    // in order) — R7 is scoped to the sim crates and must NOT fire here,
    // nor must R2 on a harness-side HashMap that is never iterated.
    let map = std::collections::HashMap::<u32, u32>::new();
    std::thread::scope(|_| {});
    let _ = (slots, map);
}

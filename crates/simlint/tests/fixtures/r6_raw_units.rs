// Known-bad fixture for R6 (raw-unit-api): a pub sim API taking bare f64
// seconds where SimDuration exists. Linted as a virtual sim-crate file.
pub fn run_for(warmup_s: f64, horizon_ms: f64) {
    // line 3: R6 twice (warmup_s, horizon_ms)
    let _ = (warmup_s, horizon_ms);
}

pub fn typed(duration: SimDuration, rate_bps: f64) {
    // Typed units and non-time f64s (rate_bps) must not fire.
    let _ = (duration, rate_bps);
}

fn private_helper(warmup_s: f64) -> f64 {
    // Private fns are not API surface; the unit stays local.
    warmup_s
}

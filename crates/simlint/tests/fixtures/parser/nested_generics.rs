//! Parser fixture: nested generics. The `>>` that closes
//! `Vec<(K, V)>>` lexes as a shift token and must not derail item or
//! signature parsing.

use std::collections::BTreeMap;

pub struct Table<K, V> {
    rows: BTreeMap<K, Vec<(K, V)>>,
}

impl<K: Ord + Clone, V: Clone> Table<K, V> {
    pub fn get_all(&self, key: &K) -> Option<Vec<(K, V)>> {
        self.rows.get(key).cloned()
    }
}

pub fn total(counts: &BTreeMap<String, Vec<u64>>) -> u64 {
    counts.values().flat_map(|v| v.iter().copied()).sum::<u64>()
}

pub fn shift(x: u64, n: u32) -> u64 {
    x >> n
}

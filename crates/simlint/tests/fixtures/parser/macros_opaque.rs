//! Parser fixture: macro bodies are skipped opaquely. The token soup in a
//! `macro_rules!` arm (or an invocation) follows macro grammar, not Rust
//! grammar, and must not corrupt recovery of the items that follow.

macro_rules! emit_pair {
    ($a:expr, $b:expr) => {
        ($a, $b)
    };
}

pub fn after_macro_def(x: u64) -> u64 {
    checked(x)
}

fn checked(x: u64) -> u64 {
    assert_ne!(x, 0);
    x + 1
}

pub const LIMIT: usize = 16;

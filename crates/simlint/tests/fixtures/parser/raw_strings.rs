//! Parser fixture: string and raw-string literals are opaque. The code-like
//! text inside them (fn keywords, braces, quotes) must not produce items
//! or calls.

pub fn render(name: &str) -> String {
    let header = r#"fn fake_item() { HashMap::new() }"#;
    let nested = r##"a "quoted #" and an unmatched { brace"##;
    let plain = "struct NotAnItem { x: u32 }";
    let owned = name.to_string();
    format!("{header}{nested}{plain}{owned}")
}

pub struct Page {
    pub body: String,
}

//! Parser fixture: method chains. Roots, intermediate links, and closure
//! arguments must be recovered so the order-stability classifier (R11)
//! has something to work with.

pub struct Mix {
    alphas: Vec<f64>,
}

impl Mix {
    pub fn best(&self) -> f64 {
        self.alphas
            .iter()
            .copied()
            .map(|a| a * 2.0)
            .fold(f64::MIN, f64::max)
    }
}

pub fn pairs(xs: &[u32]) -> Vec<(u32, u32)> {
    xs.iter()
        .zip(xs.iter().skip(1))
        .map(|(a, b)| (*a, *b))
        .collect()
}

// Known-bad fixture for R1 (wall-clock): reading real time from sim logic.
// Linted as a virtual file inside `crates/netsim/src/`; expected findings
// are asserted by tests/rules_fixtures.rs.
use std::time::Instant; // line 4: R1

fn service_delay() -> u64 {
    // "Instantaneous" in prose and `RedInstant` as an ident must NOT fire.
    let variant = RedInstant;
    let started = Instant::now(); // line 9: R1
    let _ = SystemTime::now(); // line 10: R1
    let _ = "Instant inside a string literal";
    started.elapsed().as_nanos() as u64 // line 12: R9 (u128 nanos → u64)
}

//! R11 known-bad fixture: order-sensitive float reductions.

pub struct Paths {
    alphas: Vec<f64>,
}

impl Paths {
    fn pending(&self) -> impl Iterator<Item = f64> + '_ {
        self.alphas.iter().copied()
    }

    pub fn unstable_sum(&self) -> f64 {
        self.pending().map(|a| a * 0.5).sum::<f64>()
    }

    pub fn unstable_fold(&self) -> f64 {
        self.pending().fold(0.0, |acc, a| acc + a)
    }

    pub fn unstable_loop(&self, others: &Paths) -> f64 {
        let mut acc = 0.0_f64;
        for a in others.pending() {
            acc += a * 2.0;
        }
        acc
    }

    pub fn stable_sum_ok(&self) -> f64 {
        self.alphas.iter().copied().sum::<f64>() // clean: slice iteration is ordered
    }

    pub fn stable_loop_ok(&self) -> f64 {
        let mut acc = 0.0_f64;
        for a in self.alphas.iter().copied() {
            acc += a * 2.0; // clean: ordered source
        }
        acc
    }

    pub fn int_sum_ok(&self, counts: &Counts) -> u64 {
        counts.pending().sum::<u64>() // clean: integer addition associates
    }
}

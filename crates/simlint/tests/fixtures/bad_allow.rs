// Fixture for A1 (bad-allow): annotations that are malformed, name an
// unknown rule, or omit the mandatory reason. None of them suppress.
use std::collections::HashMap; // simlint: allow(R2)

// simlint: allow(R99) no such rule
use std::collections::HashSet;

// simlint: deny(R2) wrong verb
fn misuse() {}

// Fixture for A2 (unused-allow): a stale annotation suppressing nothing.
// simlint: allow(R1) left behind after the Instant call was removed
fn clean() -> u64 {
    42
}

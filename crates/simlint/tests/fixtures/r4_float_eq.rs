// Known-bad fixture for R4 (float-eq): exact equality on floats in
// congestion-control math. Linted as a virtual file inside `crates/core/`.
fn alpha_weight(cwnd: f64, rtt: f64) -> f64 {
    if cwnd == 0.0 {
        // line 4: R4
        return 0.0;
    }
    if 1.0 != rtt {
        // line 8: R4
        return cwnd / rtt;
    }
    // Integer equality and tolerance comparisons must not fire.
    let k: u64 = 3;
    if k == 3 && (cwnd - 1.0).abs() < 1e-9 {
        return 1.0;
    }
    cwnd
}

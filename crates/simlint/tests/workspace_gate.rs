//! The gate itself, as a test: the real workspace must lint clean (zero
//! unsuppressed findings, every suppression carrying a reason), and every
//! inline `// simlint: allow` annotation in the real sources must be
//! load-bearing — deleting any one of them makes the gate fail.

use std::fs;
use std::path::{Path, PathBuf};

use simlint::config::Config;
use simlint::lexer::lex;
use simlint::rules::lint_source;
use simlint::{ast, graph, lexer, lint_workspace, lint_workspace_with, rules, walk};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn repo_config(root: &Path) -> Config {
    let text = fs::read_to_string(root.join("simlint.toml")).unwrap();
    simlint::config::parse(&text).unwrap()
}

#[test]
fn workspace_lints_clean_with_reasoned_suppressions() {
    let root = repo_root();
    let run = lint_workspace(&root).unwrap();
    assert!(run.files_scanned > 50, "walk missed the workspace");
    let unsuppressed: Vec<_> = run.unsuppressed().collect();
    assert!(
        unsuppressed.is_empty(),
        "gate would fail — unsuppressed findings: {unsuppressed:#?}"
    );
    assert!(
        !run.findings.is_empty(),
        "the workspace is expected to carry audited, suppressed findings \
         (profiling wall-clock reads, checked hot-path invariants)"
    );
    for f in &run.findings {
        let reason = f.suppressed.as_deref().unwrap();
        assert!(
            !reason.trim().is_empty(),
            "suppression without a written reason: {f:?}"
        );
    }
}

/// The (line, col) of every genuine inline allow annotation in `source`,
/// found with simlint's own lexer — so annotation text sitting inside
/// string literals (this crate's unit tests) or prose doc comments is
/// never mistaken for a suppression.
fn inline_allows(source: &str) -> Vec<(u32, u32)> {
    lex(source)
        .iter()
        .filter(|t| t.is_comment())
        .filter_map(|t| {
            let rest = t.text.strip_prefix("//")?;
            let rest = rest.strip_prefix(['/', '!']).unwrap_or(rest);
            let directive = rest.trim_start().strip_prefix("simlint:")?;
            directive
                .trim_start()
                .starts_with("allow(")
                .then_some((t.line, t.col))
        })
        .collect()
}

#[test]
fn deleting_any_inline_allow_in_real_sources_fails_the_gate() {
    let root = repo_root();
    let config = repo_config(&root);

    let mut exercised = 0usize;
    for path in walk::rust_files(&root).unwrap() {
        let rel = walk::relative(&root, &path);
        let source = fs::read_to_string(&path).unwrap();
        let allows = inline_allows(&source);
        if allows.is_empty() {
            continue;
        }
        let baseline = lint_source(&rel, &source, &config)
            .iter()
            .filter(|f| f.suppressed.is_none())
            .count();
        assert_eq!(baseline, 0, "{rel} is not clean before mutation");

        let lines: Vec<&str> = source.lines().collect();
        for &(line, col) in &allows {
            // Truncate the annotation's line at the comment start; every
            // other line keeps its number, so only this one allow
            // disappears.
            let mutated: String = lines
                .iter()
                .enumerate()
                .map(|(j, l)| {
                    if j + 1 == line as usize {
                        l.chars().take(col as usize - 1).collect()
                    } else {
                        (*l).to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            let resurfaced = lint_source(&rel, &mutated, &config)
                .iter()
                .filter(|f| f.suppressed.is_none())
                .count();
            assert!(
                resurfaced > 0,
                "deleting the allow at {rel}:{line} did not fail the gate — \
                 the annotation is stale"
            );
            exercised += 1;
        }
    }
    assert!(
        exercised >= 11,
        "expected to exercise all inline allows in the workspace, found {exercised}"
    );
}

/// Parse the real call-graph universe from disk, as `lint_workspace` does.
fn parse_universe(root: &Path) -> Vec<graph::ParsedFile> {
    walk::rust_files(root)
        .unwrap()
        .into_iter()
        .filter_map(|path| {
            let rel = walk::relative(root, &path);
            graph::GRAPH_UNIVERSE_PREFIXES
                .iter()
                .any(|p| rel.starts_with(p))
                .then(|| graph::ParsedFile {
                    ast: ast::parse(&lexer::lex(&fs::read_to_string(&path).unwrap())),
                    rel,
                })
        })
        .collect()
}

/// The v2 acceptance lock: the call-graph-derived hot-path set must be a
/// superset of the v1 hand-maintained prefix list, *before* the configured
/// seeds are unioned in — so retiring the hand list loses no coverage and
/// the seeds in simlint.toml are belt-and-suspenders, not load-bearing
/// for files the graph already reaches.
#[test]
fn derived_hot_set_covers_the_legacy_hand_list() {
    let root = repo_root();
    let universe = parse_universe(&root);
    let hot = graph::derive_hot_paths(&universe);
    assert!(
        !hot.matched_roots.is_empty(),
        "no call-graph root matched — the root patterns have drifted from \
         the sources"
    );

    // Same criterion as the A3 seed audit: a file with no non-test
    // functions has no R5 surface, so coverage there is vacuous (the
    // crate lib.rs files are pure re-exports).
    let mut checked = 0usize;
    for pf in &universe {
        let has_fns = pf.ast.fns.iter().any(|f| !f.is_test && !f.name.is_empty());
        if has_fns
            && rules::HOT_PATH_PREFIXES
                .iter()
                .any(|p| pf.rel.starts_with(p))
        {
            assert!(
                hot.files.contains(&pf.rel),
                "{} is on the legacy hand list but the derived set misses \
                 it — roots: {:?}, derived: {:?}",
                pf.rel,
                hot.matched_roots,
                hot.files
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 4,
        "legacy hand-list prefixes matched only {checked} files — the walk \
         or the prefixes have drifted"
    );
}

fn unsuppressed_count(root: &Path, config: &Config) -> usize {
    lint_workspace_with(root, config, true)
        .unwrap()
        .unsuppressed()
        .count()
}

/// Every `simlint.toml` entry is load-bearing. Removing any `[[allow]]`
/// resurfaces the findings it covers; the A3 audit stays quiet on the real
/// config and fires on a planted stale entry, in both stale flavors.
#[test]
fn every_simlint_toml_entry_is_load_bearing() {
    let root = repo_root();
    let config = repo_config(&root);
    assert_eq!(
        unsuppressed_count(&root, &config),
        0,
        "workspace is not clean under the real config"
    );
    assert!(
        !config.allows.is_empty() && !config.hotpath.seeds.is_empty(),
        "simlint.toml lost its entries"
    );

    // Dropping any one [[allow]] fails the gate.
    for i in 0..config.allows.len() {
        let mut pruned = config.clone();
        let dropped = pruned.allows.remove(i);
        assert!(
            unsuppressed_count(&root, &pruned) > 0,
            "[[allow]] path=\"{}\" rules={:?} suppresses nothing — stale \
             entry, remove it from simlint.toml",
            dropped.path,
            dropped.rules
        );
    }

    // The A3 audit agrees: quiet on the real config…
    let run = lint_workspace_with(&root, &config, true).unwrap();
    assert!(
        run.findings.iter().all(|f| f.rule != "A3"),
        "A3 fired on the checked-in simlint.toml: {:#?}",
        run.findings
            .iter()
            .filter(|f| f.rule == "A3")
            .collect::<Vec<_>>()
    );

    // …and loud on planted stale entries: a seed naming no file, and a
    // seed naming a real file the call graph cannot reach.
    let mut ghost = config.clone();
    ghost
        .hotpath
        .seeds
        .push("crates/netsim/src/no_such_module.rs".to_string());
    let run = lint_workspace_with(&root, &ghost, true).unwrap();
    assert!(
        run.findings
            .iter()
            .any(|f| f.rule == "A3" && f.suppressed.is_none() && f.file == "simlint.toml"),
        "a hot-path seed matching no file must be flagged A3"
    );

    // Every real universe file with functions is currently reachable
    // (that is the superset lock), so the unreachable flavor needs a
    // planted orphan: a file with a function no root can reach, run
    // through the same derive + audit pipeline as the real pass.
    let mut universe = parse_universe(&root);
    universe.push(graph::ParsedFile {
        rel: "crates/netsim/src/orphan.rs".to_string(),
        ast: ast::parse(&lexer::lex("pub fn lonely() {}\n")),
    });
    let hot = graph::derive_hot_paths(&universe);
    let issues = graph::audit_seeds(
        &["crates/netsim/src/orphan.rs".to_string()],
        &universe,
        &hot,
    );
    assert!(
        issues.iter().any(
            |i| matches!(&i.problem, graph::SeedProblem::Unreachable(f) if f.contains("orphan"))
        ),
        "a seed the graph cannot justify must be flagged: {issues:#?}"
    );

    // A planted allow that suppresses nothing is also A3.
    let mut useless = config.clone();
    useless.allows.push(simlint::config::PathAllow {
        path: "crates/topo/src/".to_string(),
        rules: vec!["R3".to_string()],
        reason: "planted: nothing to suppress here".to_string(),
        line: 999,
    });
    let run = lint_workspace_with(&root, &useless, true).unwrap();
    assert!(
        run.findings
            .iter()
            .any(|f| f.rule == "A3" && f.line == 999 && f.message.contains("suppresses nothing")),
        "an allow that suppresses nothing must be flagged A3"
    );
}

//! The gate itself, as a test: the real workspace must lint clean (zero
//! unsuppressed findings, every suppression carrying a reason), and every
//! inline `// simlint: allow` annotation in the real sources must be
//! load-bearing — deleting any one of them makes the gate fail.

use std::fs;
use std::path::{Path, PathBuf};

use simlint::config::Config;
use simlint::lexer::lex;
use simlint::rules::lint_source;
use simlint::{lint_workspace, walk};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn repo_config(root: &Path) -> Config {
    let text = fs::read_to_string(root.join("simlint.toml")).unwrap();
    simlint::config::parse(&text).unwrap()
}

#[test]
fn workspace_lints_clean_with_reasoned_suppressions() {
    let root = repo_root();
    let run = lint_workspace(&root).unwrap();
    assert!(run.files_scanned > 50, "walk missed the workspace");
    let unsuppressed: Vec<_> = run.unsuppressed().collect();
    assert!(
        unsuppressed.is_empty(),
        "gate would fail — unsuppressed findings: {unsuppressed:#?}"
    );
    assert!(
        !run.findings.is_empty(),
        "the workspace is expected to carry audited, suppressed findings \
         (profiling wall-clock reads, checked hot-path invariants)"
    );
    for f in &run.findings {
        let reason = f.suppressed.as_deref().unwrap();
        assert!(
            !reason.trim().is_empty(),
            "suppression without a written reason: {f:?}"
        );
    }
}

/// The (line, col) of every genuine inline allow annotation in `source`,
/// found with simlint's own lexer — so annotation text sitting inside
/// string literals (this crate's unit tests) or prose doc comments is
/// never mistaken for a suppression.
fn inline_allows(source: &str) -> Vec<(u32, u32)> {
    lex(source)
        .iter()
        .filter(|t| t.is_comment())
        .filter_map(|t| {
            let rest = t.text.strip_prefix("//")?;
            let rest = rest.strip_prefix(['/', '!']).unwrap_or(rest);
            let directive = rest.trim_start().strip_prefix("simlint:")?;
            directive
                .trim_start()
                .starts_with("allow(")
                .then_some((t.line, t.col))
        })
        .collect()
}

#[test]
fn deleting_any_inline_allow_in_real_sources_fails_the_gate() {
    let root = repo_root();
    let config = repo_config(&root);

    let mut exercised = 0usize;
    for path in walk::rust_files(&root).unwrap() {
        let rel = walk::relative(&root, &path);
        let source = fs::read_to_string(&path).unwrap();
        let allows = inline_allows(&source);
        if allows.is_empty() {
            continue;
        }
        let baseline = lint_source(&rel, &source, &config)
            .iter()
            .filter(|f| f.suppressed.is_none())
            .count();
        assert_eq!(baseline, 0, "{rel} is not clean before mutation");

        let lines: Vec<&str> = source.lines().collect();
        for &(line, col) in &allows {
            // Truncate the annotation's line at the comment start; every
            // other line keeps its number, so only this one allow
            // disappears.
            let mutated: String = lines
                .iter()
                .enumerate()
                .map(|(j, l)| {
                    if j + 1 == line as usize {
                        l.chars().take(col as usize - 1).collect()
                    } else {
                        (*l).to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            let resurfaced = lint_source(&rel, &mutated, &config)
                .iter()
                .filter(|f| f.suppressed.is_none())
                .count();
            assert!(
                resurfaced > 0,
                "deleting the allow at {rel}:{line} did not fail the gate — \
                 the annotation is stale"
            );
            exercised += 1;
        }
    }
    assert!(
        exercised >= 11,
        "expected to exercise all inline allows in the workspace, found {exercised}"
    );
}

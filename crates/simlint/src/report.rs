//! The machine-readable lint report (`mptcp-lint-report/v1`) and its
//! schema validator.
//!
//! Mirrors the run-report discipline from the bench harness: every CI run
//! writes `results/lint_report.json`, and the same binary re-reads and
//! validates it, so schema drift fails in the change that introduces it.
//! Suppressed findings are included with their reasons — the report is the
//! audit trail for every `allow` in the tree.
//!
//! Shape (all top-level fields required):
//!
//! ```json
//! {
//!   "schema": "mptcp-lint-report/v1",
//!   "root": ".",
//!   "files_scanned": 140,
//!   "rules": [ { "id": "R1", "name": "wall-clock", "summary": "…" } ],
//!   "findings": [
//!     { "rule": "R1", "file": "crates/netsim/src/profile.rs", "line": 65,
//!       "col": 25, "message": "…", "suppressed": true, "reason": "…" }
//!   ],
//!   "summary": { "suppressed": 9, "unsuppressed": 0 }
//! }
//! ```

use crate::json::Json;
use crate::rules::{Finding, META_RULES, RULES};

/// Version tag carried in every report's `schema` field.
pub const SCHEMA: &str = "mptcp-lint-report/v1";

/// Build the report document.
pub fn to_json(root: &str, files_scanned: usize, findings: &[Finding]) -> Json {
    let rules = RULES
        .iter()
        .chain(META_RULES)
        .map(|r| {
            Json::Obj(vec![
                ("id".into(), Json::Str(r.id.into())),
                ("name".into(), Json::Str(r.name.into())),
                ("summary".into(), Json::Str(r.summary.into())),
            ])
        })
        .collect();
    let entries = findings
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("rule".into(), Json::Str(f.rule.into())),
                ("file".into(), Json::Str(f.file.clone())),
                ("line".into(), Json::Num(f.line as f64)),
                ("col".into(), Json::Num(f.col as f64)),
                ("message".into(), Json::Str(f.message.clone())),
                ("suppressed".into(), Json::Bool(f.suppressed.is_some())),
                (
                    "reason".into(),
                    match &f.suppressed {
                        Some(reason) => Json::Str(reason.clone()),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    let suppressed = findings.iter().filter(|f| f.suppressed.is_some()).count();
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("root".into(), Json::Str(root.into())),
        ("files_scanned".into(), Json::Num(files_scanned as f64)),
        ("rules".into(), Json::Arr(rules)),
        ("findings".into(), Json::Arr(entries)),
        (
            "summary".into(),
            Json::Obj(vec![
                ("suppressed".into(), Json::Num(suppressed as f64)),
                (
                    "unsuppressed".into(),
                    Json::Num((findings.len() - suppressed) as f64),
                ),
            ]),
        ),
    ])
}

/// Validate a parsed report against `mptcp-lint-report/v1`.
pub fn validate(doc: &Json) -> Result<(), String> {
    let schema = field_str(doc, "schema")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    field_str(doc, "root")?;
    field_count(doc, "files_scanned")?;

    let known_ids: Vec<&str> = RULES.iter().chain(META_RULES).map(|r| r.id).collect();
    let rules = doc
        .get("rules")
        .and_then(Json::as_arr)
        .ok_or("missing `rules` array")?;
    for (i, rule) in rules.iter().enumerate() {
        for key in ["id", "name", "summary"] {
            field_str(rule, key).map_err(|e| format!("rules[{i}]: {e}"))?;
        }
    }

    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or("missing `findings` array")?;
    let mut suppressed = 0usize;
    for (i, f) in findings.iter().enumerate() {
        let at = |e: String| format!("findings[{i}]: {e}");
        let rule = field_str(f, "rule").map_err(at)?;
        if !known_ids.contains(&rule) {
            return Err(format!("findings[{i}]: unknown rule {rule:?}"));
        }
        field_str(f, "file").map_err(at)?;
        field_count(f, "line").map_err(at)?;
        field_count(f, "col").map_err(at)?;
        field_str(f, "message").map_err(at)?;
        let is_suppressed = match f.get("suppressed") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(format!("findings[{i}]: `suppressed` must be a bool")),
        };
        match (is_suppressed, f.get("reason")) {
            (true, Some(Json::Str(reason))) if !reason.trim().is_empty() => suppressed += 1,
            (true, _) => {
                return Err(format!(
                    "findings[{i}]: suppressed finding must carry a non-empty `reason`"
                ))
            }
            (false, Some(Json::Null)) => {}
            (false, _) => {
                return Err(format!(
                    "findings[{i}]: unsuppressed finding must have null `reason`"
                ))
            }
        }
    }

    let summary = doc.get("summary").ok_or("missing `summary`")?;
    let said_suppressed =
        field_count(summary, "suppressed").map_err(|e| format!("summary: {e}"))?;
    let said_unsuppressed =
        field_count(summary, "unsuppressed").map_err(|e| format!("summary: {e}"))?;
    if said_suppressed != suppressed || said_unsuppressed != findings.len() - suppressed {
        return Err(format!(
            "summary ({said_suppressed} suppressed / {said_unsuppressed} unsuppressed) \
             disagrees with the findings array ({} / {})",
            suppressed,
            findings.len() - suppressed
        ));
    }
    Ok(())
}

fn field_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn field_count(doc: &Json, key: &str) -> Result<usize, String> {
    let n = doc
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing numeric field `{key}`"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("field `{key}` must be a non-negative integer"));
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: "R1",
                file: "crates/netsim/src/profile.rs".into(),
                line: 65,
                col: 25,
                message: "wall-clock".into(),
                suppressed: Some("profiling is the point".into()),
            },
            Finding {
                rule: "R2",
                file: "crates/tcpsim/src/source.rs".into(),
                line: 73,
                col: 14,
                message: "unordered".into(),
                suppressed: None,
            },
        ]
    }

    #[test]
    fn report_round_trips_and_validates() {
        let doc = to_json(".", 140, &sample());
        let text = doc.pretty();
        let back = parse(&text).expect("report parses");
        validate(&back).expect("report validates");
    }

    #[test]
    fn validator_rejects_wrong_schema_and_lying_summary() {
        let doc = to_json(".", 1, &sample());
        let mut text = doc.pretty();
        text = text.replace("mptcp-lint-report/v1", "mptcp-lint-report/v0");
        assert!(validate(&parse(&text).unwrap())
            .unwrap_err()
            .contains("schema"));

        let text = to_json(".", 1, &sample())
            .pretty()
            .replace("\"unsuppressed\": 1", "\"unsuppressed\": 0");
        assert!(validate(&parse(&text).unwrap())
            .unwrap_err()
            .contains("disagrees"));
    }

    #[test]
    fn validator_requires_reasons_on_suppressed_findings() {
        let text = to_json(".", 1, &sample())
            .pretty()
            .replace("\"profiling is the point\"", "\"\"");
        assert!(validate(&parse(&text).unwrap())
            .unwrap_err()
            .contains("non-empty `reason`"));
    }
}

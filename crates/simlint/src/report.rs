//! The machine-readable lint report (`mptcp-lint-report/v2`) and its
//! schema validator.
//!
//! Mirrors the run-report discipline from the bench harness: every CI run
//! writes `results/lint_report.json`, and the same binary re-reads and
//! validates it, so schema drift fails in the change that introduces it.
//! Suppressed findings are included with their reasons — the report is the
//! audit trail for every `allow` in the tree.
//!
//! v2 adds three fields on top of v1 (the validator accepts both):
//! `rule_counts` (per-rule suppressed/unsuppressed tallies), `hot_paths`
//! (the call-graph-derived R5 hot-path file set), and `roots` (the
//! reachability root patterns plus the root functions actually matched).
//!
//! Shape (all top-level fields required):
//!
//! ```json
//! {
//!   "schema": "mptcp-lint-report/v2",
//!   "root": ".",
//!   "files_scanned": 152,
//!   "rules": [ { "id": "R1", "name": "wall-clock", "summary": "…" } ],
//!   "findings": [
//!     { "rule": "R1", "file": "crates/netsim/src/profile.rs", "line": 65,
//!       "col": 25, "message": "…", "suppressed": true, "reason": "…" }
//!   ],
//!   "rule_counts": { "R1": { "suppressed": 4, "unsuppressed": 0 }, … },
//!   "hot_paths": [ "crates/eventsim/src/queue.rs", … ],
//!   "roots": { "patterns": [ "EventQueue::pop*", … ],
//!              "matched": [ "crates/eventsim/src/queue.rs: EventQueue::pop", … ] },
//!   "summary": { "suppressed": 28, "unsuppressed": 0 }
//! }
//! ```

use crate::json::Json;
use crate::rules::{META_RULES, RULES};
use crate::LintRun;

/// Version tag carried in every report's `schema` field.
pub const SCHEMA: &str = "mptcp-lint-report/v2";

/// The previous schema version, still accepted by [`validate`] so reports
/// written by older checkouts keep validating.
pub const SCHEMA_V1: &str = "mptcp-lint-report/v1";

/// Build the report document.
pub fn to_json(root: &str, run: &LintRun) -> Json {
    let rules = RULES
        .iter()
        .chain(META_RULES)
        .map(|r| {
            Json::Obj(vec![
                ("id".into(), Json::Str(r.id.into())),
                ("name".into(), Json::Str(r.name.into())),
                ("summary".into(), Json::Str(r.summary.into())),
            ])
        })
        .collect();
    let entries = run
        .findings
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("rule".into(), Json::Str(f.rule.into())),
                ("file".into(), Json::Str(f.file.clone())),
                ("line".into(), Json::Num(f.line as f64)),
                ("col".into(), Json::Num(f.col as f64)),
                ("message".into(), Json::Str(f.message.clone())),
                ("suppressed".into(), Json::Bool(f.suppressed.is_some())),
                (
                    "reason".into(),
                    match &f.suppressed {
                        Some(reason) => Json::Str(reason.clone()),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    let rule_counts = RULES
        .iter()
        .chain(META_RULES)
        .map(|r| {
            let (mut sup, mut unsup) = (0usize, 0usize);
            for f in run.findings.iter().filter(|f| f.rule == r.id) {
                if f.suppressed.is_some() {
                    sup += 1;
                } else {
                    unsup += 1;
                }
            }
            (
                r.id.to_string(),
                Json::Obj(vec![
                    ("suppressed".into(), Json::Num(sup as f64)),
                    ("unsuppressed".into(), Json::Num(unsup as f64)),
                ]),
            )
        })
        .collect();
    let suppressed = run
        .findings
        .iter()
        .filter(|f| f.suppressed.is_some())
        .count();
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("root".into(), Json::Str(root.into())),
        ("files_scanned".into(), Json::Num(run.files_scanned as f64)),
        ("rules".into(), Json::Arr(rules)),
        ("findings".into(), Json::Arr(entries)),
        ("rule_counts".into(), Json::Obj(rule_counts)),
        (
            "hot_paths".into(),
            Json::Arr(run.hot_paths.iter().map(|p| Json::Str(p.clone())).collect()),
        ),
        (
            "roots".into(),
            Json::Obj(vec![
                (
                    "patterns".into(),
                    Json::Arr(run.roots.iter().map(|p| Json::Str(p.clone())).collect()),
                ),
                (
                    "matched".into(),
                    Json::Arr(
                        run.matched_roots
                            .iter()
                            .map(|p| Json::Str(p.clone()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "summary".into(),
            Json::Obj(vec![
                ("suppressed".into(), Json::Num(suppressed as f64)),
                (
                    "unsuppressed".into(),
                    Json::Num((run.findings.len() - suppressed) as f64),
                ),
            ]),
        ),
    ])
}

/// Validate a parsed report against `mptcp-lint-report/v1` or `/v2`.
pub fn validate(doc: &Json) -> Result<(), String> {
    let schema = field_str(doc, "schema")?;
    if schema != SCHEMA && schema != SCHEMA_V1 {
        return Err(format!(
            "schema is {schema:?}, expected {SCHEMA:?} (or legacy {SCHEMA_V1:?})"
        ));
    }
    let v2 = schema == SCHEMA;
    field_str(doc, "root")?;
    field_count(doc, "files_scanned")?;

    let known_ids: Vec<&str> = RULES.iter().chain(META_RULES).map(|r| r.id).collect();
    let rules = doc
        .get("rules")
        .and_then(Json::as_arr)
        .ok_or("missing `rules` array")?;
    for (i, rule) in rules.iter().enumerate() {
        for key in ["id", "name", "summary"] {
            field_str(rule, key).map_err(|e| format!("rules[{i}]: {e}"))?;
        }
    }

    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or("missing `findings` array")?;
    let mut suppressed = 0usize;
    let mut per_rule: Vec<(&str, usize, usize)> = Vec::new();
    for (i, f) in findings.iter().enumerate() {
        let at = |e: String| format!("findings[{i}]: {e}");
        let rule = field_str(f, "rule").map_err(at)?;
        if !known_ids.contains(&rule) {
            return Err(format!("findings[{i}]: unknown rule {rule:?}"));
        }
        field_str(f, "file").map_err(at)?;
        field_count(f, "line").map_err(at)?;
        field_count(f, "col").map_err(at)?;
        field_str(f, "message").map_err(at)?;
        let is_suppressed = match f.get("suppressed") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(format!("findings[{i}]: `suppressed` must be a bool")),
        };
        match (is_suppressed, f.get("reason")) {
            (true, Some(Json::Str(reason))) if !reason.trim().is_empty() => suppressed += 1,
            (true, _) => {
                return Err(format!(
                    "findings[{i}]: suppressed finding must carry a non-empty `reason`"
                ))
            }
            (false, Some(Json::Null)) => {}
            (false, _) => {
                return Err(format!(
                    "findings[{i}]: unsuppressed finding must have null `reason`"
                ))
            }
        }
        match per_rule.iter_mut().find(|(r, _, _)| *r == rule) {
            Some(entry) => {
                if is_suppressed {
                    entry.1 += 1;
                } else {
                    entry.2 += 1;
                }
            }
            None => per_rule.push((
                rule,
                usize::from(is_suppressed),
                usize::from(!is_suppressed),
            )),
        }
    }

    if v2 {
        let counts = doc
            .get("rule_counts")
            .and_then(Json::as_obj)
            .ok_or("missing `rule_counts` object")?;
        for (id, entry) in counts {
            if !known_ids.contains(&id.as_str()) {
                return Err(format!("rule_counts: unknown rule {id:?}"));
            }
            let sup =
                field_count(entry, "suppressed").map_err(|e| format!("rule_counts.{id}: {e}"))?;
            let unsup =
                field_count(entry, "unsuppressed").map_err(|e| format!("rule_counts.{id}: {e}"))?;
            let (actual_sup, actual_unsup) = per_rule
                .iter()
                .find(|(r, _, _)| *r == id)
                .map(|(_, s, u)| (*s, *u))
                .unwrap_or((0, 0));
            if sup != actual_sup || unsup != actual_unsup {
                return Err(format!(
                    "rule_counts.{id} ({sup}/{unsup}) disagrees with the findings array \
                     ({actual_sup}/{actual_unsup})"
                ));
            }
        }
        for (rule, _, _) in &per_rule {
            if !counts.iter().any(|(id, _)| id == rule) {
                return Err(format!("rule_counts: missing entry for rule {rule:?}"));
            }
        }
        let hot = doc
            .get("hot_paths")
            .and_then(Json::as_arr)
            .ok_or("missing `hot_paths` array")?;
        for (i, p) in hot.iter().enumerate() {
            if p.as_str().is_none() {
                return Err(format!("hot_paths[{i}]: must be a string"));
            }
        }
        let roots = doc.get("roots").ok_or("missing `roots`")?;
        for key in ["patterns", "matched"] {
            let arr = roots
                .get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("roots: missing `{key}` array"))?;
            for (i, p) in arr.iter().enumerate() {
                if p.as_str().is_none() {
                    return Err(format!("roots.{key}[{i}]: must be a string"));
                }
            }
        }
    }

    let summary = doc.get("summary").ok_or("missing `summary`")?;
    let said_suppressed =
        field_count(summary, "suppressed").map_err(|e| format!("summary: {e}"))?;
    let said_unsuppressed =
        field_count(summary, "unsuppressed").map_err(|e| format!("summary: {e}"))?;
    if said_suppressed != suppressed || said_unsuppressed != findings.len() - suppressed {
        return Err(format!(
            "summary ({said_suppressed} suppressed / {said_unsuppressed} unsuppressed) \
             disagrees with the findings array ({} / {})",
            suppressed,
            findings.len() - suppressed
        ));
    }
    Ok(())
}

fn field_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn field_count(doc: &Json, key: &str) -> Result<usize, String> {
    let n = doc
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing numeric field `{key}`"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("field `{key}` must be a non-negative integer"));
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::rules::Finding;

    fn sample() -> LintRun {
        LintRun {
            files_scanned: 140,
            findings: vec![
                Finding {
                    rule: "R1",
                    file: "crates/netsim/src/profile.rs".into(),
                    line: 65,
                    col: 25,
                    message: "wall-clock".into(),
                    suppressed: Some("profiling is the point".into()),
                },
                Finding {
                    rule: "R2",
                    file: "crates/tcpsim/src/source.rs".into(),
                    line: 73,
                    col: 14,
                    message: "unordered".into(),
                    suppressed: None,
                },
            ],
            hot_paths: vec!["crates/eventsim/src/queue.rs".into()],
            roots: vec!["EventQueue::pop*".into()],
            matched_roots: vec!["crates/eventsim/src/queue.rs: EventQueue::pop".into()],
        }
    }

    #[test]
    fn report_round_trips_and_validates() {
        let doc = to_json(".", &sample());
        let text = doc.pretty();
        let back = parse(&text).expect("report parses");
        validate(&back).expect("report validates");
    }

    #[test]
    fn validator_rejects_wrong_schema_and_lying_summary() {
        let doc = to_json(".", &sample());
        let mut text = doc.pretty();
        text = text.replace("mptcp-lint-report/v2", "mptcp-lint-report/v0");
        assert!(validate(&parse(&text).unwrap())
            .unwrap_err()
            .contains("schema"));

        let text = to_json(".", &sample())
            .pretty()
            .replace("\"unsuppressed\": 1", "\"unsuppressed\": 0");
        assert!(validate(&parse(&text).unwrap()).is_err());
    }

    #[test]
    fn validator_requires_reasons_on_suppressed_findings() {
        let text = to_json(".", &sample())
            .pretty()
            .replace("\"profiling is the point\"", "\"\"");
        assert!(validate(&parse(&text).unwrap())
            .unwrap_err()
            .contains("non-empty `reason`"));
    }

    #[test]
    fn validator_checks_v2_rule_counts_against_findings() {
        // Lying per-rule tally: R1 claims no suppressed finding.
        let text =
            to_json(".", &sample())
                .pretty()
                .replacen("\"suppressed\": 1", "\"suppressed\": 0", 1);
        let err = validate(&parse(&text).unwrap()).unwrap_err();
        assert!(
            err.contains("rule_counts") || err.contains("disagrees"),
            "{err}"
        );
    }

    #[test]
    fn validator_accepts_legacy_v1_reports_without_v2_fields() {
        // A v1 report has no rule_counts/hot_paths/roots.
        let v1 = r#"{
            "schema": "mptcp-lint-report/v1",
            "root": ".",
            "files_scanned": 1,
            "rules": [{"id": "R1", "name": "wall-clock", "summary": "s"}],
            "findings": [],
            "summary": {"suppressed": 0, "unsuppressed": 0}
        }"#;
        validate(&parse(v1).unwrap()).expect("v1 validates");
    }
}

//! Cross-file symbol table, call graph, and hot-path derivation.
//!
//! R5 ("no unwrap in the event-loop hot path") used to scope over a
//! hand-maintained file list that drifted every time the event loop grew a
//! helper. This module derives the hot set instead: collect every non-test
//! `fn` in the event-loop crates, resolve call expressions against a
//! name/owner symbol table, and take reachability from the declared roots
//! — the scheduler pops ([`EventQueue::pop*`]), the netsim dispatch loop,
//! and the per-ACK/per-packet entry points. Any file containing a
//! reachable function is hot.
//!
//! Name resolution is deliberately an *over*-approximation: a method call
//! `x.pop()` edges to every known `pop`, a path call `Owner::f()` prefers
//! owner-matched candidates but falls back to any `f`. False edges only
//! ever widen the hot set — for a lint that bans panics in hot code,
//! widening is the safe direction, and the derived-superset test in the
//! workspace gate locks the floor.
//!
//! [`EventQueue::pop*`]: HOT_ROOT_PATTERNS

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::FileAst;

/// Crates whose functions participate in the call graph: everything the
/// event loop can execute between two events. Harness crates (bench,
/// orchestra, viz, …) run outside the loop and stay out of the universe.
pub const GRAPH_UNIVERSE_PREFIXES: &[&str] = &[
    "crates/eventsim/src/",
    "crates/netsim/src/",
    "crates/tcpsim/src/",
    "crates/core/src/",
    "crates/flowsim/src/",
];

/// Call-graph roots as `Owner::name` patterns. `*` as the owner matches
/// any (or no) `impl` type; a trailing `*` on the name is a prefix match.
///
/// * `EventQueue::pop*` — the scheduler's extraction points;
/// * `Simulation::run_until` / `Simulation::dispatch` — the netsim event
///   pump and its per-event dispatcher;
/// * `*::on_ack` — the per-ACK congestion-control entry point every
///   `CongestionControl` impl provides;
/// * `*::on_packet` — the per-packet endpoint entry point;
/// * `FlowSim::run_until` — the flow-level backend's event pump (rate
///   recomputes and completions instead of packets).
pub const HOT_ROOT_PATTERNS: &[&str] = &[
    "EventQueue::pop*",
    "Simulation::run_until",
    "Simulation::dispatch",
    "*::on_ack",
    "*::on_packet",
    "FlowSim::run_until",
];

/// One parsed file, as the graph consumes it.
pub struct ParsedFile {
    /// Workspace-relative path (forward slashes).
    pub rel: String,
    /// Its AST.
    pub ast: FileAst,
}

/// The derivation result.
#[derive(Debug)]
pub struct HotPaths {
    /// Files containing at least one root-reachable non-test function.
    pub files: BTreeSet<String>,
    /// The root patterns (echoed into the report so downstream tooling
    /// can see what reachability was seeded from).
    pub roots: Vec<String>,
    /// Root functions actually matched, as `file: Owner::name` (or
    /// `file: name` for free functions), sorted.
    pub matched_roots: Vec<String>,
}

/// One problem found by [`audit_seeds`]: a configured hot-path seed the
/// derived set no longer covers.
#[derive(Debug)]
pub struct SeedIssue {
    /// The seed prefix from the config.
    pub seed: String,
    /// What went stale.
    pub problem: SeedProblem,
}

/// Why a hot-path seed is stale.
#[derive(Debug)]
pub enum SeedProblem {
    /// No scanned file matches the seed prefix at all.
    NoSuchFile,
    /// The named file has functions but none is reachable from the roots.
    Unreachable(String),
}

/// A function node in the call graph.
struct Node {
    file: usize,
    name: String,
    owner: Option<String>,
}

/// Derive the hot-path file set by reachability from
/// [`HOT_ROOT_PATTERNS`].
pub fn derive_hot_paths(files: &[ParsedFile]) -> HotPaths {
    // Nodes: every non-test fn in a universe file. `fn_idx` in the AST
    // counts all fns (test ones included), so keep that mapping intact.
    let mut nodes: Vec<Node> = Vec::new();
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (fi, pf) in files.iter().enumerate() {
        if !in_universe(&pf.rel) {
            continue;
        }
        for (i, f) in pf.ast.fns.iter().enumerate() {
            if f.is_test || f.name.is_empty() {
                continue;
            }
            node_of.insert((fi, i), nodes.len());
            nodes.push(Node {
                file: fi,
                name: f.name.clone(),
                owner: f.owner.clone(),
            });
        }
    }

    // Symbol table: by bare name, and by (owner, name).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (id, n) in nodes.iter().enumerate() {
        by_name.entry(&n.name).or_default().push(id);
        if let Some(owner) = &n.owner {
            by_owner
                .entry((owner.as_str(), n.name.as_str()))
                .or_default()
                .push(id);
        }
    }

    // Edges: resolve every call made from inside a node.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (fi, pf) in files.iter().enumerate() {
        if !in_universe(&pf.rel) {
            continue;
        }
        for call in &pf.ast.calls {
            let Some(fn_idx) = call.fn_idx else { continue };
            let Some(&from) = node_of.get(&(fi, fn_idx)) else {
                continue; // call inside a test fn
            };
            let targets: Vec<usize> = if call.is_method || call.path.len() == 1 {
                let name = call.path.last().map(String::as_str).unwrap_or("");
                by_name.get(name).cloned().unwrap_or_default()
            } else {
                let name = call.path[call.path.len() - 1].as_str();
                let owner = call.path[call.path.len() - 2].as_str();
                match by_owner.get(&(owner, name)) {
                    Some(t) => t.clone(),
                    // `Self::f()`, trait-object calls, re-exported types:
                    // fall back to any fn of that name.
                    None => by_name.get(name).cloned().unwrap_or_default(),
                }
            };
            edges[from].extend(targets);
        }
    }

    // Roots, then BFS.
    let mut reachable = vec![false; nodes.len()];
    let mut queue: Vec<usize> = Vec::new();
    let mut matched_roots: Vec<String> = Vec::new();
    for (id, n) in nodes.iter().enumerate() {
        if HOT_ROOT_PATTERNS.iter().any(|p| matches_root(p, n)) {
            reachable[id] = true;
            queue.push(id);
            let owner = n
                .owner
                .as_deref()
                .map(|o| format!("{o}::"))
                .unwrap_or_default();
            matched_roots.push(format!("{}: {owner}{}", files[n.file].rel, n.name));
        }
    }
    while let Some(id) = queue.pop() {
        for &next in &edges[id] {
            if !reachable[next] {
                reachable[next] = true;
                queue.push(next);
            }
        }
    }

    let mut hot_files = BTreeSet::new();
    for (id, n) in nodes.iter().enumerate() {
        if reachable[id] {
            hot_files.insert(files[n.file].rel.clone());
        }
    }
    matched_roots.sort();
    matched_roots.dedup();
    HotPaths {
        files: hot_files,
        roots: HOT_ROOT_PATTERNS.iter().map(|s| s.to_string()).collect(),
        matched_roots,
    }
}

/// Check each configured hot-path seed against the derived set: every
/// universe file under the seed that declares at least one non-test
/// function must be reachable. Seeds are how the previous hand-maintained
/// list stays verified — a seed the graph can no longer reach is a
/// finding, not a silent scope shrink.
pub fn audit_seeds(seeds: &[String], files: &[ParsedFile], hot: &HotPaths) -> Vec<SeedIssue> {
    let mut issues = Vec::new();
    for seed in seeds {
        let mut matched_any = false;
        for pf in files {
            if !pf.rel.starts_with(seed.as_str()) {
                continue;
            }
            matched_any = true;
            if !in_universe(&pf.rel) {
                continue; // seed outside the graph universe: existence only
            }
            let has_fns = pf.ast.fns.iter().any(|f| !f.is_test && !f.name.is_empty());
            if has_fns && !hot.files.contains(&pf.rel) {
                issues.push(SeedIssue {
                    seed: seed.clone(),
                    problem: SeedProblem::Unreachable(pf.rel.clone()),
                });
            }
        }
        if !matched_any {
            issues.push(SeedIssue {
                seed: seed.clone(),
                problem: SeedProblem::NoSuchFile,
            });
        }
    }
    issues
}

fn in_universe(rel: &str) -> bool {
    GRAPH_UNIVERSE_PREFIXES.iter().any(|p| rel.starts_with(p))
}

/// Match a node against an `Owner::name` pattern.
fn matches_root(pattern: &str, node: &Node) -> bool {
    let Some((owner_pat, name_pat)) = pattern.split_once("::") else {
        return false;
    };
    let owner_ok = owner_pat == "*" || node.owner.as_deref() == Some(owner_pat);
    if !owner_ok {
        return false;
    }
    match name_pat.strip_suffix('*') {
        Some(prefix) => node.name.starts_with(prefix),
        None => node.name == name_pat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pf(rel: &str, src: &str) -> ParsedFile {
        ParsedFile {
            rel: rel.to_string(),
            ast: crate::ast::parse(&lex(src)),
        }
    }

    #[test]
    fn reachability_spreads_from_roots_across_files() {
        let files = vec![
            pf(
                "crates/eventsim/src/queue.rs",
                "impl EventQueue {\n  pub fn pop(&mut self) { unpack_time(1); }\n}\nfn unpack_time(k: u128) {}\n",
            ),
            pf(
                "crates/eventsim/src/time.rs",
                "impl SimTime { pub fn from_nanos(n: u64) -> Self { SimTime(n) } }\n",
            ),
            pf(
                "crates/netsim/src/sim.rs",
                "impl Simulation {\n  pub fn run_until(&mut self) { self.dispatch(); }\n  fn dispatch(&mut self) { helper(); }\n}\nfn helper() { SimTime::from_nanos(3); }\n",
            ),
            pf(
                "crates/netsim/src/cold.rs",
                "pub fn build_report() -> u32 { 42 }\n",
            ),
        ];
        let hot = derive_hot_paths(&files);
        assert!(hot.files.contains("crates/eventsim/src/queue.rs"));
        assert!(
            hot.files.contains("crates/eventsim/src/time.rs"),
            "from_nanos reached through helper: {hot:#?}"
        );
        assert!(hot.files.contains("crates/netsim/src/sim.rs"));
        assert!(
            !hot.files.contains("crates/netsim/src/cold.rs"),
            "unreferenced reporting code must not be hot: {hot:#?}"
        );
        assert!(hot
            .matched_roots
            .iter()
            .any(|r| r.contains("EventQueue::pop")));
    }

    #[test]
    fn on_ack_roots_match_any_impl_owner() {
        let files = vec![pf(
            "crates/core/src/olia.rs",
            "impl CongestionControl for Olia {\n  fn on_ack(&mut self) -> f64 { shared_math() }\n}\nfn shared_math() -> f64 { 0.0 }\nfn unused() {}\n",
        )];
        let hot = derive_hot_paths(&files);
        assert!(hot.files.contains("crates/core/src/olia.rs"));
        assert!(hot.matched_roots.iter().any(|r| r.contains("Olia::on_ack")));
    }

    #[test]
    fn test_fns_are_neither_nodes_nor_roots() {
        let files = vec![pf(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n  fn on_ack() { helper(); }\n}\nfn helper() {}\n",
        )];
        let hot = derive_hot_paths(&files);
        assert!(hot.files.is_empty(), "{hot:#?}");
    }

    #[test]
    fn seed_audit_flags_missing_and_unreachable_seeds() {
        let files = vec![
            pf(
                "crates/eventsim/src/queue.rs",
                "impl EventQueue { pub fn pop(&mut self) {} }\n",
            ),
            pf("crates/netsim/src/island.rs", "pub fn lonely() {}\n"),
        ];
        let hot = derive_hot_paths(&files);
        let seeds = vec![
            "crates/eventsim/src/".to_string(),
            "crates/netsim/src/island.rs".to_string(),
            "crates/netsim/src/gone.rs".to_string(),
        ];
        let issues = audit_seeds(&seeds, &files, &hot);
        assert_eq!(issues.len(), 2, "{issues:#?}");
        assert!(issues.iter().any(|i| i.seed.ends_with("island.rs")
            && matches!(&i.problem, SeedProblem::Unreachable(f) if f.ends_with("island.rs"))));
        assert!(issues
            .iter()
            .any(|i| i.seed.ends_with("gone.rs") && matches!(i.problem, SeedProblem::NoSuchFile)));
    }

    #[test]
    fn files_with_no_fns_do_not_fail_the_seed_audit() {
        // eventsim/src/lib.rs is re-exports only; a seed covering it must
        // still pass.
        let files = vec![
            pf("crates/eventsim/src/lib.rs", "pub use queue::EventQueue;\n"),
            pf(
                "crates/eventsim/src/queue.rs",
                "impl EventQueue { pub fn pop(&mut self) {} }\n",
            ),
        ];
        let hot = derive_hot_paths(&files);
        let issues = audit_seeds(&["crates/eventsim/src/".to_string()], &files, &hot);
        assert!(issues.is_empty(), "{issues:#?}");
    }
}

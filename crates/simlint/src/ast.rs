//! A minimal workspace AST, built by recursive descent over the
//! [`crate::lexer`] token stream.
//!
//! This is *not* a Rust parser — it is exactly the syntax awareness the
//! semantic rules (R8–R11) and the call-graph hot-path derivation (R5)
//! need, and nothing more:
//!
//! * **items** — `fn`/`struct`/`enum`/`trait`/`impl`/`mod`/… with names
//!   and lines, so fixture tests can assert structural counts;
//! * **fn declarations** — name, owning `impl` type, parameter names and
//!   type text, return-type text, test-ness, so the symbol table can key
//!   `Owner::name`;
//! * **call expressions** — path calls (`SimTime::from_nanos(x)`) and
//!   method calls (`q.pop()`), with argument spans and receiver-chain
//!   identifiers, feeding the call graph (R5), constructor-unit checks
//!   (R8), and the lazy-trace rule (R10);
//! * **`as` casts** — target type text plus the identifiers feeding the
//!   operand expression (R9);
//! * **reduction chains** — `.sum()`/`.product()`/`.fold(..)` terminals
//!   with their full method chain and chain root classified (R11);
//! * **`for` loops** — the iterated chain plus the body token span, for
//!   R11's `+=` accumulation prong.
//!
//! Macro invocations are skipped opaquely (the token soup inside a macro
//! follows macro grammar, not Rust grammar); the parser counts them so
//! fixture tests can assert they were seen and skipped. Like the lexer,
//! the parser never fails: unrecognised constructs are skipped token by
//! token — a linter should degrade, not crash, on exotic input.

use crate::lexer::{Token, TokenKind};

/// What an [`Item`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A `fn` item (free or associated; also recorded in [`FileAst::fns`]).
    Fn,
    /// A `struct` definition.
    Struct,
    /// An `enum` definition.
    Enum,
    /// A `union` definition.
    Union,
    /// A `trait` definition.
    Trait,
    /// An `impl` block.
    Impl,
    /// A `mod` (inline or file-level declaration).
    Mod,
    /// A `use` declaration.
    Use,
    /// A `const` item.
    Const,
    /// A `static` item.
    Static,
    /// A `type` alias.
    TypeAlias,
    /// A `macro_rules!` definition (body skipped opaquely).
    MacroDef,
    /// An item-position macro invocation (skipped opaquely).
    MacroInvocation,
    /// An `extern crate` declaration.
    ExternCrate,
}

/// One top-level or nested item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Classification.
    pub kind: ItemKind,
    /// The item's name (`""` where the grammar has none, e.g. `impl`
    /// blocks carry the self-type instead).
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: u32,
}

/// One parameter of a [`FnDecl`].
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (last identifier of the pattern).
    pub name: String,
    /// Type text, tokens space-joined (`"& mut SimTime"`).
    pub ty: String,
}

/// One `fn` declaration (free function, associated function, or method).
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl` block, if any. For
    /// `impl Trait for Type` this is `Type` — calls dispatch on the
    /// implementing type.
    pub owner: Option<String>,
    /// Parameters (a `self` receiver is not listed).
    pub params: Vec<Param>,
    /// Return-type text, space-joined, if declared.
    pub ret: Option<String>,
    /// Declared `pub` (any visibility scope).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
}

/// How the root of a method chain was classified (for order-stability).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainRoot {
    /// A plain identifier or field path (`self.paths`, `rates`).
    Ident(String),
    /// A literal (`0.5f64`).
    Lit,
    /// A parenthesised range expression (`(0..n)`), or a bare range in
    /// `for` position.
    Range,
    /// An array literal (`[a, b]`).
    ArrayLit,
    /// A free/path call (`lia_rates(paths)`), name kept for diagnostics.
    Call(String),
    /// A parenthesised expression that is not a range.
    Paren,
    /// Anything the walker could not classify.
    Unknown,
}

/// One argument of a [`Call`].
#[derive(Debug, Clone)]
pub struct Arg {
    /// The argument is a closure (`|..| ..` / `move |..| ..`).
    pub is_closure: bool,
    /// Token span `[start, end)` (original token indices).
    pub span: (usize, usize),
}

/// One call expression.
#[derive(Debug, Clone)]
pub struct Call {
    /// Path segments: `["SimTime", "from_nanos"]` for a path call,
    /// `["pop"]` for a method call.
    pub path: Vec<String>,
    /// Method-call syntax (`recv.name(..)`).
    pub is_method: bool,
    /// Identifiers in a method call's receiver chain (root, fields, and
    /// chained method names), e.g. `ctx.tracer().emit(..)` →
    /// `["tracer", "ctx"]`.
    pub recv_idents: Vec<String>,
    /// Arguments, in order.
    pub args: Vec<Arg>,
    /// 1-based line / column of the called name.
    pub line: u32,
    /// 1-based column of the called name.
    pub col: u32,
    /// Index into [`FileAst::fns`] of the enclosing function.
    pub fn_idx: Option<usize>,
    /// Inside test code.
    pub in_test: bool,
}

/// One `expr as Type` cast.
#[derive(Debug, Clone)]
pub struct Cast {
    /// Target type text (`"u64"`, `"* const u8"`).
    pub target: String,
    /// Identifiers feeding the operand expression, innermost first.
    pub operand_idents: Vec<String>,
    /// 1-based line of the `as` keyword.
    pub line: u32,
    /// 1-based column of the `as` keyword.
    pub col: u32,
    /// Index into [`FileAst::fns`] of the enclosing function.
    pub fn_idx: Option<usize>,
    /// Inside test code.
    pub in_test: bool,
}

/// One `.sum()` / `.product()` / `.fold(..)` reduction terminal.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// Terminal method name (`"sum"`, `"product"`, `"fold"`).
    pub terminal: String,
    /// Method names chained between the root and the terminal, in source
    /// order (`["iter", "map"]`).
    pub links: Vec<String>,
    /// Chain-root classification.
    pub root: ChainRoot,
    /// Evidence the reduction folds floats: an `::<f64>` turbofish, a
    /// float ascription in the statement, a float-literal `fold` seed, or
    /// a float-returning enclosing function's tail expression.
    pub float_hint: bool,
    /// 1-based line of the terminal name.
    pub line: u32,
    /// 1-based column of the terminal name.
    pub col: u32,
    /// Inside test code.
    pub in_test: bool,
}

/// One `for pat in expr { .. }` loop.
#[derive(Debug, Clone)]
pub struct ForLoop {
    /// Method names chained on the iterated expression.
    pub links: Vec<String>,
    /// Root of the iterated chain.
    pub root: ChainRoot,
    /// Body token span `[start, end)` (original token indices, braces
    /// included).
    pub body_span: (usize, usize),
    /// 1-based line of the `for` keyword.
    pub line: u32,
    /// Inside test code.
    pub in_test: bool,
}

/// Everything the parser extracted from one file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// All items, in source order (fns included).
    pub items: Vec<Item>,
    /// All `fn` declarations, in source order.
    pub fns: Vec<FnDecl>,
    /// All call expressions.
    pub calls: Vec<Call>,
    /// All `as` casts.
    pub casts: Vec<Cast>,
    /// All reduction terminals.
    pub reductions: Vec<Reduction>,
    /// All `for` loops.
    pub for_loops: Vec<ForLoop>,
    /// Macro invocations and `macro_rules!` bodies skipped opaquely.
    pub skipped_macros: usize,
}

/// Parse one file's token stream.
pub fn parse(tokens: &[Token]) -> FileAst {
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let matches = bracket_matches(tokens, &sig);
    let in_test = mark_test_code(tokens);
    let mut p = Parser {
        toks: tokens,
        sig,
        matches,
        in_test,
        pos: 0,
        cur_fn: None,
        ast: FileAst::default(),
    };
    p.items(true);
    p.ast
}

/// Mark which tokens sit inside test-only code (`#[cfg(test)]` /
/// `#[test]` items). Shared by the parser (fn test-ness) and the rules
/// (which rules skip test code is per-rule policy).
pub fn mark_test_code(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_test_attribute(tokens, i) {
            // Skip to the end of the attribute, then mark the item it
            // decorates: everything up to the matching `}` of its first
            // brace block (or a `;` before any brace opens).
            let attr_start = i;
            while i < tokens.len() && !(tokens[i].kind == TokenKind::Punct && tokens[i].text == "]")
            {
                i += 1;
            }
            let mut depth = 0i32;
            let mut j = i;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            for flag in in_test
                .iter_mut()
                .take((j + 1).min(tokens.len()))
                .skip(attr_start)
            {
                *flag = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Does `#[...]` starting at token `i` gate on tests? Matches `#[test]`,
/// `#[cfg(test)]`, and composed forms, but not `#[cfg(not(test))]`.
fn is_test_attribute(tokens: &[Token], i: usize) -> bool {
    if !(tokens[i].kind == TokenKind::Punct && tokens[i].text == "#") {
        return false;
    }
    let Some(open) = tokens.get(i + 1) else {
        return false;
    };
    if !(open.kind == TokenKind::Punct && open.text == "[") {
        return false;
    }
    let mut saw_test = false;
    let mut saw_not = false;
    for t in &tokens[i + 2..] {
        if t.kind == TokenKind::Punct && t.text == "]" {
            break;
        }
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "test" => saw_test = true,
                "not" => saw_not = true,
                _ => {}
            }
        }
    }
    saw_test && !saw_not
}

/// Matching `(`/`)`, `[`/`]`, `{`/`}` pairs over significant-token
/// positions, both directions. Mismatched brackets are left unpaired —
/// the parser degrades around them.
fn bracket_matches(tokens: &[Token], sig: &[usize]) -> Vec<Option<usize>> {
    let mut matches = vec![None; sig.len()];
    let mut stack: Vec<(usize, char)> = Vec::new();
    for (sp, &oi) in sig.iter().enumerate() {
        let t = &tokens[oi];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => stack.push((sp, '(')),
            "[" => stack.push((sp, '[')),
            "{" => stack.push((sp, '{')),
            ")" | "]" | "}" => {
                let want = match t.text.as_str() {
                    ")" => '(',
                    "]" => '[',
                    _ => '{',
                };
                if stack.last().is_some_and(|&(_, c)| c == want) {
                    let (open, _) = stack.pop().unwrap();
                    matches[open] = Some(sp);
                    matches[sp] = Some(open);
                }
            }
            _ => {}
        }
    }
    matches
}

/// Identifiers that can never anchor a call path in expression position.
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "loop", "return", "break", "continue", "let", "in", "move",
    "mut", "ref", "box", "dyn", "impl", "where", "unsafe", "async", "await", "true", "false",
    "const", "static", "pub", "crate", "super", "as", "yield",
];

/// Constructor / accessor names whose argument-unit checks R8 cares about.
pub const UNIT_CTORS: &[&str] = &[
    "from_nanos",
    "from_micros",
    "from_millis",
    "from_millis_f64",
    "from_secs",
    "from_secs_f64",
];

struct Parser<'a> {
    toks: &'a [Token],
    sig: Vec<usize>,
    matches: Vec<Option<usize>>,
    in_test: Vec<bool>,
    pos: usize,
    cur_fn: Option<usize>,
    ast: FileAst,
}

impl<'a> Parser<'a> {
    fn tok(&self, sp: usize) -> &'a Token {
        &self.toks[self.sig[sp]]
    }

    fn text(&self, sp: usize) -> &str {
        if sp < self.sig.len() {
            &self.tok(sp).text
        } else {
            ""
        }
    }

    fn kind(&self, sp: usize) -> Option<TokenKind> {
        (sp < self.sig.len()).then(|| self.tok(sp).kind)
    }

    fn is_ident(&self, sp: usize) -> bool {
        self.kind(sp) == Some(TokenKind::Ident)
    }

    fn in_test_at(&self, sp: usize) -> bool {
        self.in_test[self.sig[sp]]
    }

    /// Position just past the group opened at `sp` (falls back to a bump
    /// when the bracket is unmatched).
    fn past_group(&self, sp: usize) -> usize {
        match self.matches[sp] {
            Some(close) => close + 1,
            None => sp + 1,
        }
    }

    // ---- item level -----------------------------------------------------

    fn items(&mut self, top: bool) {
        while self.pos < self.sig.len() {
            let txt = self.text(self.pos).to_string();
            if txt == "}" {
                self.pos += 1;
                if !top {
                    return;
                }
                continue;
            }
            if txt == "#" {
                self.skip_attribute();
                continue;
            }
            let mut is_pub = false;
            self.skip_item_modifiers(&mut is_pub);
            let txt = self.text(self.pos).to_string();
            let line = if self.pos < self.sig.len() {
                self.tok(self.pos).line
            } else {
                return;
            };
            match txt.as_str() {
                "fn" => self.parse_fn(None, is_pub),
                "struct" | "enum" | "union" => {
                    let kind = match txt.as_str() {
                        "struct" => ItemKind::Struct,
                        "enum" => ItemKind::Enum,
                        _ => ItemKind::Union,
                    };
                    self.pos += 1;
                    let name = self.take_name();
                    self.push_item(kind, name, line);
                    self.skip_struct_like_body();
                }
                "trait" => {
                    self.pos += 1;
                    let name = self.take_name();
                    self.push_item(ItemKind::Trait, name.clone(), line);
                    self.skip_until_block_or_semi();
                    if self.text(self.pos) == "{" {
                        self.pos += 1;
                        self.items_with_owner(&name);
                    } else if self.text(self.pos) == ";" {
                        self.pos += 1;
                    }
                }
                "impl" => {
                    self.pos += 1;
                    let owner = self.parse_impl_header();
                    self.push_item(ItemKind::Impl, owner.clone(), line);
                    if self.text(self.pos) == "{" {
                        self.pos += 1;
                        self.items_with_owner(&owner);
                    } else if self.text(self.pos) == ";" {
                        self.pos += 1;
                    }
                }
                "mod" => {
                    self.pos += 1;
                    let name = self.take_name();
                    self.push_item(ItemKind::Mod, name, line);
                    if self.text(self.pos) == "{" {
                        self.pos += 1;
                        self.items(false);
                    } else if self.text(self.pos) == ";" {
                        self.pos += 1;
                    }
                }
                "use" => {
                    self.pos += 1;
                    self.push_item(ItemKind::Use, String::new(), line);
                    self.skip_to_semi();
                }
                "type" => {
                    self.pos += 1;
                    let name = self.take_name();
                    self.push_item(ItemKind::TypeAlias, name, line);
                    self.skip_to_semi();
                }
                "static" | "const" => {
                    self.pos += 1;
                    if self.text(self.pos) == "mut" {
                        self.pos += 1;
                    }
                    let name = self.take_name();
                    self.push_item(
                        if txt == "static" {
                            ItemKind::Static
                        } else {
                            ItemKind::Const
                        },
                        name,
                        line,
                    );
                    self.skip_to_semi();
                }
                "extern" => {
                    // `extern crate x;` or a foreign block (modifier forms
                    // were consumed above).
                    self.pos += 1;
                    if self.text(self.pos) == "crate" {
                        self.push_item(ItemKind::ExternCrate, String::new(), line);
                        self.skip_to_semi();
                    } else if self.kind(self.pos) == Some(TokenKind::Literal)
                        && self.text(self.pos + 1) == "{"
                    {
                        self.pos += 1;
                        self.pos = self.past_group(self.pos);
                    } else {
                        self.skip_to_semi();
                    }
                }
                "macro_rules" => {
                    self.pos += 1; // macro_rules
                    if self.text(self.pos) == "!" {
                        self.pos += 1;
                    }
                    let name = self.take_name();
                    self.push_item(ItemKind::MacroDef, name, line);
                    self.ast.skipped_macros += 1;
                    self.skip_macro_delimited();
                }
                _ if self.is_ident(self.pos) && self.text(self.pos + 1) == "!" => {
                    // Item-position macro invocation, skipped opaquely.
                    let name = txt;
                    self.pos += 2;
                    self.push_item(ItemKind::MacroInvocation, name, line);
                    self.ast.skipped_macros += 1;
                    self.skip_macro_delimited();
                }
                _ => self.pos += 1, // degrade on anything unrecognised
            }
        }
    }

    fn items_with_owner(&mut self, owner: &str) {
        // An impl/trait block body: only `fn` items dispatch differently
        // (they record `owner`); everything else parses as usual.
        while self.pos < self.sig.len() {
            let txt = self.text(self.pos).to_string();
            if txt == "}" {
                self.pos += 1;
                return;
            }
            if txt == "#" {
                self.skip_attribute();
                continue;
            }
            let mut is_pub = false;
            self.skip_item_modifiers(&mut is_pub);
            match self.text(self.pos) {
                "fn" => self.parse_fn(Some(owner), is_pub),
                "type" | "use" => {
                    self.pos += 1;
                    self.skip_to_semi();
                }
                "const" | "static" => {
                    self.pos += 1;
                    self.skip_to_semi();
                }
                _ => self.pos += 1,
            }
        }
    }

    fn push_item(&mut self, kind: ItemKind, name: String, line: u32) {
        self.ast.items.push(Item { kind, name, line });
    }

    /// `#[attr]` / `#![attr]`.
    fn skip_attribute(&mut self) {
        self.pos += 1; // '#'
        if self.text(self.pos) == "!" {
            self.pos += 1;
        }
        if self.text(self.pos) == "[" {
            self.pos = self.past_group(self.pos);
        }
    }

    fn skip_item_modifiers(&mut self, is_pub: &mut bool) {
        loop {
            match self.text(self.pos) {
                "pub" => {
                    *is_pub = true;
                    self.pos += 1;
                    if self.text(self.pos) == "(" {
                        self.pos = self.past_group(self.pos);
                    }
                }
                "default" | "unsafe" | "async" => self.pos += 1,
                "const"
                    if matches!(
                        self.text(self.pos + 1),
                        "fn" | "unsafe" | "async" | "extern"
                    ) =>
                {
                    self.pos += 1
                }
                "extern"
                    if self.kind(self.pos + 1) == Some(TokenKind::Literal)
                        || self.text(self.pos + 1) == "fn" =>
                {
                    self.pos += 1;
                    if self.kind(self.pos) == Some(TokenKind::Literal) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    fn take_name(&mut self) -> String {
        if self.is_ident(self.pos) {
            let name = self.text(self.pos).to_string();
            self.pos += 1;
            name
        } else {
            String::new()
        }
    }

    /// After `struct`/`enum`/`union` + name: skip generics, where clause,
    /// and the body (`{..}`, `(..);`, or `;`).
    fn skip_struct_like_body(&mut self) {
        if self.text(self.pos) == "<" {
            self.skip_angles();
        }
        while self.pos < self.sig.len() {
            match self.text(self.pos) {
                "{" => {
                    self.pos = self.past_group(self.pos);
                    return;
                }
                "(" | "[" => self.pos = self.past_group(self.pos),
                ";" => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Skip forward to the opening `{` of a block or a terminating `;`,
    /// jumping over bracket groups (trait bounds, where clauses).
    fn skip_until_block_or_semi(&mut self) {
        while self.pos < self.sig.len() {
            match self.text(self.pos) {
                "{" | ";" => return,
                "(" | "[" => self.pos = self.past_group(self.pos),
                "<" => self.skip_angles(),
                _ => self.pos += 1,
            }
        }
    }

    /// Skip to just past the next `;`, jumping bracket groups (use trees,
    /// const initialisers).
    fn skip_to_semi(&mut self) {
        while self.pos < self.sig.len() {
            match self.text(self.pos) {
                ";" => {
                    self.pos += 1;
                    return;
                }
                "(" | "[" | "{" => self.pos = self.past_group(self.pos),
                _ => self.pos += 1,
            }
        }
    }

    /// Skip a macro's delimited body: `{..}` stands alone, `(..)` / `[..]`
    /// are followed by `;`.
    fn skip_macro_delimited(&mut self) {
        match self.text(self.pos) {
            "{" => self.pos = self.past_group(self.pos),
            "(" | "[" => {
                self.pos = self.past_group(self.pos);
                if self.text(self.pos) == ";" {
                    self.pos += 1;
                }
            }
            _ => self.pos += 1,
        }
    }

    /// Balanced-angle skip from a `<`. The lexer emits `>>` / `<<` as
    /// single tokens, so each counts twice; `->` / `=>` are single tokens
    /// and never close a generic list.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while self.pos < self.sig.len() {
            match self.text(self.pos) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "(" | "[" | "{" => {
                    self.pos = self.past_group(self.pos);
                    continue;
                }
                ";" => return, // runaway guard: generics never cross a `;`
                _ => {}
            }
            self.pos += 1;
            if depth <= 0 {
                return;
            }
        }
    }

    /// Parse an `impl` header after the keyword; returns the self type
    /// (for `impl Trait for Type`, the implementing `Type`). Leaves `pos`
    /// at the body `{` (or `;`).
    fn parse_impl_header(&mut self) -> String {
        if self.text(self.pos) == "<" {
            self.skip_angles();
        }
        let mut candidate = String::new();
        while self.pos < self.sig.len() {
            match self.text(self.pos) {
                "{" | ";" => break,
                "where" => {
                    self.skip_until_block_or_semi();
                    break;
                }
                "for" => {
                    // `impl Trait for Type`: the type after `for` wins.
                    candidate.clear();
                    self.pos += 1;
                }
                "<" => self.skip_angles(),
                "(" | "[" => self.pos = self.past_group(self.pos),
                _ => {
                    if self.is_ident(self.pos) && self.text(self.pos) != "mut" {
                        candidate = self.text(self.pos).to_string();
                    }
                    self.pos += 1;
                }
            }
        }
        candidate
    }

    // ---- fn level -------------------------------------------------------

    fn parse_fn(&mut self, owner: Option<&str>, is_pub: bool) {
        let line = self.tok(self.pos).line;
        let is_test = self.in_test_at(self.pos);
        self.pos += 1; // fn
        let name = self.take_name();
        if self.text(self.pos) == "<" {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.text(self.pos) == "(" {
            if let Some(close) = self.matches[self.pos] {
                params = self.parse_params(self.pos, close);
                self.pos = close + 1;
            } else {
                self.pos += 1;
            }
        }
        let mut ret = None;
        if self.text(self.pos) == "->" {
            self.pos += 1;
            let mut pieces = Vec::new();
            while self.pos < self.sig.len() {
                match self.text(self.pos) {
                    "{" | ";" | "where" => break,
                    "<" => {
                        let start = self.pos;
                        self.skip_angles();
                        for sp in start..self.pos {
                            pieces.push(self.text(sp).to_string());
                        }
                    }
                    "(" | "[" => {
                        let start = self.pos;
                        self.pos = self.past_group(self.pos);
                        for sp in start..self.pos {
                            pieces.push(self.text(sp).to_string());
                        }
                    }
                    _ => {
                        pieces.push(self.text(self.pos).to_string());
                        self.pos += 1;
                    }
                }
            }
            ret = Some(pieces.join(" "));
        }
        if self.text(self.pos) == "where" {
            self.skip_until_block_or_semi();
        }
        self.ast.items.push(Item {
            kind: ItemKind::Fn,
            name: name.clone(),
            line,
        });
        self.ast.fns.push(FnDecl {
            name,
            owner: owner.map(str::to_string),
            params,
            ret,
            is_pub,
            line,
            is_test,
        });
        let idx = self.ast.fns.len() - 1;
        if self.text(self.pos) == ";" {
            self.pos += 1;
        } else if self.text(self.pos) == "{" {
            self.pos += 1;
            let prev = self.cur_fn.replace(idx);
            self.body();
            self.cur_fn = prev;
        }
    }

    fn parse_params(&mut self, open: usize, close: usize) -> Vec<Param> {
        let mut params = Vec::new();
        let mut sp = open + 1;
        while sp < close {
            let start = sp;
            // Find the end of this parameter (a top-level `,` or `close`),
            // angle-depth aware so `Foo<A, B>` commas don't split.
            let mut angle = 0i32;
            let mut end = sp;
            while end < close {
                match self.text(end) {
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "(" | "[" | "{" => {
                        end = self.past_group(end);
                        continue;
                    }
                    "," if angle <= 0 => break,
                    _ => {}
                }
                end += 1;
            }
            // A `self` receiver (`self`, `&mut self`, `self: Pin<..>`)
            // is not a named parameter.
            let mut head = start;
            while head < end
                && (matches!(self.text(head), "&" | "mut")
                    || self.kind(head) == Some(TokenKind::Lifetime))
            {
                head += 1;
            }
            let is_self = self.text(head) == "self";
            if !is_self {
                // Pattern tokens up to the top-level `:`.
                let mut colon = None;
                let mut depth = 0i32;
                for sp2 in start..end {
                    match self.text(sp2) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ":" if depth == 0 => {
                            colon = Some(sp2);
                            break;
                        }
                        _ => {}
                    }
                }
                if let Some(colon) = colon {
                    let name = (start..colon)
                        .rev()
                        .find(|&sp2| self.is_ident(sp2))
                        .map(|sp2| self.text(sp2).to_string())
                        .unwrap_or_default();
                    let ty = (colon + 1..end)
                        .map(|sp2| self.text(sp2).to_string())
                        .collect::<Vec<_>>()
                        .join(" ");
                    params.push(Param { name, ty });
                }
            }
            sp = end + 1;
        }
        params
    }

    // ---- expression level ----------------------------------------------

    /// Scan a fn body after its opening `{` was consumed, recording calls,
    /// casts, reductions, and for-loops; returns past the matching `}`.
    fn body(&mut self) {
        let mut depth = 1i32;
        while self.pos < self.sig.len() {
            let txt = self.text(self.pos);
            match txt {
                "{" => {
                    depth += 1;
                    self.pos += 1;
                }
                "}" => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        return;
                    }
                }
                "#" => self.skip_attribute(),
                "use" => self.skip_to_semi(),
                "fn" => self.parse_fn(None, false),
                "as" => self.record_cast(),
                "for" => self.handle_for(),
                "." => self.handle_dot(),
                _ if self.is_ident(self.pos) => {
                    if self.text(self.pos + 1) == "!" {
                        // Expression/statement-position macro invocation.
                        self.pos += 2;
                        self.ast.skipped_macros += 1;
                        self.skip_macro_delimited();
                    } else if EXPR_KEYWORDS.contains(&txt) {
                        self.pos += 1;
                    } else {
                        self.path_or_call();
                    }
                }
                _ => self.pos += 1,
            }
        }
    }

    /// An identifier in expression position: consume the whole path and
    /// record a call if it ends in `(`.
    fn path_or_call(&mut self) {
        let start = self.pos;
        let mut segs = vec![self.text(start).to_string()];
        let mut sp = start + 1;
        while self.text(sp) == "::" {
            if self.text(sp + 1) == "<" {
                // Turbofish: skip the angles, keep walking the path.
                let save = self.pos;
                self.pos = sp + 1;
                self.skip_angles();
                sp = self.pos;
                self.pos = save;
            } else if self.is_ident(sp + 1) {
                segs.push(self.text(sp + 1).to_string());
                sp += 2;
            } else {
                break;
            }
        }
        if self.text(sp) == "(" {
            let args = self.parse_args(sp);
            let t = self.tok(start);
            self.ast.calls.push(Call {
                path: segs,
                is_method: false,
                recv_idents: Vec::new(),
                args,
                line: t.line,
                col: t.col,
                fn_idx: self.cur_fn,
                in_test: self.in_test_at(start),
            });
            self.pos = sp + 1; // continue scanning inside the arguments
        } else {
            self.pos = sp;
        }
    }

    /// A `.` in expression position: method call, reduction terminal, or
    /// field access.
    fn handle_dot(&mut self) {
        let dot = self.pos;
        if !self.is_ident(dot + 1) {
            self.pos += 1; // `.0`, `..`-adjacent, etc.
            return;
        }
        let name_sp = dot + 1;
        let name = self.text(name_sp).to_string();
        let mut sp = name_sp + 1;
        let mut turbofish: Option<(usize, usize)> = None;
        if self.text(sp) == "::" && self.text(sp + 1) == "<" {
            let save = self.pos;
            self.pos = sp + 1;
            self.skip_angles();
            turbofish = Some((sp + 2, self.pos.saturating_sub(1)));
            sp = self.pos;
            self.pos = save;
        }
        if self.text(sp) != "(" {
            // Field access / `.await`: consume `.` + name.
            self.pos = name_sp + 1;
            return;
        }
        let args = self.parse_args(sp);
        let chain = self.walk_chain_back(dot);
        let t = self.tok(name_sp);
        self.ast.calls.push(Call {
            path: vec![name.clone()],
            is_method: true,
            recv_idents: chain.idents.clone(),
            args: args.clone(),
            line: t.line,
            col: t.col,
            fn_idx: self.cur_fn,
            in_test: self.in_test_at(name_sp),
        });
        if matches!(name.as_str(), "sum" | "product" | "fold") {
            let float_hint = self.reduction_float_hint(&chain, turbofish, sp, &args, &name);
            self.ast.reductions.push(Reduction {
                terminal: name,
                links: chain.links,
                root: chain.root,
                float_hint,
                line: t.line,
                col: t.col,
                in_test: self.in_test_at(name_sp),
            });
        }
        self.pos = sp + 1; // continue scanning inside the arguments
    }

    fn parse_args(&mut self, open: usize) -> Vec<Arg> {
        let Some(close) = self.matches[open] else {
            return Vec::new();
        };
        let mut args = Vec::new();
        let mut sp = open + 1;
        let mut item_start = sp;
        let mut push = |p: &Parser<'a>, start: usize, end: usize| {
            if start < end {
                let is_closure = p.text(start) == "|"
                    || p.text(start) == "||"
                    || (p.text(start) == "move"
                        && (p.text(start + 1) == "|" || p.text(start + 1) == "||"));
                args.push(Arg {
                    is_closure,
                    span: (p.sig[start], p.sig[end - 1] + 1),
                });
            }
        };
        while sp < close {
            match self.text(sp) {
                "(" | "[" | "{" => {
                    sp = self.past_group(sp);
                    continue;
                }
                "|" => {
                    // Closure parameter list: skip to the closing `|` so
                    // its commas don't split the argument.
                    sp += 1;
                    while sp < close && self.text(sp) != "|" {
                        match self.text(sp) {
                            "(" | "[" | "{" => sp = self.past_group(sp),
                            _ => sp += 1,
                        }
                    }
                    sp += 1;
                    continue;
                }
                "," => {
                    push(self, item_start, sp);
                    item_start = sp + 1;
                }
                _ => {}
            }
            sp += 1;
        }
        push(self, item_start, close);
        args
    }

    fn reduction_float_hint(
        &self,
        chain: &Chain,
        turbofish: Option<(usize, usize)>,
        open: usize,
        args: &[Arg],
        terminal: &str,
    ) -> bool {
        // `::<f64>` turbofish.
        if let Some((a, b)) = turbofish {
            for sp in a..=b.min(self.sig.len().saturating_sub(1)) {
                if matches!(self.text(sp), "f64" | "f32") {
                    return true;
                }
            }
        }
        // `fold(0.0, ..)` — float seed.
        if terminal == "fold" {
            if let Some(arg) = args.first() {
                for oi in arg.span.0..arg.span.1 {
                    let t = &self.toks[oi];
                    if t.kind == TokenKind::Float
                        || (t.kind == TokenKind::Ident && matches!(t.text.as_str(), "f64" | "f32"))
                    {
                        return true;
                    }
                }
            }
        }
        // Float ascription earlier in the same statement
        // (`let x: f64 = ...sum();`, `acc += ... as f64 ...`).
        let mut sp = chain.start as isize - 1;
        let mut looked = 0;
        while sp >= 0 && looked < 40 {
            match self.text(sp as usize) {
                ";" | "{" | "}" => break,
                "f64" | "f32" => return true,
                _ => {}
            }
            sp -= 1;
            looked += 1;
        }
        // Tail expression of a float-returning fn: `)` then `}` closes the
        // body, and the enclosing fn declares a float return.
        if let Some(close) = self.matches[open] {
            if self.text(close + 1) == "}" {
                if let Some(fi) = self.cur_fn {
                    if let Some(ret) = &self.ast.fns[fi].ret {
                        if ret.contains("f64") || ret.contains("f32") {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    fn handle_for(&mut self) {
        let for_sp = self.pos;
        if self.text(for_sp + 1) == "<" {
            // `for<'a>` higher-ranked bound, not a loop.
            self.pos += 1;
            return;
        }
        // Pattern up to the `in` keyword.
        let mut sp = for_sp + 1;
        while sp < self.sig.len() {
            match self.text(sp) {
                "in" => break,
                "(" | "[" => {
                    sp = self.past_group(sp);
                    continue;
                }
                "{" | ";" => {
                    self.pos += 1;
                    return; // not a loop form we understand
                }
                _ => sp += 1,
            }
        }
        if self.text(sp) != "in" {
            self.pos += 1;
            return;
        }
        let expr_start = sp + 1;
        // Iterated expression up to the body `{` (struct literals are not
        // legal here without parens, so a top-level `{` is the body).
        let mut sp = expr_start;
        while sp < self.sig.len() {
            match self.text(sp) {
                "{" => break,
                "(" | "[" => {
                    sp = self.past_group(sp);
                    continue;
                }
                ";" => {
                    self.pos += 1;
                    return;
                }
                _ => sp += 1,
            }
        }
        if self.text(sp) != "{" {
            self.pos += 1;
            return;
        }
        let body_open = sp;
        // A top-level range (`0..n`, `start..=end`) iterates in index
        // order by construction.
        let mut is_range = false;
        let mut rp = expr_start;
        while rp < body_open {
            match self.text(rp) {
                "(" | "[" => {
                    rp = self.past_group(rp);
                    continue;
                }
                ".." | "..=" => {
                    is_range = true;
                    break;
                }
                _ => rp += 1,
            }
        }
        let chain = self.walk_chain_back(body_open);
        let body_close = self.matches[body_open].unwrap_or(body_open);
        self.ast.for_loops.push(ForLoop {
            links: chain.links,
            root: if is_range {
                ChainRoot::Range
            } else {
                chain.root
            },
            body_span: (self.sig[body_open], self.sig[body_close] + 1),
            line: self.tok(for_sp).line,
            in_test: self.in_test_at(for_sp),
        });
        self.pos = for_sp + 1; // rescan pattern + expr normally for calls
    }

    /// Record an `expr as Type` cast; `pos` sits on `as`.
    fn record_cast(&mut self) {
        let as_sp = self.pos;
        let t = self.tok(as_sp);
        self.pos += 1;
        let target = self.parse_type_ref();
        let operand_idents = self.cast_operands(as_sp);
        self.ast.casts.push(Cast {
            target,
            operand_idents,
            line: t.line,
            col: t.col,
            fn_idx: self.cur_fn,
            in_test: self.in_test_at(as_sp),
        });
    }

    /// Consume a type reference after `as`, returning its text.
    fn parse_type_ref(&mut self) -> String {
        let mut pieces = Vec::new();
        // Pointer/reference sigils and qualifiers.
        while matches!(self.text(self.pos), "&" | "*" | "mut" | "const" | "dyn") {
            pieces.push(self.text(self.pos).to_string());
            self.pos += 1;
        }
        match self.text(self.pos) {
            "(" | "[" => {
                pieces.push(self.text(self.pos).to_string());
                self.pos = self.past_group(self.pos);
            }
            _ if self.is_ident(self.pos) => {
                pieces.push(self.text(self.pos).to_string());
                self.pos += 1;
                loop {
                    if self.text(self.pos) == "::" && self.is_ident(self.pos + 1) {
                        pieces.push(self.text(self.pos + 1).to_string());
                        self.pos += 2;
                    } else if self.text(self.pos) == "<" {
                        pieces.push("<>".to_string());
                        self.skip_angles();
                    } else {
                        break;
                    }
                }
            }
            _ => {}
        }
        pieces.join(" ")
    }

    /// Identifiers feeding a cast operand, walking left from the `as`.
    fn cast_operands(&self, as_sp: usize) -> Vec<String> {
        let mut idents = Vec::new();
        let mut sp = as_sp as isize - 1;
        while sp >= 0 {
            let spu = sp as usize;
            let t = self.tok(spu);
            match t.kind {
                TokenKind::Ident => {
                    if EXPR_KEYWORDS.contains(&t.text.as_str()) && t.text != "as" {
                        break;
                    }
                    if t.text != "as" {
                        idents.push(t.text.clone());
                    }
                    sp -= 1;
                }
                TokenKind::Int | TokenKind::Float | TokenKind::Literal => sp -= 1,
                TokenKind::Punct => match t.text.as_str() {
                    "." | "::" | "?" => sp -= 1,
                    ")" | "]" => match self.matches[spu] {
                        Some(open) => {
                            for inner in open + 1..spu {
                                if self.is_ident(inner)
                                    && !EXPR_KEYWORDS.contains(&self.text(inner))
                                {
                                    idents.push(self.text(inner).to_string());
                                }
                            }
                            sp = open as isize - 1;
                        }
                        None => break,
                    },
                    _ => break,
                },
                _ => break,
            }
        }
        idents
    }

    /// Walk a method-chain backwards from the token at `end_sp`
    /// (exclusive): classify the root, collect chained method names
    /// (outward-in order reversed to source order) and every identifier
    /// seen along the receiver.
    fn walk_chain_back(&self, end_sp: usize) -> Chain {
        let mut links: Vec<String> = Vec::new();
        let mut idents: Vec<String> = Vec::new();
        let mut root = ChainRoot::Unknown;
        let mut start = end_sp;
        let mut sp = end_sp as isize - 1;
        'walk: while sp >= 0 {
            let spu = sp as usize;
            start = spu;
            let t = self.tok(spu);
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, ")") => {
                    let Some(open) = self.matches[spu] else {
                        break 'walk;
                    };
                    // `(..)` is either a chained call's argument list
                    // (preceded by `.name` / `.name::<..>`), a free-call
                    // root (`name(..)`), or a parenthesised root.
                    let mut before = open as isize - 1;
                    // Reverse over a turbofish: `.sum::<f64>()`.
                    if before >= 0 && matches!(self.text(before as usize), ">" | ">>") {
                        let mut depth = 0i32;
                        while before >= 0 {
                            match self.text(before as usize) {
                                ">" => depth += 1,
                                ">>" => depth += 2,
                                "<" => depth -= 1,
                                "<<" => depth -= 2,
                                _ => {}
                            }
                            before -= 1;
                            if depth <= 0 {
                                break;
                            }
                        }
                        if before >= 0 && self.text(before as usize) == "::" {
                            before -= 1;
                        }
                    }
                    if before >= 1
                        && self.is_ident(before as usize)
                        && self.text(before as usize - 1) == "."
                    {
                        links.push(self.text(before as usize).to_string());
                        idents.push(self.text(before as usize).to_string());
                        sp = before - 2;
                        continue 'walk;
                    }
                    if before >= 0 && self.is_ident(before as usize) {
                        // Free or path call as root: collect the path.
                        let mut name_sp = before as usize;
                        idents.push(self.text(name_sp).to_string());
                        let call_name = self.text(name_sp).to_string();
                        while name_sp >= 2 && self.text(name_sp - 1) == "::" {
                            name_sp -= 2;
                            idents.push(self.text(name_sp).to_string());
                        }
                        start = name_sp;
                        root = ChainRoot::Call(call_name);
                        break 'walk;
                    }
                    // Parenthesised root: range or opaque expression.
                    let mut is_range = false;
                    let mut rp = open + 1;
                    while rp < spu {
                        match self.text(rp) {
                            "(" | "[" | "{" => {
                                rp = self.past_group(rp);
                                continue;
                            }
                            ".." | "..=" => {
                                is_range = true;
                                break;
                            }
                            _ => rp += 1,
                        }
                    }
                    for inner in open + 1..spu {
                        if self.is_ident(inner) && !EXPR_KEYWORDS.contains(&self.text(inner)) {
                            idents.push(self.text(inner).to_string());
                        }
                    }
                    start = open;
                    root = if is_range {
                        ChainRoot::Range
                    } else {
                        ChainRoot::Paren
                    };
                    break 'walk;
                }
                (TokenKind::Punct, "]") => {
                    let Some(open) = self.matches[spu] else {
                        break 'walk;
                    };
                    let before = open as isize - 1;
                    let indexing = before >= 0
                        && (self.is_ident(before as usize)
                            || matches!(self.text(before as usize), ")" | "]"));
                    for inner in open + 1..spu {
                        if self.is_ident(inner) && !EXPR_KEYWORDS.contains(&self.text(inner)) {
                            idents.push(self.text(inner).to_string());
                        }
                    }
                    if indexing {
                        sp = open as isize - 1;
                        continue 'walk;
                    }
                    start = open;
                    root = ChainRoot::ArrayLit;
                    break 'walk;
                }
                (TokenKind::Ident, name) => {
                    if EXPR_KEYWORDS.contains(&name) {
                        break 'walk;
                    }
                    idents.push(name.to_string());
                    if sp >= 1 && matches!(self.text(spu - 1), "." | "::") {
                        // Field access or path segment: keep walking.
                        sp -= 2;
                        continue 'walk;
                    }
                    root = ChainRoot::Ident(name.to_string());
                    break 'walk;
                }
                (TokenKind::Int | TokenKind::Float | TokenKind::Literal, _) => {
                    root = ChainRoot::Lit;
                    break 'walk;
                }
                (TokenKind::Punct, "?") => sp -= 1,
                _ => break 'walk,
            }
        }
        links.reverse();
        Chain {
            root,
            links,
            idents,
            start,
        }
    }
}

/// Result of a backwards receiver-chain walk.
struct Chain {
    root: ChainRoot,
    links: Vec<String>,
    idents: Vec<String>,
    /// Significant-token position where the chain begins.
    start: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ast(src: &str) -> FileAst {
        parse(&lex(src))
    }

    #[test]
    fn items_and_fns_are_recorded() {
        let src = "\
pub struct Foo { x: u32 }
impl Foo {
    pub fn new(seed: u64) -> Self { Foo { x: 0 } }
    fn helper(&self) -> u32 { self.x }
}
fn free(a: u32, b: SimTime) {}
";
        let a = ast(src);
        let kinds: Vec<ItemKind> = a.items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ItemKind::Struct,
                ItemKind::Impl,
                ItemKind::Fn,
                ItemKind::Fn,
                ItemKind::Fn
            ],
            "{:#?}",
            a.items
        );
        assert_eq!(a.fns.len(), 3);
        assert_eq!(a.fns[0].name, "new");
        assert_eq!(a.fns[0].owner.as_deref(), Some("Foo"));
        assert!(a.fns[0].is_pub);
        assert_eq!(a.fns[0].params.len(), 1);
        assert_eq!(a.fns[0].params[0].name, "seed");
        assert_eq!(a.fns[0].params[0].ty, "u64");
        assert_eq!(a.fns[0].ret.as_deref(), Some("Self"));
        assert_eq!(a.fns[1].name, "helper");
        assert!(a.fns[1].params.is_empty(), "self receiver is not a param");
        assert_eq!(a.fns[2].owner, None);
        assert_eq!(a.fns[2].params.len(), 2);
    }

    #[test]
    fn trait_impl_owner_is_the_implementing_type() {
        let src = "\
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, \"x\") }
}
impl<E> Default for EventQueue<E> {
    fn default() -> Self { Self::new() }
}
";
        let a = ast(src);
        assert_eq!(a.fns[0].owner.as_deref(), Some("SimTime"));
        assert_eq!(a.fns[1].owner.as_deref(), Some("EventQueue"));
        // The call inside `default` resolves through the owner.
        assert!(a
            .calls
            .iter()
            .any(|c| c.path == ["Self", "new"] && !c.is_method));
    }

    #[test]
    fn calls_are_recorded_with_paths_and_receivers() {
        let src = "\
fn f(q: &mut EventQueue<u32>, ctx: &Ctx) {
    let t = SimTime::from_nanos(500);
    q.pop();
    ctx.tracer().emit(t, || TraceEvent::Tick);
    helper(1, 2);
}
";
        let a = ast(src);
        let paths: Vec<String> = a.calls.iter().map(|c| c.path.join("::")).collect();
        assert_eq!(
            paths,
            vec!["SimTime::from_nanos", "pop", "tracer", "emit", "helper"],
            "{a:#?}"
        );
        let emit = a.calls.iter().find(|c| c.path == ["emit"]).unwrap();
        assert!(emit.is_method);
        assert!(emit.recv_idents.contains(&"tracer".to_string()));
        assert!(emit.recv_idents.contains(&"ctx".to_string()));
        assert_eq!(emit.args.len(), 2);
        assert!(!emit.args[0].is_closure);
        assert!(emit.args[1].is_closure);
        for c in &a.calls {
            assert_eq!(c.fn_idx, Some(0));
        }
    }

    #[test]
    fn casts_carry_target_and_operand_idents() {
        let src = "\
fn f(key: u128, srtt: f64) -> u64 {
    let a = (key >> 64) as u64;
    let b = (srtt * 1e9).round() as u64;
    let c = a as f64;
    b + a + c as u64
}
";
        let a = ast(src);
        assert_eq!(a.casts.len(), 4);
        assert_eq!(a.casts[0].target, "u64");
        assert!(a.casts[0].operand_idents.contains(&"key".to_string()));
        assert!(a.casts[1].operand_idents.contains(&"srtt".to_string()));
        assert!(a.casts[1].operand_idents.contains(&"round".to_string()));
        assert_eq!(a.casts[2].target, "f64");
    }

    #[test]
    fn reductions_classify_roots_links_and_float_hints() {
        let src = "\
fn total(paths: &[PathView]) -> f64 {
    paths.iter().map(|p| p.rate()).sum()
}
fn windowed(xs: &std::collections::BTreeSet<u64>) -> f64 {
    xs.union(&other).map(|x| *x as f64).sum::<f64>()
}
fn ints(n: u64) -> u64 {
    (0..n).sum()
}
";
        let a = ast(src);
        assert_eq!(a.reductions.len(), 3);
        let r0 = &a.reductions[0];
        assert_eq!(r0.links, vec!["iter", "map"]);
        assert_eq!(r0.root, ChainRoot::Ident("paths".into()));
        assert!(r0.float_hint, "fn-tail + float return type");
        let r1 = &a.reductions[1];
        assert_eq!(r1.links, vec!["union", "map"]);
        assert!(r1.float_hint, "turbofish f64");
        let r2 = &a.reductions[2];
        assert_eq!(r2.root, ChainRoot::Range);
        assert!(!r2.float_hint, "integer sum carries no float evidence");
    }

    #[test]
    fn for_loops_record_chain_and_body_span() {
        let src = "\
fn f(m: &std::collections::BTreeMap<u32, f64>, set: &S) {
    for (k, v) in m.iter() {
        consume(k, v);
    }
    for x in set.union(&other) {
        acc += 0.5 * x;
    }
    for i in 0..10 {
        acc += i;
    }
}
";
        let a = ast(src);
        assert_eq!(a.for_loops.len(), 3);
        assert_eq!(a.for_loops[0].links, vec!["iter"]);
        assert_eq!(a.for_loops[1].links, vec!["union"]);
        assert_eq!(a.for_loops[2].root, ChainRoot::Range);
        assert!(a.for_loops[0].body_span.0 < a.for_loops[0].body_span.1);
    }

    #[test]
    fn macros_are_skipped_opaquely_and_counted() {
        let src = "\
macro_rules! gen { ($x:ident) => { fn $x() {} }; }
fn f() {
    println!(\"{} {}\", SimTime::from_nanos(1), 2);
    assert_eq!(a.unwrap(), b);
    real_call();
}
";
        let a = ast(src);
        // Calls inside macro bodies are invisible — only `real_call`.
        assert_eq!(a.calls.len(), 1, "{:#?}", a.calls);
        assert_eq!(a.calls[0].path, ["real_call"]);
        assert_eq!(a.skipped_macros, 3);
    }

    #[test]
    fn test_attributes_mark_fns() {
        let src = "\
fn prod() {}
#[test]
fn t() { prod(); }
#[cfg(test)]
mod tests {
    fn helper() {}
}
";
        let a = ast(src);
        assert!(!a.fns[0].is_test);
        assert!(a.fns[1].is_test);
        assert!(a.fns[2].is_test);
        assert!(a.calls[0].in_test);
    }

    #[test]
    fn nested_generics_and_where_clauses_survive() {
        let src = "\
pub fn pump<E: Clone, F>(q: &mut EventQueue<Vec<(SimTime, E)>>, f: F) -> Option<Box<dyn Fn() -> u32>>
where
    F: FnMut(&E) -> bool,
{
    q.pop_at_or_before(SimTime::from_nanos(1)).map(|e| handle(e))
}
";
        let a = ast(src);
        assert_eq!(a.fns.len(), 1);
        assert_eq!(a.fns[0].name, "pump");
        assert_eq!(a.fns[0].params.len(), 2);
        assert!(a.fns[0].ret.as_deref().unwrap().contains("Option"));
        assert!(a
            .calls
            .iter()
            .any(|c| c.is_method && c.path == ["pop_at_or_before"]));
        assert!(a.calls.iter().any(|c| c.path == ["SimTime", "from_nanos"]));
    }

    #[test]
    fn raw_strings_do_not_derail_the_parser() {
        let src = "\
fn f() -> &'static str {
    let s = r#\"fn not_a_fn() { q.pop(); }\"#;
    real();
    s
}
";
        let a = ast(src);
        assert_eq!(a.fns.len(), 1);
        assert_eq!(a.calls.len(), 1);
        assert_eq!(a.calls[0].path, ["real"]);
    }
}

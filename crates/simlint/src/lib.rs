#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! `simlint` — project-specific determinism & sim-correctness static
//! analysis for the MPTCP/OLIA reproduction.
//!
//! Every result this repository publishes (LIA vs OLIA fairness, Figs
//! 1–17) rests on the simulator being bit-deterministic for a given seed.
//! The trace-digest tests catch a nondeterminism *after* it ships; this
//! tool rejects the hazard classes before they reach an event loop. It is
//! deliberately dependency-free — a hand-rolled lexer ([`lexer`]), a
//! recursive-descent parser over it ([`ast`]), a call graph ([`graph`]),
//! a tiny JSON module ([`json`]), and a tiny TOML-subset parser
//! ([`config`]) — because it gates the rest of the workspace and must
//! build offline from a bare toolchain.
//!
//! The rules (R1–R11) are documented in [`rules`] and in DESIGN.md's
//! "Static analysis & determinism rules" section. The workspace pass is
//! two-phase: first every file under the event-loop universe is parsed
//! and the R5 hot-path set is *derived* by call-graph reachability from
//! declared roots ([`graph::HOT_ROOT_PATTERNS`]), unioned with the
//! configured seed prefixes; then every file is linted against that set.
//! Suppression is explicit and auditable: inline
//! `// simlint: allow(<rule>) <reason>` comments for single sites, a
//! checked-in `simlint.toml` ([`config`]) for path-level exemptions, and
//! every suppression must carry a written reason. Meta-rules A1–A3 audit
//! the suppressions themselves (A3 flags stale `simlint.toml` entries
//! and hot-path seeds the graph can no longer justify). Findings are
//! emitted human-readable and as a machine-readable JSON report
//! ([`report`], schema `mptcp-lint-report/v2`).

pub mod ast;
pub mod config;
pub mod graph;
pub mod json;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use config::Config;
use rules::{Finding, LintContext};

/// Everything one linting pass produced.
#[derive(Debug)]
pub struct LintRun {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings across the workspace, suppressed ones included,
    /// ordered by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// The derived R5 hot-path file set (call-graph reachability unioned
    /// with configured seeds), sorted.
    pub hot_paths: Vec<String>,
    /// The call-graph root patterns reachability was seeded from.
    pub roots: Vec<String>,
    /// Root functions actually matched, as `file: Owner::name`, sorted.
    pub matched_roots: Vec<String>,
}

impl LintRun {
    /// Findings not covered by any allow — these fail the gate.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Baseline keys for the CI lint-diff gate: one `"<rule> <file>
    /// <count>"` line per (rule, file) pair over *all* findings
    /// (suppressed included, so an allow cannot hide a newly-introduced
    /// violation from the diff), sorted.
    pub fn baseline_keys(&self) -> Vec<String> {
        let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        for f in &self.findings {
            *counts.entry((f.rule, f.file.as_str())).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|((rule, file), n)| format!("{rule} {file} {n}"))
            .collect()
    }
}

/// Load `<root>/simlint.toml` (empty config if absent) and lint every
/// `.rs` file under `root`: parse the event-loop universe, derive the
/// hot-path set by call-graph reachability, lint each file against it,
/// then audit the config itself (A3).
pub fn lint_workspace(root: &Path) -> Result<LintRun, String> {
    let config_path = root.join("simlint.toml");
    let config_present = config_path.exists();
    let config = if config_present {
        let text = fs::read_to_string(&config_path)
            .map_err(|e| format!("{}: {e}", config_path.display()))?;
        config::parse(&text).map_err(|e| format!("simlint.toml: {e}"))?
    } else {
        Config::default()
    };
    lint_workspace_with(root, &config, config_present)
}

/// [`lint_workspace`] with an injected config instead of the on-disk
/// `simlint.toml`. `audit_config` controls whether the A3 staleness audit
/// runs — it should whenever the config represents a real file someone
/// could edit. This is how the gate tests prove every config entry is
/// load-bearing: drop one entry and the findings it covered resurface.
pub fn lint_workspace_with(
    root: &Path,
    config: &Config,
    audit_config: bool,
) -> Result<LintRun, String> {
    let files = walk::rust_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;

    // Pass 1: read everything once; parse the call-graph universe.
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    let mut parsed: Vec<graph::ParsedFile> = Vec::new();
    for path in &files {
        let rel = walk::relative(root, path);
        let source = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        if graph::GRAPH_UNIVERSE_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p))
        {
            parsed.push(graph::ParsedFile {
                rel: rel.clone(),
                ast: ast::parse(&lexer::lex(&source)),
            });
        }
        sources.push((rel, source));
    }

    let hot = graph::derive_hot_paths(&parsed);
    let mut hot_files: BTreeSet<String> = hot.files.clone();
    for (rel, _) in &sources {
        if config.hotpath.seeds.iter().any(|s| rel.starts_with(s)) {
            hot_files.insert(rel.clone());
        }
    }
    let hot_paths: Vec<String> = hot_files.iter().cloned().collect();
    let ctx = LintContext::with_hot_files(hot_files);

    // Pass 2: lint each file against the derived hot set.
    let mut findings = Vec::new();
    for (rel, source) in &sources {
        findings.extend(rules::lint_source_with(rel, source, config, &ctx));
    }

    // A3: the config must stay load-bearing. A hot-path seed the graph
    // can no longer reach, an allow whose path matches no scanned file,
    // or an allow whose rules never fire under its path, is stale. Only
    // an actual simlint.toml is audited — built-in defaults are not
    // entries anyone can remove.
    let config_line = |line: usize| -> u32 { u32::try_from(line).unwrap_or(0).max(1) };
    let seed_issues = if audit_config {
        graph::audit_seeds(&config.hotpath.seeds, &parsed, &hot)
    } else {
        Vec::new()
    };
    for issue in seed_issues {
        let message = match &issue.problem {
            graph::SeedProblem::NoSuchFile => format!(
                "hot-path seed \"{}\" matches no scanned file — remove it",
                issue.seed
            ),
            graph::SeedProblem::Unreachable(file) => format!(
                "hot-path seed \"{}\": `{file}` is no longer reachable from any call-graph \
                 root — the seed is stale (or a root pattern is missing)",
                issue.seed
            ),
        };
        findings.push(Finding {
            rule: "A3",
            file: "simlint.toml".to_string(),
            line: config_line(config.hotpath.line),
            col: 1,
            message,
            suppressed: None,
        });
    }
    let audited_allows = if audit_config {
        &config.allows[..]
    } else {
        &[]
    };
    for allow in audited_allows {
        if !sources.iter().any(|(rel, _)| rel.starts_with(&allow.path)) {
            findings.push(Finding {
                rule: "A3",
                file: "simlint.toml".to_string(),
                line: config_line(allow.line),
                col: 1,
                message: format!(
                    "[[allow]] path \"{}\" matches no scanned file — remove the entry",
                    allow.path
                ),
                suppressed: None,
            });
            continue;
        }
        let fires = findings
            .iter()
            .any(|f| f.file.starts_with(&allow.path) && allow.rules.iter().any(|r| r == f.rule));
        if !fires {
            findings.push(Finding {
                rule: "A3",
                file: "simlint.toml".to_string(),
                line: config_line(allow.line),
                col: 1,
                message: format!(
                    "[[allow]] for {} under \"{}\" suppresses nothing — the rule no longer \
                     fires there; remove the entry",
                    allow.rules.join(", "),
                    allow.path
                ),
                suppressed: None,
            });
        }
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(LintRun {
        files_scanned: files.len(),
        findings,
        hot_paths,
        roots: hot.roots,
        matched_roots: hot.matched_roots,
    })
}

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! `simlint` — project-specific determinism & sim-correctness static
//! analysis for the MPTCP/OLIA reproduction.
//!
//! Every result this repository publishes (LIA vs OLIA fairness, Figs
//! 1–17) rests on the simulator being bit-deterministic for a given seed.
//! The trace-digest tests catch a nondeterminism *after* it ships; this
//! tool rejects the hazard classes before they reach an event loop. It is
//! deliberately dependency-free — a hand-rolled lexer ([`lexer`]), a tiny
//! JSON module ([`json`]), and a tiny TOML-subset parser ([`config`]) —
//! because it gates the rest of the workspace and must build offline from
//! a bare toolchain.
//!
//! The rules (R1–R6) are documented in [`rules`] and in DESIGN.md's
//! "Static analysis & determinism rules" section. Suppression is explicit
//! and auditable: inline `// simlint: allow(<rule>) <reason>` comments for
//! single sites, a checked-in `simlint.toml` ([`config`]) for path-level
//! exemptions, and every suppression must carry a written reason. Findings
//! are emitted human-readable and as a machine-readable JSON report
//! ([`report`], schema `mptcp-lint-report/v1`).

pub mod config;
pub mod json;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::fs;
use std::path::Path;

use config::Config;
use rules::Finding;

/// Everything one linting pass produced.
#[derive(Debug)]
pub struct LintRun {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings across the workspace, suppressed ones included,
    /// ordered by (file, line, col, rule).
    pub findings: Vec<Finding>,
}

impl LintRun {
    /// Findings not covered by any allow — these fail the gate.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }
}

/// Load `<root>/simlint.toml` (empty config if absent) and lint every
/// `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> Result<LintRun, String> {
    let config_path = root.join("simlint.toml");
    let config = if config_path.exists() {
        let text = fs::read_to_string(&config_path)
            .map_err(|e| format!("{}: {e}", config_path.display()))?;
        config::parse(&text).map_err(|e| format!("simlint.toml: {e}"))?
    } else {
        Config::default()
    };

    let files = walk::rust_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut findings = Vec::new();
    for path in &files {
        let rel = walk::relative(root, path);
        let source = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        findings.extend(rules::lint_source(&rel, &source, &config));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(LintRun {
        files_scanned: files.len(),
        findings,
    })
}

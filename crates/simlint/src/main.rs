#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

//! The `simlint` CLI — the workspace's determinism gate.
//!
//! ```text
//! simlint [--root DIR] [--json FILE] [--all] [--quiet]   lint the workspace
//! simlint --validate FILE...                             check lint reports
//! simlint --list-rules                                   print the rule table
//! ```
//!
//! Exit codes: 0 — clean (or all findings suppressed with reasons);
//! 1 — at least one unsuppressed finding, or an invalid report under
//! `--validate`; 2 — usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::rules::{Finding, META_RULES, RULES};
use simlint::{json, report};

struct Options {
    root: PathBuf,
    json_out: Option<PathBuf>,
    show_all: bool,
    quiet: bool,
    validate: Vec<PathBuf>,
    list_rules: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: simlint [--root DIR] [--json FILE] [--all] [--quiet]\n\
         \u{20}      simlint --validate FILE...\n\
         \u{20}      simlint --list-rules"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json_out: None,
        show_all: false,
        quiet: false,
        validate: Vec::new(),
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => opts.root = args.next().map(PathBuf::from).ok_or_else(usage)?,
            "--json" => opts.json_out = Some(args.next().map(PathBuf::from).ok_or_else(usage)?),
            "--all" => opts.show_all = true,
            "--quiet" => opts.quiet = true,
            "--list-rules" => opts.list_rules = true,
            "--validate" => {
                opts.validate = args.by_ref().map(PathBuf::from).collect();
                if opts.validate.is_empty() {
                    return Err(usage());
                }
            }
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn print_finding(f: &Finding) {
    let name = RULES
        .iter()
        .chain(META_RULES)
        .find(|r| r.id == f.rule)
        .map(|r| r.name)
        .unwrap_or("?");
    match &f.suppressed {
        None => println!(
            "{}:{}:{}: {} {}: {}",
            f.file, f.line, f.col, f.rule, name, f.message
        ),
        Some(reason) => println!(
            "{}:{}:{}: {} {} (suppressed: {})",
            f.file, f.line, f.col, f.rule, name, reason
        ),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    if opts.list_rules {
        for r in RULES.iter().chain(META_RULES) {
            println!("{}  {:22} {}", r.id, r.name, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if !opts.validate.is_empty() {
        let mut failed = false;
        for path in &opts.validate {
            let outcome = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read: {e}"))
                .and_then(|text| json::parse(&text).map_err(|e| format!("invalid JSON: {e}")))
                .and_then(|doc| report::validate(&doc));
            match outcome {
                Ok(()) => println!("ok      {}", path.display()),
                Err(e) => {
                    println!("INVALID {}: {e}", path.display());
                    failed = true;
                }
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let run = match simlint::lint_workspace(&opts.root) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if !opts.quiet {
        for f in &run.findings {
            if f.suppressed.is_none() || opts.show_all {
                print_finding(f);
            }
        }
    }

    if let Some(path) = &opts.json_out {
        let doc = report::to_json(
            &opts.root.to_string_lossy(),
            run.files_scanned,
            &run.findings,
        );
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, doc.pretty()) {
            eprintln!("simlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let unsuppressed = run.unsuppressed().count();
    let suppressed = run.findings.len() - unsuppressed;
    println!(
        "simlint: {} files scanned, {} finding(s): {} suppressed with reasons, {} unsuppressed",
        run.files_scanned,
        run.findings.len(),
        suppressed,
        unsuppressed
    );
    if unsuppressed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

//! The `simlint` CLI — the workspace's determinism gate.
//!
//! ```text
//! simlint [--root DIR] [--json FILE] [--all] [--quiet]
//!         [--baseline FILE] [--write-baseline FILE]       lint the workspace
//! simlint --hot-paths [--root DIR]                        print the derived hot set
//! simlint --validate FILE...                              check lint reports
//! simlint --list-rules                                    print the rule table
//! ```
//!
//! `--baseline FILE` compares this run's finding keys (`<rule> <file>
//! <count>` lines, suppressed findings included) against a checked-in
//! baseline: a new key or a count increase fails the run; disappeared
//! keys pass with a note to refresh. `--write-baseline FILE` writes the
//! current keys.
//!
//! Exit codes: 0 — clean (or all findings suppressed with reasons);
//! 1 — at least one unsuppressed finding, a baseline regression, or an
//! invalid report under `--validate`; 2 — usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::rules::{Finding, META_RULES, RULES};
use simlint::{json, report};

struct Options {
    root: PathBuf,
    json_out: Option<PathBuf>,
    show_all: bool,
    quiet: bool,
    validate: Vec<PathBuf>,
    list_rules: bool,
    hot_paths: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: simlint [--root DIR] [--json FILE] [--all] [--quiet]\n\
         \u{20}             [--baseline FILE] [--write-baseline FILE]\n\
         \u{20}      simlint --hot-paths [--root DIR]\n\
         \u{20}      simlint --validate FILE...\n\
         \u{20}      simlint --list-rules"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json_out: None,
        show_all: false,
        quiet: false,
        validate: Vec::new(),
        list_rules: false,
        hot_paths: false,
        baseline: None,
        write_baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => opts.root = args.next().map(PathBuf::from).ok_or_else(usage)?,
            "--json" => opts.json_out = Some(args.next().map(PathBuf::from).ok_or_else(usage)?),
            "--all" => opts.show_all = true,
            "--quiet" => opts.quiet = true,
            "--list-rules" => opts.list_rules = true,
            "--hot-paths" => opts.hot_paths = true,
            "--baseline" => opts.baseline = Some(args.next().map(PathBuf::from).ok_or_else(usage)?),
            "--write-baseline" => {
                opts.write_baseline = Some(args.next().map(PathBuf::from).ok_or_else(usage)?)
            }
            "--validate" => {
                opts.validate = args.by_ref().map(PathBuf::from).collect();
                if opts.validate.is_empty() {
                    return Err(usage());
                }
            }
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn print_finding(f: &Finding) {
    let name = RULES
        .iter()
        .chain(META_RULES)
        .find(|r| r.id == f.rule)
        .map(|r| r.name)
        .unwrap_or("?");
    match &f.suppressed {
        None => println!(
            "{}:{}:{}: {} {}: {}",
            f.file, f.line, f.col, f.rule, name, f.message
        ),
        Some(reason) => println!(
            "{}:{}:{}: {} {} (suppressed: {})",
            f.file, f.line, f.col, f.rule, name, reason
        ),
    }
}

/// Parse baseline text into `(rule, file, count)` entries; `#` starts a
/// comment.
fn parse_baseline(text: &str) -> Vec<(String, String, usize)> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(rule), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next()) {
            if let Ok(count) = count.parse() {
                entries.push((rule.to_string(), file.to_string(), count));
            }
        }
    }
    entries
}

/// Diff current keys against the baseline. Returns regression messages;
/// empty means pass. Disappeared keys are reported via `gone`.
fn diff_baseline(
    baseline: &[(String, String, usize)],
    current: &[String],
) -> (Vec<String>, Vec<String>) {
    let mut regressions = Vec::new();
    let mut gone = Vec::new();
    let mut seen: Vec<(&str, &str)> = Vec::new();
    for key in current {
        let mut parts = key.split_whitespace();
        let (Some(rule), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let count: usize = count.parse().unwrap_or(0);
        seen.push((rule, file));
        match baseline
            .iter()
            .find(|(r, f, _)| r == rule && f == file)
            .map(|(_, _, n)| *n)
        {
            None => regressions.push(format!("new finding key: {rule} {file} ({count})")),
            Some(base) if count > base => regressions.push(format!(
                "{rule} {file}: {count} finding(s), baseline allows {base}"
            )),
            Some(_) => {}
        }
    }
    for (rule, file, _) in baseline {
        if !seen.iter().any(|(r, f)| r == rule && f == file) {
            gone.push(format!("{rule} {file}"));
        }
    }
    (regressions, gone)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    if opts.list_rules {
        for r in RULES.iter().chain(META_RULES) {
            println!("{}  {:22} {}", r.id, r.name, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if !opts.validate.is_empty() {
        let mut failed = false;
        for path in &opts.validate {
            let outcome = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read: {e}"))
                .and_then(|text| json::parse(&text).map_err(|e| format!("invalid JSON: {e}")))
                .and_then(|doc| report::validate(&doc));
            match outcome {
                Ok(()) => println!("ok      {}", path.display()),
                Err(e) => {
                    println!("INVALID {}: {e}", path.display());
                    failed = true;
                }
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let run = match simlint::lint_workspace(&opts.root) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.hot_paths {
        println!("# call-graph roots:");
        for r in &run.roots {
            println!("#   {r}");
        }
        println!("# matched root functions:");
        for r in &run.matched_roots {
            println!("#   {r}");
        }
        for p in &run.hot_paths {
            println!("{p}");
        }
        return ExitCode::SUCCESS;
    }

    if !opts.quiet {
        for f in &run.findings {
            if f.suppressed.is_none() || opts.show_all {
                print_finding(f);
            }
        }
    }

    if let Some(path) = &opts.json_out {
        let doc = report::to_json(&opts.root.to_string_lossy(), &run);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, doc.pretty()) {
            eprintln!("simlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &opts.write_baseline {
        let mut text = String::from(
            "# simlint lint-diff baseline: one `<rule> <file> <count>` line per\n\
             # finding key, suppressed findings included. Refresh deliberately with\n\
             # `simlint --root . --write-baseline tests/lint_baseline.txt` after\n\
             # reviewing the diff; ci.sh fails on any key not listed here.\n",
        );
        for key in run.baseline_keys() {
            text.push_str(&key);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("simlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("simlint: baseline written to {}", path.display());
    }

    let mut baseline_failed = false;
    if let Some(path) = &opts.baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let (regressions, gone) =
                    diff_baseline(&parse_baseline(&text), &run.baseline_keys());
                for r in &regressions {
                    println!("simlint: baseline: {r}");
                }
                for g in &gone {
                    println!(
                        "simlint: baseline: NOTE: key {g} no longer fires — refresh the baseline"
                    );
                }
                baseline_failed = !regressions.is_empty();
            }
            Err(e) => {
                eprintln!("simlint: reading baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    let unsuppressed = run.unsuppressed().count();
    let suppressed = run.findings.len() - unsuppressed;
    println!(
        "simlint: {} files scanned, {} finding(s): {} suppressed with reasons, {} unsuppressed",
        run.files_scanned,
        run.findings.len(),
        suppressed,
        unsuppressed
    );
    if unsuppressed > 0 || baseline_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! The determinism & sim-correctness rules (R1–R6) and the suppression
//! machinery.
//!
//! Every figure in the paper reproduction assumes a seeded run is
//! bit-reproducible; each rule here rejects one class of hazard that the
//! trace-digest tests can only catch *after* it has shipped:
//!
//! | id | name | hazard |
//! |----|------|--------|
//! | R1 | wall-clock | `Instant`/`SystemTime` leak real time into sim logic |
//! | R2 | unordered-collection | `HashMap`/`HashSet` iteration order varies per process |
//! | R3 | os-random | `thread_rng`/`from_entropy`/`OsRng` bypass the experiment seed |
//! | R4 | float-eq | `==`/`!=` on floats in congestion-control math |
//! | R5 | hot-unwrap | `unwrap`/`expect` in the event-loop hot path |
//! | R6 | raw-unit-api | `pub` sim APIs taking raw `f64` seconds where `SimDuration` exists |
//! | R7 | sim-threading | `std::thread`/`std::sync` inside the single-threaded sim crates |
//!
//! Suppression is explicit and auditable: an inline
//! `// simlint: allow(R2) <reason>` comment suppresses matching findings on
//! its own line and the line directly below it, and must carry a non-empty
//! reason. A malformed or reason-less annotation is itself a finding (A1),
//! as is an annotation that suppresses nothing (A2) — so stale allows are
//! flushed out instead of accumulating.

use crate::config::Config;
use crate::lexer::{lex, Token, TokenKind};

/// A lint rule's identity, for `--list-rules` and the JSON report.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id (`"R1"` …) used in `allow(..)` annotations.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description of the hazard.
    pub summary: &'static str,
}

/// The suppressible determinism rules.
pub const RULES: &[Rule] = &[
    Rule {
        id: "R1",
        name: "wall-clock",
        summary: "std::time::Instant/SystemTime outside profiling code makes runs time-dependent",
    },
    Rule {
        id: "R2",
        name: "unordered-collection",
        summary: "HashMap/HashSet in sim crates iterate in nondeterministic order",
    },
    Rule {
        id: "R3",
        name: "os-random",
        summary: "thread_rng/from_entropy/OsRng bypass the experiment seed",
    },
    Rule {
        id: "R4",
        name: "float-eq",
        summary: "==/!= on floats in congestion-control math is representation-fragile",
    },
    Rule {
        id: "R5",
        name: "hot-unwrap",
        summary: "unwrap/expect in the event-loop hot path turns bugs into aborts mid-run",
    },
    Rule {
        id: "R6",
        name: "raw-unit-api",
        summary: "pub sim APIs taking raw f64 seconds where a typed unit (SimDuration) exists",
    },
    Rule {
        id: "R7",
        name: "sim-threading",
        summary: "std::thread/std::sync inside the single-threaded simulation crates",
    },
];

/// The meta rules about annotations themselves; never suppressible.
pub const META_RULES: &[Rule] = &[
    Rule {
        id: "A1",
        name: "bad-allow",
        summary: "malformed simlint annotation, unknown rule id, or missing reason",
    },
    Rule {
        id: "A2",
        name: "unused-allow",
        summary: "a simlint allow annotation that suppresses no finding",
    },
];

/// Crates whose behaviour feeds the event loop: any ordering or timing
/// hazard here changes published numbers.
const SIM_CRATE_PREFIXES: &[&str] = &[
    "crates/netsim/",
    "crates/tcpsim/",
    "crates/eventsim/",
    "crates/core/",
    "crates/topo/",
    "crates/chaos/",
];

/// Event-loop hot paths for R5: the scheduler itself, the netsim dispatch
/// loop, and the per-packet structures it leans on (the arena every packet
/// lives in, the queue every packet crosses). A panic here kills a
/// multi-hour experiment.
const HOT_PATH_PREFIXES: &[&str] = &[
    "crates/netsim/src/sim.rs",
    "crates/netsim/src/arena.rs",
    "crates/netsim/src/queue.rs",
    "crates/eventsim/src/",
];

/// Congestion-control math (R4) lives in the algorithm crate.
const CC_MATH_PREFIX: &str = "crates/core/";

/// Crates whose *model* is a single-threaded event loop (R7). Concurrency
/// belongs to the harness layers — `orchestra` parallelizes across
/// simulations, `bench` across replications — never inside one simulation,
/// where thread scheduling would feed nondeterminism straight into the
/// event order. `topo` is deliberately absent: it only builds topologies
/// and is judged by R2's ordering rule instead. `chaos` is *included*:
/// each fuzz case is one single-threaded simulation, and the one file that
/// legitimately fans cases across workers (`campaign.rs`, whose results
/// are slot-indexed and scheduling-independent) carries a reasoned
/// path-level allow in `simlint.toml` rather than a blanket exemption.
const SEQUENTIAL_SIM_PREFIXES: &[&str] = &[
    "crates/netsim/",
    "crates/tcpsim/",
    "crates/eventsim/",
    "crates/core/",
    "crates/chaos/",
];

/// One reported violation (possibly suppressed).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`"R1"`… or `"A1"`/`"A2"`).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was matched and why it is a hazard.
    pub message: String,
    /// `Some(reason)` when an inline or path-level allow covers this.
    pub suppressed: Option<String>,
}

/// A parsed `// simlint: allow(..)` annotation.
#[derive(Debug)]
struct InlineAllow {
    rules: Vec<String>,
    reason: String,
    line: u32,
    col: u32,
    used: bool,
}

/// Lint one file's source as `rel_path` (workspace-relative, forward
/// slashes). Returns every finding, suppressed ones included, sorted by
/// position.
pub fn lint_source(rel_path: &str, source: &str, config: &Config) -> Vec<Finding> {
    let tokens = lex(source);
    let in_test = mark_test_code(&tokens);
    let mut findings = Vec::new();
    let mut allows = collect_allows(rel_path, &tokens, &mut findings);

    check_idents(rel_path, &tokens, &in_test, &mut findings);
    check_float_eq(rel_path, &tokens, &mut findings);
    check_hot_unwrap(rel_path, &tokens, &in_test, &mut findings);
    check_raw_unit_api(rel_path, &tokens, &in_test, &mut findings);
    check_threading(rel_path, &tokens, &in_test, &mut findings);

    // Apply suppressions: inline annotations first (same line or the line
    // directly above), then the checked-in path-level allow-list.
    for f in &mut findings {
        if f.rule.starts_with('A') {
            continue; // meta findings are never suppressible
        }
        if let Some(allow) = allows.iter_mut().find(|a| {
            a.rules.iter().any(|r| r == f.rule) && (a.line == f.line || a.line + 1 == f.line)
        }) {
            allow.used = true;
            f.suppressed = Some(allow.reason.clone());
            continue;
        }
        if let Some(entry) = config.path_allow(rel_path, f.rule) {
            f.suppressed = Some(format!("simlint.toml[{}]: {}", entry.path, entry.reason));
        }
    }

    // Stale annotations are findings too.
    for allow in &allows {
        if !allow.used {
            findings.push(Finding {
                rule: "A2",
                file: rel_path.to_string(),
                line: allow.line,
                col: allow.col,
                message: format!(
                    "allow({}) suppresses nothing on this or the next line — remove it",
                    allow.rules.join(", ")
                ),
                suppressed: None,
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

fn in_sim_crate(rel_path: &str) -> bool {
    SIM_CRATE_PREFIXES.iter().any(|p| rel_path.starts_with(p))
}

/// Mark which tokens sit inside test-only code (`#[cfg(test)]` / `#[test]`
/// items). R1, R3, R5, and R6 skip test code — a test panicking or reading
/// the clock endangers no experiment — while R2 applies everywhere because
/// digest-comparison *tests* are exactly where iteration order bites.
fn mark_test_code(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_test_attribute(tokens, i) {
            // Skip to the end of the attribute, then mark the item it
            // decorates: everything up to the matching `}` of its first
            // brace block (or a `;` before any brace opens).
            let attr_start = i;
            while i < tokens.len() && !(tokens[i].kind == TokenKind::Punct && tokens[i].text == "]")
            {
                i += 1;
            }
            let mut depth = 0i32;
            let mut j = i;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            for flag in in_test
                .iter_mut()
                .take((j + 1).min(tokens.len()))
                .skip(attr_start)
            {
                *flag = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Does `#[...]` starting at token `i` gate on tests? Matches `#[test]`,
/// `#[cfg(test)]`, and composed forms, but not `#[cfg(not(test))]`.
fn is_test_attribute(tokens: &[Token], i: usize) -> bool {
    if !(tokens[i].kind == TokenKind::Punct && tokens[i].text == "#") {
        return false;
    }
    let Some(open) = tokens.get(i + 1) else {
        return false;
    };
    if !(open.kind == TokenKind::Punct && open.text == "[") {
        return false;
    }
    let mut saw_test = false;
    let mut saw_not = false;
    for t in &tokens[i + 2..] {
        if t.kind == TokenKind::Punct && t.text == "]" {
            break;
        }
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "test" => saw_test = true,
                "not" => saw_not = true,
                _ => {}
            }
        }
    }
    saw_test && !saw_not
}

/// Parse every `// simlint: allow(..) reason` comment; malformed ones
/// become A1 findings immediately.
fn collect_allows(
    rel_path: &str,
    tokens: &[Token],
    findings: &mut Vec<Finding>,
) -> Vec<InlineAllow> {
    let mut allows = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        // The directive must open the comment (`// simlint: …`); a
        // mid-comment mention is documentation about the syntax, not a
        // suppression — simlint's own docs would otherwise self-flag.
        let Some(directive) = comment_content(&t.text).strip_prefix("simlint:") else {
            continue;
        };
        let directive = directive.trim();
        let mut bad = |why: &str| {
            findings.push(Finding {
                rule: "A1",
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message: format!("bad simlint annotation: {why}"),
                suppressed: None,
            });
        };
        let Some(rest) = directive.strip_prefix("allow(") else {
            bad("expected `allow(<rule>, ..) <reason>`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("unclosed `allow(`");
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad("allow() names no rule");
            continue;
        }
        if let Some(unknown) = rules.iter().find(|r| !RULES.iter().any(|k| k.id == *r)) {
            bad(&format!("unknown rule {unknown:?}"));
            continue;
        }
        let reason = rest[close + 1..].trim().trim_end_matches("*/").trim();
        if reason.is_empty() {
            bad("missing reason — every suppression must say why it is sound");
            continue;
        }
        allows.push(InlineAllow {
            rules,
            reason: reason.to_string(),
            line: t.line,
            col: t.col,
            used: false,
        });
    }
    allows
}

/// The prose of a comment token: text after `//`/`///`/`//!` or
/// `/*`/`/**`/`/*!`, leading whitespace dropped.
fn comment_content(text: &str) -> &str {
    let body = if let Some(rest) = text.strip_prefix("//") {
        rest.strip_prefix(['/', '!']).unwrap_or(rest)
    } else if let Some(rest) = text.strip_prefix("/*") {
        rest.strip_prefix(['*', '!']).unwrap_or(rest)
    } else {
        text
    };
    body.trim_start()
}

/// R1 + R2 + R3: single-identifier hazards.
fn check_idents(rel_path: &str, tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    let sim = in_sim_crate(rel_path);
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let mut push = |rule: &'static str, message: String| {
            findings.push(Finding {
                rule,
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message,
                suppressed: None,
            });
        };
        match t.text.as_str() {
            "Instant" | "SystemTime" if !in_test[i] => push(
                "R1",
                format!(
                    "wall-clock type `{}` — sim logic must use SimTime; annotate if this is \
                     genuinely profiling code",
                    t.text
                ),
            ),
            "HashMap" | "HashSet" if sim => push(
                "R2",
                format!(
                    "`{}` in a sim crate iterates in nondeterministic order — use \
                     BTreeMap/BTreeSet, or annotate with proof it is never iterated",
                    t.text
                ),
            ),
            "thread_rng" | "from_entropy" | "OsRng" if !in_test[i] => push(
                "R3",
                format!(
                    "`{}` draws OS entropy — every stochastic choice must come from the \
                     seeded SimRng",
                    t.text
                ),
            ),
            _ => {}
        }
    }
}

/// R4: `==` / `!=` with a float-literal operand, inside `crates/core`.
///
/// A lexer cannot type-infer, so this intentionally catches only the
/// literal-adjacent form (`x == 0.0`, `1.0 != y`) — which is also the form
/// that actually appears in congestion-control code.
fn check_float_eq(rel_path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !rel_path.starts_with(CC_MATH_PREFIX) {
        return;
    }
    let significant: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in significant.iter().enumerate() {
        if !(t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!=")) {
            continue;
        }
        let prev_float = i > 0 && significant[i - 1].kind == TokenKind::Float;
        let next_float = significant
            .get(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Float);
        if prev_float || next_float {
            findings.push(Finding {
                rule: "R4",
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` against a float literal in congestion-control math — compare with \
                     a tolerance or restructure around integer state",
                    t.text
                ),
                suppressed: None,
            });
        }
    }
}

/// R5: `.unwrap()` / `.expect(` in event-loop hot paths, outside tests.
fn check_hot_unwrap(
    rel_path: &str,
    tokens: &[Token],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    if !HOT_PATH_PREFIXES.iter().any(|p| rel_path.starts_with(p)) {
        return;
    }
    // Indices of non-comment tokens so `.  unwrap ()` with interleaved
    // comments still matches.
    let idx: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for w in idx.windows(3) {
        let (a, b, c) = (&tokens[w[0]], &tokens[w[1]], &tokens[w[2]]);
        if in_test[w[1]] {
            continue;
        }
        let is_call = a.kind == TokenKind::Punct
            && a.text == "."
            && b.kind == TokenKind::Ident
            && (b.text == "unwrap" || b.text == "expect")
            && c.kind == TokenKind::Punct
            && c.text == "(";
        if is_call {
            findings.push(Finding {
                rule: "R5",
                file: rel_path.to_string(),
                line: b.line,
                col: b.col,
                message: format!(
                    "`.{}()` in an event-loop hot path — a panic here aborts a whole \
                     experiment; handle the None/Err or annotate the invariant",
                    b.text
                ),
                suppressed: None,
            });
        }
    }
}

/// R6: `pub fn` parameters of type `f64` whose names say they are raw
/// seconds/milliseconds/nanoseconds, in sim crates — `SimDuration` /
/// `SimTime` exist precisely so quantities carry their unit.
fn check_raw_unit_api(
    rel_path: &str,
    tokens: &[Token],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    if !in_sim_crate(rel_path) {
        return;
    }
    let significant: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let tok = |k: usize| -> &Token { &tokens[significant[k]] };
    let mut i = 0usize;
    while i < significant.len() {
        if !(tok(i).kind == TokenKind::Ident && tok(i).text == "pub") || in_test[significant[i]] {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip a visibility scope: `pub(crate)`, `pub(super)`, …
        if j < significant.len() && tok(j).text == "(" {
            let mut depth = 0i32;
            while j < significant.len() {
                match tok(j).text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !(j < significant.len() && tok(j).kind == TokenKind::Ident && tok(j).text == "fn") {
            i += 1;
            continue;
        }
        // Find the parameter list's opening paren (skip name + generics).
        let mut k = j + 1;
        let mut angle = 0i32;
        while k < significant.len() {
            match tok(k).text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" if angle <= 0 => break,
                "{" | ";" => break, // malformed / paramless — bail out
                _ => {}
            }
            k += 1;
        }
        if !(k < significant.len() && tok(k).text == "(") {
            i = j + 1;
            continue;
        }
        // Scan `name: f64` pairs inside the parameter parens.
        let mut depth = 0i32;
        while k < significant.len() {
            match tok(k).text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if depth == 1
                && tok(k).kind == TokenKind::Ident
                && k + 2 < significant.len()
                && tok(k + 1).text == ":"
                && tok(k + 2).kind == TokenKind::Ident
                && tok(k + 2).text == "f64"
                && is_raw_time_name(&tok(k).text)
            {
                let t = tok(k);
                findings.push(Finding {
                    rule: "R6",
                    file: rel_path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "pub API takes raw `{}: f64` — pass SimDuration/SimTime so the unit \
                         travels with the value",
                        t.text
                    ),
                    suppressed: None,
                });
            }
            k += 1;
        }
        i = j + 1;
    }
}

/// R7: `std::thread` / `std::sync` paths in the sequential sim crates,
/// outside tests. Tests may thread (a concurrency-free *model* can still be
/// exercised from threaded test harnesses); production sim code may not.
fn check_threading(
    rel_path: &str,
    tokens: &[Token],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    if !SEQUENTIAL_SIM_PREFIXES
        .iter()
        .any(|p| rel_path.starts_with(p))
    {
        return;
    }
    let idx: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for w in idx.windows(3) {
        let (a, b, c) = (&tokens[w[0]], &tokens[w[1]], &tokens[w[2]]);
        if in_test[w[2]] {
            continue;
        }
        let is_threading_path = a.kind == TokenKind::Ident
            && a.text == "std"
            && b.kind == TokenKind::Punct
            && b.text == "::"
            && c.kind == TokenKind::Ident
            && (c.text == "thread" || c.text == "sync");
        if is_threading_path {
            findings.push(Finding {
                rule: "R7",
                file: rel_path.to_string(),
                line: c.line,
                col: c.col,
                message: format!(
                    "`std::{}` in a sim crate — a simulation is single-threaded by contract; \
                     parallelism belongs in orchestra/bench, one level up",
                    c.text
                ),
                suppressed: None,
            });
        }
    }
}

/// Parameter names that denote a bare time quantity.
fn is_raw_time_name(name: &str) -> bool {
    matches!(
        name,
        "s" | "secs" | "seconds" | "ms" | "millis" | "ns" | "nanos"
    ) || name.ends_with("_s")
        || name.ends_with("_secs")
        || name.ends_with("_seconds")
        || name.ends_with("_ms")
        || name.ends_with("_ns")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_source(path, src, &Config::default())
    }

    fn unsuppressed(findings: &[Finding]) -> Vec<&Finding> {
        findings.iter().filter(|f| f.suppressed.is_none()).collect()
    }

    #[test]
    fn r1_fires_on_instant_but_not_in_comments_or_other_idents() {
        let src = "// Instant in prose\nuse std::time::Instant; // real\nlet v = RedInstant;\n";
        let f = lint("crates/bench/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("R1", 2));
    }

    #[test]
    fn r2_only_in_sim_crates_and_also_in_tests() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests { fn f() { let s = std::collections::HashSet::<u32>::new(); } }\n";
        assert_eq!(lint("crates/netsim/src/x.rs", src).len(), 2);
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn r5_scoped_to_hot_paths_and_skips_tests() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); }\n#[test]\nfn t() { Some(1).unwrap(); }\n";
        let f = lint("crates/eventsim/src/queue.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("R5", 1));
        // queue.rs joined the hot set when the packet arena landed; a
        // netsim file outside the hot set stays clean.
        assert_eq!(lint("crates/netsim/src/queue.rs", src).len(), 1);
        assert!(lint("crates/netsim/src/profile.rs", src).is_empty());
        assert_eq!(lint("crates/netsim/src/sim.rs", src).len(), 1);
    }

    #[test]
    fn r4_literal_adjacent_float_equality_in_core_only() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\nfn g(n: u64) -> bool { n != 3 }\n";
        let f = lint("crates/core/src/olia.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("R4", 1));
        assert!(lint("crates/netsim/src/sim.rs", src).is_empty());
    }

    #[test]
    fn r6_flags_raw_second_params_in_pub_sim_apis() {
        let src = "pub fn run_for(warmup_s: f64, n: u64) {}\nfn private(warmup_s: f64) {}\npub fn typed(d: SimDuration) {}\n";
        let f = lint("crates/topo/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("R6", 1));
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn r7_forbids_threading_in_sim_crates_but_not_harness_crates() {
        let src = "use std::sync::atomic::AtomicU64;\nfn f() { std::thread::sleep(d); }\n";
        let f = lint("crates/netsim/src/x.rs", src);
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].rule, f[0].line), ("R7", 1));
        assert_eq!((f[1].rule, f[1].line), ("R7", 2));
        // Harness layers parallelize legitimately.
        assert!(lint("crates/orchestra/src/pool.rs", src).is_empty());
        assert!(lint("crates/bench/src/lib.rs", src).is_empty());
        // topo builds graphs, it is not in the sequential set.
        assert!(lint("crates/topo/src/x.rs", src).is_empty());
    }

    #[test]
    fn r7_skips_test_code_and_mere_mentions() {
        let src = "\
// std::thread in prose is fine
#[cfg(test)]
mod tests { fn t() { std::thread::spawn(f); } }
fn sync(x: u32) {} // an ident named sync alone is not a path
";
        assert!(lint("crates/eventsim/src/x.rs", src).is_empty());
        let f = lint(
            "crates/core/src/x.rs",
            "use std::sync::Mutex; // simlint: allow(R7) guards a debug-only counter\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed.is_some());
    }

    #[test]
    fn inline_allow_suppresses_same_and_next_line_and_requires_reason() {
        let src = "\
// simlint: allow(R2) never iterated, keyed lookups only
use std::collections::HashMap;
use std::collections::HashSet; // simlint: allow(R2) dedup-only in setup
";
        let f = lint("crates/tcpsim/src/x.rs", src);
        assert_eq!(f.len(), 2);
        assert!(unsuppressed(&f).is_empty(), "{f:?}");

        let missing_reason = "use std::collections::HashMap; // simlint: allow(R2)\n";
        let f = lint("crates/tcpsim/src/x.rs", missing_reason);
        assert!(f.iter().any(|x| x.rule == "A1"));
        assert!(f.iter().any(|x| x.rule == "R2" && x.suppressed.is_none()));
    }

    #[test]
    fn deleting_an_allow_resurfaces_the_finding() {
        let with = "use std::collections::HashMap; // simlint: allow(R2) point lookups only\n";
        let without = "use std::collections::HashMap;\n";
        assert!(unsuppressed(&lint("crates/core/src/x.rs", with)).is_empty());
        assert_eq!(
            unsuppressed(&lint("crates/core/src/x.rs", without)).len(),
            1
        );
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let f = lint(
            "crates/core/src/x.rs",
            "// simlint: allow(R1) nothing here reads a clock\nlet x = 1;\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "A2");
    }

    #[test]
    fn path_allow_from_config_suppresses() {
        let cfg = crate::config::parse(
            "[[allow]]\npath = \"compat/criterion\"\nrules = [\"R1\"]\nreason = \"wall-clock is the product\"\n",
        )
        .unwrap();
        let src = "use std::time::Instant;\n";
        let f = lint_source("compat/criterion/src/lib.rs", src, &cfg);
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed.as_deref().unwrap().contains("wall-clock"));
        let f = lint_source("crates/netsim/src/profile.rs", src, &cfg);
        assert!(f[0].suppressed.is_none());
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn f() { let t = Instant::now(); }\n";
        let f = lint("crates/netsim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "R1");
    }
}

//! The determinism & sim-correctness rules (R1–R11) and the suppression
//! machinery.
//!
//! Every figure in the paper reproduction assumes a seeded run is
//! bit-reproducible; each rule here rejects one class of hazard that the
//! trace-digest tests can only catch *after* it has shipped:
//!
//! | id | name | hazard |
//! |----|------|--------|
//! | R1 | wall-clock | `Instant`/`SystemTime` leak real time into sim logic |
//! | R2 | unordered-collection | `HashMap`/`HashSet` iteration order varies per process |
//! | R3 | os-random | `thread_rng`/`from_entropy`/`OsRng` bypass the experiment seed |
//! | R4 | float-eq | `==`/`!=` on floats in congestion-control math |
//! | R5 | hot-unwrap | `unwrap`/`expect` in the event-loop hot path |
//! | R6 | raw-unit-api | `pub` sim APIs taking raw `f64` seconds where `SimDuration` exists |
//! | R7 | sim-threading | `std::thread`/`std::sync` inside the single-threaded sim crates |
//! | R8 | unit-mismatch | raw literals / wrong-unit idents mixed into typed time arithmetic |
//! | R9 | lossy-cast | `as` narrowing time/sequence/DSN-domain values |
//! | R10 | eager-trace | tracer arguments computed outside the lazy closure |
//! | R11 | float-fold | order-sensitive f64 reductions over unstable iteration sources |
//!
//! R1–R7 are token-level; R8–R11 lean on the [`crate::ast`] parser for
//! call expressions, casts, and method chains, and R5's hot-path scope is
//! derived from the [`crate::graph`] call graph when linting a whole
//! workspace (see [`LintContext`]).
//!
//! Suppression is explicit and auditable: an inline
//! `// simlint: allow(R2) <reason>` comment suppresses matching findings on
//! its own line and the line directly below it, and must carry a non-empty
//! reason. A malformed or reason-less annotation is itself a finding (A1),
//! as is an annotation that suppresses nothing (A2) — so stale allows are
//! flushed out instead of accumulating. Path-level entries live in
//! `simlint.toml` and are audited the same way (A3, in
//! [`crate::lint_workspace`]).

use std::collections::BTreeSet;

use crate::ast::{self, ChainRoot, FileAst};
use crate::config::Config;
use crate::lexer::{lex, Token, TokenKind};

/// A lint rule's identity, for `--list-rules` and the JSON report.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id (`"R1"` …) used in `allow(..)` annotations.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description of the hazard.
    pub summary: &'static str,
}

/// The suppressible determinism rules.
pub const RULES: &[Rule] = &[
    Rule {
        id: "R1",
        name: "wall-clock",
        summary: "std::time::Instant/SystemTime outside profiling code makes runs time-dependent",
    },
    Rule {
        id: "R2",
        name: "unordered-collection",
        summary: "HashMap/HashSet in sim crates iterate in nondeterministic order",
    },
    Rule {
        id: "R3",
        name: "os-random",
        summary: "thread_rng/from_entropy/OsRng bypass the experiment seed",
    },
    Rule {
        id: "R4",
        name: "float-eq",
        summary: "==/!= on floats in congestion-control math is representation-fragile",
    },
    Rule {
        id: "R5",
        name: "hot-unwrap",
        summary: "unwrap/expect in the event-loop hot path turns bugs into aborts mid-run",
    },
    Rule {
        id: "R6",
        name: "raw-unit-api",
        summary: "pub sim APIs taking raw f64 seconds where a typed unit (SimDuration) exists",
    },
    Rule {
        id: "R7",
        name: "sim-threading",
        summary: "std::thread/std::sync inside the single-threaded simulation crates",
    },
    Rule {
        id: "R8",
        name: "unit-mismatch",
        summary: "raw literals or wrong-unit identifiers mixed into typed time arithmetic",
    },
    Rule {
        id: "R9",
        name: "lossy-cast",
        summary:
            "`as` casts narrowing time/sequence/DSN-domain values (u128->u64, u64->u32, f64->f32)",
    },
    Rule {
        id: "R10",
        name: "eager-trace",
        summary: "tracer arguments computed outside the lazy closure defeat zero-cost tracing",
    },
    Rule {
        id: "R11",
        name: "float-fold",
        summary: "order-sensitive f64 reduction over an iteration source not proven order-stable",
    },
];

/// The meta rules about annotations and configuration themselves; never
/// suppressible.
pub const META_RULES: &[Rule] = &[
    Rule {
        id: "A1",
        name: "bad-allow",
        summary: "malformed simlint annotation, unknown rule id, or missing reason",
    },
    Rule {
        id: "A2",
        name: "unused-allow",
        summary: "a simlint allow annotation that suppresses no finding",
    },
    Rule {
        id: "A3",
        name: "stale-config",
        summary:
            "a simlint.toml entry matching no file or firing rule, or an unreachable hot-path seed",
    },
];

/// Crates whose behaviour feeds the event loop: any ordering or timing
/// hazard here changes published numbers.
const SIM_CRATE_PREFIXES: &[&str] = &[
    "crates/netsim/",
    "crates/tcpsim/",
    "crates/eventsim/",
    "crates/core/",
    "crates/topo/",
    "crates/chaos/",
    "crates/flowsim/",
];

/// The legacy hand-maintained hot-path list for R5, kept as (a) the
/// fallback scope when linting a single source without a call graph
/// ([`LintContext::legacy`]) and (b) the default seed set the derived hot
/// paths are audited against — the graph-derived set must keep covering
/// every file here, or the A3 seed audit fires.
pub const HOT_PATH_PREFIXES: &[&str] = &[
    "crates/netsim/src/sim.rs",
    "crates/netsim/src/arena.rs",
    "crates/netsim/src/queue.rs",
    "crates/netsim/src/routes.rs",
    "crates/eventsim/src/",
    "crates/flowsim/src/sim.rs",
    "crates/flowsim/src/alloc.rs",
    "crates/flowsim/src/net.rs",
];

/// How R5 decides a file is hot: the call-graph-derived file set when
/// linting a workspace, or the legacy prefix list when linting one source
/// in isolation (unit tests, fixtures, ad-hoc callers).
#[derive(Debug, Clone)]
pub struct LintContext {
    hot_files: Option<BTreeSet<String>>,
}

impl LintContext {
    /// Prefix-list scoping (no call graph available).
    pub fn legacy() -> Self {
        LintContext { hot_files: None }
    }

    /// Scope R5 to exactly `files` (the graph-derived hot set).
    pub fn with_hot_files(files: BTreeSet<String>) -> Self {
        LintContext {
            hot_files: Some(files),
        }
    }

    /// Is `rel_path` part of the event-loop hot path?
    pub fn is_hot(&self, rel_path: &str) -> bool {
        match &self.hot_files {
            Some(files) => files.contains(rel_path),
            None => HOT_PATH_PREFIXES.iter().any(|p| rel_path.starts_with(p)),
        }
    }

    /// The derived hot file set, when one was supplied.
    pub fn hot_files(&self) -> Option<&BTreeSet<String>> {
        self.hot_files.as_ref()
    }
}

/// Congestion-control math (R4) lives in the algorithm crate.
const CC_MATH_PREFIX: &str = "crates/core/";

/// Crates whose *model* is a single-threaded event loop (R7). Concurrency
/// belongs to the harness layers — `orchestra` parallelizes across
/// simulations, `bench` across replications — never inside one simulation,
/// where thread scheduling would feed nondeterminism straight into the
/// event order. `topo` is deliberately absent: it only builds topologies
/// and is judged by R2's ordering rule instead. `chaos` is *included*:
/// each fuzz case is one single-threaded simulation, and the one file that
/// legitimately fans cases across workers (`campaign.rs`, whose results
/// are slot-indexed and scheduling-independent) carries a reasoned
/// path-level allow in `simlint.toml` rather than a blanket exemption.
const SEQUENTIAL_SIM_PREFIXES: &[&str] = &[
    "crates/netsim/",
    "crates/tcpsim/",
    "crates/eventsim/",
    "crates/core/",
    "crates/chaos/",
    "crates/flowsim/",
];

/// One reported violation (possibly suppressed).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`"R1"`… or `"A1"`/`"A2"`).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was matched and why it is a hazard.
    pub message: String,
    /// `Some(reason)` when an inline or path-level allow covers this.
    pub suppressed: Option<String>,
}

/// A parsed `// simlint: allow(..)` annotation.
#[derive(Debug)]
struct InlineAllow {
    rules: Vec<String>,
    reason: String,
    line: u32,
    col: u32,
    used: bool,
}

/// Lint one file's source as `rel_path` (workspace-relative, forward
/// slashes) with the legacy prefix-based hot-path scope. Returns every
/// finding, suppressed ones included, sorted by position.
pub fn lint_source(rel_path: &str, source: &str, config: &Config) -> Vec<Finding> {
    lint_source_with(rel_path, source, config, &LintContext::legacy())
}

/// [`lint_source`] with an explicit hot-path scope (the workspace pass
/// supplies the call-graph-derived set).
pub fn lint_source_with(
    rel_path: &str,
    source: &str,
    config: &Config,
    ctx: &LintContext,
) -> Vec<Finding> {
    let tokens = lex(source);
    let in_test = ast::mark_test_code(&tokens);
    let file_ast = ast::parse(&tokens);
    let mut findings = Vec::new();
    let mut allows = collect_allows(rel_path, &tokens, &mut findings);

    check_idents(rel_path, &tokens, &in_test, &mut findings);
    check_float_eq(rel_path, &tokens, &mut findings);
    check_hot_unwrap(rel_path, &tokens, &in_test, ctx, &mut findings);
    check_raw_unit_api(rel_path, &tokens, &in_test, &mut findings);
    check_threading(rel_path, &tokens, &in_test, &mut findings);
    check_unit_mismatch(rel_path, &tokens, &in_test, &file_ast, &mut findings);
    check_lossy_cast(rel_path, &file_ast, &mut findings);
    check_eager_trace(rel_path, &tokens, &file_ast, &mut findings);
    check_float_fold(rel_path, &tokens, &file_ast, &mut findings);

    // Apply suppressions: inline annotations first (same line or the line
    // directly above), then the checked-in path-level allow-list.
    for f in &mut findings {
        if f.rule.starts_with('A') {
            continue; // meta findings are never suppressible
        }
        if let Some(allow) = allows.iter_mut().find(|a| {
            a.rules.iter().any(|r| r == f.rule) && (a.line == f.line || a.line + 1 == f.line)
        }) {
            allow.used = true;
            f.suppressed = Some(allow.reason.clone());
            continue;
        }
        if let Some(entry) = config.path_allow(rel_path, f.rule) {
            f.suppressed = Some(format!("simlint.toml[{}]: {}", entry.path, entry.reason));
        }
    }

    // Stale annotations are findings too.
    for allow in &allows {
        if !allow.used {
            findings.push(Finding {
                rule: "A2",
                file: rel_path.to_string(),
                line: allow.line,
                col: allow.col,
                message: format!(
                    "allow({}) suppresses nothing on this or the next line — remove it",
                    allow.rules.join(", ")
                ),
                suppressed: None,
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

fn in_sim_crate(rel_path: &str) -> bool {
    SIM_CRATE_PREFIXES.iter().any(|p| rel_path.starts_with(p))
}

/// Parse every `// simlint: allow(..) reason` comment; malformed ones
/// become A1 findings immediately.
fn collect_allows(
    rel_path: &str,
    tokens: &[Token],
    findings: &mut Vec<Finding>,
) -> Vec<InlineAllow> {
    let mut allows = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        // The directive must open the comment (`// simlint: …`); a
        // mid-comment mention is documentation about the syntax, not a
        // suppression — simlint's own docs would otherwise self-flag.
        let Some(directive) = comment_content(&t.text).strip_prefix("simlint:") else {
            continue;
        };
        let directive = directive.trim();
        let mut bad = |why: &str| {
            findings.push(Finding {
                rule: "A1",
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message: format!("bad simlint annotation: {why}"),
                suppressed: None,
            });
        };
        let Some(rest) = directive.strip_prefix("allow(") else {
            bad("expected `allow(<rule>, ..) <reason>`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("unclosed `allow(`");
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad("allow() names no rule");
            continue;
        }
        if let Some(unknown) = rules.iter().find(|r| !RULES.iter().any(|k| k.id == *r)) {
            bad(&format!("unknown rule {unknown:?}"));
            continue;
        }
        let reason = rest[close + 1..].trim().trim_end_matches("*/").trim();
        if reason.is_empty() {
            bad("missing reason — every suppression must say why it is sound");
            continue;
        }
        allows.push(InlineAllow {
            rules,
            reason: reason.to_string(),
            line: t.line,
            col: t.col,
            used: false,
        });
    }
    allows
}

/// The prose of a comment token: text after `//`/`///`/`//!` or
/// `/*`/`/**`/`/*!`, leading whitespace dropped.
fn comment_content(text: &str) -> &str {
    let body = if let Some(rest) = text.strip_prefix("//") {
        rest.strip_prefix(['/', '!']).unwrap_or(rest)
    } else if let Some(rest) = text.strip_prefix("/*") {
        rest.strip_prefix(['*', '!']).unwrap_or(rest)
    } else {
        text
    };
    body.trim_start()
}

/// R1 + R2 + R3: single-identifier hazards.
fn check_idents(rel_path: &str, tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    let sim = in_sim_crate(rel_path);
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let mut push = |rule: &'static str, message: String| {
            findings.push(Finding {
                rule,
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message,
                suppressed: None,
            });
        };
        match t.text.as_str() {
            "Instant" | "SystemTime" if !in_test[i] => push(
                "R1",
                format!(
                    "wall-clock type `{}` — sim logic must use SimTime; annotate if this is \
                     genuinely profiling code",
                    t.text
                ),
            ),
            "HashMap" | "HashSet" if sim => push(
                "R2",
                format!(
                    "`{}` in a sim crate iterates in nondeterministic order — use \
                     BTreeMap/BTreeSet, or annotate with proof it is never iterated",
                    t.text
                ),
            ),
            "thread_rng" | "from_entropy" | "OsRng" if !in_test[i] => push(
                "R3",
                format!(
                    "`{}` draws OS entropy — every stochastic choice must come from the \
                     seeded SimRng",
                    t.text
                ),
            ),
            _ => {}
        }
    }
}

/// R4: `==` / `!=` with a float-literal operand, inside `crates/core`.
///
/// A lexer cannot type-infer, so this intentionally catches only the
/// literal-adjacent form (`x == 0.0`, `1.0 != y`) — which is also the form
/// that actually appears in congestion-control code.
fn check_float_eq(rel_path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !rel_path.starts_with(CC_MATH_PREFIX) {
        return;
    }
    let significant: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in significant.iter().enumerate() {
        if !(t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!=")) {
            continue;
        }
        let prev_float = i > 0 && significant[i - 1].kind == TokenKind::Float;
        let next_float = significant
            .get(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Float);
        if prev_float || next_float {
            findings.push(Finding {
                rule: "R4",
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` against a float literal in congestion-control math — compare with \
                     a tolerance or restructure around integer state",
                    t.text
                ),
                suppressed: None,
            });
        }
    }
}

/// R5: `.unwrap()` / `.expect(` in event-loop hot paths, outside tests.
/// The hot scope comes from the [`LintContext`] — graph-derived for a
/// workspace pass, the legacy prefix list otherwise.
fn check_hot_unwrap(
    rel_path: &str,
    tokens: &[Token],
    in_test: &[bool],
    ctx: &LintContext,
    findings: &mut Vec<Finding>,
) {
    if !ctx.is_hot(rel_path) {
        return;
    }
    // Indices of non-comment tokens so `.  unwrap ()` with interleaved
    // comments still matches.
    let idx: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for w in idx.windows(3) {
        let (a, b, c) = (&tokens[w[0]], &tokens[w[1]], &tokens[w[2]]);
        if in_test[w[1]] {
            continue;
        }
        let is_call = a.kind == TokenKind::Punct
            && a.text == "."
            && b.kind == TokenKind::Ident
            && (b.text == "unwrap" || b.text == "expect")
            && c.kind == TokenKind::Punct
            && c.text == "(";
        if is_call {
            findings.push(Finding {
                rule: "R5",
                file: rel_path.to_string(),
                line: b.line,
                col: b.col,
                message: format!(
                    "`.{}()` in an event-loop hot path — a panic here aborts a whole \
                     experiment; handle the None/Err or annotate the invariant",
                    b.text
                ),
                suppressed: None,
            });
        }
    }
}

/// R6: `pub fn` parameters of type `f64` whose names say they are raw
/// seconds/milliseconds/nanoseconds, in sim crates — `SimDuration` /
/// `SimTime` exist precisely so quantities carry their unit.
fn check_raw_unit_api(
    rel_path: &str,
    tokens: &[Token],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    if !in_sim_crate(rel_path) {
        return;
    }
    let significant: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let tok = |k: usize| -> &Token { &tokens[significant[k]] };
    let mut i = 0usize;
    while i < significant.len() {
        if !(tok(i).kind == TokenKind::Ident && tok(i).text == "pub") || in_test[significant[i]] {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip a visibility scope: `pub(crate)`, `pub(super)`, …
        if j < significant.len() && tok(j).text == "(" {
            let mut depth = 0i32;
            while j < significant.len() {
                match tok(j).text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !(j < significant.len() && tok(j).kind == TokenKind::Ident && tok(j).text == "fn") {
            i += 1;
            continue;
        }
        // Find the parameter list's opening paren (skip name + generics).
        let mut k = j + 1;
        let mut angle = 0i32;
        while k < significant.len() {
            match tok(k).text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" if angle <= 0 => break,
                "{" | ";" => break, // malformed / paramless — bail out
                _ => {}
            }
            k += 1;
        }
        if !(k < significant.len() && tok(k).text == "(") {
            i = j + 1;
            continue;
        }
        // Scan `name: f64` pairs inside the parameter parens.
        let mut depth = 0i32;
        while k < significant.len() {
            match tok(k).text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if depth == 1
                && tok(k).kind == TokenKind::Ident
                && k + 2 < significant.len()
                && tok(k + 1).text == ":"
                && tok(k + 2).kind == TokenKind::Ident
                && tok(k + 2).text == "f64"
                && is_raw_time_name(&tok(k).text)
            {
                let t = tok(k);
                findings.push(Finding {
                    rule: "R6",
                    file: rel_path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "pub API takes raw `{}: f64` — pass SimDuration/SimTime so the unit \
                         travels with the value",
                        t.text
                    ),
                    suppressed: None,
                });
            }
            k += 1;
        }
        i = j + 1;
    }
}

/// R7: `std::thread` / `std::sync` paths in the sequential sim crates,
/// outside tests. Tests may thread (a concurrency-free *model* can still be
/// exercised from threaded test harnesses); production sim code may not.
fn check_threading(
    rel_path: &str,
    tokens: &[Token],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    if !SEQUENTIAL_SIM_PREFIXES
        .iter()
        .any(|p| rel_path.starts_with(p))
    {
        return;
    }
    let idx: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for w in idx.windows(3) {
        let (a, b, c) = (&tokens[w[0]], &tokens[w[1]], &tokens[w[2]]);
        if in_test[w[2]] {
            continue;
        }
        let is_threading_path = a.kind == TokenKind::Ident
            && a.text == "std"
            && b.kind == TokenKind::Punct
            && b.text == "::"
            && c.kind == TokenKind::Ident
            && (c.text == "thread" || c.text == "sync");
        if is_threading_path {
            findings.push(Finding {
                rule: "R7",
                file: rel_path.to_string(),
                line: c.line,
                col: c.col,
                message: format!(
                    "`std::{}` in a sim crate — a simulation is single-threaded by contract; \
                     parallelism belongs in orchestra/bench, one level up",
                    c.text
                ),
                suppressed: None,
            });
        }
    }
}

/// Identifiers carrying an explicit time unit, for R8's constructor and
/// conversion-constant prongs.
fn time_unit_of(name: &str) -> Option<&'static str> {
    match name {
        "ns" | "nanos" => return Some("ns"),
        "us" | "micros" => return Some("us"),
        "ms" | "millis" => return Some("ms"),
        "s" | "secs" | "seconds" => return Some("s"),
        _ => {}
    }
    for (suffix, unit) in [
        ("_ns", "ns"),
        ("_nanos", "ns"),
        ("_us", "us"),
        ("_micros", "us"),
        ("_ms", "ms"),
        ("_millis", "ms"),
        ("_s", "s"),
        ("_secs", "s"),
        ("_seconds", "s"),
    ] {
        if name.ends_with(suffix) {
            return Some(unit);
        }
    }
    None
}

/// Identifiers denoting a time quantity without naming a unit (R8c: any
/// of these next to a unit-conversion constant is a hand-rolled
/// conversion that belongs in SimTime/SimDuration).
fn is_time_marker(name: &str) -> bool {
    time_unit_of(name).is_some()
        || matches!(
            name,
            "rtt" | "srtt" | "rto" | "elapsed" | "delay" | "latency" | "timeout" | "horizon"
        )
}

/// The unit a SimTime/SimDuration constructor expects its argument in.
fn ctor_unit(name: &str) -> Option<&'static str> {
    match name {
        "from_nanos" => Some("ns"),
        "from_micros" => Some("us"),
        "from_millis" | "from_millis_f64" => Some("ms"),
        "from_secs" | "from_secs_f64" => Some("s"),
        _ => None,
    }
}

/// Typed-clock accessors whose result is a raw number in a known unit.
const UNIT_ACCESSORS: &[&str] = &[
    "as_nanos",
    "as_micros",
    "as_millis",
    "as_secs",
    "as_secs_f64",
];

/// Unit-conversion constants (`1e9`, `1_000_000`, …), the signature of a
/// hand-rolled unit conversion.
fn is_conversion_constant(text: &str) -> bool {
    let mut t = text.replace('_', "").to_ascii_lowercase();
    for suffix in ["f64", "f32", "u64", "u32", "i64", "i32", "usize"] {
        if let Some(stripped) = t.strip_suffix(suffix) {
            t = stripped.to_string();
            break;
        }
    }
    let t = t.strip_suffix(".0").unwrap_or(&t);
    matches!(
        t,
        "1e9" | "1e6" | "1e3" | "1e-9" | "1e-6" | "1e-3" | "1000000000" | "1000000" | "1000"
    )
}

/// Walk left from significant position `i` (exclusive) collecting the
/// identifiers of one operand expression: idents, field/path separators,
/// `as`-casts, `?`, and bracketed groups (whose idents are all collected).
fn operand_idents_left(tokens: &[Token], sig: &[usize], i: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut sp = i as isize - 1;
    while sp >= 0 {
        let t = &tokens[sig[sp as usize]];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "as") => sp -= 1,
            (TokenKind::Ident, name) => {
                idents.push(name.to_string());
                sp -= 1;
            }
            (TokenKind::Int | TokenKind::Float | TokenKind::Literal, _) => sp -= 1,
            (TokenKind::Punct, "." | "::" | "?") => sp -= 1,
            (TokenKind::Punct, ")" | "]") => {
                // Consume the whole group, collecting its idents.
                let mut depth = 0i32;
                while sp >= 0 {
                    let t = &tokens[sig[sp as usize]];
                    match t.text.as_str() {
                        ")" | "]" => depth += 1,
                        "(" | "[" => depth -= 1,
                        _ => {
                            if t.kind == TokenKind::Ident && t.text != "as" {
                                idents.push(t.text.clone());
                            }
                        }
                    }
                    sp -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            _ => break,
        }
    }
    idents
}

/// Walk right from significant position `i` (exclusive) collecting one
/// operand's identifiers (idents and separators only — a right operand of
/// `1e9 * x.field` form).
fn operand_idents_right(tokens: &[Token], sig: &[usize], i: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut sp = i + 1;
    while sp < sig.len() {
        let t = &tokens[sig[sp]];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "as") => sp += 1,
            (TokenKind::Ident, name) => {
                idents.push(name.to_string());
                sp += 1;
            }
            (TokenKind::Punct, "." | "::") => sp += 1,
            _ => break,
        }
    }
    idents
}

/// R8: unit mismatches in typed-time arithmetic, three prongs.
///
/// * **R8a** — a `from_nanos`/`from_millis`/… constructor fed an argument
///   whose name carries a *different* unit (`SimTime::from_secs(dt_ns)`);
/// * **R8b** — `+`/`-`/`%` between a unit accessor's result and a bare
///   numeric literal (`t.as_nanos() + 500`: 500 *what*?);
/// * **R8c** — `*`/`/` against a unit-conversion constant next to a
///   time-named identifier (`elapsed_ns as f64 / 1e9`): a hand-rolled
///   conversion that belongs in the typed-clock API.
fn check_unit_mismatch(
    rel_path: &str,
    tokens: &[Token],
    in_test: &[bool],
    file_ast: &FileAst,
    findings: &mut Vec<Finding>,
) {
    if !in_sim_crate(rel_path) {
        return;
    }
    // R8a: constructor-unit mismatch, from the AST's call arguments.
    for call in &file_ast.calls {
        if call.in_test {
            continue;
        }
        let Some(name) = call.path.last() else {
            continue;
        };
        let Some(expect) = ctor_unit(name) else {
            continue;
        };
        for arg in &call.args {
            for t in &tokens[arg.span.0..arg.span.1.min(tokens.len())] {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                if let Some(got) = time_unit_of(&t.text) {
                    if got != expect {
                        findings.push(Finding {
                            rule: "R8",
                            file: rel_path.to_string(),
                            line: call.line,
                            col: call.col,
                            message: format!(
                                "`{name}` expects {expect} but its argument `{}` is named in \
                                 {got} — convert explicitly or rename the quantity",
                                t.text
                            ),
                            suppressed: None,
                        });
                    }
                }
            }
        }
    }

    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let text = |sp: usize| -> &str {
        if sp < sig.len() {
            &tokens[sig[sp]].text
        } else {
            ""
        }
    };
    let kind = |sp: usize| -> Option<TokenKind> { sig.get(sp).map(|&oi| tokens[oi].kind) };

    // R8b: unit-accessor result +/-/% a bare literal.
    for sp in 0..sig.len() {
        if in_test[sig[sp]] {
            continue;
        }
        let is_accessor = text(sp) == "."
            && UNIT_ACCESSORS.contains(&text(sp + 1))
            && text(sp + 2) == "("
            && text(sp + 3) == ")";
        if !is_accessor {
            continue;
        }
        // `.as_nanos() + 500`
        if matches!(text(sp + 4), "+" | "-" | "%")
            && matches!(kind(sp + 5), Some(TokenKind::Int | TokenKind::Float))
        {
            let lit = &tokens[sig[sp + 5]];
            findings.push(Finding {
                rule: "R8",
                file: rel_path.to_string(),
                line: lit.line,
                col: lit.col,
                message: format!(
                    "`{}() {} {}` mixes a typed-unit value with a raw literal — say which \
                     unit the literal is in (SimDuration::from_…)",
                    text(sp + 1),
                    text(sp + 4),
                    lit.text
                ),
                suppressed: None,
            });
        }
        // `500 + t.as_nanos()`
        let mut back = sp as isize - 1;
        while back >= 0
            && (kind(back as usize) == Some(TokenKind::Ident) && text(back as usize) != "as"
                || matches!(text(back as usize), "." | "::"))
        {
            back -= 1;
        }
        if back >= 1
            && matches!(text(back as usize), "+" | "-" | "%")
            && matches!(
                kind(back as usize - 1),
                Some(TokenKind::Int | TokenKind::Float)
            )
        {
            let lit = &tokens[sig[back as usize - 1]];
            findings.push(Finding {
                rule: "R8",
                file: rel_path.to_string(),
                line: lit.line,
                col: lit.col,
                message: format!(
                    "`{} {} ….{}()` mixes a raw literal with a typed-unit value — say which \
                     unit the literal is in (SimDuration::from_…)",
                    lit.text,
                    text(back as usize),
                    text(sp + 1),
                ),
                suppressed: None,
            });
        }
    }

    // R8c: conversion constant × time-named identifier.
    for sp in 0..sig.len() {
        let oi = sig[sp];
        if in_test[oi] {
            continue;
        }
        let t = &tokens[oi];
        if !matches!(t.kind, TokenKind::Int | TokenKind::Float) || !is_conversion_constant(&t.text)
        {
            continue;
        }
        let mut marker: Option<String> = None;
        // `x_ns / 1e9` — literal on the right.
        if sp >= 1 && matches!(text(sp - 1), "*" | "/") {
            marker = operand_idents_left(tokens, &sig, sp - 1)
                .into_iter()
                .find(|n| is_time_marker(n) || UNIT_ACCESSORS.contains(&n.as_str()));
        }
        // `1e9 * x_ns` — literal on the left; skip when the literal is
        // itself a right operand (`a / 1e9 / b`: b is not being converted).
        if marker.is_none()
            && matches!(text(sp + 1), "*" | "/")
            && !(sp >= 1 && matches!(text(sp - 1), "+" | "-" | "*" | "/" | "%"))
        {
            marker = operand_idents_right(tokens, &sig, sp + 1)
                .into_iter()
                .find(|n| is_time_marker(n) || UNIT_ACCESSORS.contains(&n.as_str()));
        }
        if let Some(marker) = marker {
            findings.push(Finding {
                rule: "R8",
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "hand-rolled unit conversion: `{}` scaled by `{}` — use the typed \
                     SimTime/SimDuration constructors and accessors instead",
                    marker, t.text
                ),
                suppressed: None,
            });
        }
    }
}

/// Identifier evidence that a cast operand lives in the time, sequence
/// number, or DSN domain (R9).
fn is_lossy_domain_marker(name: &str) -> bool {
    if matches!(
        name,
        "ns" | "nanos"
            | "secs"
            | "seconds"
            | "seq"
            | "dsn"
            | "key"
            | "keys"
            | "rtt"
            | "srtt"
            | "time"
            | "now"
            | "horizon"
            | "deadline"
    ) || UNIT_ACCESSORS.contains(&name)
    {
        return true;
    }
    [
        "_ns", "_us", "_ms", "_s", "_secs", "_nanos", "_seq", "_dsn", "_key", "_time",
    ]
    .iter()
    .any(|suf| name.ends_with(suf))
}

/// R9: `as` casts narrowing time/sequence/DSN-domain values in the
/// event-loop crates. The cast operand's identifiers carry the domain
/// evidence; widening targets (`u128`, `f64`) are never flagged.
fn check_lossy_cast(rel_path: &str, file_ast: &FileAst, findings: &mut Vec<Finding>) {
    if !crate::graph::GRAPH_UNIVERSE_PREFIXES
        .iter()
        .any(|p| rel_path.starts_with(p))
    {
        return;
    }
    const NARROW_TARGETS: &[&str] = &["u64", "u32", "u16", "u8", "i64", "i32", "f32"];
    for cast in &file_ast.casts {
        if cast.in_test {
            continue;
        }
        let base = cast
            .target
            .split_whitespace()
            .find(|w| !matches!(*w, "&" | "*" | "mut" | "const" | "dyn"))
            .unwrap_or("");
        if !NARROW_TARGETS.contains(&base) {
            continue;
        }
        if let Some(marker) = cast
            .operand_idents
            .iter()
            .find(|n| is_lossy_domain_marker(n))
        {
            findings.push(Finding {
                rule: "R9",
                file: rel_path.to_string(),
                line: cast.line,
                col: cast.col,
                message: format!(
                    "`as {base}` narrows `{marker}` — time/sequence/DSN values silently \
                     truncate; convert through the typed API or prove the range",
                    base = base,
                    marker = marker
                ),
                suppressed: None,
            });
        }
    }
}

/// R10: eager trace emission. `Tracer::emit(now, make)` takes a closure
/// precisely so disabled tracing costs nothing; passing a prebuilt event,
/// or capturing locals that were computed just above *for the event*,
/// pays the formatting/conversion cost on every call.
fn check_eager_trace(
    rel_path: &str,
    tokens: &[Token],
    file_ast: &FileAst,
    findings: &mut Vec<Finding>,
) {
    for call in &file_ast.calls {
        if call.in_test
            || !call.is_method
            || call.path.last().map(String::as_str) != Some("emit")
            || !call.recv_idents.iter().any(|n| n == "tracer")
        {
            continue;
        }
        let closure_args: Vec<_> = call.args.iter().filter(|a| a.is_closure).collect();
        if closure_args.is_empty() {
            findings.push(Finding {
                rule: "R10",
                file: rel_path.to_string(),
                line: call.line,
                col: call.col,
                message: "tracer emit without a lazy closure — the event is built even when \
                          tracing is disabled; pass `|| TraceEvent::…`"
                    .to_string(),
                suppressed: None,
            });
            continue;
        }
        // Closure-captured locals computed just above the call *for the
        // event alone*: the computation ran eagerly even though only the
        // closure needs it. A local that non-trace code also uses is
        // load-bearing and exempt.
        let spans: Vec<(usize, usize)> = closure_args.iter().map(|a| a.span).collect();
        if let Some(name) = eager_capture(tokens, &spans, call.line) {
            findings.push(Finding {
                rule: "R10",
                file: rel_path.to_string(),
                line: call.line,
                col: call.col,
                message: format!(
                    "`{name}` is computed outside the trace closure and used nowhere else — \
                     move the computation inside `|| …` so disabled tracing stays free"
                ),
                suppressed: None,
            });
        }
    }
}

/// Does a closure spanning one of `spans` capture a local that a nearby
/// preceding `let` computed (initializer contains a call or arithmetic)
/// and that nothing *outside* the closures uses? Returns the first such
/// binding name.
fn eager_capture(tokens: &[Token], spans: &[(usize, usize)], call_line: u32) -> Option<String> {
    let first_start = spans.iter().map(|s| s.0).min()?;
    let last_end = spans.iter().map(|s| s.1).max()?;
    let in_closure = |oi: usize| spans.iter().any(|&(a, b)| oi >= a && oi < b);
    // Identifiers referenced inside the closure bodies.
    let mut captured: Vec<&str> = Vec::new();
    for (oi, t) in tokens.iter().enumerate() {
        if in_closure(oi) && t.kind == TokenKind::Ident && !captured.contains(&t.text.as_str()) {
            captured.push(&t.text);
        }
    }
    // Walk backwards over `let <name> = <init>;` statements above the
    // call (bounded: 250 tokens, same fn, 15 lines).
    let sig: Vec<usize> = (0..first_start.min(tokens.len()))
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let lo = sig.len().saturating_sub(250);
    for w in (lo..sig.len().saturating_sub(2)).rev() {
        let t0 = &tokens[sig[w]];
        if t0.kind == TokenKind::Ident && t0.text == "fn" {
            break; // do not cross into a previous function
        }
        if !(t0.kind == TokenKind::Ident && t0.text == "let") {
            continue;
        }
        let mut n = w + 1;
        if tokens[sig[n]].text == "mut" {
            n += 1;
        }
        if n + 1 >= sig.len() {
            continue;
        }
        let name_tok = &tokens[sig[n]];
        if name_tok.kind != TokenKind::Ident
            || !captured.contains(&name_tok.text.as_str())
            || tokens[sig[n + 1]].text != "="
        {
            continue;
        }
        if call_line.saturating_sub(name_tok.line) > 15 {
            continue;
        }
        // Initializer up to the `;`: calls or arithmetic mean real work.
        let mut computed = false;
        let mut stmt_end = tokens.len();
        for &oi in sig.iter().skip(n + 2) {
            let t = &tokens[oi];
            if t.text == ";" {
                stmt_end = oi;
                break;
            }
            if t.kind == TokenKind::Punct
                && matches!(
                    t.text.as_str(),
                    "(" | "+" | "-" | "*" | "/" | "%" | "<<" | ">>"
                )
            {
                computed = true;
            }
        }
        if !computed {
            continue;
        }
        // Any use outside the closures — between the `let` and the call,
        // or shortly after it — means the value is load-bearing for
        // non-trace code, so computing it eagerly is legitimate.
        let name = name_tok.text.as_str();
        let mut fwd_limit = (last_end + 200).min(tokens.len());
        if let Some(next_fn) = (last_end..fwd_limit).find(|&oi| {
            !tokens[oi].is_comment()
                && tokens[oi].kind == TokenKind::Ident
                && tokens[oi].text == "fn"
        }) {
            fwd_limit = next_fn; // do not cross into the next function
        }
        let used_elsewhere = (stmt_end..fwd_limit).any(|oi| {
            let t = &tokens[oi];
            !in_closure(oi) && t.kind == TokenKind::Ident && t.text == name
        });
        if !used_elsewhere {
            return Some(name_tok.text.clone());
        }
    }
    None
}

/// Iterator adapters that preserve their source's order.
const STABLE_ADAPTERS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "range",
    "drain",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "enumerate",
    "zip",
    "chain",
    "take",
    "take_while",
    "skip",
    "skip_while",
    "rev",
    "copied",
    "cloned",
    "inspect",
    "by_ref",
    "step_by",
    "windows",
    "chunks",
    "chunks_exact",
    "peekable",
    "fuse",
    "lines",
    "chars",
    "bytes",
];

/// First links that prove a call-rooted chain entered iteration through
/// an order-defined entry point.
const ITER_ENTRY: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "range",
    "windows",
    "chunks",
    "lines",
    "chars",
    "bytes",
];

/// Is a chain's iteration order proven stable? BTree/Vec/slice/range
/// sources iterate in a defined order (Hash* containers are already
/// banned in sim crates by R2); an unrecognised adapter or opaque root
/// means "cannot prove it", which is a finding for float folds.
fn chain_is_order_stable(root: &ChainRoot, links: &[String]) -> bool {
    if !links.iter().all(|l| STABLE_ADAPTERS.contains(&l.as_str())) {
        return false;
    }
    match root {
        ChainRoot::Ident(_) | ChainRoot::Lit | ChainRoot::Range | ChainRoot::ArrayLit => true,
        ChainRoot::Call(_) => links
            .first()
            .is_some_and(|l| ITER_ENTRY.contains(&l.as_str())),
        ChainRoot::Paren | ChainRoot::Unknown => false,
    }
}

/// R11: order-sensitive float reductions. Float addition does not
/// associate, so a `.sum()`/`.fold()` (or a `+=` loop) over an iteration
/// source whose order is not proven stable can change published numbers
/// between runs. Applies to test code too — digest-comparison tests are
/// where this bites first.
fn check_float_fold(
    rel_path: &str,
    tokens: &[Token],
    file_ast: &FileAst,
    findings: &mut Vec<Finding>,
) {
    if !in_sim_crate(rel_path) {
        return;
    }
    for red in &file_ast.reductions {
        if !red.float_hint || chain_is_order_stable(&red.root, &red.links) {
            continue;
        }
        let via = if red.links.is_empty() {
            String::new()
        } else {
            format!(" via `.{}()`", red.links.join("()."))
        };
        findings.push(Finding {
            rule: "R11",
            file: rel_path.to_string(),
            line: red.line,
            col: red.col,
            message: format!(
                "float `.{}()`{via} over a source not proven order-stable — collect into an \
                 ordered container first, or restructure the fold",
                red.terminal
            ),
            suppressed: None,
        });
    }
    // `+=` accumulation inside a for-loop over an unstable source.
    for lp in &file_ast.for_loops {
        if chain_is_order_stable(&lp.root, &lp.links) {
            continue;
        }
        for oi in lp.body_span.0..lp.body_span.1.min(tokens.len()) {
            let t = &tokens[oi];
            if !(t.kind == TokenKind::Punct && t.text == "+=") {
                continue;
            }
            if statement_has_float_evidence(tokens, oi) {
                findings.push(Finding {
                    rule: "R11",
                    file: rel_path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: "float `+=` inside a loop over a source not proven order-stable — \
                              float addition does not associate"
                        .to_string(),
                    suppressed: None,
                });
            }
        }
    }
}

/// Does the statement around token `at` involve floats (a float literal
/// or an explicit f64/f32)?
fn statement_has_float_evidence(tokens: &[Token], at: usize) -> bool {
    let is_boundary =
        |t: &Token| t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}");
    let float_ish = |t: &Token| {
        t.kind == TokenKind::Float
            || (t.kind == TokenKind::Ident && matches!(t.text.as_str(), "f64" | "f32"))
    };
    let mut i = at;
    while i > 0 {
        i -= 1;
        let t = &tokens[i];
        if is_boundary(t) {
            break;
        }
        if float_ish(t) {
            return true;
        }
    }
    let mut i = at + 1;
    while i < tokens.len() {
        let t = &tokens[i];
        if is_boundary(t) {
            break;
        }
        if float_ish(t) {
            return true;
        }
        i += 1;
    }
    false
}

/// Parameter names that denote a bare time quantity.
fn is_raw_time_name(name: &str) -> bool {
    matches!(
        name,
        "s" | "secs" | "seconds" | "ms" | "millis" | "ns" | "nanos"
    ) || name.ends_with("_s")
        || name.ends_with("_secs")
        || name.ends_with("_seconds")
        || name.ends_with("_ms")
        || name.ends_with("_ns")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_source(path, src, &Config::default())
    }

    fn unsuppressed(findings: &[Finding]) -> Vec<&Finding> {
        findings.iter().filter(|f| f.suppressed.is_none()).collect()
    }

    #[test]
    fn r1_fires_on_instant_but_not_in_comments_or_other_idents() {
        let src = "// Instant in prose\nuse std::time::Instant; // real\nlet v = RedInstant;\n";
        let f = lint("crates/bench/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("R1", 2));
    }

    #[test]
    fn r2_only_in_sim_crates_and_also_in_tests() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests { fn f() { let s = std::collections::HashSet::<u32>::new(); } }\n";
        assert_eq!(lint("crates/netsim/src/x.rs", src).len(), 2);
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn r5_follows_the_context_hot_set_and_skips_tests() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); }\n#[test]\nfn t() { Some(1).unwrap(); }\n";
        // With a derived hot set, membership is exact — no path prefix
        // carries weight on its own. The same file flips between hot
        // and cold purely on context, and test code is always skipped.
        let hot: std::collections::BTreeSet<String> = ["crates/core/src/olia.rs".to_string()]
            .into_iter()
            .collect();
        let ctx = LintContext::with_hot_files(hot);
        let cfg = Config::default();
        let f = lint_source_with("crates/core/src/olia.rs", src, &cfg, &ctx);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("R5", 1));
        assert!(lint_source_with("crates/core/src/lia.rs", src, &cfg, &ctx).is_empty());
        assert!(lint_source_with("crates/eventsim/src/queue.rs", src, &cfg, &ctx).is_empty());
    }

    #[test]
    fn r5_legacy_context_falls_back_to_the_seed_prefixes() {
        // Single-file entry points (`lint_source`, fixture tests) have no
        // call graph; they fall back to the seed prefix list that also
        // feeds `[hotpath]` in simlint.toml.
        let src = "fn f(x: Option<u32>) { x.unwrap(); }\n";
        let ctx = LintContext::legacy();
        for prefix in HOT_PATH_PREFIXES {
            let path = format!("{prefix}probe.rs");
            assert!(ctx.is_hot(&path), "{path} should be hot under legacy");
            assert_eq!(lint(&path, src).len(), 1, "{path}");
        }
        assert!(!ctx.is_hot("crates/netsim/src/profile.rs"));
        assert!(lint("crates/netsim/src/profile.rs", src).is_empty());
    }

    #[test]
    fn r4_literal_adjacent_float_equality_in_core_only() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\nfn g(n: u64) -> bool { n != 3 }\n";
        let f = lint("crates/core/src/olia.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("R4", 1));
        assert!(lint("crates/netsim/src/sim.rs", src).is_empty());
    }

    #[test]
    fn r6_flags_raw_second_params_in_pub_sim_apis() {
        let src = "pub fn run_for(warmup_s: f64, n: u64) {}\nfn private(warmup_s: f64) {}\npub fn typed(d: SimDuration) {}\n";
        let f = lint("crates/topo/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("R6", 1));
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn r7_forbids_threading_in_sim_crates_but_not_harness_crates() {
        let src = "use std::sync::atomic::AtomicU64;\nfn f() { std::thread::sleep(d); }\n";
        let f = lint("crates/netsim/src/x.rs", src);
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].rule, f[0].line), ("R7", 1));
        assert_eq!((f[1].rule, f[1].line), ("R7", 2));
        // Harness layers parallelize legitimately.
        assert!(lint("crates/orchestra/src/pool.rs", src).is_empty());
        assert!(lint("crates/bench/src/lib.rs", src).is_empty());
        // topo builds graphs, it is not in the sequential set.
        assert!(lint("crates/topo/src/x.rs", src).is_empty());
    }

    #[test]
    fn r7_skips_test_code_and_mere_mentions() {
        let src = "\
// std::thread in prose is fine
#[cfg(test)]
mod tests { fn t() { std::thread::spawn(f); } }
fn sync(x: u32) {} // an ident named sync alone is not a path
";
        assert!(lint("crates/eventsim/src/x.rs", src).is_empty());
        let f = lint(
            "crates/core/src/x.rs",
            "use std::sync::Mutex; // simlint: allow(R7) guards a debug-only counter\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed.is_some());
    }

    #[test]
    fn inline_allow_suppresses_same_and_next_line_and_requires_reason() {
        let src = "\
// simlint: allow(R2) never iterated, keyed lookups only
use std::collections::HashMap;
use std::collections::HashSet; // simlint: allow(R2) dedup-only in setup
";
        let f = lint("crates/tcpsim/src/x.rs", src);
        assert_eq!(f.len(), 2);
        assert!(unsuppressed(&f).is_empty(), "{f:?}");

        let missing_reason = "use std::collections::HashMap; // simlint: allow(R2)\n";
        let f = lint("crates/tcpsim/src/x.rs", missing_reason);
        assert!(f.iter().any(|x| x.rule == "A1"));
        assert!(f.iter().any(|x| x.rule == "R2" && x.suppressed.is_none()));
    }

    #[test]
    fn deleting_an_allow_resurfaces_the_finding() {
        let with = "use std::collections::HashMap; // simlint: allow(R2) point lookups only\n";
        let without = "use std::collections::HashMap;\n";
        assert!(unsuppressed(&lint("crates/core/src/x.rs", with)).is_empty());
        assert_eq!(
            unsuppressed(&lint("crates/core/src/x.rs", without)).len(),
            1
        );
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let f = lint(
            "crates/core/src/x.rs",
            "// simlint: allow(R1) nothing here reads a clock\nlet x = 1;\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "A2");
    }

    #[test]
    fn path_allow_from_config_suppresses() {
        let cfg = crate::config::parse(
            "[[allow]]\npath = \"compat/criterion\"\nrules = [\"R1\"]\nreason = \"wall-clock is the product\"\n",
        )
        .unwrap();
        let src = "use std::time::Instant;\n";
        let f = lint_source("compat/criterion/src/lib.rs", src, &cfg);
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed.as_deref().unwrap().contains("wall-clock"));
        let f = lint_source("crates/netsim/src/profile.rs", src, &cfg);
        assert!(f[0].suppressed.is_none());
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn f() { let t = Instant::now(); }\n";
        let f = lint("crates/netsim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "R1");
    }

    #[test]
    fn r8_unit_classifiers() {
        // Exact names and suffixed names carry units; prose does not.
        assert_eq!(time_unit_of("ns"), Some("ns"));
        assert_eq!(time_unit_of("delay_ms"), Some("ms"));
        assert_eq!(time_unit_of("warmup_s"), Some("s"));
        assert_eq!(time_unit_of("horizon"), None);
        assert_eq!(
            time_unit_of("announce"),
            None,
            "suffix match must respect `_`"
        );
        assert_eq!(ctor_unit("from_nanos"), Some("ns"));
        assert_eq!(ctor_unit("from_secs_f64"), Some("s"));
        assert_eq!(ctor_unit("new"), None);
        // rtt/elapsed/deadline mark time without naming a unit.
        assert!(is_time_marker("srtt"));
        assert!(is_time_marker("elapsed"));
        assert!(!is_time_marker("cwnd"));
    }

    #[test]
    fn r8_conversion_constants() {
        for c in ["1e9", "1E9", "1e-6", "1_000_000", "1000f64", "1e3_f64"] {
            assert!(is_conversion_constant(c), "{c}");
        }
        for c in ["8.0", "2", "0.5", "42", "100"] {
            assert!(!is_conversion_constant(c), "{c}");
        }
    }

    #[test]
    fn r9_domain_markers() {
        for m in ["now_ns", "seq", "dsn", "srtt", "as_nanos", "deadline"] {
            assert!(is_lossy_domain_marker(m), "{m}");
        }
        for m in ["flags", "cwnd_pkts", "idx", "count"] {
            assert!(!is_lossy_domain_marker(m), "{m}");
        }
    }

    #[test]
    fn r11_chain_stability() {
        let ident = ChainRoot::Ident("alphas".to_string());
        let stable: Vec<String> = ["iter", "map", "copied"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(chain_is_order_stable(&ident, &stable));
        // An opaque method in the chain poisons stability.
        let opaque: Vec<String> = ["pending", "map"].iter().map(|s| s.to_string()).collect();
        assert!(!chain_is_order_stable(&ident, &opaque));
        // A call root is stable only when it immediately enters iteration.
        let call = ChainRoot::Call("pending".to_string());
        let entry: Vec<String> = ["iter", "map"].iter().map(|s| s.to_string()).collect();
        assert!(chain_is_order_stable(&call, &entry));
        let bare: Vec<String> = ["map"].iter().map(|s| s.to_string()).collect();
        assert!(!chain_is_order_stable(&call, &bare));
        assert!(!chain_is_order_stable(&ChainRoot::Unknown, &stable));
    }
}

//! The checked-in `simlint.toml` path-level allow-list.
//!
//! Inline `// simlint: allow(..)` comments suppress a single line; some
//! exemptions are a property of a whole file or directory (the vendored
//! `compat/criterion` stand-in *exists* to read the wall clock), and those
//! belong in one auditable place rather than sprinkled through vendored
//! code. The format is a tiny TOML subset — exactly this shape:
//!
//! ```toml
//! [[allow]]
//! path = "compat/criterion"          # workspace-relative prefix
//! rules = ["R1"]                     # rule ids this entry suppresses
//! reason = "why this is legitimate"  # required, non-empty
//! ```
//!
//! The parser is line-based and strict: unknown keys, unknown sections,
//! missing fields, or an empty reason are hard errors, so the allow-list
//! cannot rot silently.

use crate::rules::RULES;

/// One `[[allow]]` entry: suppress `rules` for every file whose
/// workspace-relative path starts with `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathAllow {
    /// Workspace-relative path prefix (forward slashes).
    pub path: String,
    /// Rule ids (`"R1"` … `"R6"`) suppressed under the prefix.
    pub rules: Vec<String>,
    /// Written justification (required, non-empty).
    pub reason: String,
}

/// Parsed configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Path-level allow entries, in file order.
    pub allows: Vec<PathAllow>,
}

impl Config {
    /// The rules suppressed for `rel_path` by path-level entries, with the
    /// matching entry's reason.
    pub fn path_allow(&self, rel_path: &str, rule: &str) -> Option<&PathAllow> {
        self.allows
            .iter()
            .find(|a| rel_path.starts_with(&a.path) && a.rules.iter().any(|r| r == rule))
    }
}

/// Parse `simlint.toml` text. Errors carry 1-based line numbers.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut config = Config::default();
    let mut current: Option<PartialAllow> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(partial) = current.take() {
                config.allows.push(partial.finish()?);
            }
            current = Some(PartialAllow::new(lineno));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unknown section {line:?}"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let entry = current
            .as_mut()
            .ok_or_else(|| format!("line {lineno}: key outside an [[allow]] section"))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "path" => entry.path = Some(parse_string(value, lineno)?),
            "reason" => entry.reason = Some(parse_string(value, lineno)?),
            "rules" => entry.rules = Some(parse_string_array(value, lineno)?),
            other => return Err(format!("line {lineno}: unknown key {other:?}")),
        }
    }
    if let Some(partial) = current.take() {
        config.allows.push(partial.finish()?);
    }
    Ok(config)
}

/// Drop a trailing `# …` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string"))?;
    if inner.contains('"') || inner.contains('\\') {
        return Err(format!(
            "line {lineno}: escapes are not supported in this TOML subset"
        ));
    }
    Ok(inner.to_string())
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected an array like [\"R1\"]"))?;
    let mut items = Vec::new();
    for piece in inner.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        items.push(parse_string(piece, lineno)?);
    }
    if items.is_empty() {
        return Err(format!("line {lineno}: rules array must not be empty"));
    }
    Ok(items)
}

/// An `[[allow]]` section mid-parse.
struct PartialAllow {
    start_line: usize,
    path: Option<String>,
    rules: Option<Vec<String>>,
    reason: Option<String>,
}

impl PartialAllow {
    fn new(start_line: usize) -> Self {
        PartialAllow {
            start_line,
            path: None,
            rules: None,
            reason: None,
        }
    }

    fn finish(self) -> Result<PathAllow, String> {
        let at = self.start_line;
        let path = self
            .path
            .ok_or_else(|| format!("[[allow]] at line {at}: missing `path`"))?;
        let rules = self
            .rules
            .ok_or_else(|| format!("[[allow]] at line {at}: missing `rules`"))?;
        let reason = self
            .reason
            .ok_or_else(|| format!("[[allow]] at line {at}: missing `reason`"))?;
        if reason.trim().is_empty() {
            return Err(format!(
                "[[allow]] at line {at}: reason must be a written justification"
            ));
        }
        for rule in &rules {
            if !RULES.iter().any(|r| r.id == rule) {
                return Err(format!("[[allow]] at line {at}: unknown rule {rule:?}"));
            }
        }
        Ok(PathAllow {
            path,
            rules,
            reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_entry() {
        let cfg = parse(
            "# header comment\n\n[[allow]]\npath = \"compat/criterion\" # trailing\nrules = [\"R1\", \"R5\"]\nreason = \"stand-in measures wall-clock by design\"\n",
        )
        .expect("valid config");
        assert_eq!(cfg.allows.len(), 1);
        let a = &cfg.allows[0];
        assert_eq!(a.path, "compat/criterion");
        assert_eq!(a.rules, vec!["R1", "R5"]);
        assert!(cfg
            .path_allow("compat/criterion/src/lib.rs", "R1")
            .is_some());
        assert!(cfg
            .path_allow("compat/criterion/src/lib.rs", "R2")
            .is_none());
        assert!(cfg.path_allow("crates/netsim/src/sim.rs", "R1").is_none());
    }

    #[test]
    fn missing_reason_is_an_error() {
        let err = parse("[[allow]]\npath = \"x\"\nrules = [\"R1\"]\n").unwrap_err();
        assert!(err.contains("missing `reason`"), "{err}");
        let err =
            parse("[[allow]]\npath = \"x\"\nrules = [\"R1\"]\nreason = \"  \"\n").unwrap_err();
        assert!(err.contains("written justification"), "{err}");
    }

    #[test]
    fn unknown_rule_and_key_are_errors() {
        let err = parse("[[allow]]\npath = \"x\"\nrules = [\"R9\"]\nreason = \"r\"\n").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        let err = parse("[[allow]]\nfrob = \"x\"\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn keys_outside_a_section_are_errors() {
        let err = parse("path = \"x\"\n").unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }
}

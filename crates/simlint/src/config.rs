//! The checked-in `simlint.toml`: path-level allows, scoped rule grants,
//! and the hot-path seed list.
//!
//! Inline `// simlint: allow(..)` comments suppress a single line; some
//! exemptions are a property of a whole file or directory (the vendored
//! `compat/criterion` stand-in *exists* to read the wall clock), and those
//! belong in one auditable place rather than sprinkled through vendored
//! code. The format is a tiny TOML subset — exactly these shapes:
//!
//! ```toml
//! [[allow]]
//! path = "compat/criterion"          # workspace-relative prefix
//! rules = ["R1"]                     # rule ids this entry suppresses
//! reason = "why this is legitimate"  # required, non-empty
//!
//! [[grant]]                          # scoped pre-authorisation: same
//! path = "crates/eventsim/src/par"   # fields as [[allow]], but exempt
//! rules = ["R7"]                     # from the A3 staleness audit —
//! reason = "future PDES module"      # grants may name code that does
//!                                    # not exist yet
//! [hotpath]
//! seeds = ["crates/eventsim/src/"]   # R5 hot-path fallback seeds; the
//!                                    # call graph derives the real set
//! ```
//!
//! `[[allow]]` entries must stay load-bearing: the A3 audit flags any
//! whose path matches no scanned file or whose rules no longer fire under
//! it. `[[grant]]` entries are the escape hatch for *planned* code (e.g.
//! `R7` carved out for a future `eventsim::par`) and are audit-exempt.
//!
//! The parser is line-based and strict: unknown keys, unknown sections,
//! missing fields, or an empty reason are hard errors, so the allow-list
//! cannot rot silently.

use crate::rules::{HOT_PATH_PREFIXES, RULES};

/// One `[[allow]]` or `[[grant]]` entry: suppress `rules` for every file
/// whose workspace-relative path starts with `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathAllow {
    /// Workspace-relative path prefix (forward slashes).
    pub path: String,
    /// Rule ids (`"R1"` … `"R11"`) suppressed under the prefix.
    pub rules: Vec<String>,
    /// Written justification (required, non-empty).
    pub reason: String,
    /// 1-based line of the section header in `simlint.toml` (0 for
    /// entries built in code).
    pub line: usize,
}

/// The `[hotpath]` section: seed prefixes unioned into the derived R5
/// hot-path set (and audited for reachability by A3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hotpath {
    /// Path prefixes seeding the hot set.
    pub seeds: Vec<String>,
    /// 1-based line of the `[hotpath]` header (0 for the built-in
    /// default).
    pub line: usize,
}

/// Parsed configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Path-level allow entries, in file order.
    pub allows: Vec<PathAllow>,
    /// Scoped grants — same suppression semantics as `allows`, exempt
    /// from the A3 staleness audit.
    pub grants: Vec<PathAllow>,
    /// Hot-path seeds (defaults to [`HOT_PATH_PREFIXES`]).
    pub hotpath: Hotpath,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            allows: Vec::new(),
            grants: Vec::new(),
            hotpath: Hotpath {
                seeds: HOT_PATH_PREFIXES.iter().map(|p| p.to_string()).collect(),
                line: 0,
            },
        }
    }
}

impl Config {
    /// The entry (allow or grant) suppressing `rule` for `rel_path`, if
    /// any.
    pub fn path_allow(&self, rel_path: &str, rule: &str) -> Option<&PathAllow> {
        self.allows
            .iter()
            .chain(self.grants.iter())
            .find(|a| rel_path.starts_with(&a.path) && a.rules.iter().any(|r| r == rule))
    }
}

/// Parse `simlint.toml` text. Errors carry 1-based line numbers.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut config = Config::default();
    let mut current: Option<Section> = None;
    let mut saw_hotpath = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" || line == "[[grant]]" || line == "[hotpath]" {
            if let Some(section) = current.take() {
                section.finish(&mut config)?;
            }
            current = Some(match line {
                "[[allow]]" => Section::Allow(PartialAllow::new(lineno)),
                "[[grant]]" => Section::Grant(PartialAllow::new(lineno)),
                _ => {
                    if saw_hotpath {
                        return Err(format!("line {lineno}: duplicate [hotpath] section"));
                    }
                    saw_hotpath = true;
                    Section::Hotpath {
                        start_line: lineno,
                        seeds: None,
                    }
                }
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unknown section {line:?}"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let section = current
            .as_mut()
            .ok_or_else(|| format!("line {lineno}: key outside a section"))?;
        let (key, value) = (key.trim(), value.trim());
        match section {
            Section::Allow(entry) | Section::Grant(entry) => match key {
                "path" => entry.path = Some(parse_string(value, lineno)?),
                "reason" => entry.reason = Some(parse_string(value, lineno)?),
                "rules" => entry.rules = Some(parse_string_array(value, lineno)?),
                other => return Err(format!("line {lineno}: unknown key {other:?}")),
            },
            Section::Hotpath { seeds, .. } => match key {
                "seeds" => *seeds = Some(parse_string_array(value, lineno)?),
                other => return Err(format!("line {lineno}: unknown key {other:?} in [hotpath]")),
            },
        }
    }
    if let Some(section) = current.take() {
        section.finish(&mut config)?;
    }
    Ok(config)
}

/// Drop a trailing `# …` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string"))?;
    if inner.contains('"') || inner.contains('\\') {
        return Err(format!(
            "line {lineno}: escapes are not supported in this TOML subset"
        ));
    }
    Ok(inner.to_string())
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected an array like [\"R1\"]"))?;
    let mut items = Vec::new();
    for piece in inner.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        items.push(parse_string(piece, lineno)?);
    }
    if items.is_empty() {
        return Err(format!("line {lineno}: array must not be empty"));
    }
    Ok(items)
}

/// A section mid-parse.
enum Section {
    Allow(PartialAllow),
    Grant(PartialAllow),
    Hotpath {
        start_line: usize,
        seeds: Option<Vec<String>>,
    },
}

impl Section {
    fn finish(self, config: &mut Config) -> Result<(), String> {
        match self {
            Section::Allow(partial) => config.allows.push(partial.finish("allow")?),
            Section::Grant(partial) => config.grants.push(partial.finish("grant")?),
            Section::Hotpath { start_line, seeds } => {
                let seeds = seeds
                    .ok_or_else(|| format!("[hotpath] at line {start_line}: missing `seeds`"))?;
                config.hotpath = Hotpath {
                    seeds,
                    line: start_line,
                };
            }
        }
        Ok(())
    }
}

/// An `[[allow]]`/`[[grant]]` section mid-parse.
struct PartialAllow {
    start_line: usize,
    path: Option<String>,
    rules: Option<Vec<String>>,
    reason: Option<String>,
}

impl PartialAllow {
    fn new(start_line: usize) -> Self {
        PartialAllow {
            start_line,
            path: None,
            rules: None,
            reason: None,
        }
    }

    fn finish(self, kind: &str) -> Result<PathAllow, String> {
        let at = self.start_line;
        let path = self
            .path
            .ok_or_else(|| format!("[[{kind}]] at line {at}: missing `path`"))?;
        let rules = self
            .rules
            .ok_or_else(|| format!("[[{kind}]] at line {at}: missing `rules`"))?;
        let reason = self
            .reason
            .ok_or_else(|| format!("[[{kind}]] at line {at}: missing `reason`"))?;
        if reason.trim().is_empty() {
            return Err(format!(
                "[[{kind}]] at line {at}: reason must be a written justification"
            ));
        }
        for rule in &rules {
            if !RULES.iter().any(|r| r.id == rule) {
                return Err(format!("[[{kind}]] at line {at}: unknown rule {rule:?}"));
            }
        }
        Ok(PathAllow {
            path,
            rules,
            reason,
            line: at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_entry() {
        let cfg = parse(
            "# header comment\n\n[[allow]]\npath = \"compat/criterion\" # trailing\nrules = [\"R1\", \"R5\"]\nreason = \"stand-in measures wall-clock by design\"\n",
        )
        .expect("valid config");
        assert_eq!(cfg.allows.len(), 1);
        let a = &cfg.allows[0];
        assert_eq!(a.path, "compat/criterion");
        assert_eq!(a.rules, vec!["R1", "R5"]);
        assert_eq!(a.line, 3);
        assert!(cfg
            .path_allow("compat/criterion/src/lib.rs", "R1")
            .is_some());
        assert!(cfg
            .path_allow("compat/criterion/src/lib.rs", "R2")
            .is_none());
        assert!(cfg.path_allow("crates/netsim/src/sim.rs", "R1").is_none());
    }

    #[test]
    fn missing_reason_is_an_error() {
        let err = parse("[[allow]]\npath = \"x\"\nrules = [\"R1\"]\n").unwrap_err();
        assert!(err.contains("missing `reason`"), "{err}");
        let err =
            parse("[[allow]]\npath = \"x\"\nrules = [\"R1\"]\nreason = \"  \"\n").unwrap_err();
        assert!(err.contains("written justification"), "{err}");
    }

    #[test]
    fn unknown_rule_and_key_are_errors() {
        let err =
            parse("[[allow]]\npath = \"x\"\nrules = [\"R99\"]\nreason = \"r\"\n").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        let err = parse("[[allow]]\nfrob = \"x\"\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn keys_outside_a_section_are_errors() {
        let err = parse("path = \"x\"\n").unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn grants_suppress_like_allows_but_are_separate() {
        let cfg = parse(
            "[[grant]]\npath = \"crates/eventsim/src/par\"\nrules = [\"R7\"]\nreason = \"future PDES module\"\n",
        )
        .expect("valid config");
        assert!(cfg.allows.is_empty());
        assert_eq!(cfg.grants.len(), 1);
        assert!(cfg
            .path_allow("crates/eventsim/src/par/mod.rs", "R7")
            .is_some());
        assert!(cfg
            .path_allow("crates/eventsim/src/queue.rs", "R7")
            .is_none());
    }

    #[test]
    fn hotpath_overrides_default_seeds() {
        let default = Config::default();
        assert_eq!(
            default.hotpath.seeds,
            HOT_PATH_PREFIXES
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
        );
        let cfg = parse("[hotpath]\nseeds = [\"crates/eventsim/src/\"]\n").expect("valid config");
        assert_eq!(cfg.hotpath.seeds, vec!["crates/eventsim/src/"]);
        assert_eq!(cfg.hotpath.line, 1);
        let err = parse("[hotpath]\nseeds = [\"a\"]\n[hotpath]\nseeds = [\"b\"]\n").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = parse("[hotpath]\n").unwrap_err();
        assert!(err.contains("missing `seeds`"), "{err}");
    }
}

//! A minimal JSON value, serializer, and parser.
//!
//! `simlint` deliberately has no dependencies (it gates the workspace, so
//! it must build from a bare toolchain), which rules out both `serde` and
//! the `bench` crate's parser — depending on a crate it lints would invert
//! the layering. The subset here is exactly what a lint report needs:
//! objects, arrays, strings, numbers, booleans, null. Objects preserve
//! insertion order on emission (reports are written in a fixed field order
//! so the bytes are stable) and the parser accepts any field order.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Numbers (reports only need f64 precision).
    Num(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Arr(Vec<Json>),
    /// Objects, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The items, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields in insertion order, if an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline —
    /// the on-disk report format.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors name the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string near byte {pos}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                                s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Copy one UTF-8 character.
                        let rest = std::str::from_utf8(&bytes[*pos..])
                            .map_err(|_| "invalid UTF-8 in string")?;
                        let c = rest.chars().next().ok_or("unterminated string")?;
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).unwrap_or("");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("not a JSON value at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("mptcp-lint-report/v1".into())),
            ("count".into(), Json::Num(3.0)),
            (
                "findings".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("rule".into(), Json::Str("R1".into())),
                    ("line".into(), Json::Num(12.0)),
                    ("suppressed".into(), Json::Bool(false)),
                    ("reason".into(), Json::Null),
                ])]),
            ),
        ]);
        let text = doc.pretty();
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn errors_carry_positions() {
        assert!(parse("{\"a\" 1}").unwrap_err().contains("':'"));
        assert!(parse("[1, 2").unwrap_err().contains("',' or ']'"));
        assert!(parse("{} x").unwrap_err().contains("trailing"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).pretty(), "42\n");
        assert_eq!(Json::Num(0.5).pretty(), "0.5\n");
    }
}

//! Deterministic workspace traversal.
//!
//! `read_dir` order is filesystem-dependent — a linter about determinism
//! had better not emit findings in a different order per machine — so every
//! directory listing is sorted before descent. Skipped subtrees:
//!
//! * `target/`, `.git/`, `results/` — build output, VCS, run artifacts;
//! * any `fixtures/` directory — simlint's own test fixtures are
//!   *intentionally* rule-violating snippets and must not gate the repo.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "fixtures"];

/// Collect every `.rs` file under `root`, sorted by path.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    descend(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn descend(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            descend(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes (rule scoping and the
/// report format are path-prefix based, so separators must be canonical).
pub fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/repo");
        let path = Path::new("/repo/crates/netsim/src/sim.rs");
        assert_eq!(relative(root, path), "crates/netsim/src/sim.rs");
    }
}

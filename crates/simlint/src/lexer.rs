//! A hand-rolled Rust lexer — just enough of the language to drive the
//! determinism rules.
//!
//! The rules in [`crate::rules`] must not fire on the word `Instant` inside
//! a doc comment, on `"HashMap"` inside a string literal, or on the ident
//! `RedInstant` (a RED queue variant) — so substring grepping is out and a
//! real token stream is in. The lexer understands exactly what the rules
//! need and nothing more:
//!
//! * identifiers and keywords (one token kind; rules match on text),
//! * integer vs float literals (R4 needs to know a `==` operand is a float),
//! * string / raw-string / byte-string / char literals (skipped by rules),
//! * lifetimes (so `'a` is not half a char literal),
//! * line and block comments, kept as tokens — suppression annotations
//!   (`// simlint: allow(..)`) live in comments, so they must survive,
//! * multi-character operators (`==`, `!=`, `::`, …) as single tokens.
//!
//! Every token carries its 1-based line and column so findings point at the
//! exact source location.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `pub`, `fn`, …).
    Ident,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A floating-point literal (`1.0`, `2e9`, `0.5f32`).
    Float,
    /// A string, raw-string, byte-string, or char literal (contents opaque).
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* … */` comment (nesting handled).
    BlockComment,
    /// An operator or piece of punctuation (`==`, `::`, `{`, …).
    Punct,
}

/// One lexed token: kind, verbatim text, and 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True for comment tokens (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Multi-character operators, longest first so `<<=` wins over `<<` and `<`.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "=>", "::",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lex `source` into a token stream. The lexer never fails: anything it
/// does not recognise becomes a single-character [`TokenKind::Punct`],
/// which no rule matches — a linter should degrade, not crash, on exotic
/// input.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consume one character, maintaining the line/column counters.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (start, line, col) = (self.pos, self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    while let Some(c) = self.peek(0) {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    self.emit(TokenKind::LineComment, start, line, col);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.block_comment();
                    self.emit(TokenKind::BlockComment, start, line, col);
                }
                '"' => {
                    self.string_literal();
                    self.emit(TokenKind::Literal, start, line, col);
                }
                'r' if matches!(self.peek(1), Some('"') | Some('#'))
                    && self.raw_string_ahead(1) =>
                {
                    self.bump(); // r
                    self.raw_string();
                    self.emit(TokenKind::Literal, start, line, col);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump(); // b
                    self.string_literal();
                    self.emit(TokenKind::Literal, start, line, col);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump(); // b
                    self.bump(); // r
                    self.raw_string();
                    self.emit(TokenKind::Literal, start, line, col);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump(); // b
                    self.char_literal();
                    self.emit(TokenKind::Literal, start, line, col);
                }
                '\'' => {
                    // Lifetime or char literal: `'a` / `'static` vs `'a'`.
                    if self.lifetime_ahead() {
                        self.bump(); // '
                        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                            self.bump();
                        }
                        self.emit(TokenKind::Lifetime, start, line, col);
                    } else {
                        self.char_literal();
                        self.emit(TokenKind::Literal, start, line, col);
                    }
                }
                c if c.is_ascii_digit() => {
                    let kind = self.number();
                    self.emit(kind, start, line, col);
                }
                c if c.is_alphabetic() || c == '_' => {
                    while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line, col);
                }
                _ => {
                    self.operator();
                    self.emit(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// Is `'…` at the current position a lifetime (rather than a char
    /// literal)? A lifetime is `'` + ident-start, *not* closed by a `'`
    /// right after one character (that would be `'a'`).
    fn lifetime_ahead(&self) -> bool {
        match self.peek(1) {
            Some(c) if c.is_alphabetic() || c == '_' => self.peek(2) != Some('\''),
            _ => false,
        }
    }

    /// Does `r`/`br` at the current position start a raw string? Checks for
    /// `#…#"` or `"` at `offset` so `r` as a plain ident (`r = 5`) and
    /// `r#keyword` idents do not swallow the file.
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate
            }
        }
    }

    fn string_literal(&mut self) {
        self.bump(); // opening "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // escaped char
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Raw string starting at `#…#"`: consume hashes, the body, and the
    /// matching `"#…#` closer.
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening "
        'body: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'body;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    fn char_literal(&mut self) {
        self.bump(); // opening '
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    /// Lex a number, deciding int vs float. Floats are: a `.` followed by a
    /// digit (so `1.max(2)` and `0..n` stay integers), an exponent, or an
    /// `f32`/`f64` suffix.
    fn number(&mut self) -> TokenKind {
        let mut float = false;
        // Radix prefixes are always integers.
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.bump();
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                self.bump();
            }
            return TokenKind::Int;
        }
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        if self.peek(0) == Some('.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
            float = true;
            self.bump(); // .
            while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                self.bump();
            }
        } else if self.peek(0) == Some('.')
            && !matches!(self.peek(1), Some(c) if c == '.' || c.is_alphabetic() || c == '_')
        {
            // Trailing-dot float like `1.` (not a range `1..` or method `1.max`).
            float = true;
            self.bump();
        }
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = matches!(self.peek(1), Some('+' | '-'));
            let digit_at = if sign { 2 } else { 1 };
            if matches!(self.peek(digit_at), Some(c) if c.is_ascii_digit()) {
                float = true;
                self.bump(); // e
                if sign {
                    self.bump();
                }
                while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
        }
        // Type suffix (`u64`, `f64`, …).
        if matches!(self.peek(0), Some(c) if c.is_alphabetic()) {
            if self.peek(0) == Some('f') {
                float = true;
            }
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn operator(&mut self) {
        for op in OPERATORS {
            let chars: Vec<char> = op.chars().collect();
            if (0..chars.len()).all(|i| self.peek(i) == Some(chars[i])) {
                for _ in 0..chars.len() {
                    self.bump();
                }
                return;
            }
        }
        self.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_are_whole_tokens() {
        let toks = kinds("RedInstant Instant");
        assert_eq!(toks[0], (TokenKind::Ident, "RedInstant".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "Instant".into()));
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = kinds("// Instant in a comment\nlet s = \"HashMap::new()\";");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("HashMap")));
        // No bare `HashMap` ident token appears.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ after");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "after".into()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"let x = r#"thread_rng() "quoted" "#; y"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("thread_rng")));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "y".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "'x'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "'\\n'"));
    }

    #[test]
    fn float_vs_int_vs_method_call() {
        assert_eq!(kinds("1.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("2e9")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.0e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("3f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("42")[0].0, TokenKind::Int);
        assert_eq!(kinds("0xFF_u64")[0].0, TokenKind::Int);
        // `1.max(2)` lexes as int, dot, ident.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0].0, TokenKind::Int);
        assert_eq!(toks[1], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "max".into()));
        // Ranges stay integral.
        let toks = kinds("0..10");
        assert_eq!(toks[0].0, TokenKind::Int);
        assert_eq!(toks[1], (TokenKind::Punct, "..".into()));
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = kinds("a == b != c :: d");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}

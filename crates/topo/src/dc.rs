//! The k-ary FatTree data center of §VI-B (Figs. 13/14, Table III).
//!
//! Structure for even `k`: `k` pods, each with `k/2` edge switches and `k/2`
//! aggregation switches; each edge switch serves `k/2` hosts; `(k/2)²` core
//! switches. `k = 8` gives the paper's 128 hosts and 80 switches.
//!
//! Every link direction is one `netsim` queue. A path between hosts in
//! different pods is determined by the pair `(j, c)`: the aggregation index
//! inside the pod and the core switch within that aggregation group —
//! `(k/2)²` distinct core paths per host pair, which is what MPTCP's
//! subflows spread over (per-subflow ECMP).

use eventsim::{SimDuration, SimRng};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, QueueId, Route, Simulation};
use tcpsim::{Connection, ConnectionSpec, PathSpec, TcpConfig};

/// A built FatTree: host/link inventory plus path enumeration.
#[derive(Debug)]
pub struct FatTree {
    k: usize,
    host_up: Vec<QueueId>,
    host_down: Vec<QueueId>,
    /// `edge_agg_up[edge][j]`: edge switch → j-th aggregation switch of its
    /// pod.
    edge_agg_up: Vec<Vec<QueueId>>,
    /// `agg_edge_down[edge][j]`: j-th aggregation switch → edge switch.
    agg_edge_down: Vec<Vec<QueueId>>,
    /// `agg_core_up[pod][j][c]`.
    agg_core_up: Vec<Vec<Vec<QueueId>>>,
    /// `core_agg_down[pod][j][c]`.
    core_agg_down: Vec<Vec<Vec<QueueId>>>,
}

/// Configuration of the FatTree links.
#[derive(Debug, Clone, Copy)]
pub struct FatTreeConfig {
    /// Host link rate, bits/s (the paper: 100 Mb/s).
    pub rate_bps: f64,
    /// Per-queue propagation delay.
    pub latency: SimDuration,
    /// Drop-tail buffer, packets (htsim-style: 100).
    pub buffer_pkts: usize,
    /// Oversubscription factor: edge→agg and agg→core links run at
    /// `rate/oversub` (1 = non-oversubscribed; 4 = the paper's 4:1 short-flow
    /// scenario).
    pub oversubscription: f64,
}

impl Default for FatTreeConfig {
    fn default() -> Self {
        FatTreeConfig {
            rate_bps: 100e6,
            latency: SimDuration::from_micros(20),
            buffer_pkts: 100,
            oversubscription: 1.0,
        }
    }
}

impl FatTree {
    /// Build a `k`-ary FatTree (`k` even, ≥ 4) inside `sim`.
    pub fn build(sim: &mut Simulation, k: usize, cfg: &FatTreeConfig) -> FatTree {
        assert!(
            k >= 4 && k.is_multiple_of(2),
            "k must be even and ≥ 4, got {k}"
        );
        let half = k / 2;
        let hosts = k * half * half;
        let edges = k * half;
        let core_rate = cfg.rate_bps / cfg.oversubscription;
        let mk = |sim: &mut Simulation, rate: f64| {
            sim.add_queue(QueueConfig::drop_tail(rate, cfg.latency, cfg.buffer_pkts))
        };

        let mut host_up = Vec::with_capacity(hosts);
        let mut host_down = Vec::with_capacity(hosts);
        for _ in 0..hosts {
            host_up.push(mk(sim, cfg.rate_bps));
            host_down.push(mk(sim, cfg.rate_bps));
        }
        let mut edge_agg_up = Vec::with_capacity(edges);
        let mut agg_edge_down = Vec::with_capacity(edges);
        for _ in 0..edges {
            edge_agg_up.push((0..half).map(|_| mk(sim, core_rate)).collect());
            agg_edge_down.push((0..half).map(|_| mk(sim, core_rate)).collect());
        }
        let mut agg_core_up = Vec::with_capacity(k);
        let mut core_agg_down = Vec::with_capacity(k);
        for _ in 0..k {
            let up: Vec<Vec<QueueId>> = (0..half)
                .map(|_| (0..half).map(|_| mk(sim, core_rate)).collect())
                .collect();
            let down: Vec<Vec<QueueId>> = (0..half)
                .map(|_| (0..half).map(|_| mk(sim, core_rate)).collect())
                .collect();
            agg_core_up.push(up);
            core_agg_down.push(down);
        }
        FatTree {
            k,
            host_up,
            host_down,
            edge_agg_up,
            agg_edge_down,
            agg_core_up,
            core_agg_down,
        }
    }

    /// Number of hosts (`k³/4`).
    pub fn num_hosts(&self) -> usize {
        self.host_up.len()
    }

    /// Number of switches (`5k²/4` — the paper's 80 for k=8).
    pub fn num_switches(&self) -> usize {
        self.k * self.k + self.k * self.k / 4
    }

    /// All aggregation→core and core→aggregation queues — the network core,
    /// whose mean utilization Table III reports.
    pub fn core_queues(&self) -> Vec<QueueId> {
        let mut out = Vec::new();
        for pod in 0..self.k {
            for j in 0..self.half() {
                for c in 0..self.half() {
                    out.push(self.agg_core_up[pod][j][c]);
                    out.push(self.core_agg_down[pod][j][c]);
                }
            }
        }
        out
    }

    /// All host access queues (up then down), for utilization accounting.
    pub fn host_queues(&self) -> Vec<QueueId> {
        self.host_up
            .iter()
            .chain(self.host_down.iter())
            .copied()
            .collect()
    }

    fn half(&self) -> usize {
        self.k / 2
    }

    fn pod_of(&self, host: usize) -> usize {
        host / (self.half() * self.half())
    }

    fn edge_of(&self, host: usize) -> usize {
        host / self.half()
    }

    /// Number of distinct paths between two hosts: 1 same-edge, `k/2`
    /// same-pod, `(k/2)²` cross-pod.
    pub fn num_paths(&self, src: usize, dst: usize) -> usize {
        assert_ne!(src, dst, "src == dst");
        if self.edge_of(src) == self.edge_of(dst) {
            1
        } else if self.pod_of(src) == self.pod_of(dst) {
            self.half()
        } else {
            self.half() * self.half()
        }
    }

    /// The `choice`-th forward/reverse route pair between `src` and `dst`.
    ///
    /// For cross-pod pairs, `choice = j·(k/2) + c` selects aggregation `j`
    /// and core `c`; the reverse route mirrors the same switches.
    pub fn route_pair(&self, src: usize, dst: usize, choice: usize) -> (Route, Route) {
        assert!(
            choice < self.num_paths(src, dst),
            "path choice out of range"
        );
        let (se, de) = (self.edge_of(src), self.edge_of(dst));
        let (sp, dp) = (self.pod_of(src), self.pod_of(dst));
        let half = self.half();
        if se == de {
            return (
                route(&[self.host_up[src], self.host_down[dst]]),
                route(&[self.host_up[dst], self.host_down[src]]),
            );
        }
        if sp == dp {
            let j = choice;
            let fwd = route(&[
                self.host_up[src],
                self.edge_agg_up[se][j],
                self.agg_edge_down[de][j],
                self.host_down[dst],
            ]);
            let rev = route(&[
                self.host_up[dst],
                self.edge_agg_up[de][j],
                self.agg_edge_down[se][j],
                self.host_down[src],
            ]);
            return (fwd, rev);
        }
        let (j, c) = (choice / half, choice % half);
        let fwd = route(&[
            self.host_up[src],
            self.edge_agg_up[se][j],
            self.agg_core_up[sp][j][c],
            self.core_agg_down[dp][j][c],
            self.agg_edge_down[de][j],
            self.host_down[dst],
        ]);
        let rev = route(&[
            self.host_up[dst],
            self.edge_agg_up[de][j],
            self.agg_core_up[dp][j][c],
            self.core_agg_down[sp][j][c],
            self.agg_edge_down[se][j],
            self.host_down[src],
        ]);
        (fwd, rev)
    }

    /// Sample `n` distinct path choices (without replacement where
    /// possible), as MPTCP's per-subflow ECMP does.
    pub fn sample_paths(
        &self,
        src: usize,
        dst: usize,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<(Route, Route)> {
        let total = self.num_paths(src, dst);
        let mut choices: Vec<usize> = (0..total).collect();
        rng.shuffle(&mut choices);
        (0..n)
            .map(|i| {
                // With replacement once distinct paths run out.
                let c = if i < total {
                    choices[i]
                } else {
                    choices[rng.below(total)]
                };
                self.route_pair(src, dst, c)
            })
            .collect()
    }

    /// Install a connection from `src` to `dst` with `subflows` subflows on
    /// randomly sampled distinct paths.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        &self,
        sim: &mut Simulation,
        src: usize,
        dst: usize,
        algorithm: Algorithm,
        subflows: usize,
        size_packets: Option<u64>,
        config: TcpConfig,
        rng: &mut SimRng,
        conn_id: u64,
    ) -> Connection {
        assert!(subflows >= 1, "need at least one subflow");
        let paths = self.sample_paths(src, dst, subflows, rng);
        let mut spec = ConnectionSpec::new(algorithm).with_config(config);
        for (fwd, rev) in paths {
            spec = spec.with_path(PathSpec::new(fwd, rev));
        }
        if let Some(n) = size_packets {
            spec = spec.with_size_packets(n);
        }
        let conn = spec.install(sim, conn_id);
        // Re-derive event/arena/timer capacity from the grown endpoint set;
        // incremental calls only reserve the delta.
        sim.preallocate();
        conn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventsim::SimTime;
    use proptest::prelude::*;

    fn tree(k: usize) -> (Simulation, FatTree) {
        let mut sim = Simulation::new(1);
        let ft = FatTree::build(&mut sim, k, &FatTreeConfig::default());
        (sim, ft)
    }

    #[test]
    fn paper_dimensions_k8() {
        let (_, ft) = tree(8);
        assert_eq!(ft.num_hosts(), 128);
        assert_eq!(ft.num_switches(), 80);
    }

    #[test]
    fn path_counts() {
        let (_, ft) = tree(4);
        // k=4: 16 hosts, 2 hosts/edge, 4 hosts/pod.
        assert_eq!(ft.num_paths(0, 1), 1); // same edge
        assert_eq!(ft.num_paths(0, 2), 2); // same pod, different edge
        assert_eq!(ft.num_paths(0, 4), 4); // cross-pod
    }

    #[test]
    fn routes_have_expected_lengths() {
        let (_, ft) = tree(4);
        let (f, r) = ft.route_pair(0, 1, 0);
        assert_eq!((f.len(), r.len()), (2, 2));
        let (f, r) = ft.route_pair(0, 2, 1);
        assert_eq!((f.len(), r.len()), (4, 4));
        let (f, r) = ft.route_pair(0, 5, 3);
        assert_eq!((f.len(), r.len()), (6, 6));
    }

    #[test]
    fn cross_pod_choices_are_distinct() {
        let (_, ft) = tree(4);
        let mut seen = std::collections::BTreeSet::new();
        for c in 0..ft.num_paths(0, 15) {
            let (f, _) = ft.route_pair(0, 15, c);
            assert!(seen.insert(f.to_vec()), "duplicate path for choice {c}");
        }
    }

    #[test]
    fn sample_paths_without_replacement_first() {
        let (_, ft) = tree(4);
        let mut rng = SimRng::seed_from_u64(3);
        let paths = ft.sample_paths(0, 5, 4, &mut rng);
        let mut set = std::collections::BTreeSet::new();
        for (f, _) in &paths {
            assert!(set.insert(f.to_vec()), "distinct while available");
        }
        // Requesting more than available falls back to reuse but still works.
        let more = ft.sample_paths(0, 1, 3, &mut rng);
        assert_eq!(more.len(), 3);
    }

    #[test]
    fn end_to_end_flow_crosses_the_tree() {
        let mut sim = Simulation::new(5);
        let ft = FatTree::build(&mut sim, 4, &FatTreeConfig::default());
        let mut rng = SimRng::seed_from_u64(1);
        let conn = ft.connect(
            &mut sim,
            0,
            15,
            Algorithm::Olia,
            4,
            None,
            TcpConfig::default(),
            &mut rng,
            0,
        );
        sim.start_endpoint_at(conn.source, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(3.0));
        // A lone 4-subflow flow across the fabric should approach the host
        // link rate (100 Mb/s).
        let goodput = conn.handle.goodput_mbps(sim.now());
        assert!(goodput > 60.0, "goodput {goodput} Mb/s");
    }

    #[test]
    fn oversubscription_reduces_core_capacity() {
        let mut sim = Simulation::new(5);
        let cfg = FatTreeConfig {
            oversubscription: 4.0,
            ..FatTreeConfig::default()
        };
        let ft = FatTree::build(&mut sim, 4, &cfg);
        let mut rng = SimRng::seed_from_u64(1);
        let conn = ft.connect(
            &mut sim,
            0,
            15,
            Algorithm::Reno,
            1,
            None,
            TcpConfig::default(),
            &mut rng,
            0,
        );
        sim.start_endpoint_at(conn.source, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(3.0));
        let goodput = conn.handle.goodput_mbps(sim.now());
        // Single path capped by the 25 Mb/s core links.
        assert!(goodput < 26.0, "goodput {goodput} Mb/s");
        assert!(goodput > 15.0, "goodput {goodput} Mb/s");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_rejected() {
        let mut sim = Simulation::new(0);
        FatTree::build(&mut sim, 5, &FatTreeConfig::default());
    }

    proptest! {
        /// Forward and reverse routes always start at the right host links
        /// and are symmetric in length.
        #[test]
        fn prop_route_endpoints(src in 0usize..16, dst in 0usize..16) {
            prop_assume!(src != dst);
            let (_, ft) = tree(4);
            for c in 0..ft.num_paths(src, dst) {
                let (f, r) = ft.route_pair(src, dst, c);
                prop_assert_eq!(f.len(), r.len());
                prop_assert_eq!(f[0], ft.host_up[src]);
                prop_assert_eq!(*f.last().unwrap(), ft.host_down[dst]);
                prop_assert_eq!(r[0], ft.host_up[dst]);
                prop_assert_eq!(*r.last().unwrap(), ft.host_down[src]);
            }
        }
    }
}

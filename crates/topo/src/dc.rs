//! The k-ary FatTree data center of §VI-B (Figs. 13/14, Table III).
//!
//! Structure for even `k`: `k` pods, each with `k/2` edge switches and `k/2`
//! aggregation switches; each edge switch serves `k/2` hosts; `(k/2)²` core
//! switches. `k = 8` gives the paper's 128 hosts and 80 switches.
//!
//! Every link direction is one `netsim` queue. A path between hosts in
//! different pods is determined by the pair `(j, c)`: the aggregation index
//! inside the pod and the core switch within that aggregation group —
//! `(k/2)²` distinct core paths per host pair, which is what MPTCP's
//! subflows spread over (per-subflow ECMP).
//!
//! # Streamed build
//!
//! The build is *lazy*: [`FatTree::build`] reserves three contiguous queue
//! blocks (host tier, edge↔aggregation tier, aggregation↔core tier) without
//! constructing a single queue — `3k³/2` queues at k=32 is ~50k, and a
//! permutation workload touches only the paths actually routed over. Queue
//! ids are assigned arithmetically within each block, in exactly the order
//! the old eager loop assigned them, so lazy and eager builds produce
//! byte-identical trace digests. The `FatTree` value itself shrinks from
//! O(k³) id tables to four words.

use eventsim::{SimDuration, SimRng};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, QueueId, Route, Simulation};
use tcpsim::{Connection, ConnectionSpec, PathSpec, TcpConfig};

/// A built FatTree: dimensions plus arithmetic id/path enumeration.
#[derive(Debug, Clone, Copy)]
pub struct FatTree {
    k: usize,
    /// First id of the host-tier block: `host_up(h) = host_base + 2h`,
    /// `host_down(h) = host_base + 2h + 1`.
    host_base: QueueId,
    /// First id of the edge↔agg block: per edge switch `e`, `k/2` up queues
    /// then `k/2` down queues.
    edge_base: QueueId,
    /// First id of the agg↔core block: per pod, `(k/2)²` up queues
    /// (aggregation-major) then `(k/2)²` down queues.
    pod_base: QueueId,
}

/// Configuration of the FatTree links.
#[derive(Debug, Clone, Copy)]
pub struct FatTreeConfig {
    /// Host link rate, bits/s (the paper: 100 Mb/s).
    pub rate_bps: f64,
    /// Per-queue propagation delay.
    pub latency: SimDuration,
    /// Drop-tail buffer, packets (htsim-style: 100).
    pub buffer_pkts: usize,
    /// Oversubscription factor: edge→agg and agg→core links run at
    /// `rate/oversub` (1 = non-oversubscribed; 4 = the paper's 4:1 short-flow
    /// scenario).
    pub oversubscription: f64,
}

impl Default for FatTreeConfig {
    fn default() -> Self {
        FatTreeConfig {
            rate_bps: 100e6,
            latency: SimDuration::from_micros(20),
            buffer_pkts: 100,
            oversubscription: 1.0,
        }
    }
}

impl FatTree {
    /// Build a `k`-ary FatTree (`k` even, ≥ 4) inside `sim`.
    ///
    /// Streamed: reserves the three tier blocks without constructing any
    /// queue; each queue materializes on the first packet (or fault) that
    /// touches it. Use [`build_eager`](Self::build_eager) to force full
    /// construction up front.
    pub fn build(sim: &mut Simulation, k: usize, cfg: &FatTreeConfig) -> FatTree {
        assert!(
            k >= 4 && k.is_multiple_of(2),
            "k must be even and ≥ 4, got {k}"
        );
        let half = k / 2;
        let hosts = k * half * half;
        let edges = k * half;
        let core_rate = cfg.rate_bps / cfg.oversubscription;
        let host_cfg = QueueConfig::drop_tail(cfg.rate_bps, cfg.latency, cfg.buffer_pkts);
        let core_cfg = QueueConfig::drop_tail(core_rate, cfg.latency, cfg.buffer_pkts);
        // Id layout replicates the old eager construction order exactly
        // (digest-compatible): per host up then down; per edge switch k/2
        // ups then k/2 downs; per pod (k/2)² ups then (k/2)² downs.
        let host_base = sim.reserve_queue_block(2 * hosts, host_cfg);
        let edge_base = sim.reserve_queue_block(edges * k, core_cfg);
        let pod_base = sim.reserve_queue_block(2 * k * half * half, core_cfg);
        FatTree {
            k,
            host_base,
            edge_base,
            pod_base,
        }
    }

    /// Build with every queue constructed immediately (the pre-streaming
    /// behavior). Ids, routes, and trace digests are identical to
    /// [`build`](Self::build); only construction timing differs.
    pub fn build_eager(sim: &mut Simulation, k: usize, cfg: &FatTreeConfig) -> FatTree {
        let ft = FatTree::build(sim, k, cfg);
        sim.materialize_queues();
        ft
    }

    /// Number of hosts (`k³/4`).
    pub fn num_hosts(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Number of switches (`5k²/4` — the paper's 80 for k=8).
    pub fn num_switches(&self) -> usize {
        self.k * self.k + self.k * self.k / 4
    }

    /// Total queues across the three tier blocks (`3k³/2`).
    pub fn num_queues(&self) -> usize {
        3 * self.k * self.k * self.k / 2
    }

    /// Host `h`'s uplink queue (host → edge switch).
    pub fn host_up(&self, host: usize) -> QueueId {
        debug_assert!(host < self.num_hosts());
        self.host_base.offset(2 * host)
    }

    /// Host `h`'s downlink queue (edge switch → host).
    pub fn host_down(&self, host: usize) -> QueueId {
        debug_assert!(host < self.num_hosts());
        self.host_base.offset(2 * host + 1)
    }

    fn edge_agg_up(&self, edge: usize, j: usize) -> QueueId {
        self.edge_base.offset(edge * self.k + j)
    }

    fn agg_edge_down(&self, edge: usize, j: usize) -> QueueId {
        self.edge_base.offset(edge * self.k + self.half() + j)
    }

    fn agg_core_up(&self, pod: usize, j: usize, c: usize) -> QueueId {
        let half = self.half();
        self.pod_base.offset(pod * 2 * half * half + j * half + c)
    }

    fn core_agg_down(&self, pod: usize, j: usize, c: usize) -> QueueId {
        let half = self.half();
        self.pod_base
            .offset(pod * 2 * half * half + half * half + j * half + c)
    }

    /// All aggregation→core and core→aggregation queues — the network core,
    /// whose mean utilization Table III reports. Arithmetic iterator: no
    /// O(k³) id vector is materialized (the block is contiguous).
    pub fn core_queues(&self) -> impl Iterator<Item = QueueId> + use<> {
        let n = 2 * self.k * self.half() * self.half();
        let base = self.pod_base;
        (0..n).map(move |i| base.offset(i))
    }

    /// All host access queues (ups and downs interleaved, in host order),
    /// for utilization accounting. Arithmetic iterator, like
    /// [`core_queues`](Self::core_queues).
    pub fn host_queues(&self) -> impl Iterator<Item = QueueId> + use<> {
        let n = 2 * self.num_hosts();
        let base = self.host_base;
        (0..n).map(move |i| base.offset(i))
    }

    fn half(&self) -> usize {
        self.k / 2
    }

    fn pod_of(&self, host: usize) -> usize {
        host / (self.half() * self.half())
    }

    fn edge_of(&self, host: usize) -> usize {
        host / self.half()
    }

    /// Number of distinct paths between two hosts: 1 same-edge, `k/2`
    /// same-pod, `(k/2)²` cross-pod.
    pub fn num_paths(&self, src: usize, dst: usize) -> usize {
        assert_ne!(src, dst, "src == dst");
        if self.edge_of(src) == self.edge_of(dst) {
            1
        } else if self.pod_of(src) == self.pod_of(dst) {
            self.half()
        } else {
            self.half() * self.half()
        }
    }

    /// The `choice`-th forward/reverse route pair between `src` and `dst`.
    ///
    /// For cross-pod pairs, `choice = j·(k/2) + c` selects aggregation `j`
    /// and core `c`; the reverse route mirrors the same switches.
    pub fn route_pair(&self, src: usize, dst: usize, choice: usize) -> (Route, Route) {
        assert!(
            choice < self.num_paths(src, dst),
            "path choice out of range"
        );
        let (se, de) = (self.edge_of(src), self.edge_of(dst));
        let (sp, dp) = (self.pod_of(src), self.pod_of(dst));
        let half = self.half();
        if se == de {
            return (
                route(&[self.host_up(src), self.host_down(dst)]),
                route(&[self.host_up(dst), self.host_down(src)]),
            );
        }
        if sp == dp {
            let j = choice;
            let fwd = route(&[
                self.host_up(src),
                self.edge_agg_up(se, j),
                self.agg_edge_down(de, j),
                self.host_down(dst),
            ]);
            let rev = route(&[
                self.host_up(dst),
                self.edge_agg_up(de, j),
                self.agg_edge_down(se, j),
                self.host_down(src),
            ]);
            return (fwd, rev);
        }
        let (j, c) = (choice / half, choice % half);
        let fwd = route(&[
            self.host_up(src),
            self.edge_agg_up(se, j),
            self.agg_core_up(sp, j, c),
            self.core_agg_down(dp, j, c),
            self.agg_edge_down(de, j),
            self.host_down(dst),
        ]);
        let rev = route(&[
            self.host_up(dst),
            self.edge_agg_up(de, j),
            self.agg_core_up(dp, j, c),
            self.core_agg_down(sp, j, c),
            self.agg_edge_down(se, j),
            self.host_down(src),
        ]);
        (fwd, rev)
    }

    /// Sample `n` distinct path choices (without replacement where
    /// possible), as MPTCP's per-subflow ECMP does.
    pub fn sample_paths(
        &self,
        src: usize,
        dst: usize,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<(Route, Route)> {
        let total = self.num_paths(src, dst);
        let mut choices: Vec<usize> = (0..total).collect();
        rng.shuffle(&mut choices);
        (0..n)
            .map(|i| {
                // With replacement once distinct paths run out.
                let c = if i < total {
                    choices[i]
                } else {
                    choices[rng.below(total)]
                };
                self.route_pair(src, dst, c)
            })
            .collect()
    }

    /// Install a connection from `src` to `dst` with `subflows` subflows on
    /// randomly sampled distinct paths.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        &self,
        sim: &mut Simulation,
        src: usize,
        dst: usize,
        algorithm: Algorithm,
        subflows: usize,
        size_packets: Option<u64>,
        config: TcpConfig,
        rng: &mut SimRng,
        conn_id: u64,
    ) -> Connection {
        assert!(subflows >= 1, "need at least one subflow");
        let paths = self.sample_paths(src, dst, subflows, rng);
        let mut spec = ConnectionSpec::new(algorithm).with_config(config);
        for (fwd, rev) in paths {
            spec = spec.with_path(PathSpec::new(fwd, rev));
        }
        if let Some(n) = size_packets {
            spec = spec.with_size_packets(n);
        }
        let conn = spec.install(sim, conn_id);
        // Re-derive event/arena/timer capacity from the grown endpoint set;
        // incremental calls only reserve the delta.
        sim.preallocate();
        conn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventsim::SimTime;
    use proptest::prelude::*;

    fn tree(k: usize) -> (Simulation, FatTree) {
        let mut sim = Simulation::new(1);
        let ft = FatTree::build(&mut sim, k, &FatTreeConfig::default());
        (sim, ft)
    }

    #[test]
    fn paper_dimensions_k8() {
        let (sim, ft) = tree(8);
        assert_eq!(ft.num_hosts(), 128);
        assert_eq!(ft.num_switches(), 80);
        assert_eq!(ft.num_queues(), 768);
        assert_eq!(sim.queue_count(), 768);
    }

    #[test]
    fn build_is_lazy_and_eager_build_is_not() {
        let (sim, _) = tree(8);
        assert_eq!(
            sim.queues_materialized(),
            0,
            "streamed build constructs nothing"
        );
        let mut sim2 = Simulation::new(1);
        let _ = FatTree::build_eager(&mut sim2, 8, &FatTreeConfig::default());
        assert_eq!(sim2.queues_materialized(), 768);
    }

    #[test]
    fn path_counts() {
        let (_, ft) = tree(4);
        // k=4: 16 hosts, 2 hosts/edge, 4 hosts/pod.
        assert_eq!(ft.num_paths(0, 1), 1); // same edge
        assert_eq!(ft.num_paths(0, 2), 2); // same pod, different edge
        assert_eq!(ft.num_paths(0, 4), 4); // cross-pod
    }

    #[test]
    fn routes_have_expected_lengths() {
        let (_, ft) = tree(4);
        let (f, r) = ft.route_pair(0, 1, 0);
        assert_eq!((f.len(), r.len()), (2, 2));
        let (f, r) = ft.route_pair(0, 2, 1);
        assert_eq!((f.len(), r.len()), (4, 4));
        let (f, r) = ft.route_pair(0, 5, 3);
        assert_eq!((f.len(), r.len()), (6, 6));
    }

    #[test]
    fn queue_ids_match_the_legacy_eager_layout() {
        // The arithmetic id scheme must reproduce the old table-driven
        // construction order exactly: per host up/down interleaved, then
        // per edge switch k/2 ups + k/2 downs, then per pod (k/2)² ups +
        // (k/2)² downs. Trace digests depend on these ids.
        let (_, ft) = tree(4);
        assert_eq!(ft.host_up(0).index(), 0);
        assert_eq!(ft.host_down(0).index(), 1);
        assert_eq!(ft.host_up(15).index(), 30);
        assert_eq!(ft.host_down(15).index(), 31);
        // Edge tier starts right after 2·16 host queues.
        assert_eq!(ft.edge_agg_up(0, 0).index(), 32);
        assert_eq!(ft.edge_agg_up(0, 1).index(), 33);
        assert_eq!(ft.agg_edge_down(0, 0).index(), 34);
        assert_eq!(ft.edge_agg_up(1, 0).index(), 36);
        // Pod tier after 8 edges × 4 queues.
        assert_eq!(ft.agg_core_up(0, 0, 0).index(), 64);
        assert_eq!(ft.agg_core_up(0, 1, 0).index(), 66);
        assert_eq!(ft.core_agg_down(0, 0, 0).index(), 68);
        assert_eq!(ft.agg_core_up(1, 0, 0).index(), 72);
        assert_eq!(ft.num_queues(), 96);
    }

    #[test]
    fn cross_pod_choices_are_distinct() {
        let (_, ft) = tree(4);
        let mut seen = std::collections::BTreeSet::new();
        for c in 0..ft.num_paths(0, 15) {
            let (f, _) = ft.route_pair(0, 15, c);
            assert!(seen.insert(f.to_vec()), "duplicate path for choice {c}");
        }
    }

    #[test]
    fn sample_paths_without_replacement_first() {
        let (_, ft) = tree(4);
        let mut rng = SimRng::seed_from_u64(3);
        let paths = ft.sample_paths(0, 5, 4, &mut rng);
        let mut set = std::collections::BTreeSet::new();
        for (f, _) in &paths {
            assert!(set.insert(f.to_vec()), "distinct while available");
        }
        // Requesting more than available falls back to reuse but still works.
        let more = ft.sample_paths(0, 1, 3, &mut rng);
        assert_eq!(more.len(), 3);
    }

    #[test]
    fn core_and_host_iterators_cover_their_blocks() {
        let (_, ft) = tree(4);
        let core: Vec<_> = ft.core_queues().collect();
        assert_eq!(core.len(), 2 * 4 * 2 * 2);
        assert_eq!(core[0], ft.agg_core_up(0, 0, 0));
        assert_eq!(*core.last().unwrap(), ft.core_agg_down(3, 1, 1));
        let hostq: Vec<_> = ft.host_queues().collect();
        assert_eq!(hostq.len(), 32);
        assert_eq!(hostq[0], ft.host_up(0));
        assert_eq!(hostq[1], ft.host_down(0));
    }

    #[test]
    fn end_to_end_flow_crosses_the_tree() {
        let mut sim = Simulation::new(5);
        let ft = FatTree::build(&mut sim, 4, &FatTreeConfig::default());
        let mut rng = SimRng::seed_from_u64(1);
        let conn = ft.connect(
            &mut sim,
            0,
            4,
            Algorithm::Olia,
            4,
            None,
            TcpConfig::default(),
            &mut rng,
            0,
        );
        sim.start_endpoint_at(conn.source, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(3.0));
        // A lone 4-subflow flow across the fabric should approach the host
        // link rate (100 Mb/s).
        let goodput = conn.handle.goodput_mbps(sim.now());
        assert!(goodput > 60.0, "goodput {goodput} Mb/s");
        // Queues materialize as a prefix up to the highest id touched; a
        // flow into pod 1 never touches pods 2-3's aggregation/core queues.
        assert!(sim.queues_materialized() < sim.queue_count());
    }

    #[test]
    fn lazy_and_eager_fattree_runs_are_identical() {
        let run = |eager: bool| {
            let mut sim = Simulation::new(5);
            let cfg = FatTreeConfig::default();
            let ft = if eager {
                FatTree::build_eager(&mut sim, 4, &cfg)
            } else {
                FatTree::build(&mut sim, 4, &cfg)
            };
            let mut rng = SimRng::seed_from_u64(1);
            let conn = ft.connect(
                &mut sim,
                0,
                15,
                Algorithm::Olia,
                4,
                None,
                TcpConfig::default(),
                &mut rng,
                0,
            );
            sim.start_endpoint_at(conn.source, SimTime::ZERO);
            sim.run_until(SimTime::from_secs_f64(2.0));
            let stats: Vec<_> = ft.core_queues().map(|q| sim.queue_stats(q)).collect();
            (conn.handle.goodput_mbps(sim.now()), stats)
        };
        let (g_lazy, s_lazy) = run(false);
        let (g_eager, s_eager) = run(true);
        assert_eq!(g_lazy.to_bits(), g_eager.to_bits());
        assert_eq!(s_lazy, s_eager);
    }

    #[test]
    fn oversubscription_reduces_core_capacity() {
        let mut sim = Simulation::new(5);
        let cfg = FatTreeConfig {
            oversubscription: 4.0,
            ..FatTreeConfig::default()
        };
        let ft = FatTree::build(&mut sim, 4, &cfg);
        let mut rng = SimRng::seed_from_u64(1);
        let conn = ft.connect(
            &mut sim,
            0,
            15,
            Algorithm::Reno,
            1,
            None,
            TcpConfig::default(),
            &mut rng,
            0,
        );
        sim.start_endpoint_at(conn.source, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(3.0));
        let goodput = conn.handle.goodput_mbps(sim.now());
        // Single path capped by the 25 Mb/s core links.
        assert!(goodput < 26.0, "goodput {goodput} Mb/s");
        assert!(goodput > 15.0, "goodput {goodput} Mb/s");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_rejected() {
        let mut sim = Simulation::new(0);
        FatTree::build(&mut sim, 5, &FatTreeConfig::default());
    }

    proptest! {
        /// Forward and reverse routes always start at the right host links
        /// and are symmetric in length.
        #[test]
        fn prop_route_endpoints(src in 0usize..16, dst in 0usize..16) {
            prop_assume!(src != dst);
            let (_, ft) = tree(4);
            for c in 0..ft.num_paths(src, dst) {
                let (f, r) = ft.route_pair(src, dst, c);
                prop_assert_eq!(f.len(), r.len());
                prop_assert_eq!(f.hop(0), ft.host_up(src));
                prop_assert_eq!(f.last().unwrap(), ft.host_down(dst));
                prop_assert_eq!(r.hop(0), ft.host_up(dst));
                prop_assert_eq!(r.last().unwrap(), ft.host_down(src));
            }
        }
    }
}

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! Topology builders for the reproduction of *"MPTCP is not Pareto-Optimal"*
//! (Khalili et al., CoNEXT 2012).
//!
//! Each builder assembles one of the paper's experiment networks inside a
//! `netsim::Simulation` and returns the installed connections plus the
//! bottleneck queue ids, so experiments can read loss probabilities and
//! utilizations directly:
//!
//! * [`ScenarioA`] (§III-A, Figs. 1/2, 9, 10): N1 MPTCP users with a private
//!   AP and a congested streaming server, N2 TCP users behind a shared AP.
//! * [`ScenarioB`] (§III-B, Figs. 3/4, Tables I/II): the four-ISP
//!   multi-homing example where upgrading Red users to MPTCP hurts everyone.
//! * [`ScenarioC`] (§III-C, Figs. 5, 11, 12): N1 multipath users sharing AP2
//!   with N2 single-path users.
//! * [`TwoBottleneck`] (§IV-C, Figs. 6–8): one multipath user across two
//!   bottlenecks shared with competing TCP flows — the window/α trace
//!   scenario.
//! * [`FatTree`] (§VI-B, Figs. 13/14, Table III): the k-ary FatTree data
//!   center with per-subflow ECMP-style path selection.
//!
//! All builders follow the testbed conventions of §III: RED queues with the
//! paper's capacity-scaled profile on bottleneck links, 80 ms propagation
//! RTT (queueing delay adds the rest), and pure-delay elements for
//! non-bottleneck segments.

mod dc;
mod scenarios;

pub use dc::{FatTree, FatTreeConfig};
pub use scenarios::{
    delay_line, stagger_starts, ScenarioA, ScenarioAParams, ScenarioB, ScenarioBParams, ScenarioC,
    ScenarioCParams, TwoBottleneck, TwoBottleneckParams,
};

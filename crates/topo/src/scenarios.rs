//! The paper's testbed scenarios (§III) and the two-bottleneck illustration
//! (§IV-C).

use eventsim::{SimDuration, SimRng, SimTime};
use mpsim_core::Algorithm;
use netsim::{route, QueueConfig, QueueId, Simulation};
use tcpsim::{Connection, ConnectionSpec, PathSpec, TcpConfig};

/// Rate of pure-delay elements: fast enough never to queue (10 Gb/s).
const DELAY_LINE_BPS: f64 = 10e9;

/// Propagation delay placed on each bottleneck queue.
const BOTTLENECK_LATENCY: SimDuration = SimDuration::from_millis(10);

/// One-way propagation target (80 ms round trip, §III Testbed Setup).
const ONE_WAY: SimDuration = SimDuration::from_millis(40);

/// Add a pure-delay element: a queue so fast it never builds a backlog,
/// contributing only its propagation latency.
pub fn delay_line(sim: &mut Simulation, latency: SimDuration) -> QueueId {
    sim.add_queue(QueueConfig::drop_tail(DELAY_LINE_BPS, latency, 1_000_000))
}

/// A RED bottleneck with the paper's capacity-scaled profile and 10 ms of
/// propagation.
fn bottleneck(sim: &mut Simulation, rate_mbps: f64) -> QueueId {
    sim.add_queue(QueueConfig::red_paper(rate_mbps * 1e6, BOTTLENECK_LATENCY))
}

/// Pad `used` of propagation out of the 40 ms one-way budget.
fn pad(sim: &mut Simulation, used: SimDuration) -> QueueId {
    delay_line(sim, ONE_WAY - used)
}

/// Start every connection at a uniformly random time in `[0, window)` — the
/// testbed's "flows are initiated in the random order".
pub fn stagger_starts(
    sim: &mut Simulation,
    conns: &[Connection],
    window: SimDuration,
    rng: &mut SimRng,
) {
    for c in conns {
        let at = SimTime::ZERO + SimDuration::from_secs_f64(rng.f64() * window.as_secs_f64());
        sim.start_endpoint_at(c.source, at);
    }
}

// ---------------------------------------------------------------------------
// Scenario A
// ---------------------------------------------------------------------------

/// Parameters of Scenario A (§III-A): N1 type1 users stream through a server
/// bottleneck of capacity `N1·C1` and may also use a shared AP of capacity
/// `N2·C2`; N2 type2 TCP users use only the shared AP.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioAParams {
    /// Number of type1 (multipath) users.
    pub n1: usize,
    /// Number of type2 (single-path) users.
    pub n2: usize,
    /// Per-user capacity of the streaming server, Mb/s.
    pub c1_mbps: f64,
    /// Per-user capacity of the shared AP, Mb/s.
    pub c2_mbps: f64,
    /// Congestion control of the type1 users (LIA or OLIA in the paper).
    pub algorithm: Algorithm,
    /// TCP parameters for every connection.
    pub config: TcpConfig,
}

impl ScenarioAParams {
    /// The paper's measurement grid: `N2 = 10`, `C2 = 1` Mb/s.
    pub fn paper(n1: usize, c1_over_c2: f64, algorithm: Algorithm) -> ScenarioAParams {
        ScenarioAParams {
            n1,
            n2: 10,
            c1_mbps: c1_over_c2,
            c2_mbps: 1.0,
            algorithm,
            config: TcpConfig::default(),
        }
    }
}

/// The built Scenario A network.
#[derive(Debug)]
pub struct ScenarioA {
    /// Streaming-server bottleneck (loss probability p1 lives here).
    pub r1: QueueId,
    /// Shared-AP bottleneck (p2).
    pub r2: QueueId,
    /// The N1 multipath connections (path 0: private; path 1: shared AP).
    pub type1: Vec<Connection>,
    /// The N2 single-path TCP connections.
    pub type2: Vec<Connection>,
}

impl ScenarioA {
    /// Assemble the scenario inside `sim`. Connections are installed but not
    /// started.
    pub fn build(sim: &mut Simulation, p: &ScenarioAParams) -> ScenarioA {
        assert!(p.n1 > 0 && p.n2 > 0, "need users of both types");
        let r1 = bottleneck(sim, p.n1 as f64 * p.c1_mbps);
        let r2 = bottleneck(sim, p.n2 as f64 * p.c2_mbps);
        // Forward propagation padding per path (each bottleneck contributes
        // 10 ms).
        let pad_private = pad(sim, BOTTLENECK_LATENCY); // R1 only
        let pad_shared = pad(sim, BOTTLENECK_LATENCY * 2); // R1 + R2
        let pad_type2 = pad(sim, BOTTLENECK_LATENCY); // R2 only
        let rev = delay_line(sim, ONE_WAY);

        let mut conn_id = 0;
        let mut type1 = Vec::with_capacity(p.n1);
        for _ in 0..p.n1 {
            let c = ConnectionSpec::new(p.algorithm)
                .with_config(p.config)
                // Private path: server bottleneck only.
                .with_path(PathSpec::new(route(&[r1, pad_private]), route(&[rev])))
                // Shared path: server bottleneck then shared AP.
                .with_path(PathSpec::new(route(&[r1, r2, pad_shared]), route(&[rev])))
                .install(sim, conn_id);
            conn_id += 1;
            type1.push(c);
        }
        let mut type2 = Vec::with_capacity(p.n2);
        for _ in 0..p.n2 {
            let c = ConnectionSpec::new(Algorithm::Reno)
                .with_config(p.config)
                .with_path(PathSpec::new(route(&[r2, pad_type2]), route(&[rev])))
                .install(sim, conn_id);
            conn_id += 1;
            type2.push(c);
        }
        sim.preallocate();
        ScenarioA {
            r1,
            r2,
            type1,
            type2,
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario B
// ---------------------------------------------------------------------------

/// Parameters of Scenario B (§III-B): the four-ISP multi-homing example.
///
/// Effective path structure (from the capacity constraints of Appendix B —
/// `CX = N(x1+y1)`, `CT = N(x2+y1+y2)`):
///
/// * Blue users are always multipath: path 1 crosses bottleneck X, path 2
///   crosses bottleneck T.
/// * Red users download from ISP T: their direct path crosses T only; the
///   dashed path they activate when upgrading to MPTCP crosses T *and* X.
///
/// ISPs Y and Z are modeled as real (non-bottleneck) 100 Mb/s pass-through
/// links.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioBParams {
    /// Number of Blue users.
    pub nb: usize,
    /// Number of Red users.
    pub nr: usize,
    /// Access capacity of ISP X, Mb/s.
    pub cx_mbps: f64,
    /// Access capacity of ISP T, Mb/s.
    pub ct_mbps: f64,
    /// Access capacity of ISPs Y and Z (non-bottlenecks), Mb/s.
    pub cyz_mbps: f64,
    /// Whether the Red users have upgraded to MPTCP (activated the dashed
    /// path).
    pub red_multipath: bool,
    /// Congestion control for all multipath users.
    pub algorithm: Algorithm,
    /// TCP parameters.
    pub config: TcpConfig,
}

impl ScenarioBParams {
    /// The paper's measurement setting (Tables I/II): CX=27, CT=36,
    /// CY=CZ=100 Mb/s, 15+15 users.
    pub fn paper(red_multipath: bool, algorithm: Algorithm) -> ScenarioBParams {
        ScenarioBParams {
            nb: 15,
            nr: 15,
            cx_mbps: 27.0,
            ct_mbps: 36.0,
            cyz_mbps: 100.0,
            red_multipath,
            algorithm,
            config: TcpConfig::default(),
        }
    }
}

/// The built Scenario B network.
#[derive(Debug)]
pub struct ScenarioB {
    /// ISP X access bottleneck (loss pX).
    pub x: QueueId,
    /// ISP T access bottleneck (pT).
    pub t: QueueId,
    /// Blue multipath connections (path 0 via X, path 1 via T).
    pub blue: Vec<Connection>,
    /// Red connections (single path via T, or two paths when upgraded).
    pub red: Vec<Connection>,
}

impl ScenarioB {
    /// Assemble the scenario inside `sim`. Connections are installed but not
    /// started.
    pub fn build(sim: &mut Simulation, p: &ScenarioBParams) -> ScenarioB {
        assert!(p.nb > 0 && p.nr > 0, "need both user groups");
        let x = bottleneck(sim, p.cx_mbps);
        let t = bottleneck(sim, p.ct_mbps);
        // Pass-through ISPs Y and Z: drop-tail, effectively lossless.
        let y = sim.add_queue(QueueConfig::drop_tail(
            p.cyz_mbps * 1e6,
            SimDuration::from_millis(2),
            10_000,
        ));
        let z = sim.add_queue(QueueConfig::drop_tail(
            p.cyz_mbps * 1e6,
            SimDuration::from_millis(2),
            10_000,
        ));
        let pad_x = pad(sim, BOTTLENECK_LATENCY + SimDuration::from_millis(2));
        let pad_t = pad(sim, BOTTLENECK_LATENCY);
        let pad_tx = pad(sim, BOTTLENECK_LATENCY * 2);
        let pad_tzy = pad(sim, BOTTLENECK_LATENCY + SimDuration::from_millis(4));
        let rev = delay_line(sim, ONE_WAY);

        let mut conn_id = 0;
        let mut blue = Vec::with_capacity(p.nb);
        for _ in 0..p.nb {
            let c = ConnectionSpec::new(p.algorithm)
                .with_config(p.config)
                // Via Z then X's access link.
                .with_path(PathSpec::new(route(&[z, x, pad_x]), route(&[rev])))
                // Via T's access link.
                .with_path(PathSpec::new(route(&[t, pad_t]), route(&[rev])))
                .install(sim, conn_id);
            conn_id += 1;
            blue.push(c);
        }
        let mut red = Vec::with_capacity(p.nr);
        for _ in 0..p.nr {
            let direct = PathSpec::new(route(&[t, z, y, pad_tzy]), route(&[rev]));
            let spec = if p.red_multipath {
                ConnectionSpec::new(p.algorithm)
                    .with_config(p.config)
                    // Dashed path: T's access then X's access.
                    .with_path(PathSpec::new(route(&[t, x, pad_tx]), route(&[rev])))
                    .with_path(direct)
            } else {
                ConnectionSpec::new(Algorithm::Reno)
                    .with_config(p.config)
                    .with_path(direct)
            };
            let c = spec.install(sim, conn_id);
            conn_id += 1;
            red.push(c);
        }
        sim.preallocate();
        ScenarioB { x, t, blue, red }
    }
}

// ---------------------------------------------------------------------------
// Scenario C
// ---------------------------------------------------------------------------

/// Parameters of Scenario C (§III-C): N1 multipath users over both APs, N2
/// single-path users on AP2 only.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioCParams {
    /// Number of multipath users.
    pub n1: usize,
    /// Number of single-path users.
    pub n2: usize,
    /// Per-multipath-user capacity of AP1, Mb/s.
    pub c1_mbps: f64,
    /// Per-single-path-user capacity of AP2, Mb/s.
    pub c2_mbps: f64,
    /// Congestion control of the multipath users.
    pub algorithm: Algorithm,
    /// TCP parameters.
    pub config: TcpConfig,
}

impl ScenarioCParams {
    /// The paper's measurement grid: `N2 = 10`, `C2 = 1` Mb/s.
    pub fn paper(n1: usize, c1_over_c2: f64, algorithm: Algorithm) -> ScenarioCParams {
        ScenarioCParams {
            n1,
            n2: 10,
            c1_mbps: c1_over_c2,
            c2_mbps: 1.0,
            algorithm,
            config: TcpConfig::default(),
        }
    }
}

/// The built Scenario C network.
#[derive(Debug)]
pub struct ScenarioC {
    /// AP1 bottleneck (loss p1), used only by multipath users.
    pub ap1: QueueId,
    /// AP2 bottleneck (p2), shared by everyone.
    pub ap2: QueueId,
    /// The N1 multipath connections (path 0: AP1; path 1: AP2).
    pub multipath: Vec<Connection>,
    /// The N2 single-path TCP connections.
    pub single: Vec<Connection>,
}

impl ScenarioC {
    /// Assemble the scenario inside `sim`. Connections are installed but not
    /// started.
    pub fn build(sim: &mut Simulation, p: &ScenarioCParams) -> ScenarioC {
        assert!(p.n1 > 0 && p.n2 > 0, "need users of both types");
        let ap1 = bottleneck(sim, p.n1 as f64 * p.c1_mbps);
        let ap2 = bottleneck(sim, p.n2 as f64 * p.c2_mbps);
        let pad1 = pad(sim, BOTTLENECK_LATENCY);
        let pad2 = pad(sim, BOTTLENECK_LATENCY);
        let rev = delay_line(sim, ONE_WAY);

        let mut conn_id = 0;
        let mut multipath = Vec::with_capacity(p.n1);
        for _ in 0..p.n1 {
            let c = ConnectionSpec::new(p.algorithm)
                .with_config(p.config)
                .with_path(PathSpec::new(route(&[ap1, pad1]), route(&[rev])))
                .with_path(PathSpec::new(route(&[ap2, pad2]), route(&[rev])))
                .install(sim, conn_id);
            conn_id += 1;
            multipath.push(c);
        }
        let mut single = Vec::with_capacity(p.n2);
        for _ in 0..p.n2 {
            let c = ConnectionSpec::new(Algorithm::Reno)
                .with_config(p.config)
                .with_path(PathSpec::new(route(&[ap2, pad2]), route(&[rev])))
                .install(sim, conn_id);
            conn_id += 1;
            single.push(c);
        }
        sim.preallocate();
        ScenarioC {
            ap1,
            ap2,
            multipath,
            single,
        }
    }
}

// ---------------------------------------------------------------------------
// Two-bottleneck illustration (Fig. 6)
// ---------------------------------------------------------------------------

/// Parameters of the two-bottleneck example of §IV-C: a single multipath
/// user whose two paths cross two capacity-`C` bottlenecks shared with `n1`
/// and `n2` competing TCP flows respectively.
#[derive(Debug, Clone, Copy)]
pub struct TwoBottleneckParams {
    /// Capacity of each bottleneck, Mb/s.
    pub c_mbps: f64,
    /// TCP flows competing on path 1 (5 in both of the paper's cases).
    pub n1: usize,
    /// TCP flows competing on path 2 (5 symmetric / 10 asymmetric).
    pub n2: usize,
    /// Congestion control of the multipath user.
    pub algorithm: Algorithm,
    /// TCP parameters (enable `trace` to reproduce Figs. 7–8).
    pub config: TcpConfig,
}

/// The built two-bottleneck network.
#[derive(Debug)]
pub struct TwoBottleneck {
    /// Bottleneck crossed by subflow 0.
    pub link1: QueueId,
    /// Bottleneck crossed by subflow 1.
    pub link2: QueueId,
    /// The multipath connection under observation.
    pub multipath: Connection,
    /// Competing TCP flows on link 1.
    pub tcp1: Vec<Connection>,
    /// Competing TCP flows on link 2.
    pub tcp2: Vec<Connection>,
}

impl TwoBottleneck {
    /// Assemble the scenario inside `sim`. Connections are installed but not
    /// started.
    pub fn build(sim: &mut Simulation, p: &TwoBottleneckParams) -> TwoBottleneck {
        let link1 = bottleneck(sim, p.c_mbps);
        let link2 = bottleneck(sim, p.c_mbps);
        let pad1 = pad(sim, BOTTLENECK_LATENCY);
        let pad2 = pad(sim, BOTTLENECK_LATENCY);
        let rev = delay_line(sim, ONE_WAY);
        let path =
            |l: QueueId, d: QueueId, rev: QueueId| PathSpec::new(route(&[l, d]), route(&[rev]));

        let multipath = ConnectionSpec::new(p.algorithm)
            .with_config(p.config)
            .with_path(path(link1, pad1, rev))
            .with_path(path(link2, pad2, rev))
            .install(sim, 0);
        let mut conn_id = 1;
        let mut mk_tcp = |sim: &mut Simulation, l, d| {
            let mut cfg = p.config;
            cfg.trace = false;
            let c = ConnectionSpec::new(Algorithm::Reno)
                .with_config(cfg)
                .with_path(path(l, d, rev))
                .install(sim, conn_id);
            conn_id += 1;
            c
        };
        let tcp1 = (0..p.n1).map(|_| mk_tcp(sim, link1, pad1)).collect();
        let tcp2 = (0..p.n2).map(|_| mk_tcp(sim, link2, pad2)).collect();
        sim.preallocate();
        TwoBottleneck {
            link1,
            link2,
            multipath,
            tcp1,
            tcp2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_a_shape() {
        let mut sim = Simulation::new(1);
        let p = ScenarioAParams::paper(10, 1.0, Algorithm::Lia);
        let s = ScenarioA::build(&mut sim, &p);
        assert_eq!(s.type1.len(), 10);
        assert_eq!(s.type2.len(), 10);
        assert_eq!(s.type1[0].handle.num_subflows(), 2);
        assert_eq!(s.type2[0].handle.num_subflows(), 1);
        assert_ne!(s.r1, s.r2);
    }

    #[test]
    fn scenario_b_single_vs_multipath_red() {
        let mut sim = Simulation::new(1);
        let single = ScenarioB::build(&mut sim, &ScenarioBParams::paper(false, Algorithm::Lia));
        assert_eq!(single.red[0].handle.num_subflows(), 1);
        assert_eq!(single.blue[0].handle.num_subflows(), 2);
        let mut sim2 = Simulation::new(1);
        let multi = ScenarioB::build(&mut sim2, &ScenarioBParams::paper(true, Algorithm::Olia));
        assert_eq!(multi.red[0].handle.num_subflows(), 2);
    }

    #[test]
    fn scenario_c_shape() {
        let mut sim = Simulation::new(1);
        let p = ScenarioCParams::paper(20, 2.0, Algorithm::Olia);
        let s = ScenarioC::build(&mut sim, &p);
        assert_eq!(s.multipath.len(), 20);
        assert_eq!(s.single.len(), 10);
    }

    #[test]
    fn two_bottleneck_shape() {
        let mut sim = Simulation::new(1);
        let p = TwoBottleneckParams {
            c_mbps: 10.0,
            n1: 5,
            n2: 10,
            algorithm: Algorithm::Olia,
            config: TcpConfig::default(),
        };
        let s = TwoBottleneck::build(&mut sim, &p);
        assert_eq!(s.tcp1.len(), 5);
        assert_eq!(s.tcp2.len(), 10);
        assert_eq!(s.multipath.handle.num_subflows(), 2);
    }

    #[test]
    fn stagger_spreads_starts_and_flows_run() {
        let mut sim = Simulation::new(42);
        let p = ScenarioCParams::paper(2, 1.0, Algorithm::Olia);
        let s = ScenarioC::build(&mut sim, &p);
        let all: Vec<Connection> = s.multipath.iter().chain(s.single.iter()).cloned().collect();
        let mut rng = SimRng::seed_from_u64(7);
        stagger_starts(&mut sim, &all, SimDuration::from_secs(2), &mut rng);
        sim.run_until(SimTime::from_secs_f64(10.0));
        for c in &all {
            assert!(
                c.handle.read(|st| st.delivered_packets) > 0,
                "every flow must deliver data"
            );
        }
        // Starts actually differ (staggered).
        let starts: Vec<f64> = all
            .iter()
            .map(|c| c.handle.read(|st| st.started_at.unwrap().as_secs_f64()))
            .collect();
        assert!(starts.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6));
    }
}

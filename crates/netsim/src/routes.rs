//! Interned routes: flyweight hop sequences shared by packets and subflows.
//!
//! A [`Route`] used to be an `Rc<[QueueId]>` — one refcounted allocation per
//! subflow direction, cloned into every packet. At k=32 FatTree scale
//! (8192 hosts, ≫10⁴ connections) those clones dominate per-connection
//! memory, so routes are now *interned*: the hop sequences live in one flat
//! per-thread arena and a `Route` is an 8-byte `Copy` handle (offset + len)
//! into it. Identical hop sequences dedup to the same handle, which also
//! makes derived equality content-equality.
//!
//! The store is thread-local (not global) for the same reason the old type
//! was `Rc` and not `Arc`: a [`crate::Simulation`] is single-threaded by
//! construction, and parallel drivers (orchestra workers, test threads)
//! replicate whole simulations per thread. Repeated runs of the *same*
//! topology on one thread re-intern identical hop sequences, so the arena
//! stays bounded by the set of distinct paths, not by run count.

use std::cell::RefCell;

use crate::ids::QueueId;

/// An interned route: the ordered queues a packet traverses.
///
/// 8 bytes, `Copy`, content-deduplicated — share it freely between subflows
/// and packets. Equality is content equality (interning guarantees one
/// handle per distinct hop sequence on a given thread).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Route {
    start: u32,
    len: u32,
}

/// The empty route (packets deliver directly to their destination).
pub const EMPTY_ROUTE: Route = Route { start: 0, len: 0 };

struct RouteStore {
    /// All interned hop sequences, back to back.
    hops: Vec<QueueId>,
    /// Interned routes sorted by hop-sequence content (binary-search dedup;
    /// a map keyed by boxed slices would cost more than the `Rc`s it
    /// replaces when most routes are distinct, as in permutation traffic).
    index: Vec<Route>,
}

thread_local! {
    static STORE: RefCell<RouteStore> = const {
        RefCell::new(RouteStore {
            hops: Vec::new(),
            index: Vec::new(),
        })
    };
}

/// Build (intern) a [`Route`] from a slice of queue ids.
///
/// Returns the existing handle when the same hop sequence was interned
/// before on this thread; otherwise appends the hops to the arena.
pub fn route(hops: &[QueueId]) -> Route {
    if hops.is_empty() {
        // Canonical handle: every empty route is `{start: 0, len: 0}` so
        // derived equality holds regardless of interning order.
        return EMPTY_ROUTE;
    }
    STORE.with(|cell| {
        let mut store = cell.borrow_mut();
        let RouteStore { hops: arena, index } = &mut *store;
        match index
            .binary_search_by(|r| arena[r.start as usize..(r.start + r.len) as usize].cmp(hops))
        {
            Ok(i) => index[i],
            Err(i) => {
                // simlint: allow(R5) setup-time capacity guard, routes are interned before the event loop starts
                let start = u32::try_from(arena.len()).expect("route arena full");
                // simlint: allow(R5) setup-time capacity guard, routes are interned before the event loop starts
                let len = u32::try_from(hops.len()).expect("route too long");
                arena.extend_from_slice(hops);
                let r = Route { start, len };
                index.insert(i, r);
                r
            }
        }
    })
}

/// Pre-size this thread's route arena for `routes` distinct routes totalling
/// `total_hops` hops (called by [`crate::Simulation::preallocate`] with
/// topology-derived counts so interning large topologies doesn't regrow the
/// arena repeatedly).
///
/// Ensure-total semantics: a store that already holds that much (e.g. from a
/// previous scenario on this thread) is left alone instead of being grown by
/// another `total_hops` — `Vec::reserve`'s "additional" semantics would
/// double-charge every scenario after the first.
pub fn reserve(routes: usize, total_hops: usize) {
    STORE.with(|cell| {
        let mut store = cell.borrow_mut();
        let extra = routes.saturating_sub(store.index.len());
        store.index.reserve(extra);
        let extra = total_hops.saturating_sub(store.hops.len());
        store.hops.reserve(extra);
    });
}

/// Drop every interned route on this thread and release the arena's memory.
///
/// **All outstanding [`Route`] handles on this thread are invalidated** —
/// using one afterwards yields wrong hops or a panic. Only call between
/// scenarios, after every `Simulation` (and anything else holding a
/// `Route`) has been dropped: benchmark harnesses use this so each
/// scenario's memory accounting starts from an empty arena, and soak tests
/// use it to bound arena growth across topologies.
pub fn clear() {
    STORE.with(|cell| {
        let mut store = cell.borrow_mut();
        store.hops = Vec::new();
        store.index = Vec::new();
    });
}

/// Occupancy of this thread's route arena: `(distinct routes, total hops)`.
/// Diagnostics for the perf harness and recycle tests.
pub fn store_stats() -> (usize, usize) {
    STORE.with(|cell| {
        let store = cell.borrow();
        (store.index.len(), store.hops.len())
    })
}

impl Route {
    /// Number of hops.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the route has no hops (delivery is direct).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th hop, if in range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<QueueId> {
        if i < self.len as usize {
            Some(STORE.with(|cell| cell.borrow().hops[self.start as usize + i]))
        } else {
            None
        }
    }

    /// The `i`-th hop. Panics if out of range (mirrors slice indexing).
    #[inline]
    pub fn hop(&self, i: usize) -> QueueId {
        assert!(i < self.len as usize, "hop {i} out of range for {self:?}");
        STORE.with(|cell| cell.borrow().hops[self.start as usize + i])
    }

    /// First hop, if any.
    pub fn first(&self) -> Option<QueueId> {
        self.get(0)
    }

    /// Last hop, if any.
    pub fn last(&self) -> Option<QueueId> {
        match self.len {
            0 => None,
            n => self.get(n as usize - 1),
        }
    }

    /// Copy the hops out as a `Vec` (tests, diagnostics; not the hot path).
    pub fn to_vec(&self) -> Vec<QueueId> {
        STORE.with(|cell| {
            cell.borrow().hops[self.start as usize..(self.start + self.len) as usize].to_vec()
        })
    }

    /// Iterate the hops by value.
    pub fn iter(&self) -> impl Iterator<Item = QueueId> {
        self.to_vec().into_iter()
    }
}

impl std::fmt::Debug for Route {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, q) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_identical_sequences() {
        let a = route(&[QueueId(10), QueueId(11)]);
        let b = route(&[QueueId(10), QueueId(11)]);
        assert_eq!(a, b);
        let c = route(&[QueueId(10), QueueId(12)]);
        assert_ne!(a, c);
    }

    #[test]
    fn accessors_mirror_slices() {
        let hops = [QueueId(3), QueueId(1), QueueId(4)];
        let r = route(&hops);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.first(), Some(QueueId(3)));
        assert_eq!(r.last(), Some(QueueId(4)));
        assert_eq!(r.get(1), Some(QueueId(1)));
        assert_eq!(r.get(3), None);
        assert_eq!(r.hop(2), QueueId(4));
        assert_eq!(r.to_vec(), hops.to_vec());
        assert_eq!(r.iter().collect::<Vec<_>>(), hops.to_vec());
    }

    #[test]
    fn empty_route_is_canonical() {
        let a = route(&[]);
        let b = route(&[]);
        assert_eq!(a, b);
        assert_eq!(EMPTY_ROUTE.len(), 0);
        assert!(a.is_empty());
        assert_eq!(a.first(), None);
        assert_eq!(a.last(), None);
    }

    #[test]
    fn debug_prints_content() {
        let r = route(&[QueueId(7)]);
        assert_eq!(format!("{r:?}"), "[q7]");
    }

    #[test]
    fn store_grows_only_on_new_content() {
        let (routes0, hops0) = store_stats();
        let r = route(&[QueueId(900), QueueId(901), QueueId(902)]);
        let (routes1, hops1) = store_stats();
        assert_eq!(routes1, routes0 + 1);
        assert_eq!(hops1, hops0 + 3);
        let r2 = route(&[QueueId(900), QueueId(901), QueueId(902)]);
        assert_eq!(r, r2);
        assert_eq!(store_stats(), (routes1, hops1));
    }
}

//! Queues: serialization, propagation, and drop disciplines.
//!
//! Each queue models one link direction: the head packet serializes at
//! `rate` bits/s; when fully serialized it propagates for `latency` and then
//! arrives at the next hop. Admission is decided on enqueue by the
//! [`Discipline`]: drop-tail, or the RED profile the paper configured in its
//! Click routers (§III, Testbed Setup).

use std::collections::VecDeque;

use eventsim::{SimDuration, SimRng, SimTime};
use trace::DropReason;

use crate::arena::PacketRef;

/// RED (random early detection) parameters, paper-profile shaped:
///
/// * drop probability 0 below `min_th` packets,
/// * rising linearly to `max_p` at `max_th`,
/// * then linearly to 1 at `2·max_th` (the "gentle" region),
/// * hard drop above `limit` packets.
///
/// The paper's 10 Mb/s baseline: `min_th = 25`, `max_th = 50`,
/// `max_p = 0.1`, `limit = 300`, thresholds scaled proportionally with link
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedParams {
    /// No drops below this queue length (packets).
    pub min_th: f64,
    /// Drop probability reaches `max_p` at this length.
    pub max_th: f64,
    /// Drop probability at `max_th`.
    pub max_p: f64,
    /// Hard capacity (packets).
    pub limit: usize,
    /// EWMA weight for the average queue length (classic RED; Floyd's
    /// default is 0.002). `0` makes drops depend on the instantaneous
    /// length instead.
    ///
    /// The average is maintained in continuous time: it relaxes toward the
    /// instantaneous length with time constant `service_time(MSS)/w`, which
    /// matches Floyd's per-packet EWMA at full load *and* decays during
    /// idle/backoff periods (Floyd's idle-time correction) — without it a
    /// transient overload wedges the average above `2·max_th` where every
    /// arrival is dropped.
    pub ewma_weight: f64,
}

impl RedParams {
    /// The paper's Click configuration for a 10 Mb/s link, with classic
    /// averaged-queue RED (what Click's RED element implements).
    pub fn paper_baseline() -> RedParams {
        RedParams {
            min_th: 25.0,
            max_th: 50.0,
            max_p: 0.1,
            limit: 300,
            ewma_weight: 0.002,
        }
    }

    /// The paper's profile scaled proportionally to `rate_bps`
    /// ("the parameters are proportionally adapted when the link capacity
    /// changes").
    pub fn paper_profile(rate_bps: f64) -> RedParams {
        let scale = (rate_bps / 10_000_000.0).max(0.05);
        RedParams {
            min_th: 25.0 * scale,
            max_th: 50.0 * scale,
            max_p: 0.1,
            limit: ((300.0 * scale).round() as usize).max(5),
            ewma_weight: 0.002,
        }
    }

    /// The same profile with drops driven by the instantaneous queue length
    /// (for the RED-variant ablation).
    pub fn instantaneous(mut self) -> RedParams {
        self.ewma_weight = 0.0;
        self
    }

    /// Drop probability at instantaneous queue length `qlen` (packets).
    pub fn drop_probability(&self, qlen: f64) -> f64 {
        if qlen < self.min_th {
            0.0
        } else if qlen < self.max_th {
            self.max_p * (qlen - self.min_th) / (self.max_th - self.min_th)
        } else if qlen < 2.0 * self.max_th {
            self.max_p + (1.0 - self.max_p) * (qlen - self.max_th) / self.max_th
        } else {
            1.0
        }
    }
}

/// Admission discipline for a queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Discipline {
    /// Drop arrivals when `limit` packets are already buffered.
    DropTail {
        /// Buffer capacity in packets.
        limit: usize,
    },
    /// The paper's RED profile (instantaneous queue length, as the Click
    /// setup describes).
    Red(RedParams),
    /// Drop each arrival independently with a fixed probability (plus a
    /// buffer cap). Not a real router discipline — it pins the loss
    /// probability so the loss-throughput formulas (TCP's `√(2/p)/rtt`,
    /// LIA's Eq. 2) can be validated exactly.
    Bernoulli {
        /// Independent per-packet drop probability.
        p: f64,
        /// Buffer capacity in packets.
        limit: usize,
    },
}

/// Static configuration of one queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueConfig {
    /// Service (link) rate in bits per second.
    pub rate_bps: f64,
    /// Propagation delay after serialization.
    pub latency: SimDuration,
    /// Drop discipline.
    pub discipline: Discipline,
}

impl QueueConfig {
    /// A drop-tail queue.
    pub fn drop_tail(rate_bps: f64, latency: SimDuration, limit: usize) -> QueueConfig {
        assert!(rate_bps > 0.0, "rate must be positive");
        QueueConfig {
            rate_bps,
            latency,
            discipline: Discipline::DropTail { limit },
        }
    }

    /// A RED queue with the paper's capacity-scaled profile.
    pub fn red_paper(rate_bps: f64, latency: SimDuration) -> QueueConfig {
        assert!(rate_bps > 0.0, "rate must be positive");
        QueueConfig {
            rate_bps,
            latency,
            discipline: Discipline::Red(RedParams::paper_profile(rate_bps)),
        }
    }

    /// A RED queue with explicit parameters.
    pub fn red(rate_bps: f64, latency: SimDuration, params: RedParams) -> QueueConfig {
        assert!(rate_bps > 0.0, "rate must be positive");
        QueueConfig {
            rate_bps,
            latency,
            discipline: Discipline::Red(params),
        }
    }

    /// A fixed-independent-loss queue (formula validation).
    pub fn bernoulli(rate_bps: f64, latency: SimDuration, p: f64, limit: usize) -> QueueConfig {
        assert!(rate_bps > 0.0, "rate must be positive");
        assert!((0.0..1.0).contains(&p), "loss probability out of range");
        QueueConfig {
            rate_bps,
            latency,
            discipline: Discipline::Bernoulli { p, limit },
        }
    }

    /// Serialization time of `bytes` at this queue's rate.
    pub fn service_time(&self, bytes: u32) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.rate_bps)
    }
}

/// Counters exposed per queue, enough to compute the loss probabilities the
/// paper reports (Fig. 1c, 5d, 10, 12) and utilizations (Table III).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueueStats {
    /// Packets offered to the queue.
    pub arrived: u64,
    /// Packets dropped on admission (all causes).
    pub dropped: u64,
    /// Of `dropped`, packets dropped because the link was administratively
    /// down (failure injection) — a subset, not an extra count.
    pub dropped_down: u64,
    /// Of `dropped`, RED *early* (probabilistic) drops — the discipline's
    /// congestion signal, what an ECN deployment would mark instead of
    /// dropping. A subset of `dropped`, disjoint from tail drops at the
    /// hard `limit`, so `dropped - marked` isolates genuine buffer
    /// exhaustion.
    pub marked: u64,
    /// Packets fully serialized and forwarded.
    pub forwarded: u64,
    /// Bytes fully serialized and forwarded.
    pub forwarded_bytes: u64,
    /// Integral of busy time in nanoseconds (for utilization). Accrued when
    /// each service *completes*, so it stays correct across mid-run rate
    /// changes and mid-service stat resets.
    pub busy_ns: u64,
}

impl QueueStats {
    /// Fraction of offered packets that were dropped.
    pub fn loss_probability(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.dropped as f64 / self.arrived as f64
        }
    }

    /// Link utilization over `elapsed_ns` of simulated time.
    pub fn utilization(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / elapsed_ns as f64
        }
    }

    /// Average forwarded throughput in bits/s over `elapsed_ns`.
    pub fn throughput_bps(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            0.0
        } else {
            self.forwarded_bytes as f64 * 8.0 / SimDuration::from_nanos(elapsed_ns).as_secs_f64()
        }
    }

    /// Reset all counters (used to discard warmup transients).
    pub fn reset(&mut self) {
        *self = QueueStats::default();
    }
}

/// Stochastic impairments layered on top of a queue's normal behavior
/// (fault injection — see [`crate::FaultPlan`]). All randomness draws from
/// the simulation RNG, so impaired runs stay reproducible per seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Impairment {
    /// Extra independent drop probability for otherwise-admitted arrivals…
    pub(crate) loss_p: f64,
    /// …applied only before this instant (loss bursts are time-bounded).
    pub(crate) loss_until: SimTime,
    /// Probability a forwarded packet is duplicated.
    pub(crate) duplicate_p: f64,
    /// Probability a forwarded packet is delayed by `reorder_extra`.
    pub(crate) reorder_p: f64,
    /// Extra propagation delay for reordered packets.
    pub(crate) reorder_extra: SimDuration,
}

impl Impairment {
    pub(crate) const NONE: Impairment = Impairment {
        loss_p: 0.0,
        loss_until: SimTime::ZERO,
        duplicate_p: 0.0,
        reorder_p: 0.0,
        reorder_extra: SimDuration::ZERO,
    };
}

/// A queue instance: configuration + buffer + counters.
#[derive(Debug)]
pub(crate) struct Queue {
    pub(crate) config: QueueConfig,
    /// Buffered packets, by arena ref (the packets themselves live in the
    /// simulation's [`crate::arena::PacketArena`]).
    pub(crate) buf: VecDeque<PacketRef>,
    /// Whether a service-completion event is outstanding.
    pub(crate) busy: bool,
    /// Administratively down: every arrival is dropped (failure injection).
    pub(crate) down: bool,
    /// Active impairments (loss burst / duplication / reordering).
    pub(crate) impair: Impairment,
    /// When the packet currently serializing began service — clipped forward
    /// by stat resets so `busy_ns` only counts post-reset time.
    pub(crate) service_start: SimTime,
    /// EWMA of the queue length (classic RED), relaxed in continuous time.
    pub(crate) avg_qlen: f64,
    /// When `avg_qlen` was last brought up to date.
    pub(crate) avg_updated: SimTime,
    pub(crate) stats: QueueStats,
}

impl Queue {
    pub(crate) fn new(config: QueueConfig) -> Queue {
        Queue {
            config,
            buf: VecDeque::new(),
            busy: false,
            down: false,
            impair: Impairment::NONE,
            service_start: SimTime::ZERO,
            avg_qlen: 0.0,
            avg_updated: SimTime::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// Admission decision; `Ok(())` means the packet was buffered, `Err`
    /// carries why it was not (tail drop, RED early mark, ...) for the
    /// per-cause counters and the trace layer.
    ///
    /// The caller is responsible for scheduling service when the queue
    /// transitions from idle.
    /// The admission decision never needs the packet contents, so it takes
    /// the 8-byte arena ref; the caller resolves sizes (service time, byte
    /// counters) against the arena.
    pub(crate) fn try_enqueue(
        &mut self,
        pkt: PacketRef,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Result<(), DropReason> {
        self.stats.arrived += 1;
        if self.down {
            self.stats.dropped += 1;
            self.stats.dropped_down += 1;
            return Err(DropReason::AdminDown);
        }
        // Loss-burst impairment: an extra independent drop applied before
        // the discipline, while the burst window is open.
        if now < self.impair.loss_until && rng.chance(self.impair.loss_p) {
            self.stats.dropped += 1;
            return Err(DropReason::LossBurst);
        }
        let verdict = match self.config.discipline {
            Discipline::DropTail { limit } => {
                if self.buf.len() < limit {
                    Ok(())
                } else {
                    Err(DropReason::Tail)
                }
            }
            Discipline::Bernoulli { p, limit } => {
                if self.buf.len() >= limit {
                    Err(DropReason::Tail)
                } else if rng.chance(p) {
                    Err(DropReason::Bernoulli)
                } else {
                    Ok(())
                }
            }
            Discipline::Red(params) => {
                let qlen = self.buf.len() as f64;
                let effective = if params.ewma_weight > 0.0 {
                    // Continuous-time EWMA: time constant = one MSS service
                    // time divided by Floyd's weight.
                    let tau = self.config.service_time(1500).as_secs_f64() / params.ewma_weight;
                    let dt = now.saturating_since(self.avg_updated).as_secs_f64();
                    let decay = (-dt / tau).exp();
                    self.avg_qlen = qlen + (self.avg_qlen - qlen) * decay;
                    self.avg_updated = now;
                    self.avg_qlen
                } else {
                    qlen
                };
                if self.buf.len() >= params.limit {
                    Err(DropReason::Tail)
                } else if rng.chance(params.drop_probability(effective)) {
                    Err(DropReason::EarlyMark)
                } else {
                    Ok(())
                }
            }
        };
        match verdict {
            Ok(()) => self.buf.push_back(pkt),
            Err(reason) => {
                self.stats.dropped += 1;
                if reason == DropReason::EarlyMark {
                    self.stats.marked += 1;
                }
            }
        }
        verdict
    }

    /// Remove and return the head packet's ref after it finished
    /// serializing; `size` is its wire size (the caller already resolved the
    /// head against the arena to schedule this service).
    pub(crate) fn complete_service(&mut self, size: u32) -> PacketRef {
        let Some(pkt) = self.buf.pop_front() else {
            panic!("service completion on empty queue");
        };
        self.stats.forwarded += 1;
        self.stats.forwarded_bytes += size as u64;
        pkt
    }

    /// Current queue length in packets.
    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }
}

/// Queue storage with lazy block materialization.
///
/// Large topologies reserve whole blocks of identically-configured queues
/// ([`crate::Simulation::reserve_queue_block`]) without constructing them; a
/// queue materializes the first time something needs `&mut` access — the
/// event loop admitting a packet, a fault plan, a config mutation. Ids are
/// assigned arithmetically at reservation time, so lazy and eager
/// construction yield identical id assignments; and since [`Queue::new`]
/// allocates nothing (`VecDeque::new` is allocation-free) and draws no
/// randomness, materialization order is behavior-invisible — trace digests
/// are byte-identical either way.
///
/// Shared (`&self`) accessors report unmaterialized queues as empty/default,
/// which is exactly what an untouched queue is.
#[derive(Debug)]
pub(crate) struct QueueTable {
    /// Materialized prefix: queues `0..materialized.len()`.
    materialized: Vec<Queue>,
    /// Config runs covering ids `materialized.len()..total`, each as
    /// `(end_id_exclusive, config)`, in id order.
    pending: Vec<(u32, QueueConfig)>,
    /// First entry of `pending` not yet fully materialized.
    pending_head: usize,
    /// Total queues (materialized + pending).
    total: u32,
}

impl QueueTable {
    pub(crate) fn new() -> QueueTable {
        QueueTable {
            materialized: Vec::new(),
            pending: Vec::new(),
            pending_head: 0,
            total: 0,
        }
    }

    /// Total queues, materialized or not.
    pub(crate) fn total(&self) -> usize {
        self.total as usize
    }

    /// Queues constructed so far (diagnostics: how lazy the build stayed).
    pub(crate) fn materialized_count(&self) -> usize {
        self.materialized.len()
    }

    /// Append one eagerly-constructed queue; returns its id.
    pub(crate) fn push(&mut self, config: QueueConfig) -> u32 {
        // Mixing eager adds after block reservations is allowed but
        // forfeits the remaining laziness: ids are a single dense sequence,
        // so the pending prefix must exist before anything lands after it.
        self.flush();
        assert!(self.total < u32::MAX, "too many queues");
        let id = self.total;
        self.materialized.push(Queue::new(config));
        self.total += 1;
        id
    }

    /// Reserve `count` queues sharing `config` without constructing them;
    /// returns the first id of the (contiguous) block.
    pub(crate) fn reserve_block(&mut self, count: usize, config: QueueConfig) -> u32 {
        let start = self.total;
        let end = self.total as u64 + count as u64;
        assert!(end <= u32::MAX as u64, "too many queues");
        self.total = end as u32;
        if count > 0 {
            self.pending.push((self.total, config));
        }
        start
    }

    /// Mutable access; materializes the prefix through `i` on first touch.
    #[inline]
    pub(crate) fn get_mut(&mut self, i: usize) -> &mut Queue {
        if i >= self.materialized.len() {
            assert!(i < self.total as usize, "queue {i} out of range");
            self.materialize_to(i + 1);
        }
        &mut self.materialized[i]
    }

    /// Shared access: `None` means reserved-but-untouched (empty, default
    /// stats, not down). Panics on an out-of-range id, same as eager
    /// indexing would.
    pub(crate) fn get(&self, i: usize) -> Option<&Queue> {
        assert!(i < self.total as usize, "queue {i} out of range");
        self.materialized.get(i)
    }

    /// The materialized queues (pending ones hold no packets and default
    /// stats, so conservation checks and stat resets may skip them).
    pub(crate) fn iter_materialized(&self) -> impl Iterator<Item = &Queue> {
        self.materialized.iter()
    }

    /// Mutable iteration over the materialized queues.
    pub(crate) fn iter_materialized_mut(&mut self) -> impl Iterator<Item = &mut Queue> {
        self.materialized.iter_mut()
    }

    /// Construct every reserved queue up to (not including) id `n`.
    #[cold]
    fn materialize_to(&mut self, n: usize) {
        while self.materialized.len() < n {
            let (end, config) = self.pending[self.pending_head];
            self.materialized.push(Queue::new(config));
            if self.materialized.len() == end as usize {
                self.pending_head += 1;
            }
        }
    }

    /// Materialize everything still pending.
    pub(crate) fn flush(&mut self) {
        let n = self.total as usize;
        if self.materialized.len() < n {
            self.materialize_to(n);
        }
        self.pending.clear();
        self.pending_head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PacketArena;
    use crate::ids::{EndpointId, QueueId};
    use crate::packet::Packet;
    use crate::routes::route;
    use proptest::prelude::*;

    /// Unit tests drive queues with refs from a throwaway arena; admission
    /// logic never dereferences them, so leaking refs on drop is fine here.
    fn pkt(seq: u64) -> PacketRef {
        let mut arena = PacketArena::new();
        arena.insert(Packet::data(
            EndpointId(0),
            EndpointId(1),
            0,
            0,
            seq,
            1500,
            route(&[QueueId(0)]),
        ))
    }

    #[test]
    fn red_profile_shape() {
        let r = RedParams::paper_baseline();
        assert_eq!(r.drop_probability(0.0), 0.0);
        assert_eq!(r.drop_probability(24.9), 0.0);
        // Midpoint of [25, 50] → max_p/2.
        assert!((r.drop_probability(37.5) - 0.05).abs() < 1e-12);
        // At max_th the probability is max_p.
        assert!((r.drop_probability(50.0) - 0.1).abs() < 1e-12);
        // Midpoint of the gentle region [50, 100] → (0.1 + 1)/2.
        assert!((r.drop_probability(75.0) - 0.55).abs() < 1e-12);
        assert_eq!(r.drop_probability(100.0), 1.0);
        assert_eq!(r.drop_probability(250.0), 1.0);
    }

    #[test]
    fn red_profile_scales_with_capacity() {
        let r = RedParams::paper_profile(20_000_000.0);
        assert!((r.min_th - 50.0).abs() < 1e-9);
        assert!((r.max_th - 100.0).abs() < 1e-9);
        assert_eq!(r.limit, 600);
        // Tiny links get a floor, not a zero-size buffer.
        let small = RedParams::paper_profile(100_000.0);
        assert!(small.limit >= 5);
        assert!(small.min_th > 0.0);
    }

    #[test]
    fn drop_tail_respects_limit() {
        let mut q = Queue::new(QueueConfig::drop_tail(1e6, SimDuration::from_millis(1), 3));
        let mut rng = SimRng::seed_from_u64(0);
        for i in 0..5 {
            let _ = q.try_enqueue(pkt(i), SimTime::ZERO, &mut rng);
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.stats.arrived, 5);
        assert_eq!(q.stats.dropped, 2);
    }

    #[test]
    fn red_hard_limit_always_drops() {
        let params = RedParams {
            min_th: 1000.0, // never probabilistic-drop
            max_th: 2000.0,
            max_p: 0.1,
            limit: 2,
            ewma_weight: 0.0,
        };
        let mut q = Queue::new(QueueConfig::red(1e6, SimDuration::ZERO, params));
        let mut rng = SimRng::seed_from_u64(0);
        assert!(q.try_enqueue(pkt(0), SimTime::ZERO, &mut rng).is_ok());
        assert!(q.try_enqueue(pkt(1), SimTime::ZERO, &mut rng).is_ok());
        assert_eq!(
            q.try_enqueue(pkt(2), SimTime::ZERO, &mut rng),
            Err(DropReason::Tail)
        );
        assert_eq!(q.stats.dropped, 1);
        // Hard-limit drops are tail drops, not congestion marks.
        assert_eq!(q.stats.marked, 0);
    }

    #[test]
    fn red_drop_rate_tracks_profile() {
        // Hold the queue at a fixed length and measure the empirical drop
        // frequency against the analytic profile.
        // Instantaneous mode so the empirical frequency tracks the profile
        // at the held queue length exactly.
        let params = RedParams::paper_baseline().instantaneous();
        let mut rng = SimRng::seed_from_u64(7);
        for (qlen, expected) in [(30.0, params.drop_probability(30.0)), (60.0, 0.28)] {
            let trials = 40_000;
            let mut q = Queue::new(QueueConfig::red(1e7, SimDuration::ZERO, params));
            // Pre-fill to the target length.
            for i in 0..qlen as u64 {
                q.buf.push_back(pkt(i));
            }
            let mut drops = 0;
            for i in 0..trials {
                let before = q.len();
                if q.try_enqueue(pkt(i), SimTime::ZERO, &mut rng).is_err() {
                    drops += 1;
                } else {
                    q.buf.pop_back();
                }
                assert_eq!(q.len(), before);
            }
            let freq = drops as f64 / trials as f64;
            assert!(
                (freq - expected).abs() < 0.01,
                "qlen {qlen}: freq {freq} vs profile {expected}"
            );
        }
    }

    #[test]
    fn service_accounting() {
        let mut q = Queue::new(QueueConfig::drop_tail(1e6, SimDuration::from_millis(1), 10));
        let mut rng = SimRng::seed_from_u64(0);
        // Distinct refs from one arena so FIFO identity is observable.
        let mut arena = PacketArena::new();
        let first = arena.insert(Packet::data(
            EndpointId(0),
            EndpointId(1),
            0,
            0,
            0,
            1500,
            route(&[QueueId(0)]),
        ));
        let second = arena.insert(Packet::data(
            EndpointId(0),
            EndpointId(1),
            0,
            0,
            1,
            1500,
            route(&[QueueId(0)]),
        ));
        let _ = q.try_enqueue(first, SimTime::ZERO, &mut rng);
        let _ = q.try_enqueue(second, SimTime::ZERO, &mut rng);
        let p = q.complete_service(1500);
        assert_eq!(p, first);
        assert_ne!(first, second);
        assert_eq!(q.stats.forwarded, 1);
        assert_eq!(q.stats.forwarded_bytes, 1500);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn service_time_math() {
        let c = QueueConfig::drop_tail(10_000_000.0, SimDuration::ZERO, 1);
        // 1500 bytes at 10 Mb/s = 1.2 ms.
        assert_eq!(c.service_time(1500), SimDuration::from_micros(1200));
    }

    #[test]
    fn stats_ratios() {
        let s = QueueStats {
            arrived: 200,
            dropped: 10,
            dropped_down: 0,
            marked: 4,
            forwarded: 190,
            forwarded_bytes: 190 * 1500,
            busy_ns: 500_000_000,
        };
        assert!((s.loss_probability() - 0.05).abs() < 1e-12);
        assert!((s.utilization(1_000_000_000) - 0.5).abs() < 1e-12);
        let expect_bps = 190.0 * 1500.0 * 8.0;
        assert!((s.throughput_bps(1_000_000_000) - expect_bps).abs() < 1e-6);
        assert_eq!(QueueStats::default().loss_probability(), 0.0);
        assert_eq!(QueueStats::default().utilization(0), 0.0);
        assert_eq!(QueueStats::default().throughput_bps(0), 0.0);
    }

    #[test]
    fn bernoulli_drop_rate_matches_p() {
        let mut q = Queue::new(QueueConfig::bernoulli(1e9, SimDuration::ZERO, 0.1, 1000));
        let mut rng = SimRng::seed_from_u64(3);
        let trials = 50_000;
        let mut drops = 0;
        for i in 0..trials {
            if q.try_enqueue(pkt(i), SimTime::ZERO, &mut rng).is_err() {
                drops += 1;
            } else {
                q.buf.pop_back();
            }
        }
        let freq = drops as f64 / trials as f64;
        assert!((freq - 0.1).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn bernoulli_respects_buffer_cap() {
        let mut q = Queue::new(QueueConfig::bernoulli(1e9, SimDuration::ZERO, 0.0, 2));
        let mut rng = SimRng::seed_from_u64(3);
        assert!(q.try_enqueue(pkt(0), SimTime::ZERO, &mut rng).is_ok());
        assert!(q.try_enqueue(pkt(1), SimTime::ZERO, &mut rng).is_ok());
        assert_eq!(
            q.try_enqueue(pkt(2), SimTime::ZERO, &mut rng),
            Err(DropReason::Tail)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bernoulli_rejects_bad_p() {
        QueueConfig::bernoulli(1e9, SimDuration::ZERO, 1.5, 10);
    }

    #[test]
    fn down_queue_drops_everything() {
        let mut q = Queue::new(QueueConfig::drop_tail(1e9, SimDuration::ZERO, 10));
        let mut rng = SimRng::seed_from_u64(3);
        q.down = true;
        assert_eq!(
            q.try_enqueue(pkt(0), SimTime::ZERO, &mut rng),
            Err(DropReason::AdminDown)
        );
        assert_eq!(q.stats.dropped, 1);
        assert_eq!(q.stats.dropped_down, 1);
        q.down = false;
        assert!(q.try_enqueue(pkt(1), SimTime::ZERO, &mut rng).is_ok());
        // The administrative drop stays a subset of the total.
        assert_eq!(q.stats.dropped, 1);
        assert_eq!(q.stats.dropped_down, 1);
    }

    #[test]
    fn loss_burst_drops_within_window_only() {
        let mut q = Queue::new(QueueConfig::drop_tail(1e9, SimDuration::ZERO, 100_000));
        let mut rng = SimRng::seed_from_u64(9);
        q.impair.loss_p = 1.0;
        q.impair.loss_until = SimTime::from_secs_f64(1.0);
        assert_eq!(
            q.try_enqueue(pkt(0), SimTime::from_secs_f64(0.5), &mut rng),
            Err(DropReason::LossBurst)
        );
        assert_eq!(q.stats.dropped, 1);
        // Burst drops are impairments, not administrative outage.
        assert_eq!(q.stats.dropped_down, 0);
        // After the window closes the queue admits normally.
        assert!(q
            .try_enqueue(pkt(1), SimTime::from_secs_f64(1.0), &mut rng)
            .is_ok());
    }

    #[test]
    fn loss_burst_rate_matches_p() {
        let mut q = Queue::new(QueueConfig::drop_tail(1e9, SimDuration::ZERO, 100_000));
        let mut rng = SimRng::seed_from_u64(21);
        q.impair.loss_p = 0.3;
        q.impair.loss_until = SimTime::from_secs_f64(1e9);
        let trials = 50_000;
        let mut drops = 0;
        for i in 0..trials {
            if q.try_enqueue(pkt(i), SimTime::ZERO, &mut rng).is_err() {
                drops += 1;
            } else {
                q.buf.pop_back();
            }
        }
        let freq = drops as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn red_ewma_decays_during_idle() {
        // The continuous-time average must relax back toward the (empty)
        // instantaneous length over idle periods, re-opening the queue.
        let mut q = Queue::new(QueueConfig::red(
            10e6,
            SimDuration::ZERO,
            RedParams::paper_baseline(),
        ));
        let mut rng = SimRng::seed_from_u64(1);
        // Force the average sky-high.
        q.avg_qlen = 150.0;
        q.avg_updated = SimTime::ZERO;
        // Immediately: average ~150 -> drop probability 1 (an early mark,
        // since the buffer itself is empty).
        assert_eq!(
            q.try_enqueue(pkt(0), SimTime::from_nanos(1), &mut rng),
            Err(DropReason::EarlyMark)
        );
        assert_eq!(q.stats.marked, 1);
        // Ten seconds of idle later the average has decayed to ~0.
        assert!(q
            .try_enqueue(pkt(1), SimTime::from_secs_f64(10.0), &mut rng)
            .is_ok());
        assert!(q.avg_qlen < 1.0, "avg {}", q.avg_qlen);
    }

    proptest! {
        /// The RED profile is monotone nondecreasing in queue length and
        /// bounded in [0, 1].
        #[test]
        fn prop_red_monotone(a in 0.0_f64..400.0, b in 0.0_f64..400.0) {
            let r = RedParams::paper_baseline();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let pl = r.drop_probability(lo);
            let ph = r.drop_probability(hi);
            prop_assert!((0.0..=1.0).contains(&pl));
            prop_assert!((0.0..=1.0).contains(&ph));
            prop_assert!(pl <= ph + 1e-12);
        }

        /// Drop-tail never exceeds its limit and never drops below it.
        #[test]
        fn prop_drop_tail_exact(limit in 1usize..64, n in 0u64..128) {
            let mut q = Queue::new(QueueConfig::drop_tail(
                1e6, SimDuration::ZERO, limit));
            let mut rng = SimRng::seed_from_u64(1);
            for i in 0..n {
                let _ = q.try_enqueue(pkt(i), SimTime::ZERO, &mut rng);
            }
            prop_assert_eq!(q.len() as u64, n.min(limit as u64));
            prop_assert_eq!(q.stats.dropped, n.saturating_sub(limit as u64));
        }
    }
}

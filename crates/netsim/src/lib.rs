#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! Packet-level network simulation substrate for the reproduction of
//! *"MPTCP is not Pareto-Optimal"* (Khalili et al., CoNEXT 2012).
//!
//! This crate plays the role of the paper's testbed plumbing (Click-emulated
//! links with RED queues) and of the htsim data-center substrate: it moves
//! packets through store-and-forward queues with configurable service rate,
//! propagation delay, and drop discipline, and delivers them to endpoints
//! (the TCP/MPTCP sources and sinks of crate `tcpsim`).
//!
//! Model (htsim-style):
//!
//! * A **route** is a sequence of [`QueueId`]s. Packets carry their route and
//!   a hop index — there is no routing table lookup on the forwarding path,
//!   matching how both the testbed (static routes) and htsim work.
//! * A **queue** serializes the head packet at `rate` bits/s, then the packet
//!   propagates for `latency` before arriving at the next hop (or at the
//!   destination endpoint after the last hop). Queues drop on enqueue:
//!   drop-tail at a packet cap, or the paper's RED profile
//!   ([`RedParams::paper_profile`], §III Testbed Setup).
//! * **Endpoints** implement [`Endpoint`] and react to packet deliveries and
//!   timers through a [`NetCtx`].
//! * **Faults** are scripted with a [`FaultPlan`] (link down/up, mid-run
//!   rate/latency changes, loss bursts, duplication, reordering) and run
//!   inside the event loop ([`Simulation::install_fault_plan`]), drawing any
//!   randomness from the simulation RNG.
//!
//! Everything is deterministic: same configuration + same seed → identical
//! event sequence (see the determinism test in `sim.rs`), fault plans
//! included.
//!
//! # Example: blast ten packets over one bottleneck
//!
//! ```
//! use netsim::{Simulation, QueueConfig, Packet, Endpoint, NetCtx, Route};
//! use eventsim::{SimDuration, SimTime};
//!
//! struct Blaster { route: Route, dst: netsim::EndpointId }
//! struct Counter;
//!
//! impl Endpoint for Blaster {
//!     fn start(&mut self, ctx: &mut NetCtx) {
//!         for i in 0..10 {
//!             ctx.send(Packet::data(ctx.me(), self.dst, 0, 0, i, 1500, self.route));
//!         }
//!     }
//!     fn on_packet(&mut self, _: &mut NetCtx, _: Packet) {}
//!     fn on_timer(&mut self, _: &mut NetCtx, _: u64) {}
//! }
//! impl Endpoint for Counter {
//!     fn start(&mut self, _: &mut NetCtx) {}
//!     fn on_packet(&mut self, _: &mut NetCtx, _: Packet) {}
//!     fn on_timer(&mut self, _: &mut NetCtx, _: u64) {}
//! }
//!
//! let mut sim = Simulation::new(42);
//! let q = sim.add_queue(QueueConfig::drop_tail(
//!     10_000_000.0, SimDuration::from_millis(10), 100));
//! let rx = sim.reserve_endpoint();
//! let route = netsim::route(&[q]);
//! let tx = sim.add_endpoint(Box::new(Blaster { route, dst: rx }));
//! sim.install_endpoint(rx, Box::new(Counter));
//! sim.start_endpoint(tx);
//! sim.run_until(SimTime::from_secs_f64(1.0));
//! assert_eq!(sim.queue_stats(q).forwarded, 10);
//! let _ = tx;
//! ```

mod arena;
mod fault;
mod ids;
mod packet;
pub mod profile;
mod queue;
pub mod routes;
mod sim;

pub use fault::{FaultAction, FaultPlan};
pub use ids::{EndpointId, QueueId};
pub use packet::{Packet, PacketKind};
pub use queue::{Discipline, QueueConfig, QueueStats, RedParams};
pub use routes::{route, Route, EMPTY_ROUTE};
pub use sim::{Endpoint, LoopStats, NetCtx, Simulation};
